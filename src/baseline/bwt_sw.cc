#include "src/baseline/bwt_sw.h"

#include <algorithm>

#include "src/align/dp.h"

namespace alae {

BwtSw::BwtSw(const FmIndex& rev_index, int64_t text_len)
    : index_(rev_index), n_(text_len) {}

std::vector<BwtSw::Col> BwtSw::ComputeChildRow(
    const std::vector<Col>& parent, Symbol c, const Sequence& query,
    const ScoringScheme& scheme, int32_t threshold,
    std::vector<std::pair<int32_t, int32_t>>* hits, uint64_t* cells) {
  std::vector<Col> out;
  out.reserve(parent.size() + 8);
  const int64_t m = static_cast<int64_t>(query.size());
  const int32_t open_ext = scheme.sg + scheme.ss;

  size_t pi = 0;                // scans parent entries
  size_t ci = 0;                // scans candidate source entries
  int64_t forced = -1;          // gb-spill column, if alive
  int64_t prev_j = -2;          // last computed column
  int32_t gb_carry = kNegInf;   // Gb(i, prev_j + 1), valid when contiguous

  // Candidate columns: parent.j (Ga/diag-right) and parent.j + 1 (diag),
  // plus gb spill to the right of freshly computed cells. Parent entries
  // are sorted, so the merged candidate stream is non-decreasing.
  while (true) {
    int64_t j = -1;
    // Next candidate from the parent stream.
    int64_t from_parent = -1;
    if (ci < parent.size()) {
      // Either parent[ci].j itself (not yet used as "same column") or
      // parent[ci].j + 1; we enumerate both by visiting parent[ci].j first.
      from_parent = parent[ci].j;
      if (from_parent <= prev_j) from_parent = parent[ci].j + 1;
    }
    if (forced >= 0 && (from_parent < 0 || forced < from_parent)) {
      j = forced;
    } else if (from_parent >= 0) {
      j = from_parent;
    } else {
      break;
    }
    forced = -1;
    if (j > m) break;
    if (j < 1) {
      // Column 0 has no query character; M(i,0) = sg + i*ss is never
      // positive, so the cell is dead under the positivity rule. It only
      // matters as the diagonal input of column 1, which reads it from the
      // parent row directly.
      prev_j = j;
      continue;
    }
    if (j != prev_j + 1) gb_carry = kNegInf;

    // Parent lookups at j-1 (diag) and j (ga). pi trails the sweep.
    while (pi < parent.size() && parent[pi].j < j - 1) ++pi;
    int32_t pm_diag = kNegInf;
    int32_t pm_j = kNegInf, pga_j = kNegInf;
    size_t pk = pi;
    if (pk < parent.size() && parent[pk].j == j - 1) {
      pm_diag = parent[pk].m;
      ++pk;
    }
    if (pk < parent.size() && parent[pk].j == j) {
      pm_j = parent[pk].m;
      pga_j = parent[pk].ga;
    }
    while (ci < parent.size() && parent[ci].j + 1 <= j) ++ci;

    int32_t ga = std::max(pga_j + scheme.ss, pm_j + open_ext);
    int32_t gb = std::max(gb_carry + scheme.ss,
                          (prev_j == j - 1 && !out.empty() &&
                           out.back().j == j - 1)
                              ? out.back().m + open_ext
                              : kNegInf);
    int32_t diag =
        pm_diag + scheme.Delta(c, query[static_cast<size_t>(j - 1)]);
    int32_t mval = std::max({diag, ga, gb});
    if (cells) ++*cells;

    prev_j = j;
    gb_carry = gb;
    if (mval > 0) {
      out.push_back({static_cast<int32_t>(j), mval, ga > 0 ? ga : kNegInf});
      if (mval >= threshold && hits) {
        hits->emplace_back(static_cast<int32_t>(j), mval);
      }
      // The cell can spill Gb rightward.
      if (std::max(gb + scheme.ss, mval + open_ext) > 0) forced = j + 1;
    }
  }
  return out;
}

ResultCollector BwtSw::Run(const Sequence& query, const ScoringScheme& scheme,
                           int32_t threshold, DpCounters* counters) const {
  ResultCollector results;
  const int64_t m = static_cast<int64_t>(query.size());
  if (m == 0 || n_ == 0) return results;
  // Positivity alone bounds useful depth by Lmax at H=1 (any deeper prefix
  // cannot hold a positive score); BWT-SW does not use H for pruning.
  const int64_t lmax = LengthUpperBound(scheme, m, 1);
  const int sigma = query.sigma();

  struct Frame {
    SaRange range;
    std::vector<SaRange> children;  // all sigma child ranges, one ExtendAll
    std::vector<Col> row;
    std::vector<int64_t> ends;  // lazily located text end positions
    bool located = false;
    Symbol next_child = 0;
  };

  // Conceptual row 0: M(0, j) = 0 for every column (including j=0 so the
  // first diagonal step can start anywhere).
  std::vector<Col> root_row(static_cast<size_t>(m) + 1);
  for (int64_t j = 0; j <= m; ++j) {
    // m=0 entries at the root are alive by definition (paper init), even
    // though the positivity rule would drop them at deeper rows.
    root_row[static_cast<size_t>(j)] = {static_cast<int32_t>(j), 0, kNegInf};
  }

  std::vector<Frame> stack;
  stack.push_back(
      Frame{index_.FullRange(), {}, std::move(root_row), {}, false, 0});

  std::vector<std::pair<int32_t, int32_t>> hits;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child >= sigma) {
      stack.pop_back();
      continue;
    }
    int64_t depth = static_cast<int64_t>(stack.size());  // child depth
    if (top.next_child == 0) {
      // First visit: every child sits at the same depth, so the length cap
      // prunes the whole frame at once, and one batched ExtendAll replaces
      // sigma single-symbol Extend calls.
      if (depth > lmax) {
        stack.pop_back();
        continue;
      }
      // ExtendAll fills one entry per *index* symbol; size for whichever
      // alphabet is wider so a query/index mismatch cannot overflow.
      top.children.resize(
          static_cast<size_t>(std::max(sigma, index_.sigma())));
      index_.ExtendAll(top.range, top.children.data());
      if (counters) ++counters->fm_extend_alls;
    }
    Symbol c = top.next_child++;
    SaRange child_range = top.children[c];
    if (child_range.Empty()) continue;

    hits.clear();
    uint64_t cells = 0;
    std::vector<Col> child_row = ComputeChildRow(top.row, c, query, scheme,
                                                 threshold, &hits, &cells);
    if (counters) {
      counters->cells_cost3 += cells;
      ++counters->trie_nodes_visited;
    }
    if (child_row.empty()) continue;

    Frame child{child_range, {}, std::move(child_row), {}, false, 0};
    if (!hits.empty()) {
      // Locate once per node: end position of X in T is n-1-p where p is
      // the start of X⁻¹ in reverse(T).
      child.ends = index_.Locate(
          child_range, counters ? &counters->fm_lf_steps : nullptr);
      for (int64_t& p : child.ends) p = n_ - 1 - p;
      child.located = true;
      for (const auto& [col, score] : hits) {
        for (int64_t end : child.ends) {
          results.Add(end, col - 1, score, end - depth + 1);
        }
      }
    }
    stack.push_back(std::move(child));
  }
  return results;
}

}  // namespace alae
