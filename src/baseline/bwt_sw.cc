#include "src/baseline/bwt_sw.h"

#include <algorithm>

#include "src/align/dp.h"

namespace alae {

namespace {

// Accumulates computed cells of one child row into dense SoA segments,
// splitting whenever more than kSplitGap consecutive columns are dead.
// Leading and trailing dead cells of a segment are never stored. Segment
// buffers come from / return to the caller's pool to avoid per-segment
// heap churn.
class SegmentBuilder {
 public:
  SegmentBuilder(std::vector<simd::DpRow>* out,
                 std::vector<simd::DpRow>* pool, int64_t split_gap)
      : out_(out), pool_(pool), split_gap_(split_gap) {}

  void Append(int64_t col, int32_t m, int32_t ga) {
    const bool live = m != kNegInf;
    if (cur_.Empty()) {
      if (!live) return;
      Open(col);
    } else if (col - last_live_ > split_gap_) {
      Flush();
      if (!live) return;
      Open(col);
    } else {
      // Pad any skipped (uncomputed, hence dead) columns so the segment
      // stays dense.
      for (int64_t j = cur_.lo + cur_.Size(); j < col; ++j) {
        cur_.m.push_back(kNegInf);
        cur_.ga.push_back(kNegInf);
      }
    }
    cur_.m.push_back(m);
    cur_.ga.push_back(ga);
    if (live) last_live_ = col;
  }

  // Bulk form of Append for a kernel window's surviving span: emits the
  // cells [fa, la] of the window starting at column col0 (both indices are
  // alive), splitting chunks on dead runs wider than the split gap and
  // block-copying each chunk instead of pushing cell by cell.
  void AppendDense(int64_t col0, const int32_t* m, const int32_t* ga,
                   int64_t fa, int64_t la) {
    int64_t k = fa;
    while (k <= la) {
      int64_t last = k;
      int64_t j = k + 1;
      for (; j <= la; ++j) {
        if (m[j] != kNegInf) {
          if (j - last > split_gap_) break;
          last = j;
        }
      }
      const int64_t start_col = col0 + k;
      if (cur_.Empty()) {
        Open(start_col);
      } else if (start_col - last_live_ > split_gap_) {
        Flush();
        Open(start_col);
      } else {
        for (int64_t col = cur_.lo + cur_.Size(); col < start_col; ++col) {
          cur_.m.push_back(kNegInf);
          cur_.ga.push_back(kNegInf);
        }
      }
      cur_.m.insert(cur_.m.end(), m + k, m + last + 1);
      cur_.ga.insert(cur_.ga.end(), ga + k, ga + last + 1);
      last_live_ = col0 + last;
      k = j;  // the alive cell that broke the run, or past la
    }
  }

  void Flush() {
    if (!cur_.Empty()) {
      // Trim trailing dead cells (live <= last_live_ by construction).
      const int64_t keep = last_live_ - cur_.lo + 1;
      cur_.m.resize(static_cast<size_t>(keep));
      cur_.ga.resize(static_cast<size_t>(keep));
      out_->push_back(std::move(cur_));
      cur_.Clear();
    }
  }

 private:
  void Open(int64_t col) {
    if (!pool_->empty()) {
      cur_ = std::move(pool_->back());
      pool_->pop_back();
      cur_.Clear();
    }
    cur_.lo = col;
  }

  std::vector<simd::DpRow>* out_;
  std::vector<simd::DpRow>* pool_;
  int64_t split_gap_;
  simd::DpRow cur_;
  int64_t last_live_ = 0;
};

// The raw Gb/M chain state after the most recently computed column; feeds
// the next window's gb_init when contiguous, and the scalar spill loops.
struct ChainState {
  int64_t col = -2;  // last computed column, -2 = nothing yet
  int32_t gb = kNegInf;
  int32_t mu = kNegInf;
};

}  // namespace

BwtSw::BwtSw(const FmIndex& rev_index, int64_t text_len)
    : index_(rev_index), n_(text_len) {}

void BwtSw::ComputeChildRow(RowCtx* ctx,
                            const std::vector<simd::DpRow>& parent, Symbol c,
                            std::vector<simd::DpRow>* child,
                            std::vector<std::pair<int32_t, int32_t>>* hits,
                            uint64_t* cells) {
  child->clear();
  const int64_t m = ctx->m;
  const int32_t ss = ctx->scheme.ss;
  const int32_t open_ext = ctx->scheme.sg + ctx->scheme.ss;
  const int32_t threshold = ctx->threshold;

  // Candidate windows: each parent segment feeds columns [lo, hi+1]
  // (same-column Ga plus one diagonal step), clipped to real query columns;
  // near-adjacent windows coalesce into one kernel call.
  auto& wins = ctx->wins;
  wins.clear();
  for (const simd::DpRow& seg : parent) {
    int64_t a = std::max<int64_t>(seg.lo, 1);
    int64_t b = std::min<int64_t>(seg.hi() + 1, m);
    if (a > b) continue;
    if (!wins.empty() && a - wins.back().second <= kSplitGap + 1) {
      wins.back().second = std::max(wins.back().second, b);
    } else {
      wins.emplace_back(a, b);
    }
  }

  SegmentBuilder builder(child, &ctx->pool, kSplitGap);
  ChainState chain;

  // Scalar Gb spill over columns with no parent inputs: M~ = Gb there, and
  // under the positivity rule the chain is dead (and can never revive
  // before the next window seeds it afresh) once it drops to <= 0.
  auto spill = [&](int64_t stop_col) {
    for (int64_t col = chain.col + 1; col < stop_col; ++col) {
      if (col > m) return;
      int32_t gb = std::max(chain.gb + ss, chain.mu + open_ext);
      if (gb <= 0) return;
      ++*cells;
      builder.Append(col, gb, kNegInf);
      if (gb >= threshold) {
        hits->emplace_back(static_cast<int32_t>(col), gb);
      }
      chain = {col, gb, gb};
    }
  };

  // Most rows on realistic workloads are a few 1-3 cell islands, so the
  // per-window buffers must not touch the allocator: short windows densify
  // into fixed stack arrays, only wide ones use the reusable ctx vectors.
  constexpr int64_t kStackWin = 32;
  int32_t sb_prev_m[kStackWin], sb_prev_ga[kStackWin], sb_diag[kStackWin];
  int32_t sb_out_m[kStackWin], sb_out_ga[kStackWin];
  size_t seg_cursor = 0;  // windows and segments are both ascending

  // Below this width a window is stepped straight off its parent segment:
  // the deep-trie steady state is 1-3 cell islands, where the densify
  // loops, the RowSpec hand-off, and the dispatched call cost more than
  // the handful of max/add steps they wrap.
  constexpr int64_t kSparseWin = 4;

  for (const auto& [win_a, win_b] : wins) {
    spill(win_a);
    const int64_t len = win_b - win_a + 1;
    if (len <= kSparseWin) {
      while (seg_cursor < parent.size() &&
             parent[seg_cursor].hi() < win_a - 1) {
        ++seg_cursor;
      }
      const simd::DpRow* seg = seg_cursor < parent.size() &&
                                       parent[seg_cursor].lo <= win_b
                                   ? &parent[seg_cursor]
                                   : nullptr;
      const bool single_seg = seg == nullptr ||
                              seg_cursor + 1 >= parent.size() ||
                              parent[seg_cursor + 1].lo > win_b;
      if (single_seg) {
        // Same recurrence as the kernel contract (absorbing in kNegInf,
        // positivity bound), reading parent cells in place.
        const int64_t slo = seg != nullptr ? seg->lo : 0;
        const int64_t shi = seg != nullptr ? seg->hi() : -1;
        const int32_t* prof = ctx->profile->data() +
                              static_cast<size_t>(c) * static_cast<size_t>(m);
        int32_t gb_prev = kNegInf;
        int32_t mu_prev = kNegInf;
        for (int64_t col = win_a; col <= win_b; ++col) {
          int32_t gb;
          if (col == win_a) {
            gb = chain.col == win_a - 1
                     ? std::max(chain.gb + ss, chain.mu + open_ext)
                     : kNegInf;
          } else {
            gb = std::max(gb_prev + ss, mu_prev + open_ext);
          }
          if (gb < kNegInf) gb = kNegInf;
          const bool in_m = col >= slo && col <= shi;
          const int32_t pm =
              in_m ? seg->m[static_cast<size_t>(col - slo)] : kNegInf;
          const int32_t pga =
              in_m ? seg->ga[static_cast<size_t>(col - slo)] : kNegInf;
          int32_t ga = std::max(pga + ss, pm + open_ext);
          if (ga < kNegInf) ga = kNegInf;
          const int32_t dm = col - 1 >= slo && col - 1 <= shi
                                 ? seg->m[static_cast<size_t>(col - 1 - slo)]
                                 : kNegInf;
          const int32_t diag = dm == kNegInf ? kNegInf : dm + prof[col - 1];
          const int32_t mu = std::max(std::max(diag, ga), gb);
          if (mu > 0) {
            builder.Append(col, mu, ga);
            if (mu >= threshold) {
              hits->emplace_back(static_cast<int32_t>(col), mu);
            }
          } else {
            builder.Append(col, kNegInf, ga);
          }
          gb_prev = gb;
          mu_prev = mu;
        }
        *cells += static_cast<uint64_t>(len);
        chain = {win_b, gb_prev, mu_prev};
        continue;
      }
    }
    const size_t slen = static_cast<size_t>(len);
    int32_t *prev_m, *prev_ga, *diag_m, *out_m, *out_ga;
    if (len <= kStackWin) {
      prev_m = sb_prev_m;
      prev_ga = sb_prev_ga;
      diag_m = sb_diag;
      out_m = sb_out_m;
      out_ga = sb_out_ga;
      for (int64_t k = 0; k < len; ++k) {
        prev_m[k] = kNegInf;
        prev_ga[k] = kNegInf;
        diag_m[k] = kNegInf;
      }
    } else {
      ctx->prev_m.assign(slen, kNegInf);
      ctx->prev_ga.assign(slen, kNegInf);
      ctx->diag_m.assign(slen, kNegInf);
      ctx->out_m.resize(slen);
      ctx->out_ga.resize(slen);
      prev_m = ctx->prev_m.data();
      prev_ga = ctx->prev_ga.data();
      diag_m = ctx->diag_m.data();
      out_m = ctx->out_m.data();
      out_ga = ctx->out_ga.data();
    }
    // Densify the parent row over [a-1, b]: same-column M/Ga and the
    // diagonal M, padding holes with kNegInf.
    while (seg_cursor < parent.size() &&
           parent[seg_cursor].hi() < win_a - 1) {
      ++seg_cursor;
    }
    for (size_t si = seg_cursor;
         si < parent.size() && parent[si].lo <= win_b; ++si) {
      const simd::DpRow& seg = parent[si];
      int64_t s = std::max(seg.lo, win_a);
      int64_t e = std::min(seg.hi(), win_b);
      for (int64_t j = s; j <= e; ++j) {
        prev_m[j - win_a] = seg.m[static_cast<size_t>(j - seg.lo)];
        prev_ga[j - win_a] = seg.ga[static_cast<size_t>(j - seg.lo)];
      }
      s = std::max(seg.lo, win_a - 1);
      e = std::min(seg.hi(), win_b - 1);
      for (int64_t j = s; j <= e; ++j) {
        diag_m[j + 1 - win_a] = seg.m[static_cast<size_t>(j - seg.lo)];
      }
    }

    simd::RowSpec spec;
    spec.prev_m = prev_m;
    spec.prev_ga = prev_ga;
    spec.prev_diag_m = diag_m;
    spec.delta = ctx->profile->data() +
                 static_cast<size_t>(c) * static_cast<size_t>(m) +
                 static_cast<size_t>(win_a - 1);
    spec.out_m = out_m;
    spec.out_ga = out_ga;
    spec.out_gb = nullptr;  // Gb never crosses rows in BWT-SW
    spec.len = len;
    spec.gap_extend = ss;
    spec.gap_open_extend = open_ext;
    spec.gb_init = chain.col == win_a - 1
                       ? std::max(chain.gb + ss, chain.mu + open_ext)
                       : kNegInf;
    spec.bound_base = 0;  // the positivity rule
    spec.bound0 = kNegInf;
    spec.bound_step = 0;
    simd::RowStats stats;
    simd::ComputeRowAuto(spec, &stats);
    *cells += static_cast<uint64_t>(len);

    if (stats.first_alive >= 0) {
      for (int64_t k = stats.first_alive; k <= stats.last_alive; ++k) {
        int32_t mv = out_m[k];
        if (mv != kNegInf && mv >= threshold) {
          hits->emplace_back(static_cast<int32_t>(win_a + k), mv);
        }
      }
      builder.AppendDense(win_a, out_m, out_ga, stats.first_alive,
                          stats.last_alive);
    }
    chain = {win_b, stats.gb_last, stats.mu_last};
  }
  spill(m + 1);
  builder.Flush();
}

ResultCollector BwtSw::Run(const Sequence& query, const ScoringScheme& scheme,
                           int32_t threshold, DpCounters* counters,
                           const std::vector<int32_t>* profile,
                           const CancelToken* cancel) const {
  ResultCollector results;
  CancelScan scan(cancel);
  const int64_t m = static_cast<int64_t>(query.size());
  if (m == 0 || n_ == 0) return results;
  // Positivity alone bounds useful depth by Lmax at H=1 (any deeper prefix
  // cannot hold a positive score); BWT-SW does not use H for pruning.
  const int64_t lmax = LengthUpperBound(scheme, m, 1);
  const int sigma = query.sigma();

  RowCtx ctx;
  ctx.scheme = scheme;
  ctx.threshold = threshold;
  ctx.m = m;
  if (profile != nullptr) {
    ctx.profile = profile;
  } else {
    ctx.profile_storage = BuildDeltaProfile(scheme, query);
    ctx.profile = &ctx.profile_storage;
  }

  struct Frame {
    SaRange range;
    std::vector<SaRange> children;  // all sigma child ranges, one ExtendAll
    std::vector<simd::DpRow> row;
    std::vector<int64_t> ends;  // lazily located text end positions
    bool located = false;
    Symbol next_child = 0;
  };

  // Conceptual row 0: M(0, j) = 0 for every column, including j=0 so the
  // first diagonal step can start anywhere. These cells are alive by
  // definition (paper init) even though the positivity rule would drop
  // them at deeper rows.
  std::vector<simd::DpRow> root_row(1);
  root_row[0].lo = 0;
  root_row[0].m.assign(static_cast<size_t>(m) + 1, 0);
  root_row[0].ga.assign(static_cast<size_t>(m) + 1, kNegInf);

  std::vector<Frame> stack;
  stack.push_back(
      Frame{index_.FullRange(), {}, std::move(root_row), {}, false, 0});

  std::vector<std::pair<int32_t, int32_t>> hits;
  std::vector<simd::DpRow> child_row;
  auto recycle = [&ctx](Frame* frame) {
    for (simd::DpRow& seg : frame->row) ctx.pool.push_back(std::move(seg));
  };
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child >= sigma) {
      recycle(&top);
      stack.pop_back();
      continue;
    }
    int64_t depth = static_cast<int64_t>(stack.size());  // child depth
    if (top.next_child == 0) {
      // First visit: every child sits at the same depth, so the length cap
      // prunes the whole frame at once, and one batched ExtendAll replaces
      // sigma single-symbol Extend calls.
      if (depth > lmax) {
        recycle(&top);
        stack.pop_back();
        continue;
      }
      // ExtendAll fills one entry per *index* symbol; size for whichever
      // alphabet is wider so a query/index mismatch cannot overflow.
      top.children.assign(
          static_cast<size_t>(std::max(sigma, index_.sigma())), SaRange{});
      if (top.range.Count() == 1) {
        // Singleton fast path: one access + one rank instead of two
        // all-symbol boundary ranks (deep nodes are singleton chains).
        Symbol only = 0;
        SaRange child;
        if (index_.ExtendSingleton(top.range.lo, &only, &child)) {
          top.children[only] = child;
        }
        if (counters) ++counters->fm_extends;
      } else {
        index_.ExtendAll(top.range, top.children.data());
        if (counters) ++counters->fm_extend_alls;
      }
    }
    Symbol c = top.next_child++;
    SaRange child_range = top.children[c];
    if (child_range.Empty()) continue;

    hits.clear();
    uint64_t cells = 0;
    ComputeChildRow(&ctx, top.row, c, &child_row, &hits, &cells);
    if (counters) {
      counters->cells_cost3 += cells;
      ++counters->trie_nodes_visited;
    }
    // Cooperative abort, weighted by the cells just computed: the results
    // gathered so far stay a valid subset of the full answer.
    if (scan.Tick(1 + static_cast<int64_t>(cells))) break;
    if (child_row.empty()) continue;

    Frame child{child_range, {}, std::move(child_row), {}, false, 0};
    child_row.clear();
    if (!hits.empty()) {
      // Locate once per node: end position of X in T is n-1-p where p is
      // the start of X⁻¹ in reverse(T).
      child.ends = index_.Locate(
          child_range, counters ? &counters->fm_lf_steps : nullptr);
      for (int64_t& p : child.ends) p = n_ - 1 - p;
      child.located = true;
      for (const auto& [col, score] : hits) {
        for (int64_t end : child.ends) {
          results.Add(end, col - 1, score, end - depth + 1);
        }
      }
    }
    stack.push_back(std::move(child));
  }
  return results;
}

}  // namespace alae
