#ifndef ALAE_BASELINE_BLAST_SEED_H_
#define ALAE_BASELINE_BLAST_SEED_H_

#include <cstdint>
#include <vector>

#include "src/index/qgram_index.h"
#include "src/io/sequence.h"

namespace alae {

// A word hit: identical word of length w at text position t and query
// position p (diagonal d = t - p).
struct SeedHit {
  int64_t text_pos = 0;
  int64_t query_pos = 0;
  int64_t Diagonal() const { return text_pos - query_pos; }
};

// BLAST-style word seeding (paper §1: BLAST "decomposes an input query into
// a set of grams and identifies matches against the database").
//
// The query's words are indexed with QGramIndex; the text is scanned once
// with a rolling key. With `two_hit` set, a hit is emitted only when two
// non-overlapping word hits fall on the same diagonal within `window`
// positions (the Gapped-BLAST two-hit heuristic), halving extension work at
// a small sensitivity cost.
class WordSeeder {
 public:
  WordSeeder(const Sequence& query, int word_size, bool two_hit = false,
             int64_t window = 40);

  // Streams over the text and returns all (filtered) seed hits in text
  // order.
  std::vector<SeedHit> Scan(const Sequence& text) const;

  int word_size() const { return word_size_; }

 private:
  const Sequence& query_;
  int word_size_;
  bool two_hit_;
  int64_t window_;
  QGramIndex words_;
};

}  // namespace alae

#endif  // ALAE_BASELINE_BLAST_SEED_H_
