#ifndef ALAE_BASELINE_BLAST_BLAST_H_
#define ALAE_BASELINE_BLAST_BLAST_H_

#include <cstdint>

#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/io/sequence.h"

namespace alae {

class WordSeeder;

struct BlastOptions {
  // Word size; <= 0 picks the classical default (11 for DNA, 3 for
  // protein), capped by the query length.
  int word_size = 0;
  bool two_hit = false;
  int32_t x_drop_ungapped = 16;
  int32_t x_drop_gapped = 30;
  // Ungapped score that triggers a gapped extension; effectively
  // min(gap_trigger, threshold).
  int32_t gap_trigger = 18;
};

struct BlastRunStats {
  uint64_t seeds = 0;
  uint64_t ungapped_extensions = 0;
  uint64_t gapped_extensions = 0;
  uint64_t dp_cells = 0;
};

// Seed-and-extend heuristic in the shape of BLAST [1,2] (paper §1/§2.4):
// word seeding, ungapped X-drop extension, then gapped banded X-drop
// around segments above the trigger. Heuristic: alignments whose seeds are
// never generated (no exact word) or never reach the trigger are missed,
// which is exactly the accuracy gap the paper's Tables 2-3 show versus the
// exact engines. Runtime is dominated by seeding + extensions, so it
// barely depends on the scoring scheme (Fig 9's flat BLAST curve).
class Blast {
 public:
  // `seeder` may supply a prebuilt query word index (the query plan's
  // copy, shared across runs; it must have been built from `query` with
  // ResolveWordSize(options, query)); when null one is built on the fly.
  static ResultCollector Run(const Sequence& text, const Sequence& query,
                             const ScoringScheme& scheme, int32_t threshold,
                             const BlastOptions& options = {},
                             BlastRunStats* stats = nullptr,
                             const WordSeeder* seeder = nullptr);

  // The effective seeding word size for a query: the classical default
  // (11 for DNA, 3 for protein) unless overridden, capped by the query
  // length. The one rule shared by Run and query-plan compilation.
  static int ResolveWordSize(const BlastOptions& options,
                             const Sequence& query);
};

}  // namespace alae

#endif  // ALAE_BASELINE_BLAST_BLAST_H_
