#ifndef ALAE_BASELINE_BLAST_EXTEND_H_
#define ALAE_BASELINE_BLAST_EXTEND_H_

#include <cstdint>

#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/baseline/blast/seed.h"
#include "src/io/sequence.h"

namespace alae {

// Result of an ungapped X-drop extension around a seed.
struct UngappedSegment {
  int64_t text_begin = 0, text_end = 0;    // [begin, end) in T
  int64_t query_begin = 0, query_end = 0;  // [begin, end) in P
  int32_t score = 0;
};

// Extends a word hit along its diagonal in both directions, dropping out
// when the running score falls `x_drop` below the best seen (the classic
// BLAST ungapped extension).
UngappedSegment UngappedExtend(const Sequence& text, const Sequence& query,
                               const SeedHit& seed, int word_size,
                               const ScoringScheme& scheme, int32_t x_drop);

// Gapped X-drop extension (Gapped BLAST): affine-gap DP grown from an
// anchor cell in both directions, abandoning any cell whose score falls
// more than `x_drop` below the best score of the pass. Every explored end
// pair with total score >= threshold is recorded into `results` (so the
// output unit matches the exact engines' A(i,j) hits). Returns the best
// total score.
//
// `cells` (optional) accumulates the number of DP cells evaluated.
int32_t GappedExtend(const Sequence& text, const Sequence& query,
                     int64_t anchor_text, int64_t anchor_query,
                     const ScoringScheme& scheme, int32_t x_drop,
                     int32_t threshold, ResultCollector* results,
                     uint64_t* cells = nullptr);

}  // namespace alae

#endif  // ALAE_BASELINE_BLAST_EXTEND_H_
