#include "src/baseline/blast/blast.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "src/baseline/blast/extend.h"
#include "src/baseline/blast/seed.h"

namespace alae {

int Blast::ResolveWordSize(const BlastOptions& options,
                           const Sequence& query) {
  int word = options.word_size;
  if (word <= 0) {
    word = query.alphabet().kind() == AlphabetKind::kDna ? 11 : 3;
  }
  return std::min<int>(word, static_cast<int>(query.size()));
}

ResultCollector Blast::Run(const Sequence& text, const Sequence& query,
                           const ScoringScheme& scheme, int32_t threshold,
                           const BlastOptions& options, BlastRunStats* stats,
                           const WordSeeder* seeder) {
  ResultCollector results;
  const int word = seeder != nullptr ? seeder->word_size()
                                     : ResolveWordSize(options, query);
  if (word <= 0) return results;

  std::optional<WordSeeder> local;
  if (seeder == nullptr) {
    local.emplace(query, word, options.two_hit);
    seeder = &*local;
  }
  std::vector<SeedHit> seeds = seeder->Scan(text);
  if (stats) stats->seeds += seeds.size();

  const int32_t trigger = std::min(options.gap_trigger, threshold);
  // Per-diagonal high-water mark: a seed already inside an extended
  // segment on its diagonal is skipped (BLAST's hit-culling).
  std::unordered_map<int64_t, int64_t> covered_until;

  for (const SeedHit& seed : seeds) {
    int64_t diag = seed.Diagonal();
    auto it = covered_until.find(diag);
    if (it != covered_until.end() && seed.text_pos < it->second) continue;

    UngappedSegment seg =
        UngappedExtend(text, query, seed, word, scheme,
                       options.x_drop_ungapped);
    if (stats) {
      ++stats->ungapped_extensions;
      stats->dp_cells += static_cast<uint64_t>(seg.text_end - seg.text_begin);
    }
    covered_until[diag] = seg.text_end;
    if (seg.score < trigger) continue;

    // Anchor the gapped pass at the middle of the ungapped segment.
    int64_t anchor_t = (seg.text_begin + seg.text_end) / 2;
    int64_t anchor_q = (seg.query_begin + seg.query_end) / 2;
    if (stats) ++stats->gapped_extensions;
    uint64_t cells = 0;
    GappedExtend(text, query, anchor_t, anchor_q, scheme,
                 options.x_drop_gapped, threshold, &results, &cells);
    if (stats) stats->dp_cells += cells;
  }
  return results;
}

}  // namespace alae
