#include "src/baseline/blast/extend.h"

#include <algorithm>
#include <vector>

#include "src/align/dp.h"

namespace alae {
namespace {

// One direction of gapped X-drop DP. dir = +1 extends right/down from
// (t0, q0) inclusive; dir = -1 extends left/up from (t0, q0) inclusive.
// When `results` is non-null (forward pass), every cell with
// base_score + h >= threshold is recorded as an end pair.
int32_t XDropPass(const Sequence& text, const Sequence& query, int64_t t0,
                  int64_t q0, int dir, const ScoringScheme& scheme,
                  int32_t x_drop, int32_t base_score, int32_t threshold,
                  ResultCollector* results, uint64_t* cells) {
  const int64_t n = static_cast<int64_t>(text.size());
  const int64_t m = static_cast<int64_t>(query.size());
  const int64_t imax = dir > 0 ? n - t0 : t0 + 1;
  const int64_t jmax = dir > 0 ? m - q0 : q0 + 1;
  const int32_t open_ext = scheme.sg + scheme.ss;
  if (imax <= 0 || jmax <= 0) return 0;

  int32_t best = 0;
  // Row storage: columns [lo, lo + h.size()).
  int64_t prev_lo = 0;
  std::vector<int32_t> h_prev = {0};
  std::vector<int32_t> e_prev = {kNegInf};

  for (int64_t i = 1; i <= imax; ++i) {
    Symbol tc = text[static_cast<size_t>(t0 + dir * (i - 1))];
    int64_t prev_hi = prev_lo + static_cast<int64_t>(h_prev.size()) - 1;
    int64_t lo = prev_lo;
    std::vector<int32_t> h_cur, e_cur;
    h_cur.reserve(h_prev.size() + 4);
    e_cur.reserve(h_prev.size() + 4);
    int32_t f = kNegInf;
    int32_t drop_floor = best - x_drop;
    for (int64_t j = lo;; ++j) {
      if (j > jmax) break;
      bool beyond = j > prev_hi + 1;
      if (beyond && f + scheme.ss <= drop_floor &&
          (h_cur.empty() || h_cur.back() + open_ext <= drop_floor)) {
        break;
      }
      int32_t hp_diag =
          (j - 1 >= prev_lo && j - 1 <= prev_hi)
              ? h_prev[static_cast<size_t>(j - 1 - prev_lo)]
              : kNegInf;
      int32_t hp_j = (j >= prev_lo && j <= prev_hi)
                         ? h_prev[static_cast<size_t>(j - prev_lo)]
                         : kNegInf;
      int32_t ep_j = (j >= prev_lo && j <= prev_hi)
                         ? e_prev[static_cast<size_t>(j - prev_lo)]
                         : kNegInf;
      int32_t e = std::max(ep_j + scheme.ss, hp_j + open_ext);
      f = std::max(f + scheme.ss,
                   (!h_cur.empty() ? h_cur.back() + open_ext : kNegInf));
      int32_t diag = kNegInf;
      if (j >= 1) {
        // The first row/column only reach via gaps.
        if (i == 1 && j == 1) {
          diag = 0;
        } else if (j - 1 >= prev_lo && j - 1 <= prev_hi) {
          diag = hp_diag;
        }
        if (diag != kNegInf) {
          Symbol qc = query[static_cast<size_t>(q0 + dir * (j - 1))];
          diag += scheme.Delta(tc, qc);
        }
      } else {
        // Column 0: pure leading gap in the query direction.
        e = std::max(e, hp_j + open_ext);
      }
      int32_t h = std::max({diag, e, f});
      if (cells) ++*cells;
      if (h <= drop_floor) h = kNegInf;
      h_cur.push_back(h);
      e_cur.push_back(e <= drop_floor ? kNegInf : e);
      if (h > best) best = h;
      if (h != kNegInf && results != nullptr && j >= 1 &&
          base_score + h >= threshold) {
        results->Add(t0 + (i - 1), q0 + (j - 1), base_score + h);
      }
    }
    // Trim dead edges to keep the band tight.
    size_t front = 0;
    while (front < h_cur.size() && h_cur[front] == kNegInf &&
           e_cur[front] == kNegInf) {
      ++front;
    }
    size_t back = h_cur.size();
    while (back > front && h_cur[back - 1] == kNegInf &&
           e_cur[back - 1] == kNegInf) {
      --back;
    }
    if (back <= front) break;  // Row died: X-drop termination.
    prev_lo = lo + static_cast<int64_t>(front);
    h_prev.assign(h_cur.begin() + static_cast<ptrdiff_t>(front),
                  h_cur.begin() + static_cast<ptrdiff_t>(back));
    e_prev.assign(e_cur.begin() + static_cast<ptrdiff_t>(front),
                  e_cur.begin() + static_cast<ptrdiff_t>(back));
  }
  return best;
}

}  // namespace

UngappedSegment UngappedExtend(const Sequence& text, const Sequence& query,
                               const SeedHit& seed, int word_size,
                               const ScoringScheme& scheme, int32_t x_drop) {
  const int64_t n = static_cast<int64_t>(text.size());
  const int64_t m = static_cast<int64_t>(query.size());
  UngappedSegment seg;
  // Score of the word itself (all matches).
  int32_t score = scheme.sa * word_size;
  // Extend right.
  int32_t best = score, run = score;
  int64_t tr = seed.text_pos + word_size, qr = seed.query_pos + word_size;
  int64_t best_tr = tr, best_qr = qr;
  while (tr < n && qr < m) {
    run += scheme.Delta(text[static_cast<size_t>(tr)],
                        query[static_cast<size_t>(qr)]);
    ++tr;
    ++qr;
    if (run > best) {
      best = run;
      best_tr = tr;
      best_qr = qr;
    }
    if (run <= best - x_drop) break;
  }
  // Extend left.
  int32_t best2 = best;
  run = best;
  int64_t tl = seed.text_pos, ql = seed.query_pos;
  int64_t best_tl = tl, best_ql = ql;
  while (tl > 0 && ql > 0) {
    run += scheme.Delta(text[static_cast<size_t>(tl - 1)],
                        query[static_cast<size_t>(ql - 1)]);
    --tl;
    --ql;
    if (run > best2) {
      best2 = run;
      best_tl = tl;
      best_ql = ql;
    }
    if (run <= best2 - x_drop) break;
  }
  seg.score = best2;
  seg.text_begin = best_tl;
  seg.query_begin = best_ql;
  seg.text_end = best_tr;
  seg.query_end = best_qr;
  return seg;
}

int32_t GappedExtend(const Sequence& text, const Sequence& query,
                     int64_t anchor_text, int64_t anchor_query,
                     const ScoringScheme& scheme, int32_t x_drop,
                     int32_t threshold, ResultCollector* results,
                     uint64_t* cells) {
  // Backward half first (no recording), then forward with the backward
  // best as base so recorded totals are whole-alignment scores.
  int32_t back = 0;
  if (anchor_text > 0 && anchor_query > 0) {
    back = XDropPass(text, query, anchor_text - 1, anchor_query - 1, -1,
                     scheme, x_drop, 0, threshold, nullptr, cells);
  }
  int32_t fwd = XDropPass(text, query, anchor_text, anchor_query, +1, scheme,
                          x_drop, back, threshold, results, cells);
  return back + fwd;
}

}  // namespace alae
