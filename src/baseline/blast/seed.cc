#include "src/baseline/blast/seed.h"

#include <unordered_map>

namespace alae {

WordSeeder::WordSeeder(const Sequence& query, int word_size, bool two_hit,
                       int64_t window)
    : query_(query),
      word_size_(word_size),
      two_hit_(two_hit),
      window_(window),
      words_(query, word_size) {}

std::vector<SeedHit> WordSeeder::Scan(const Sequence& text) const {
  std::vector<SeedHit> hits;
  int64_t n = static_cast<int64_t>(text.size());
  if (n < word_size_ || static_cast<int64_t>(query_.size()) < word_size_) {
    return hits;
  }
  int sigma = text.sigma();
  uint64_t key = 0;
  uint64_t msd = 1;
  for (int i = 0; i < word_size_ - 1; ++i) msd *= static_cast<uint64_t>(sigma);

  // For two-hit mode: last seen word-hit query position per diagonal.
  std::unordered_map<int64_t, int64_t> last_on_diag;

  for (int64_t t = 0; t + word_size_ <= n; ++t) {
    if (t == 0) {
      for (int i = 0; i < word_size_; ++i) {
        key = key * static_cast<uint64_t>(sigma) + text[static_cast<size_t>(i)];
      }
    } else {
      key = (key - static_cast<uint64_t>(text[static_cast<size_t>(t - 1)]) * msd) *
                static_cast<uint64_t>(sigma) +
            text[static_cast<size_t>(t + word_size_ - 1)];
    }
    for (int32_t qpos : words_.Occurrences(key)) {
      if (!two_hit_) {
        hits.push_back({t, qpos});
        continue;
      }
      int64_t diag = t - qpos;
      auto [it, inserted] = last_on_diag.try_emplace(diag, qpos);
      if (inserted) continue;
      int64_t distance = qpos - it->second;
      if (distance < word_size_) continue;  // overlapping: keep the anchor
      if (distance <= window_) hits.push_back({t, qpos});
      it->second = qpos;
    }
  }
  return hits;
}

}  // namespace alae
