#ifndef ALAE_BASELINE_BWT_SW_H_
#define ALAE_BASELINE_BWT_SW_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/align/simd_dp.h"
#include "src/index/fm_index.h"
#include "src/io/sequence.h"
#include "src/util/cancel.h"

namespace alae {

// BWT-SW (Lam et al. 2008; paper §2.4): exact local alignment by DFS over
// the suffix trie of T emulated with an FM-index built on reverse(T)
// (appending a character to the trie path X is one backward-search step for
// c·X⁻¹, paper §5).
//
// At trie depth i the engine holds the DP row as a short list of dense SoA
// segments over 1-based query columns, each fed to the shared SIMD row
// kernel (src/align/simd_dp.h): BWT-SW's early termination ignores all
// non-positive scores (a non-positive prefix alignment is dominated by
// restarting at a deeper suffix, which the trie traversal explores
// separately), and prunes the subtree when the row becomes empty. Segments
// split where more than kSplitGap consecutive columns are dead, so the
// vector kernel sweeps dense islands while far-apart islands stay sparse.
// Depth is additionally capped at the positivity bound Lmax(H=1), which is
// implied by the pruning rule and keeps worst-case paths finite.
//
// Every evaluated cell computes M, Ga and Gb, i.e. costs 3 in the paper's
// Table 4 accounting.
class BwtSw {
 public:
  // `rev_index` must be built over reverse(T). `text_len` = |T|.
  BwtSw(const FmIndex& rev_index, int64_t text_len);

  // Reports every end pair with best score >= threshold (threshold >= 1).
  // `profile` may supply a precompiled BuildDeltaProfile(scheme, query)
  // (the query plan's copy, shared across runs); when null it is built on
  // the fly. A fired `cancel` token (polled every ~4k DP cells) abandons
  // the DFS; the collector then holds a correct subset of the answer —
  // callers must check the token to distinguish partial from complete.
  ResultCollector Run(const Sequence& query, const ScoringScheme& scheme,
                      int32_t threshold, DpCounters* counters = nullptr,
                      const std::vector<int32_t>* profile = nullptr,
                      const CancelToken* cancel = nullptr) const;

 private:
  // A dead run longer than this closes the current row segment; shorter
  // holes are carried inside a segment and recomputed vectorised, which is
  // cheaper than the bookkeeping of splitting (two AVX2 blocks).
  static constexpr int64_t kSplitGap = 8;

  // Per-query state shared by every child-row computation: the
  // substitution profile, the densified kernel scratch buffers, and the
  // recycled segment buffers (the DFS would otherwise pay two heap
  // allocations per emitted row segment).
  struct RowCtx {
    ScoringScheme scheme;
    int32_t threshold = 1;
    int64_t m = 0;
    // sigma x m, Delta(c, P[j-1]); borrowed from the caller's query plan
    // when one exists, else points at `profile_storage`.
    const std::vector<int32_t>* profile = nullptr;
    std::vector<int32_t> profile_storage;
    std::vector<int32_t> prev_m, prev_ga, diag_m, out_m, out_ga;  // scratch
    std::vector<std::pair<int64_t, int64_t>> wins;  // coalesced windows
    std::vector<simd::DpRow> pool;  // retired segments for reuse
  };

  // Computes the child row for appending `c` into `*child`, appending hits
  // >= threshold to `hits` as (1-based column, score) pairs and counting
  // every evaluated cell into `*cells`.
  static void ComputeChildRow(RowCtx* ctx,
                              const std::vector<simd::DpRow>& parent,
                              Symbol c, std::vector<simd::DpRow>* child,
                              std::vector<std::pair<int32_t, int32_t>>* hits,
                              uint64_t* cells);

  const FmIndex& index_;
  int64_t n_;
};

}  // namespace alae

#endif  // ALAE_BASELINE_BWT_SW_H_
