#ifndef ALAE_BASELINE_BWT_SW_H_
#define ALAE_BASELINE_BWT_SW_H_

#include <cstdint>
#include <vector>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/index/fm_index.h"
#include "src/io/sequence.h"

namespace alae {

// BWT-SW (Lam et al. 2008; paper §2.4): exact local alignment by DFS over
// the suffix trie of T emulated with an FM-index built on reverse(T)
// (appending a character to the trie path X is one backward-search step for
// c·X⁻¹, paper §5).
//
// At trie depth i the engine holds the sparse DP row
// {(j, M(i,j), Ga(i,j)) : M(i,j) > 0}: BWT-SW's early termination ignores
// all non-positive scores (a non-positive prefix alignment is dominated by
// restarting at a deeper suffix, which the trie traversal explores
// separately), and prunes the subtree when the row becomes empty. Depth is
// additionally capped at the positivity bound Lmax(H=1), which is implied
// by the pruning rule and keeps worst-case paths finite.
//
// Every evaluated cell computes M, Ga and Gb, i.e. costs 3 in the paper's
// Table 4 accounting.
class BwtSw {
 public:
  // `rev_index` must be built over reverse(T). `text_len` = |T|.
  BwtSw(const FmIndex& rev_index, int64_t text_len);

  // Reports every end pair with best score >= threshold (threshold >= 1).
  ResultCollector Run(const Sequence& query, const ScoringScheme& scheme,
                      int32_t threshold, DpCounters* counters = nullptr) const;

 private:
  struct Col {
    int32_t j;   // 1-based query column
    int32_t m;   // M(i, j) > 0
    int32_t ga;  // Ga(i, j), kNegInf when dead
  };

  // Computes the child row for appending `c`, appending hits >= threshold
  // to `hits` as (column, score) pairs.
  static std::vector<Col> ComputeChildRow(
      const std::vector<Col>& parent, Symbol c, const Sequence& query,
      const ScoringScheme& scheme, int32_t threshold,
      std::vector<std::pair<int32_t, int32_t>>* hits, uint64_t* cells);

  const FmIndex& index_;
  int64_t n_;
};

}  // namespace alae

#endif  // ALAE_BASELINE_BWT_SW_H_
