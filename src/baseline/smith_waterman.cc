#include "src/baseline/smith_waterman.h"

#include <algorithm>
#include <vector>

#include "src/align/dp.h"

namespace alae {

ResultCollector SmithWaterman::Run(const Sequence& text, const Sequence& query,
                                   const ScoringScheme& scheme,
                                   int32_t threshold) {
  ResultCollector results;
  Stream(text, query, scheme, threshold,
         [&](int64_t text_end, int64_t query_end, int32_t score) {
           results.Add(text_end, query_end, score);
           return true;
         });
  return results;
}

uint64_t SmithWaterman::Stream(
    const Sequence& text, const Sequence& query, const ScoringScheme& scheme,
    int32_t threshold,
    const std::function<bool(int64_t, int64_t, int32_t)>& emit,
    const std::vector<int32_t>* profile, const CancelToken* cancel) {
  int64_t n = static_cast<int64_t>(text.size());
  int64_t m = static_cast<int64_t>(query.size());
  if (m == 0) return 0;
  CancelScan scan(cancel);
  std::vector<int32_t> profile_storage;
  if (profile == nullptr) {
    profile_storage = BuildDeltaProfile(scheme, query);
    profile = &profile_storage;
  }
  std::vector<int32_t> h_prev(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> h_cur(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> e(static_cast<size_t>(m + 1), kNegInf);
  uint64_t cells = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (scan.Tick(m)) return cells;  // per-row poll, weighted by row width
    int32_t f = kNegInf;
    h_cur[0] = 0;
    const int32_t* delta_row =
        profile->data() +
        static_cast<size_t>(text[static_cast<size_t>(i - 1)]) *
            static_cast<size_t>(m);
    for (int64_t j = 1; j <= m; ++j) {
      size_t sj = static_cast<size_t>(j);
      e[sj] = std::max(e[sj] + scheme.ss, h_prev[sj] + scheme.sg + scheme.ss);
      f = std::max(f + scheme.ss, h_cur[sj - 1] + scheme.sg + scheme.ss);
      int32_t diag = h_prev[sj - 1] + delta_row[sj - 1];
      int32_t h = std::max({0, diag, e[sj], f});
      h_cur[sj] = h;
      ++cells;
      if (h >= threshold) {
        if (!emit(i - 1, j - 1, h)) return cells;
      }
    }
    std::swap(h_prev, h_cur);
  }
  return cells;
}

}  // namespace alae
