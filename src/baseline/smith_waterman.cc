#include "src/baseline/smith_waterman.h"

#include <algorithm>
#include <vector>

#include "src/align/dp.h"

namespace alae {

ResultCollector SmithWaterman::Run(const Sequence& text, const Sequence& query,
                                   const ScoringScheme& scheme,
                                   int32_t threshold) {
  ResultCollector results;
  int64_t n = static_cast<int64_t>(text.size());
  int64_t m = static_cast<int64_t>(query.size());
  std::vector<int32_t> h_prev(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> h_cur(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> e(static_cast<size_t>(m + 1), kNegInf);
  for (int64_t i = 1; i <= n; ++i) {
    int32_t f = kNegInf;
    h_cur[0] = 0;
    for (int64_t j = 1; j <= m; ++j) {
      size_t sj = static_cast<size_t>(j);
      e[sj] = std::max(e[sj] + scheme.ss, h_prev[sj] + scheme.sg + scheme.ss);
      f = std::max(f + scheme.ss, h_cur[sj - 1] + scheme.sg + scheme.ss);
      int32_t diag = h_prev[sj - 1] + scheme.Delta(text[static_cast<size_t>(i - 1)],
                                                   query[static_cast<size_t>(j - 1)]);
      int32_t h = std::max({0, diag, e[sj], f});
      h_cur[sj] = h;
      if (h >= threshold) {
        results.Add(i - 1, j - 1, h);
      }
    }
    std::swap(h_prev, h_cur);
  }
  return results;
}

}  // namespace alae
