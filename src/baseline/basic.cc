#include "src/baseline/basic.h"

#include <algorithm>
#include <vector>

#include "src/align/dp.h"

namespace alae {
namespace {

struct Row {
  std::vector<int32_t> m, ga;
};

class BasicDfs {
 public:
  BasicDfs(const SuffixTrie& trie, const Sequence& text, const Sequence& query,
           const ScoringScheme& scheme, int32_t threshold)
      : trie_(trie),
        text_(text),
        query_(query),
        scheme_(scheme),
        threshold_(threshold),
        m_(static_cast<int64_t>(query.size())),
        lmax_(LengthUpperBound(scheme, m_, threshold)) {}

  ResultCollector Run() {
    // Row 0: M(0,j) = 0, Ga(0,j) = -inf.
    Row row0;
    row0.m.assign(static_cast<size_t>(m_ + 1), 0);
    row0.ga.assign(static_cast<size_t>(m_ + 1), kNegInf);
    rows_.push_back(std::move(row0));
    Visit(SuffixTrie::kRoot, 0);
    return std::move(results_);
  }

 private:
  void Visit(int32_t node, int64_t depth) {
    if (depth >= lmax_) return;
    for (int c = 0; c < trie_.sigma(); ++c) {
      int32_t child = trie_.Child(node, static_cast<Symbol>(c));
      if (child < 0) continue;
      PushRow(static_cast<Symbol>(c), depth + 1, child);
      Visit(child, depth + 1);
      rows_.pop_back();
    }
  }

  void PushRow(Symbol x_char, int64_t depth, int32_t node) {
    const Row& prev = rows_.back();
    Row cur;
    cur.m.assign(static_cast<size_t>(m_ + 1), kNegInf);
    cur.ga.assign(static_cast<size_t>(m_ + 1), kNegInf);
    cur.m[0] = scheme_.sg + static_cast<int32_t>(depth) * scheme_.ss;
    int32_t gb = kNegInf;
    for (int64_t j = 1; j <= m_; ++j) {
      size_t sj = static_cast<size_t>(j);
      int32_t ga = std::max(prev.ga[sj] + scheme_.ss,
                            prev.m[sj] + scheme_.sg + scheme_.ss);
      gb = std::max(gb + scheme_.ss, cur.m[sj - 1] + scheme_.sg + scheme_.ss);
      int32_t diag = prev.m[sj - 1] +
                     scheme_.Delta(x_char, query_[static_cast<size_t>(j - 1)]);
      cur.ga[sj] = ga;
      cur.m[sj] = std::max({diag, ga, gb});
      if (cur.m[sj] >= threshold_) {
        for (int32_t start : trie_.Positions(node)) {
          results_.Add(start + depth - 1, j - 1, cur.m[sj], start);
        }
      }
    }
    rows_.push_back(std::move(cur));
  }

  const SuffixTrie& trie_;
  const Sequence& text_;
  const Sequence& query_;
  const ScoringScheme& scheme_;
  int32_t threshold_;
  int64_t m_;
  int64_t lmax_;
  std::vector<Row> rows_;
  ResultCollector results_;
};

}  // namespace

ResultCollector BasicAligner::Run(const Sequence& text, const Sequence& query,
                                  const ScoringScheme& scheme,
                                  int32_t threshold) {
  SuffixTrie trie(text);
  BasicDfs dfs(trie, text, query, scheme, threshold);
  return dfs.Run();
}

}  // namespace alae
