#ifndef ALAE_BASELINE_BASIC_H_
#define ALAE_BASELINE_BASIC_H_

#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/index/suffix_trie.h"
#include "src/io/sequence.h"

namespace alae {

// Algorithm 1 (BASIC) of the paper: traverse the explicit suffix trie of T
// and run the full §2.2 dynamic programme for every root-to-node path, with
// no pruning beyond the depth cap of Theorem 1 (beyond Lmax no entry can
// reach the threshold, so the cap does not change the answer).
//
// The trie is O(n^2); this reference exists for correctness testing on
// tiny texts, exactly as the paper treats it ("we would not report the
// query performance for the BASIC algorithm", §7.1).
class BasicAligner {
 public:
  static ResultCollector Run(const Sequence& text, const Sequence& query,
                             const ScoringScheme& scheme, int32_t threshold);
};

}  // namespace alae

#endif  // ALAE_BASELINE_BASIC_H_
