#ifndef ALAE_BASELINE_SMITH_WATERMAN_H_
#define ALAE_BASELINE_SMITH_WATERMAN_H_

#include <functional>
#include <vector>

#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/io/sequence.h"
#include "src/util/cancel.h"

namespace alae {

// The Smith–Waterman / Gotoh algorithm (paper §1, [13]): the O(mn) exact
// reference. H(i,j) — the best local-alignment score ending at text
// position i and query position j — equals the paper's A(i,j).score, so
// every cell with H(i,j) >= threshold is reported. This is the ground
// truth the property tests compare BASIC, BWT-SW and ALAE against.
class SmithWaterman {
 public:
  // Reports every end pair with score >= threshold (threshold >= 1).
  // Memory is O(m); time is O(nm).
  static ResultCollector Run(const Sequence& text, const Sequence& query,
                             const ScoringScheme& scheme, int32_t threshold);

  // Streaming form: every cell is computed exactly once, so qualifying end
  // pairs can be emitted in (text_end, query_end) order with no collector.
  // `emit(text_end, query_end, score)` returns false to stop the scan.
  // Returns the number of DP cells actually computed (n*m on a full scan,
  // less when emit cancelled early). `profile` may supply a precompiled
  // BuildDeltaProfile(scheme, query) (the query plan's copy); when null
  // one is built on the fly — the inner loop always reads the profile
  // instead of branching on Delta.
  // A fired `cancel` token (polled once per text row) stops the scan
  // early, like an emit-false but initiated by the caller.
  static uint64_t Stream(
      const Sequence& text, const Sequence& query, const ScoringScheme& scheme,
      int32_t threshold,
      const std::function<bool(int64_t, int64_t, int32_t)>& emit,
      const std::vector<int32_t>* profile = nullptr,
      const CancelToken* cancel = nullptr);

  // Number of DP cells a full SW run computes (used in reports).
  static uint64_t CellCount(const Sequence& text, const Sequence& query) {
    return static_cast<uint64_t>(text.size()) * query.size();
  }
};

}  // namespace alae

#endif  // ALAE_BASELINE_SMITH_WATERMAN_H_
