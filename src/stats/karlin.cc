#include "src/stats/karlin.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/util/rng.h"

namespace alae {
namespace {

double RestrictedMgf(double lambda, double p_match, const ScoringScheme& s) {
  return p_match * std::exp(lambda * s.sa) +
         (1.0 - p_match) * std::exp(lambda * s.sb);
}

// Empirical K: generate pairs of random sequences, take the best ungapped
// segment score per pair, and invert the Gumbel tail
// P(M >= x) = 1 - exp(-K·m·n·e^{-λx}) at the median.
double CalibrateK(const ScoringScheme& scheme, int sigma, double lambda) {
  constexpr int kPairs = 48;
  constexpr int kLen = 256;
  Rng rng(0xA1AEULL * static_cast<uint64_t>(sigma) +
          static_cast<uint64_t>(scheme.sa * 1000003 + scheme.sb));
  std::vector<int32_t> best_scores;
  best_scores.reserve(kPairs);
  std::vector<Symbol> a(kLen), b(kLen);
  for (int p = 0; p < kPairs; ++p) {
    for (auto& c : a) c = static_cast<Symbol>(rng.Below(static_cast<uint64_t>(sigma)));
    for (auto& c : b) c = static_cast<Symbol>(rng.Below(static_cast<uint64_t>(sigma)));
    // Best ungapped segment score over all diagonals (O(len^2)).
    int32_t best = 0;
    for (int d = -(kLen - 1); d < kLen; ++d) {
      int32_t run = 0;
      int lo = std::max(0, d), hi = std::min(kLen, kLen + d);
      for (int i = lo; i < hi; ++i) {
        run += (a[static_cast<size_t>(i)] == b[static_cast<size_t>(i - d)])
                   ? scheme.sa
                   : scheme.sb;
        if (run < 0) run = 0;
        best = std::max(best, run);
      }
    }
    best_scores.push_back(best);
  }
  std::sort(best_scores.begin(), best_scores.end());
  double median = best_scores[best_scores.size() / 2];
  // At the median, 0.5 = 1 - exp(-K·m·n·e^{-λx})  =>
  // K = ln 2 / (m·n·e^{-λx}).
  double mn = static_cast<double>(kLen) * kLen;
  double k = std::log(2.0) / (mn * std::exp(-lambda * median));
  // Clamp into the physically sensible range.
  return std::min(1.0, std::max(1e-3, k));
}

}  // namespace

double KarlinStats::Lambda(const ScoringScheme& scheme, int sigma) {
  double p_match = 1.0 / sigma;
  // The expected score must be negative for lambda to exist; the schemes we
  // accept (sb < 0 < sa, sigma >= 4) always satisfy this for p=1/sigma when
  // (sigma-1)*|sb| > sa. Guard anyway.
  double mean = p_match * scheme.sa + (1 - p_match) * scheme.sb;
  if (mean >= 0) return 0.0;
  // f(lambda) = MGF - 1 is 0 at lambda=0, dips negative, then grows; find
  // the positive root by doubling + bisection.
  double hi = 1e-3;
  while (RestrictedMgf(hi, p_match, scheme) < 1.0) hi *= 2.0;
  double lo = hi / 2.0;
  // lo may still be in the dip; walk it down toward 0 if f(lo) >= 1 fails
  // is impossible since f is increasing past the dip; bisect on [0+, hi].
  lo = 1e-12;
  for (int it = 0; it < 200; ++it) {
    double mid = 0.5 * (lo + hi);
    if (RestrictedMgf(mid, p_match, scheme) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

KarlinParams KarlinStats::Compute(const ScoringScheme& scheme, int sigma) {
  static std::mutex mu;
  static std::map<std::tuple<int, int, int, int, int>, KarlinParams>* cache =
      new std::map<std::tuple<int, int, int, int, int>, KarlinParams>();
  auto key = std::make_tuple(scheme.sa, scheme.sb, scheme.sg, scheme.ss, sigma);
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  KarlinParams params;
  params.lambda = Lambda(scheme, sigma);
  params.k = CalibrateK(scheme, sigma, params.lambda);
  std::lock_guard<std::mutex> lock(mu);
  (*cache)[key] = params;
  return params;
}

int32_t KarlinStats::EValueToThreshold(double e_value, int64_t m, int64_t n,
                                       const ScoringScheme& scheme, int sigma) {
  KarlinParams params = Compute(scheme, sigma);
  double h = (std::log(params.k * static_cast<double>(m) *
                       static_cast<double>(n)) -
              std::log(e_value)) /
             params.lambda;
  int32_t t = static_cast<int32_t>(std::ceil(h));
  return std::max(1, t);
}

double KarlinStats::ScoreToEValue(int32_t score, int64_t m, int64_t n,
                                  const ScoringScheme& scheme, int sigma) {
  KarlinParams params = Compute(scheme, sigma);
  return params.k * static_cast<double>(m) * static_cast<double>(n) *
         std::exp(-params.lambda * score);
}

}  // namespace alae
