#ifndef ALAE_STATS_KARLIN_H_
#define ALAE_STATS_KARLIN_H_

#include <cstdint>

#include "src/align/scoring.h"

namespace alae {

// Karlin–Altschul statistics for ungapped local alignment scores under a
// match/mismatch scheme with uniform residue frequencies (paper §7:
// "E = K·m·n·e^{−λS}, where K and λ are scaling constants computed by
// BLAST").
//
// λ is the unique positive root of  p_match·e^{λ·sa} + (1−p_match)·e^{λ·sb}
// = 1 and is computed by bisection to 1e-12. K has no elementary closed
// form; we calibrate it once per (scheme, sigma) by fitting the Gumbel law
// to the empirical distribution of maximal ungapped segment scores on
// random sequences (deterministic seed, cached). The paper's E↔H mapping
// is insensitive to K's precision because K enters through ln K.
struct KarlinParams {
  double lambda = 0.0;
  double k = 0.0;
};

class KarlinStats {
 public:
  // Computes lambda exactly and K by cached calibration.
  static KarlinParams Compute(const ScoringScheme& scheme, int sigma);

  // Lambda only (exact root; no calibration).
  static double Lambda(const ScoringScheme& scheme, int sigma);

  // H = ceil((ln(K·m·n) − ln E) / lambda), the paper's §7 conversion
  // (attributed to OASIS [11]). Result is clamped to >= 1.
  static int32_t EValueToThreshold(double e_value, int64_t m, int64_t n,
                                   const ScoringScheme& scheme, int sigma);

  // E = K·m·n·e^{−λS} for a given score.
  static double ScoreToEValue(int32_t score, int64_t m, int64_t n,
                              const ScoringScheme& scheme, int sigma);
};

}  // namespace alae

#endif  // ALAE_STATS_KARLIN_H_
