#ifndef ALAE_STATS_ENTRY_BOUND_H_
#define ALAE_STATS_ENTRY_BOUND_H_

#include <string>
#include <vector>

#include "src/align/scoring.h"

namespace alae {

// Closed-form upper bound on the expected number of DP entries ALAE
// calculates for random sequences (paper §6).
//
// With s = 1 + |sb|/sa and q the prefix length of Eq. 2:
//   k1 = (1 - 1/s)^q * ((sigma-1)/(sigma-2)) * s / sqrt(2*pi*(s-1))
//   k2 = s * (sigma-1)^{1/s} / (s-1)^{(s-1)/s}
// and the expected total number of calculated entries is bounded by
//   ( k1/(k2-1) + k1*sigma^2/(sigma-k2) ) * m * n^{log_sigma k2}   (Eq. 4).
//
// The paper evaluates this over the BLAST parameter grid and reports the
// coefficient/exponent extremes 4.50*m*n^0.520 ... 9.05*m*n^0.896 for DNA
// and 8.28*m*n^0.364 ... 7.49*m*n^0.723 for proteins; unit tests pin those
// values.
struct EntryBound {
  double s = 0;
  int q = 0;
  double k1 = 0;
  double k2 = 0;
  double exponent = 0;     // log_sigma k2
  double coefficient = 0;  // k1/(k2-1) + k1*sigma^2/(sigma-k2)

  // Bound value for given m, n.
  double Evaluate(double m, double n) const;

  std::string ToString() const;
};

// Computes the bound constants for a scheme and alphabet size. Requires
// sigma > 2 and k2 < sigma (true for all BLAST schemes on DNA/protein).
EntryBound ComputeEntryBound(const ScoringScheme& scheme, int sigma);

// The BLAST parameter grid of §6: (sa, sb) pairs crossed with the
// |sg|/|sa| and |ss|/|sa| ratios the paper enumerates.
std::vector<ScoringScheme> BlastSchemeGrid();

}  // namespace alae

#endif  // ALAE_STATS_ENTRY_BOUND_H_
