#include "src/stats/entry_bound.h"

#include <cmath>
#include <sstream>

namespace alae {

double EntryBound::Evaluate(double m, double n) const {
  return coefficient * m * std::pow(n, exponent);
}

std::string EntryBound::ToString() const {
  std::ostringstream out;
  out.precision(4);
  out << coefficient << "*m*n^" << exponent << " (q=" << q << ", s=" << s
      << ", k1=" << k1 << ", k2=" << k2 << ")";
  return out.str();
}

EntryBound ComputeEntryBound(const ScoringScheme& scheme, int sigma) {
  EntryBound b;
  b.s = 1.0 + static_cast<double>(-scheme.sb) / scheme.sa;
  b.q = scheme.QPrefixLength();
  double s = b.s;
  double sig = sigma;
  b.k1 = std::pow(1.0 - 1.0 / s, b.q) * ((sig - 1.0) / (sig - 2.0)) * s /
         std::sqrt(2.0 * M_PI * (s - 1.0));
  b.k2 = s * std::pow(sig - 1.0, 1.0 / s) / std::pow(s - 1.0, (s - 1.0) / s);
  b.exponent = std::log(b.k2) / std::log(sig);
  b.coefficient = b.k1 / (b.k2 - 1.0) + b.k1 * sig * sig / (sig - b.k2);
  return b;
}

std::vector<ScoringScheme> BlastSchemeGrid() {
  // BLAST's web-form (sa, sb) choices (§6) and the gap ratios the paper
  // cites: |sg|/|sa| in {1,2,3,5}, |ss|/|sa| in {1,2}.
  const int pairs[][2] = {{1, -2}, {1, -3}, {1, -4}, {2, -3}, {4, -5}, {1, -1}};
  const int open_ratio[] = {1, 2, 3, 5};
  const int extend_ratio[] = {1, 2};
  std::vector<ScoringScheme> out;
  for (const auto& p : pairs) {
    for (int g : open_ratio) {
      for (int e : extend_ratio) {
        ScoringScheme s;
        s.sa = p[0];
        s.sb = p[1];
        s.sg = -g * p[0];
        s.ss = -e * p[0];
        out.push_back(s);
      }
    }
  }
  return out;
}

}  // namespace alae
