#ifndef ALAE_ALIGN_RESULT_H_
#define ALAE_ALIGN_RESULT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace alae {

// One local-alignment answer in the paper's A(i, j) sense: the pair of end
// positions (text_end, query_end), 0-based *inclusive*, with the best
// alignment score over all start pairs and (when known) the start position
// in the text (A(i,j).pos).
struct AlignmentHit {
  int64_t text_end = 0;
  int64_t query_end = 0;
  int32_t score = 0;
  int64_t text_start = -1;  // -1 when the algorithm does not track starts

  bool operator==(const AlignmentHit& o) const {
    return text_end == o.text_end && query_end == o.query_end &&
           score == o.score;
  }
};

// Accumulates hits keyed by end pair, keeping the maximum score per pair —
// exactly the A(i,j) table of Algorithm 1 restricted to entries >= H.
//
// All exact algorithms (Smith-Waterman, BASIC, BWT-SW, ALAE) feed this
// collector, so their outputs can be compared for set equality in tests.
class ResultCollector {
 public:
  void Add(int64_t text_end, int64_t query_end, int32_t score,
           int64_t text_start = -1);

  size_t size() const { return hits_.size(); }

  // Hits sorted by (text_end, query_end) for deterministic comparison.
  std::vector<AlignmentHit> Sorted() const;

  // Unordered visitation, for consumers that re-key or re-sort anyway
  // (e.g. the service-layer hit merger): skips Sorted()'s copy and sort.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, hit] : hits_) {
      (void)key;
      fn(hit);
    }
  }

  // The best score over all hits (0 when empty).
  int32_t BestScore() const { return best_score_; }

  void Clear();

 private:
  struct KeyHash {
    size_t operator()(uint64_t k) const {
      k ^= k >> 33;
      k *= 0xFF51AFD7ED558CCDULL;
      k ^= k >> 33;
      return static_cast<size_t>(k);
    }
  };

  // Injective for coordinates below 2^32, far beyond the supported scale.
  static uint64_t Key(int64_t text_end, int64_t query_end) {
    assert(text_end >= 0 && text_end < (int64_t{1} << 32) &&
           "text_end outside the injective [0, 2^32) key range");
    assert(query_end >= 0 && query_end < (int64_t{1} << 32) &&
           "query_end outside the injective [0, 2^32) key range");
    return (static_cast<uint64_t>(text_end) << 32) |
           static_cast<uint64_t>(query_end);
  }

  std::unordered_map<uint64_t, AlignmentHit, KeyHash> hits_;
  int32_t best_score_ = 0;
};

}  // namespace alae

#endif  // ALAE_ALIGN_RESULT_H_
