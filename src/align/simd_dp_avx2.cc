// AVX2 implementation of the shared affine-gap row kernel. This is the only
// translation unit compiled with -mavx2 (see CMakeLists flag probing): when
// the compiler lacks the flag the stub below keeps the build portable and
// runtime dispatch falls back to SSE2/scalar.

#include "src/align/simd_dp.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace alae {
namespace simd {
namespace {

inline int32_t Lane7(__m256i v) {
  return _mm256_extract_epi32(v, 7);
}

// kAffineBound selects between a per-lane affine prune bound (ALAE's score
// filter) and the hoisted constant bound (BWT-SW positivity, filter off).
template <bool kAffineBound>
void RowAvx2Impl(const RowSpec& spec, RowStats* stats) {
  const int32_t ss = spec.gap_extend;
  const int32_t oe = spec.gap_open_extend;
  // The Gb prefix scan runs in a "biased unsigned" domain: adding
  // INT32_MIN (an xor of the sign bit, folded into the additive constants
  // as a wrapping add) turns signed max into unsigned max, whose identity
  // is 0 — exactly what in-lane vpslldq shifts fill with. That halves the
  // port-5 shuffle traffic of the scan versus cross-lane alignr shifts
  // with an explicit -inf fill, and it is exact for every int32 input.
  const uint32_t kBias = 0x80000000u;
  const __m256i vss = _mm256_set1_epi32(ss);
  const __m256i voe = _mm256_set1_epi32(oe);
  const __m256i voe_minus_ss_biased =
      _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(oe - ss) + kBias));
  const __m256i vninf = _mm256_set1_epi32(kNegInf);
  const __m256i vbase = _mm256_set1_epi32(spec.bound_base);
  const __m256i vbias = _mm256_set1_epi32(static_cast<int32_t>(kBias));

  // k*ss - bias per lane (so gb = excl_biased + vkss_mb is unbiased), and
  // the affine column bound, both advanced by adds per block.
  const auto mb = [&](int64_t k) {
    return static_cast<int32_t>(
        static_cast<uint32_t>(static_cast<int32_t>(k) * ss) - kBias);
  };
  __m256i vkss_mb = _mm256_setr_epi32(mb(0), mb(1), mb(2), mb(3), mb(4),
                                      mb(5), mb(6), mb(7));
  const __m256i vkss_step = _mm256_set1_epi32(8 * ss);
  const int32_t b0 = spec.bound0;
  const int32_t bstep = spec.bound_step;
  __m256i vcol = _mm256_setr_epi32(b0, b0 + bstep, b0 + 2 * bstep,
                                   b0 + 3 * bstep, b0 + 4 * bstep,
                                   b0 + 5 * bstep, b0 + 6 * bstep,
                                   b0 + 7 * bstep);
  const __m256i vcol_step = _mm256_set1_epi32(8 * bstep);
  const __m256i vbound_const =
      _mm256_max_epi32(vbase, _mm256_set1_epi32(b0));

  // Running max(gb_init, w(0..k-1)) in the biased domain, all lanes equal.
  __m256i vcarry = _mm256_set1_epi32(
      static_cast<int32_t>(static_cast<uint32_t>(spec.gb_init) + kBias));
  __m256i last_gb = vninf, last_mu = vninf;  // lane 7 extracted after the loop
  int64_t k = 0;
  for (; k + 8 <= spec.len; k += 8) {
    __m256i pm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_m + k));
    __m256i pg = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_ga + k));
    __m256i dm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_diag_m + k));
    __m256i dl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.delta + k));

    __m256i ga = _mm256_max_epi32(_mm256_add_epi32(pg, vss),
                                  _mm256_add_epi32(pm, voe));
    __m256i tmp = _mm256_max_epi32(_mm256_add_epi32(dm, dl), ga);

    // Gb as a weighted max-prefix scan: with w(k) = tmp(k)+oe-(k+1)*ss,
    // Gb(k) = k*ss + max(gb_init, max_{j<k} w(j)), evaluated as an
    // inclusive in-lane scan, one cross-lane fixup, then an exclusive
    // shift merged with the carry — all in the biased domain.
    __m256i xw = _mm256_sub_epi32(_mm256_add_epi32(tmp, voe_minus_ss_biased),
                                  _mm256_add_epi32(vkss_mb, vbias));
    __m256i x = _mm256_max_epu32(xw, _mm256_slli_si256(xw, 4));
    x = _mm256_max_epu32(x, _mm256_slli_si256(x, 8));  // in-lane inclusive
    // c holds the two in-lane scan totals broadcast within their halves:
    // [l3 x4 | h3 x4] with l3 = max(w0..w3), h3 = max(w4..w7).
    __m256i c = _mm256_shuffle_epi32(x, 0xFF);
    __m256i t = _mm256_permute2x128_si256(c, c, 0x08);  // [0 x4, l3 x4]
    __m256i xf = _mm256_max_epu32(x, t);  // full inclusive scan
    __m256i excl = _mm256_max_epu32(_mm256_slli_si256(xf, 4), t);
    excl = _mm256_max_epu32(excl, vcarry);
    __m256i gb = _mm256_add_epi32(excl, vkss_mb);
    // Cross-block carry, still vectorised: the block max is max(l3, h3).
    vcarry = _mm256_max_epu32(
        vcarry,
        _mm256_max_epu32(c, _mm256_permute2x128_si256(c, c, 0x01)));

    __m256i mu = _mm256_max_epi32(tmp, gb);
    __m256i bound = vbound_const;
    if constexpr (kAffineBound) bound = _mm256_max_epi32(vbase, vcol);
    __m256i alive = _mm256_cmpgt_epi32(mu, bound);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_m + k),
                        _mm256_blendv_epi8(vninf, mu, alive));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_ga + k),
                        _mm256_max_epi32(ga, vninf));
    if (spec.out_gb != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_gb + k),
                          _mm256_max_epi32(gb, vninf));
    }
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(alive));
    if (mask != 0) {
      if (stats->first_alive < 0) {
        stats->first_alive = k + __builtin_ctz(static_cast<unsigned>(mask));
      }
      stats->last_alive = k + 31 - __builtin_clz(static_cast<unsigned>(mask));
    }
    last_gb = gb;
    last_mu = mu;

    vkss_mb = _mm256_add_epi32(vkss_mb, vkss_step);
    if constexpr (kAffineBound) vcol = _mm256_add_epi32(vcol, vcol_step);
  }
  int32_t gb_last = kNegInf, mu_last = kNegInf;
  if (k > 0) {
    gb_last = Lane7(last_gb);
    mu_last = Lane7(last_mu);
    stats->gb_last = gb_last;
    stats->mu_last = mu_last;
  }
  internal::RowScalarTail(spec, k, gb_last, mu_last, stats);
}

void RowAvx2(const RowSpec& spec, RowStats* stats) {
  // Engine rows are frequently just a handful of cells; below one vector
  // block the (inlined) scalar loop wins outright and skips the constant
  // setup.
  if (spec.len < kMinVectorRow) {
    internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
    return;
  }
  if (spec.bound_step == 0) {
    RowAvx2Impl<false>(spec, stats);
  } else {
    RowAvx2Impl<true>(spec, stats);
  }
}

}  // namespace

namespace internal {
RowKernelFn Avx2Kernel() { return &RowAvx2; }
}  // namespace internal

}  // namespace simd
}  // namespace alae

#else  // !__AVX2__

namespace alae {
namespace simd {
namespace internal {
RowKernelFn Avx2Kernel() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace alae

#endif
