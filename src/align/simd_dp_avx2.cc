// AVX2 implementation of the shared affine-gap row kernel. This is the only
// translation unit compiled with -mavx2 (see CMakeLists flag probing): when
// the compiler lacks the flag the stub below keeps the build portable and
// runtime dispatch falls back to SSE2/scalar.

#include "src/align/simd_dp.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace alae {
namespace simd {
namespace {

inline int32_t Lane7(__m256i v) {
  return _mm256_extract_epi32(v, 7);
}

// kAffineBound selects between a per-lane affine prune bound (ALAE's score
// filter) and the hoisted constant bound (BWT-SW positivity, filter off).
template <bool kAffineBound>
void RowAvx2Impl(const RowSpec& spec, RowStats* stats) {
  const int32_t ss = spec.gap_extend;
  const int32_t oe = spec.gap_open_extend;
  // The Gb prefix scan runs in a "biased unsigned" domain: adding
  // INT32_MIN (an xor of the sign bit, folded into the additive constants
  // as a wrapping add) turns signed max into unsigned max, whose identity
  // is 0 — exactly what in-lane vpslldq shifts fill with. That halves the
  // port-5 shuffle traffic of the scan versus cross-lane alignr shifts
  // with an explicit -inf fill, and it is exact for every int32 input.
  const uint32_t kBias = 0x80000000u;
  const __m256i vss = _mm256_set1_epi32(ss);
  const __m256i voe = _mm256_set1_epi32(oe);
  const __m256i voe_minus_ss_biased =
      _mm256_set1_epi32(static_cast<int32_t>(static_cast<uint32_t>(oe - ss) + kBias));
  const __m256i vninf = _mm256_set1_epi32(kNegInf);
  const __m256i vbase = _mm256_set1_epi32(spec.bound_base);
  const __m256i vbias = _mm256_set1_epi32(static_cast<int32_t>(kBias));

  // k*ss - bias per lane (so gb = excl_biased + vkss_mb is unbiased), and
  // the affine column bound, both advanced by adds per block.
  const auto mb = [&](int64_t k) {
    return static_cast<int32_t>(
        static_cast<uint32_t>(static_cast<int32_t>(k) * ss) - kBias);
  };
  __m256i vkss_mb = _mm256_setr_epi32(mb(0), mb(1), mb(2), mb(3), mb(4),
                                      mb(5), mb(6), mb(7));
  const __m256i vkss_step = _mm256_set1_epi32(8 * ss);
  const int32_t b0 = spec.bound0;
  const int32_t bstep = spec.bound_step;
  __m256i vcol = _mm256_setr_epi32(b0, b0 + bstep, b0 + 2 * bstep,
                                   b0 + 3 * bstep, b0 + 4 * bstep,
                                   b0 + 5 * bstep, b0 + 6 * bstep,
                                   b0 + 7 * bstep);
  const __m256i vcol_step = _mm256_set1_epi32(8 * bstep);
  const __m256i vbound_const =
      _mm256_max_epi32(vbase, _mm256_set1_epi32(b0));

  // Running max(gb_init, w(0..k-1)) in the biased domain, all lanes equal.
  __m256i vcarry = _mm256_set1_epi32(
      static_cast<int32_t>(static_cast<uint32_t>(spec.gb_init) + kBias));
  __m256i last_gb = vninf, last_mu = vninf;  // lane 7 extracted after the loop
  int64_t k = 0;
  for (; k + 8 <= spec.len; k += 8) {
    __m256i pm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_m + k));
    __m256i pg = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_ga + k));
    __m256i dm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.prev_diag_m + k));
    __m256i dl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(spec.delta + k));

    __m256i ga = _mm256_max_epi32(
        _mm256_max_epi32(_mm256_add_epi32(pg, vss), _mm256_add_epi32(pm, voe)),
        vninf);
    // Absorbing diagonal: a sentinel prev_diag_m stays a sentinel even
    // under a positive delta.
    __m256i diag = _mm256_blendv_epi8(_mm256_add_epi32(dm, dl), vninf,
                                      _mm256_cmpeq_epi32(dm, vninf));
    __m256i tmp = _mm256_max_epi32(diag, ga);

    // Gb as a weighted max-prefix scan: with w(k) = tmp(k)+oe-(k+1)*ss,
    // Gb(k) = k*ss + max(gb_init, max_{j<k} w(j)), evaluated as an
    // inclusive in-lane scan, one cross-lane fixup, then an exclusive
    // shift merged with the carry — all in the biased domain.
    __m256i xw = _mm256_sub_epi32(_mm256_add_epi32(tmp, voe_minus_ss_biased),
                                  _mm256_add_epi32(vkss_mb, vbias));
    __m256i x = _mm256_max_epu32(xw, _mm256_slli_si256(xw, 4));
    x = _mm256_max_epu32(x, _mm256_slli_si256(x, 8));  // in-lane inclusive
    // c holds the two in-lane scan totals broadcast within their halves:
    // [l3 x4 | h3 x4] with l3 = max(w0..w3), h3 = max(w4..w7).
    __m256i c = _mm256_shuffle_epi32(x, 0xFF);
    __m256i t = _mm256_permute2x128_si256(c, c, 0x08);  // [0 x4, l3 x4]
    __m256i xf = _mm256_max_epu32(x, t);  // full inclusive scan
    __m256i excl = _mm256_max_epu32(_mm256_slli_si256(xf, 4), t);
    excl = _mm256_max_epu32(excl, vcarry);
    // The contract's per-step kNegInf floor commutes with the scan
    // (floored-out chain terms decay below any later floor), so one floor
    // of the scan result is exact.
    __m256i gb =
        _mm256_max_epi32(_mm256_add_epi32(excl, vkss_mb), vninf);
    // Cross-block carry, still vectorised: the block max is max(l3, h3).
    vcarry = _mm256_max_epu32(
        vcarry,
        _mm256_max_epu32(c, _mm256_permute2x128_si256(c, c, 0x01)));

    __m256i mu = _mm256_max_epi32(tmp, gb);
    __m256i bound = vbound_const;
    if constexpr (kAffineBound) bound = _mm256_max_epi32(vbase, vcol);
    __m256i alive = _mm256_cmpgt_epi32(mu, bound);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_m + k),
                        _mm256_blendv_epi8(vninf, mu, alive));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_ga + k), ga);
    if (spec.out_gb != nullptr) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(spec.out_gb + k), gb);
    }
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(alive));
    if (mask != 0) {
      if (stats->first_alive < 0) {
        stats->first_alive = k + __builtin_ctz(static_cast<unsigned>(mask));
      }
      stats->last_alive = k + 31 - __builtin_clz(static_cast<unsigned>(mask));
    }
    last_gb = gb;
    last_mu = mu;

    vkss_mb = _mm256_add_epi32(vkss_mb, vkss_step);
    if constexpr (kAffineBound) vcol = _mm256_add_epi32(vcol, vcol_step);
  }
  int32_t gb_last = kNegInf, mu_last = kNegInf;
  if (k > 0) {
    gb_last = Lane7(last_gb);
    mu_last = Lane7(last_mu);
    stats->gb_last = gb_last;
    stats->mu_last = mu_last;
  }
  internal::RowScalarTail(spec, k, gb_last, mu_last, stats);
}

void RowAvx2(const RowSpec& spec, RowStats* stats) {
  // Engine rows are frequently just a handful of cells; below one vector
  // block the (inlined) scalar loop wins outright and skips the constant
  // setup.
  if (spec.len < kMinVectorRow) {
    internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
    return;
  }
  if (spec.bound_step == 0) {
    RowAvx2Impl<false>(spec, stats);
  } else {
    RowAvx2Impl<true>(spec, stats);
  }
}

// ---------------------------------------------------------------------------
// int16 tier. The compute chain runs in saturating int16 — 16 cells per
// instruction instead of 8 — which the absorbing-sentinel contract makes
// exact: every value is either a real score or exactly kNegInf, and kNegInf
// saturates onto the int16 sentinel -32768 at load (packs_epi32) and stays
// there through every adds/max (saturation at the bottom IS the contract's
// floor). Anything the mapping cannot represent — a real score outside
// [-32767, 32767] at load, or a real chain saturating onto the sentinel or
// the int16 ceiling mid-row — raises a clip flag and the whole row reruns
// through the int32 kernel, so results are bit-exact in every case. Clips
// never fire for real alignment scores (they would need |score| ~ 32k);
// the detection exists so the tier is safe, not because it is expected.
// Bound comparison and stores stay in int32 (the row arrays are int32; the
// int16 win is the compute chain, not the memory format).
// ---------------------------------------------------------------------------

constexpr int16_t kSentI16 = -32768;

// packs_epi32 interleaves the two 128-bit lanes; the permute restores cell
// order: [lo0..7, hi0..7] as 16 int16.
inline __m256i PackCells16(__m256i lo, __m256i hi) {
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi), 0xD8);
}

// Accumulates (as 32-bit lane masks in *clip) every value that cannot
// round-trip through int16: real scores above 32767 or below -32767. The
// exact kNegInf is exempt — it saturates onto the int16 sentinel by design.
// Note -32768 itself is treated as unrepresentable: it would collide with
// the sentinel encoding.
inline void ClipCheck32(__m256i v, __m256i vninf32, __m256i* clip) {
  const __m256i vmax = _mm256_set1_epi32(32767);
  const __m256i vmin = _mm256_set1_epi32(-32767);
  __m256i bad = _mm256_or_si256(
      _mm256_cmpgt_epi32(v, vmax),
      _mm256_andnot_si256(_mm256_cmpeq_epi32(v, vninf32),
                          _mm256_cmpgt_epi32(vmin, v)));
  *clip = _mm256_or_si256(*clip, bad);
}

inline __m256i Load16AsI16(const int32_t* p, __m256i vninf32, __m256i* clip) {
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 8));
  ClipCheck32(lo, vninf32, clip);
  ClipCheck32(hi, vninf32, clip);
  return PackCells16(lo, hi);
}

// int16 half -> int32, mapping the int16 sentinel back to kNegInf.
inline __m256i UnpackHalfI32(__m256i v, int half, __m256i vninf32) {
  __m128i h = half ? _mm256_extracti128_si256(v, 1)
                   : _mm256_castsi256_si128(v);
  __m256i u = _mm256_cvtepi16_epi32(h);
  return _mm256_blendv_epi8(u, vninf32,
                            _mm256_cmpeq_epi32(u, _mm256_set1_epi32(-32768)));
}

// Whether the row's additive offsets (k*ss and oe-(k+1)*ss, k < len) and
// gb_init fit int16 alongside worst-case real inputs. Rows failing this go
// straight to the int32 kernel — no correctness dependence, pure routing.
inline bool I16RowEligible(int64_t len, int32_t ss, int32_t oe,
                           int32_t gb_init) {
  int64_t span = len * -static_cast<int64_t>(ss) - static_cast<int64_t>(oe);
  if (span > 16000) return false;
  // Anything at or below kNegInf is floored to the sentinel by the
  // contract (engines hand in dead chains as kNegInf + a gap cost), so
  // only genuinely live inits need to fit int16.
  if (gb_init > kNegInf && (gb_init > 32767 || gb_init < -32767)) {
    return false;
  }
  return true;
}

inline int16_t BiasGbInit(int32_t gb_init) {
  // Into the scan's biased-unsigned domain; the (floored) sentinel becomes
  // 0, the scan identity.
  return gb_init <= kNegInf
             ? static_cast<int16_t>(0)
             : static_cast<int16_t>(static_cast<uint16_t>(gb_init) ^ 0x8000u);
}

void RowAvx2I16(const RowSpec& spec, RowStats* stats) {
  if (spec.len < kMinVectorRow) {
    internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
    return;
  }
  const int32_t ss = spec.gap_extend;
  const int32_t oe = spec.gap_open_extend;
  if (!I16RowEligible(spec.len, ss, oe, spec.gb_init)) {
    RowAvx2(spec, stats);
    return;
  }
  const __m256i vninf32 = _mm256_set1_epi32(kNegInf);
  const __m256i vsent = _mm256_set1_epi16(kSentI16);  // also the bias xor
  const __m256i vmax16 = _mm256_set1_epi16(32767);
  const __m256i vss16 = _mm256_set1_epi16(static_cast<int16_t>(ss));
  const __m256i voe16 = _mm256_set1_epi16(static_cast<int16_t>(oe));
  const __m256i vbase = _mm256_set1_epi32(spec.bound_base);

  // Per-lane offsets, advanced by plain adds per block: k*ss for the scan
  // unbias, oe-(k+1)*ss for w. Eligibility bounds both within int16.
  alignas(32) int16_t init16[16];
  alignas(32) int16_t woff16[16];
  for (int j = 0; j < 16; ++j) {
    init16[j] = static_cast<int16_t>(j * ss);
    woff16[j] = static_cast<int16_t>(oe - (j + 1) * ss);
  }
  __m256i vkss16 = _mm256_load_si256(reinterpret_cast<const __m256i*>(init16));
  __m256i vwoff16 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(woff16));
  const __m256i vkss_step = _mm256_set1_epi16(static_cast<int16_t>(16 * ss));
  const int32_t b0 = spec.bound0;
  const int32_t bstep = spec.bound_step;
  __m256i vcol = _mm256_setr_epi32(b0, b0 + bstep, b0 + 2 * bstep,
                                   b0 + 3 * bstep, b0 + 4 * bstep,
                                   b0 + 5 * bstep, b0 + 6 * bstep,
                                   b0 + 7 * bstep);
  const __m256i vcol_step = _mm256_set1_epi32(8 * bstep);

  __m256i vcarry = _mm256_set1_epi16(BiasGbInit(spec.gb_init));
  int32_t gb_last = kNegInf, mu_last = kNegInf;
  int64_t k = 0;
  for (; k + 16 <= spec.len; k += 16) {
    __m256i clip = _mm256_setzero_si256();
    __m256i pm = Load16AsI16(spec.prev_m + k, vninf32, &clip);
    __m256i pg = Load16AsI16(spec.prev_ga + k, vninf32, &clip);
    __m256i dm = Load16AsI16(spec.prev_diag_m + k, vninf32, &clip);
    __m256i dl = Load16AsI16(spec.delta + k, vninf32, &clip);

    // Ga: downward saturation onto the sentinel is only legitimate when
    // both inputs were already sentinels; a real chain reaching -32768
    // would diverge from the int32 floor at kNegInf, so it clips.
    __m256i ga = _mm256_max_epi16(_mm256_adds_epi16(pg, vss16),
                                  _mm256_adds_epi16(pm, voe16));
    __m256i ga_legit = _mm256_and_si256(_mm256_cmpeq_epi16(pg, vsent),
                                        _mm256_cmpeq_epi16(pm, vsent));
    clip = _mm256_or_si256(
        clip, _mm256_andnot_si256(ga_legit, _mm256_cmpeq_epi16(ga, vsent)));

    // Absorbing diagonal, with saturation (either direction) on a real
    // prev_diag_m treated as a clip. Equality with the rails is flagged
    // conservatively: a legitimate exact 32767 costs a spurious rerun,
    // never a wrong result.
    __m256i dm_dead = _mm256_cmpeq_epi16(dm, vsent);
    __m256i dsum = _mm256_adds_epi16(dm, dl);
    clip = _mm256_or_si256(
        clip, _mm256_andnot_si256(
                  dm_dead, _mm256_or_si256(_mm256_cmpeq_epi16(dsum, vsent),
                                           _mm256_cmpeq_epi16(dsum, vmax16))));
    __m256i diag = _mm256_blendv_epi8(dsum, vsent, dm_dead);
    __m256i tmp = _mm256_max_epi16(diag, ga);

    // The same biased-unsigned Gb scan as the int32 kernel, in 16-bit
    // lanes. A sentinel tmp must contribute the scan identity (biased 0)
    // explicitly — its saturated w would otherwise sit above real
    // deep-negative w values instead of far below them.
    __m256i tmp_sent = _mm256_cmpeq_epi16(tmp, vsent);
    __m256i w = _mm256_adds_epi16(tmp, vwoff16);
    clip = _mm256_or_si256(
        clip, _mm256_andnot_si256(
                  tmp_sent, _mm256_or_si256(_mm256_cmpeq_epi16(w, vsent),
                                            _mm256_cmpeq_epi16(w, vmax16))));
    __m256i wb = _mm256_andnot_si256(tmp_sent, _mm256_xor_si256(w, vsent));
    __m256i x = _mm256_max_epu16(wb, _mm256_slli_si256(wb, 2));
    x = _mm256_max_epu16(x, _mm256_slli_si256(x, 4));
    x = _mm256_max_epu16(x, _mm256_slli_si256(x, 8));  // in-lane inclusive
    // Broadcast each 128-bit half's total (word 7) across the half, then
    // the same cross-lane fixup shape as the int32 scan.
    __m256i c =
        _mm256_shuffle_epi32(_mm256_shufflehi_epi16(x, 0xFF), 0xFF);
    __m256i t = _mm256_permute2x128_si256(c, c, 0x08);
    __m256i xf = _mm256_max_epu16(x, t);
    __m256i excl = _mm256_max_epu16(_mm256_slli_si256(xf, 2), t);
    excl = _mm256_max_epu16(excl, vcarry);
    __m256i gb = _mm256_adds_epi16(_mm256_xor_si256(excl, vsent), vkss16);
    // Downward saturation of the unbiased chain is the contract's floor
    // when the chain is all-sentinel (excl == biased 0); from a real chain
    // it means the int32 value lies below -32768 but above kNegInf: clip.
    clip = _mm256_or_si256(
        clip, _mm256_andnot_si256(
                  _mm256_cmpeq_epi16(excl, _mm256_setzero_si256()),
                  _mm256_cmpeq_epi16(gb, vsent)));
    vcarry = _mm256_max_epu16(
        vcarry,
        _mm256_max_epu16(c, _mm256_permute2x128_si256(c, c, 0x01)));
    __m256i mu = _mm256_max_epi16(tmp, gb);

    if (!_mm256_testz_si256(clip, clip)) {
      // Unrepresentable value somewhere in this block: the whole row
      // reruns in int32. Partial stores from earlier blocks are fully
      // overwritten; stats restart clean.
      *stats = RowStats{};
      RowAvx2(spec, stats);
      return;
    }

    int mask16 = 0;
    __m256i gb32_hi = _mm256_setzero_si256(), mu32_hi = _mm256_setzero_si256();
    for (int half = 0; half < 2; ++half) {
      __m256i mu32 = UnpackHalfI32(mu, half, vninf32);
      __m256i ga32 = UnpackHalfI32(ga, half, vninf32);
      __m256i bound = _mm256_max_epi32(vbase, vcol);
      __m256i alive = _mm256_cmpgt_epi32(mu32, bound);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(spec.out_m + k + 8 * half),
          _mm256_blendv_epi8(vninf32, mu32, alive));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(spec.out_ga + k + 8 * half), ga32);
      __m256i gb32 = UnpackHalfI32(gb, half, vninf32);
      if (spec.out_gb != nullptr) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(spec.out_gb + k + 8 * half), gb32);
      }
      mask16 |= _mm256_movemask_ps(_mm256_castsi256_ps(alive)) << (8 * half);
      vcol = _mm256_add_epi32(vcol, vcol_step);
      if (half == 1) {
        gb32_hi = gb32;
        mu32_hi = mu32;
      }
    }
    if (mask16 != 0) {
      if (stats->first_alive < 0) {
        stats->first_alive = k + __builtin_ctz(static_cast<unsigned>(mask16));
      }
      stats->last_alive =
          k + 31 - __builtin_clz(static_cast<unsigned>(mask16));
    }
    gb_last = Lane7(gb32_hi);
    mu_last = Lane7(mu32_hi);

    vkss16 = _mm256_add_epi16(vkss16, vkss_step);
    vwoff16 = _mm256_sub_epi16(vwoff16, vkss_step);
  }
  if (k > 0) {
    stats->gb_last = gb_last;
    stats->mu_last = mu_last;
  }
  internal::RowScalarTail(spec, k, gb_last, mu_last, stats);
}

// ---------------------------------------------------------------------------
// Paired narrow rows. Engine gap forks are mostly 1-8 cell windows — far
// below any vector kernel's profitability — but two INDEPENDENT such rows
// fill the 16 int16 lanes exactly: row a in the low 128-bit lane, row b in
// the high one. The Gb scan never crosses the 128-bit boundary (vpslldq is
// per-lane), so the halves isolate for free; pad lanes beyond each row's
// length are loaded as sentinels and masked out of stores and stats. A
// clipped half falls back to the scalar loop alone — the other half's
// result stands.
// ---------------------------------------------------------------------------

void RowPairAvx2I16(const RowSpec& a, const RowSpec& b, RowStats* sa,
                    RowStats* sb) {
  if (a.len < 1 || a.len > 8 || b.len < 1 || b.len > 8 ||
      !I16RowEligible(a.len, a.gap_extend, a.gap_open_extend, a.gb_init) ||
      !I16RowEligible(b.len, b.gap_extend, b.gap_open_extend, b.gb_init)) {
    ComputeRowAuto(a, sa);
    ComputeRowAuto(b, sb);
    return;
  }
  // Sliding-window mask table: 8-len .. 15-len selects the first `len`
  // lanes.
  static constexpr int32_t kMaskTab[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                           0,  0,  0,  0,  0,  0,  0,  0};
  const __m256i maskA = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTab + 8 - a.len));
  const __m256i maskB = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTab + 8 - b.len));
  const __m256i vninf32 = _mm256_set1_epi32(kNegInf);
  const __m256i vsent = _mm256_set1_epi16(kSentI16);
  const __m256i vmax16 = _mm256_set1_epi16(32767);

  __m256i clip_a32 = _mm256_setzero_si256();
  __m256i clip_b32 = _mm256_setzero_si256();
  auto load_pair = [&](const int32_t* pa, const int32_t* pb) {
    // Masked loads double as bounds safety: lanes past len are never read,
    // and enter the kernel as sentinels.
    __m256i va = _mm256_maskload_epi32(pa, maskA);
    va = _mm256_blendv_epi8(vninf32, va, maskA);
    ClipCheck32(va, vninf32, &clip_a32);
    __m256i vb = _mm256_maskload_epi32(pb, maskB);
    vb = _mm256_blendv_epi8(vninf32, vb, maskB);
    ClipCheck32(vb, vninf32, &clip_b32);
    return PackCells16(va, vb);
  };
  __m256i pm = load_pair(a.prev_m, b.prev_m);
  __m256i pg = load_pair(a.prev_ga, b.prev_ga);
  __m256i dm = load_pair(a.prev_diag_m, b.prev_diag_m);
  __m256i dl = load_pair(a.delta, b.delta);

  // Per-half gap scheme and offsets (the rows need not share one).
  const __m256i vss16 = _mm256_set_m128i(
      _mm_set1_epi16(static_cast<int16_t>(b.gap_extend)),
      _mm_set1_epi16(static_cast<int16_t>(a.gap_extend)));
  const __m256i voe16 = _mm256_set_m128i(
      _mm_set1_epi16(static_cast<int16_t>(b.gap_open_extend)),
      _mm_set1_epi16(static_cast<int16_t>(a.gap_open_extend)));
  alignas(32) int16_t kss[16];
  alignas(32) int16_t woff[16];
  for (int j = 0; j < 8; ++j) {
    kss[j] = static_cast<int16_t>(j * a.gap_extend);
    woff[j] = static_cast<int16_t>(a.gap_open_extend - (j + 1) * a.gap_extend);
    kss[8 + j] = static_cast<int16_t>(j * b.gap_extend);
    woff[8 + j] =
        static_cast<int16_t>(b.gap_open_extend - (j + 1) * b.gap_extend);
  }
  const __m256i vkss16 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kss));
  const __m256i vwoff16 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(woff));
  const __m256i vcarry = _mm256_set_m128i(
      _mm_set1_epi16(BiasGbInit(b.gb_init)),
      _mm_set1_epi16(BiasGbInit(a.gb_init)));

  // Identical recurrence to the full-row int16 kernel, minus the cross-lane
  // scan fixup and the block loop.
  __m256i clip16 = _mm256_setzero_si256();
  __m256i ga = _mm256_max_epi16(_mm256_adds_epi16(pg, vss16),
                                _mm256_adds_epi16(pm, voe16));
  __m256i ga_legit = _mm256_and_si256(_mm256_cmpeq_epi16(pg, vsent),
                                      _mm256_cmpeq_epi16(pm, vsent));
  clip16 = _mm256_or_si256(
      clip16, _mm256_andnot_si256(ga_legit, _mm256_cmpeq_epi16(ga, vsent)));
  __m256i dm_dead = _mm256_cmpeq_epi16(dm, vsent);
  __m256i dsum = _mm256_adds_epi16(dm, dl);
  clip16 = _mm256_or_si256(
      clip16, _mm256_andnot_si256(
                  dm_dead, _mm256_or_si256(_mm256_cmpeq_epi16(dsum, vsent),
                                           _mm256_cmpeq_epi16(dsum, vmax16))));
  __m256i diag = _mm256_blendv_epi8(dsum, vsent, dm_dead);
  __m256i tmp = _mm256_max_epi16(diag, ga);

  __m256i tmp_sent = _mm256_cmpeq_epi16(tmp, vsent);
  __m256i w = _mm256_adds_epi16(tmp, vwoff16);
  clip16 = _mm256_or_si256(
      clip16, _mm256_andnot_si256(
                  tmp_sent, _mm256_or_si256(_mm256_cmpeq_epi16(w, vsent),
                                            _mm256_cmpeq_epi16(w, vmax16))));
  __m256i wb = _mm256_andnot_si256(tmp_sent, _mm256_xor_si256(w, vsent));
  __m256i x = _mm256_max_epu16(wb, _mm256_slli_si256(wb, 2));
  x = _mm256_max_epu16(x, _mm256_slli_si256(x, 4));
  x = _mm256_max_epu16(x, _mm256_slli_si256(x, 8));
  __m256i excl = _mm256_max_epu16(_mm256_slli_si256(x, 2), vcarry);
  __m256i gb = _mm256_adds_epi16(_mm256_xor_si256(excl, vsent), vkss16);
  clip16 = _mm256_or_si256(
      clip16,
      _mm256_andnot_si256(_mm256_cmpeq_epi16(excl, _mm256_setzero_si256()),
                          _mm256_cmpeq_epi16(gb, vsent)));
  __m256i mu = _mm256_max_epi16(tmp, gb);

  const __m128i clip16_lo = _mm256_castsi256_si128(clip16);
  const __m128i clip16_hi = _mm256_extracti128_si256(clip16, 1);
  const bool clip_a = !_mm256_testz_si256(clip_a32, clip_a32) ||
                      !_mm_testz_si128(clip16_lo, clip16_lo);
  const bool clip_b = !_mm256_testz_si256(clip_b32, clip_b32) ||
                      !_mm_testz_si128(clip16_hi, clip16_hi);

  auto finish = [&](const RowSpec& spec, int half, bool clipped,
                    const __m256i& maskv, RowStats* stats) {
    if (clipped) {
      // The scalar loop recomputes this half alone from the untouched
      // inputs; the stores below never ran for it.
      *stats = RowStats{};
      internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
      return;
    }
    __m256i mu32 = UnpackHalfI32(mu, half, vninf32);
    __m256i ga32 = UnpackHalfI32(ga, half, vninf32);
    __m256i gb32 = UnpackHalfI32(gb, half, vninf32);
    const int32_t b0 = spec.bound0;
    const int32_t bs = spec.bound_step;
    __m256i vcol = _mm256_setr_epi32(b0, b0 + bs, b0 + 2 * bs, b0 + 3 * bs,
                                     b0 + 4 * bs, b0 + 5 * bs, b0 + 6 * bs,
                                     b0 + 7 * bs);
    __m256i bound = _mm256_max_epi32(_mm256_set1_epi32(spec.bound_base), vcol);
    __m256i alive =
        _mm256_and_si256(_mm256_cmpgt_epi32(mu32, bound), maskv);
    _mm256_maskstore_epi32(spec.out_m, maskv,
                           _mm256_blendv_epi8(vninf32, mu32, alive));
    _mm256_maskstore_epi32(spec.out_ga, maskv, ga32);
    if (spec.out_gb != nullptr) {
      _mm256_maskstore_epi32(spec.out_gb, maskv, gb32);
    }
    int mask = _mm256_movemask_ps(_mm256_castsi256_ps(alive));
    if (mask != 0) {
      stats->first_alive = __builtin_ctz(static_cast<unsigned>(mask));
      stats->last_alive = 31 - __builtin_clz(static_cast<unsigned>(mask));
    }
    alignas(32) int32_t mu_arr[8];
    alignas(32) int32_t gb_arr[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(mu_arr), mu32);
    _mm256_store_si256(reinterpret_cast<__m256i*>(gb_arr), gb32);
    stats->gb_last = gb_arr[spec.len - 1];
    stats->mu_last = mu_arr[spec.len - 1];
  };
  finish(a, 0, clip_a, maskA, sa);
  finish(b, 1, clip_b, maskB, sb);
}

}  // namespace

namespace internal {
RowKernelFn Avx2Kernel() { return &RowAvx2; }
RowKernelFn Avx2I16Kernel() { return &RowAvx2I16; }
PairKernelFn Avx2I16PairKernel() { return &RowPairAvx2I16; }
}  // namespace internal

}  // namespace simd
}  // namespace alae

#else  // !__AVX2__

namespace alae {
namespace simd {
namespace internal {
RowKernelFn Avx2Kernel() { return nullptr; }
RowKernelFn Avx2I16Kernel() { return nullptr; }
PairKernelFn Avx2I16PairKernel() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace alae

#endif
