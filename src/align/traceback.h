#ifndef ALAE_ALIGN_TRACEBACK_H_
#define ALAE_ALIGN_TRACEBACK_H_

#include <cstdint>
#include <string>

#include "src/align/scoring.h"
#include "src/io/sequence.h"

namespace alae {

// A reconstructed local alignment: coordinates (0-based, inclusive), the
// CIGAR string (M = match/mismatch column, I = insertion in the text /
// gap in the query, D = deletion from the text / gap in the text row),
// and a three-row pretty rendering.
//
// The search engines report end pairs and scores (the paper's A(i,j));
// users who need the alignment itself call TracebackAlignment, which
// recomputes a windowed Gotoh matrix behind the end pair and walks the
// optimal path. This mirrors how BLAST-family tools separate scanning
// from alignment rendering.
struct AlignmentPath {
  int64_t text_begin = 0, text_end = -1;    // inclusive
  int64_t query_begin = 0, query_end = -1;  // inclusive
  int32_t score = 0;
  int64_t matches = 0;      // identical columns
  int64_t mismatches = 0;   // substituted columns
  int64_t gap_columns = 0;  // inserted + deleted characters
  std::string cigar;

  // Identity over aligned columns (matches / (matches+mismatches+gaps)).
  double Identity() const;

  // Three-line rendering: text row, midline (| match, space otherwise),
  // query row; wrapped at `width` columns.
  std::string Pretty(const Sequence& text, const Sequence& query,
                     size_t width = 60) const;
};

struct TracebackOptions {
  // The DP window extends this far up/left of the end pair; alignments
  // longer than the window are truncated at the window edge (the window
  // defaults to generous multiples of typical local-alignment lengths).
  int64_t max_window = 2048;
};

// Reconstructs the best local alignment ending exactly at
// (text_end, query_end). Returns score 0 / empty cigar when no positive
// alignment ends there.
AlignmentPath TracebackAlignment(const Sequence& text, const Sequence& query,
                                 int64_t text_end, int64_t query_end,
                                 const ScoringScheme& scheme,
                                 const TracebackOptions& options = {});

}  // namespace alae

#endif  // ALAE_ALIGN_TRACEBACK_H_
