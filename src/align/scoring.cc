#include "src/align/scoring.h"

#include <algorithm>
#include <sstream>

namespace alae {

ScoringScheme ScoringScheme::Fig9(int idx) {
  switch (idx) {
    case 0: return {1, -3, -5, -2};
    case 1: return {1, -4, -5, -2};
    case 2: return {1, -1, -5, -2};
    default: return {1, -3, -2, -2};
  }
}

int32_t ScoringScheme::QPrefixLength() const {
  int32_t defect = std::min(-sb, -(sg + ss));
  return defect / sa + 1;
}

int32_t ScoringScheme::EffectiveQ(int32_t threshold) const {
  int32_t q = QPrefixLength();
  int32_t cap = (threshold + sa - 1) / sa;  // ceil(H / sa)
  return std::max(1, std::min(q, cap));
}

std::string ScoringScheme::ToString() const {
  std::ostringstream out;
  out << '<' << sa << ',' << sb << ',' << sg << ',' << ss << '>';
  return out.str();
}

int64_t LengthUpperBound(const ScoringScheme& s, int64_t m, int32_t threshold) {
  // Lmax = max{m, m + floor((H - (sa*m + sg)) / ss)} with ss < 0; the floor
  // of a division by a negative number must round toward -infinity.
  int64_t num = threshold - (static_cast<int64_t>(s.sa) * m + s.sg);
  int64_t den = s.ss;
  int64_t q = num / den;
  if ((num % den) != 0 && ((num < 0) != (den < 0))) --q;
  return std::max<int64_t>(m, m + q);
}

int64_t LengthLowerBound(const ScoringScheme& s, int32_t threshold) {
  return (threshold + s.sa - 1) / s.sa;
}

}  // namespace alae
