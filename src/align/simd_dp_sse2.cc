// SSE2 implementation of the shared affine-gap row kernel. Built without
// extra ISA flags: SSE2 is the x86-64 baseline, and the TU compiles to the
// scalar-stub variant elsewhere. SSE2 predates pmaxsd/palignr/pblendvb, so
// 32-bit max, lane shifts with a non-zero fill, and blends are all spelled
// out with compare/and/or.

#include "src/align/simd_dp.h"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))

#include <emmintrin.h>

#include <algorithm>

namespace alae {
namespace simd {
namespace {

inline __m128i Max32(__m128i a, __m128i b) {
  __m128i gt = _mm_cmpgt_epi32(a, b);
  return _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b));
}

inline __m128i Blend(__m128i mask, __m128i on, __m128i off) {
  return _mm_or_si128(_mm_and_si128(mask, on), _mm_andnot_si128(mask, off));
}

inline int32_t Lane3(__m128i v) {
  return _mm_cvtsi128_si32(_mm_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 3, 3)));
}

void RowSse2(const RowSpec& spec, RowStats* stats) {
  // Below kMinVectorRow the (inlined) scalar loop wins outright and skips
  // the constant setup — the same cutoff every tier uses, so ComputeRow
  // and ComputeRowAuto take the same path for any length.
  if (spec.len < kMinVectorRow) {
    internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
    return;
  }
  const int32_t ss = spec.gap_extend;
  const int32_t oe = spec.gap_open_extend;
  // Identity for the max scan: below any reachable score, above wrap-around.
  constexpr int32_t kFill = std::numeric_limits<int32_t>::min() / 2;
  const __m128i vfill = _mm_set1_epi32(kFill);
  const __m128i vss = _mm_set1_epi32(ss);
  const __m128i voe = _mm_set1_epi32(oe);
  const __m128i voe_minus_ss = _mm_set1_epi32(oe - ss);
  const __m128i vninf = _mm_set1_epi32(kNegInf);
  const __m128i vbase = _mm_set1_epi32(spec.bound_base);
  const __m128i mask_lane0 = _mm_setr_epi32(-1, 0, 0, 0);
  const __m128i mask_lane01 = _mm_setr_epi32(-1, -1, 0, 0);

  // k*ss and the affine column bound per lane, advanced by adds per block
  // (SSE2 has no 32-bit multiply).
  __m128i vkss = _mm_setr_epi32(0, ss, 2 * ss, 3 * ss);
  const __m128i vkss_step = _mm_set1_epi32(4 * ss);
  const int32_t bstep = spec.bound_step;
  __m128i vcol = _mm_setr_epi32(spec.bound0, spec.bound0 + bstep,
                                spec.bound0 + 2 * bstep, spec.bound0 + 3 * bstep);
  const __m128i vcol_step = _mm_set1_epi32(4 * bstep);

  int32_t carry = spec.gb_init;  // running max(gb_init, w(0..k-1))
  __m128i last_gb = vninf, last_mu = vninf;  // lane 3 extracted after the loop
  int64_t k = 0;
  for (; k + 4 <= spec.len; k += 4) {
    __m128i pm = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(spec.prev_m + k));
    __m128i pg = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(spec.prev_ga + k));
    __m128i dm = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(spec.prev_diag_m + k));
    __m128i dl = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(spec.delta + k));

    __m128i ga =
        Max32(Max32(_mm_add_epi32(pg, vss), _mm_add_epi32(pm, voe)), vninf);
    // Absorbing diagonal: a sentinel prev_diag_m stays a sentinel even
    // under a positive delta.
    __m128i diag = Blend(_mm_cmpeq_epi32(dm, vninf), vninf,
                         _mm_add_epi32(dm, dl));
    __m128i tmp = Max32(diag, ga);

    // Gb as a weighted max-prefix scan: with w(k) = tmp(k)+oe-(k+1)*ss,
    // Gb(k) = k*ss + max(gb_init, max_{j<k} w(j)). The per-step kNegInf
    // floor of the contract commutes with the scan (floored-out chain
    // terms decay below any later floor), so one floor of the scan result
    // is exact.
    __m128i w = _mm_sub_epi32(_mm_add_epi32(tmp, voe_minus_ss), vkss);
    __m128i x = Max32(w, Blend(mask_lane0, vfill, _mm_slli_si128(w, 4)));
    x = Max32(x, Blend(mask_lane01, vfill, _mm_slli_si128(x, 8)));
    __m128i excl = Blend(mask_lane0, vfill, _mm_slli_si128(x, 4));
    excl = Max32(excl, _mm_set1_epi32(carry));
    __m128i gb = Max32(_mm_add_epi32(excl, vkss), vninf);
    carry = std::max(carry, Lane3(x));

    __m128i mu = Max32(tmp, gb);
    __m128i bound = Max32(vbase, vcol);
    __m128i alive = _mm_cmpgt_epi32(mu, bound);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(spec.out_m + k),
                     Blend(alive, mu, vninf));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(spec.out_ga + k), ga);
    if (spec.out_gb != nullptr) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(spec.out_gb + k), gb);
    }
    int mask = _mm_movemask_ps(_mm_castsi128_ps(alive));
    if (mask != 0) {
      if (stats->first_alive < 0) {
        stats->first_alive = k + __builtin_ctz(static_cast<unsigned>(mask));
      }
      stats->last_alive = k + 31 - __builtin_clz(static_cast<unsigned>(mask));
    }
    last_gb = gb;
    last_mu = mu;

    vkss = _mm_add_epi32(vkss, vkss_step);
    vcol = _mm_add_epi32(vcol, vcol_step);
  }
  int32_t gb_last = kNegInf, mu_last = kNegInf;
  if (k > 0) {
    gb_last = Lane3(last_gb);
    mu_last = Lane3(last_mu);
    stats->gb_last = gb_last;
    stats->mu_last = mu_last;
  }
  internal::RowScalarTail(spec, k, gb_last, mu_last, stats);
}

}  // namespace

namespace internal {
RowKernelFn Sse2Kernel() { return &RowSse2; }
}  // namespace internal

}  // namespace simd
}  // namespace alae

#else  // !SSE2

namespace alae {
namespace simd {
namespace internal {
RowKernelFn Sse2Kernel() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace alae

#endif
