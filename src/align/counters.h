#ifndef ALAE_ALIGN_COUNTERS_H_
#define ALAE_ALIGN_COUNTERS_H_

#include <cstdint>

namespace alae {

// Instrumentation shared by the exact engines; feeds Tables 4/5 and the
// filtering/reusing ratios of Figs 7 and 10.
//
// Cost classes follow the paper's accounting (§7.2, Table 4): a cell whose
// recurrence touches one predecessor (the simplified Eq. 3 used in no-gap
// regions) costs 1, a fork-boundary cell with two live predecessors costs
// 2, and a full affine cell (M, Ga, Gb) costs 3. BWT-SW computes every cell
// at cost 3. EMR cells are assigned, not calculated, and count only as
// accessed.
struct DpCounters {
  uint64_t cells_cost1 = 0;
  uint64_t cells_cost2 = 0;
  uint64_t cells_cost3 = 0;
  uint64_t assigned = 0;        // EMR cells (sa*i, no recurrence)
  uint64_t reused = 0;          // cells copied from an earlier fork (§4)
  uint64_t forks_opened = 0;
  uint64_t forks_skipped_domination = 0;
  uint64_t forks_skipped_bitset = 0;
  uint64_t trie_nodes_visited = 0;

  // FM-index hot path: single-symbol backward-search steps (pattern/q-gram
  // descent), batched sigma-way extends (one per expanded trie node), and
  // LF walk steps spent locating hit positions.
  uint64_t fm_extends = 0;
  uint64_t fm_extend_alls = 0;
  uint64_t fm_lf_steps = 0;
  // Singleton-chain steps served by a direct text read after the chain
  // crossed an SA sample (each replaces one fm_extend AND the LF walk the
  // hit's Locate would later have spent).
  uint64_t fm_text_steps = 0;

  uint64_t Calculated() const {
    return cells_cost1 + cells_cost2 + cells_cost3;
  }
  uint64_t Accessed() const { return Calculated() + reused + assigned; }
  uint64_t ComputationCost() const {
    return cells_cost1 + 2 * cells_cost2 + 3 * cells_cost3;
  }

  void Merge(const DpCounters& o) {
    cells_cost1 += o.cells_cost1;
    cells_cost2 += o.cells_cost2;
    cells_cost3 += o.cells_cost3;
    assigned += o.assigned;
    reused += o.reused;
    forks_opened += o.forks_opened;
    forks_skipped_domination += o.forks_skipped_domination;
    forks_skipped_bitset += o.forks_skipped_bitset;
    trie_nodes_visited += o.trie_nodes_visited;
    fm_extends += o.fm_extends;
    fm_extend_alls += o.fm_extend_alls;
    fm_lf_steps += o.fm_lf_steps;
    fm_text_steps += o.fm_text_steps;
  }

  void Reset() { *this = DpCounters(); }
};

}  // namespace alae

#endif  // ALAE_ALIGN_COUNTERS_H_
