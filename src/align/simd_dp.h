#ifndef ALAE_ALIGN_SIMD_DP_H_
#define ALAE_ALIGN_SIMD_DP_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace alae {

// Sentinel for -infinity that survives additions without overflow. The
// recurrence is absorbing in it (see the RowSpec contract): every stored
// value and every chain value is either exactly kNegInf or a real score.
constexpr int32_t kNegInf = std::numeric_limits<int32_t>::min() / 4;

namespace simd {

// One dense affine-gap DP row segment over query columns
// [lo, lo + Size()): structure-of-arrays int32 lanes, exactly the layout
// the row kernel consumes and produces. Interior dead cells hold kNegInf
// in the M lane. The Gb lane is optional — ALAE stores it because reuse
// copies re-enter a row mid-chain; BWT-SW never re-reads Gb across rows
// and leaves it empty.
struct DpRow {
  int64_t lo = 0;
  std::vector<int32_t> m, ga, gb;

  int64_t Size() const { return static_cast<int64_t>(m.size()); }
  int64_t hi() const { return lo + Size() - 1; }  // -1 + lo when empty
  bool Empty() const { return m.empty(); }

  void Clear() {
    m.clear();
    ga.clear();
    gb.clear();
  }

  void PushCell(int32_t mv, int32_t gav, int32_t gbv) {
    m.push_back(mv);
    ga.push_back(gav);
    gb.push_back(gbv);
  }
};

// One row step of the paper's §2.2 affine recurrence over a contiguous
// column window, cell k = 0..len-1 (column col0 + k for the caller):
//
//   Ga(k) = max(prev_ga[k] + gap_extend, prev_m[k] + gap_open_extend,
//               kNegInf)
//   Gb(k) = max(Gb(k-1) + gap_extend, M~(k-1) + gap_open_extend, kNegInf),
//           Gb(0) = max(gb_init, kNegInf)
//   D(k)  = prev_diag_m[k] == kNegInf ? kNegInf
//                                     : prev_diag_m[k] + delta[k]
//   M~(k) = max(D(k), Ga(k), Gb(k))
//   bound(k) = max(bound_base, bound0 + k * bound_step)
//   out_m[k] = M~(k) > bound(k) ? M~(k) : kNegInf
//
// out_ga/out_gb receive the Ga/Gb chains as defined above. Two deliberate
// deviations from a textbook recurrence, both exact for hit sets:
//
// "Soft clipping": unlike the former scalar engine rows, a pruned cell
// does not reset the gap chains — they decay freely. This is exact
// whenever bound is non-decreasing along the row and across successive
// rows (true for the ALAE score filter and for BWT-SW's positivity rule):
// any chain value that passed through a pruned cell is <= that cell's
// bound, decays monotonically, and so can never exceed a later bound — it
// never changes which cells survive nor their scores. Dropping the reset
// is what turns the Gb column dependence into a weighted max-prefix scan,
// the vectorizable form.
//
// "Absorbing sentinel": kNegInf is an exact fixed point of the
// arithmetic — a sentinel input yields a sentinel output (the per-step
// kNegInf floor absorbs the negative gap additions, and D() absorbs the
// possibly-positive delta explicitly), so no kernel value ever sits in
// the open interval just above kNegInf where int32 drift used to land.
// Values there are as dead as the sentinel (bounds are >= 0, chains only
// decay), so collapsing them changes no survivor and no score; what it
// buys is a narrow-integer tier: with every value either exactly kNegInf
// or a real score of bounded magnitude, kNegInf maps 1:1 onto the int16
// saturation floor -32768 and the int16 kernel can be bit-exact against
// this spec (out-of-range reals are detected and rerun in int32 — see
// DpTier::kAvx2i16).
//
// Preconditions: len >= 1, gap_extend < 0, gap_open_extend <= gap_extend
// (i.e. gap open cost <= 0), bound_base >= 0, bound_step >= 0, all input
// scores in [kNegInf, INT32_MAX/4).
struct RowSpec {
  const int32_t* prev_m = nullptr;       // M(i-1) at the same column
  const int32_t* prev_ga = nullptr;      // Ga(i-1) at the same column
  const int32_t* prev_diag_m = nullptr;  // M(i-1) at the column to the left
  const int32_t* delta = nullptr;        // substitution score per column
  int32_t* out_m = nullptr;
  int32_t* out_ga = nullptr;
  int32_t* out_gb = nullptr;  // may be nullptr when the caller discards Gb
  int64_t len = 0;
  int32_t gap_extend = -1;       // ss
  int32_t gap_open_extend = -2;  // sg + ss
  int32_t gb_init = kNegInf;     // Gb entering cell 0 (carry already folded)
  int32_t bound_base = 0;
  int32_t bound0 = kNegInf;
  int32_t bound_step = 0;
};

// Per-call outputs beyond the row arrays: the surviving-cell window and the
// chain state after the last cell, which callers feed into the scalar Gb
// spill that may extend the row rightward.
struct RowStats {
  int64_t first_alive = -1;  // smallest k with out_m[k] != kNegInf
  int64_t last_alive = -1;
  int32_t gb_last = kNegInf;  // Gb(len-1), floored at kNegInf
  int32_t mu_last = kNegInf;  // M~(len-1), before bound clipping
};

using RowKernelFn = void (*)(const RowSpec&, RowStats*);
using PairKernelFn = void (*)(const RowSpec&, const RowSpec&, RowStats*,
                              RowStats*);

// Dispatch tiers, ordered by preference. kScalar is always available and is
// the differential oracle the vector kernels are tested against. kAvx2i16
// runs the compute chain in saturating int16 (16 cells per instruction)
// with load-time range detection: a row whose scores cannot be represented
// exactly is rerun through the int32 AVX2 kernel, so results are bit-exact
// regardless of tier.
enum class DpTier { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx2i16 = 3 };

// Computes one row through the currently dispatched kernel.
void ComputeRow(const RowSpec& spec, RowStats* stats);

// Rows narrower than one AVX2 block gain nothing from any vector tier; the
// dispatched kernels all fall back to the same scalar loop for them.
inline constexpr int64_t kMinVectorRow = 8;

// The scalar reference kernel (also the non-x86 fallback).
void ComputeRowScalar(const RowSpec& spec, RowStats* stats);

// The tier ComputeRow currently dispatches to. Resolved once from cpuid on
// first use; SetDpTier overrides it (returns false and leaves the dispatch
// unchanged when the requested tier is not supported on this host/build).
DpTier ActiveDpTier();
bool DpTierSupported(DpTier tier);
bool SetDpTier(DpTier tier);
const char* DpTierName(DpTier tier);

namespace internal {
// Per-ISA translation units report their kernel, or nullptr when the TU was
// compiled without that instruction set (see CMake flag probing).
RowKernelFn Sse2Kernel();
RowKernelFn Avx2Kernel();
RowKernelFn Avx2I16Kernel();
PairKernelFn Avx2I16PairKernel();

// Continues the row recurrence cell by cell from k0 with chain state
// (gb_prev, mu_prev) = raw Gb/M~ of cell k0-1 (ignored when k0 == 0).
// Shared remainder loop of every kernel; merges alive/chain info into
// *stats without resetting what the vector prefix recorded. Inline in the
// header: the ISA kernel TUs are built without LTO, and engine rows are
// frequently short enough that this loop IS the kernel — an opaque
// cross-TU call per row would dominate it.
inline void RowScalarTail(const RowSpec& spec, int64_t k0, int32_t gb_prev,
                          int32_t mu_prev, RowStats* stats) {
  const int32_t ss = spec.gap_extend;
  const int32_t oe = spec.gap_open_extend;
  // bound_col may walk past INT32 range only if len * step overflows, which
  // the caller precondition (scores and bounds within INT32_MAX/4) rules
  // out.
  int32_t bound_col = static_cast<int32_t>(spec.bound0 + k0 * spec.bound_step);
  for (int64_t k = k0; k < spec.len; ++k) {
    int32_t ga = spec.prev_ga[k] + ss > spec.prev_m[k] + oe
                     ? spec.prev_ga[k] + ss
                     : spec.prev_m[k] + oe;
    if (ga < kNegInf) ga = kNegInf;
    int32_t diag = spec.prev_diag_m[k] == kNegInf
                       ? kNegInf
                       : spec.prev_diag_m[k] + spec.delta[k];
    int32_t tmp = diag > ga ? diag : ga;
    int32_t gb;
    if (k == 0) {
      gb = spec.gb_init;
    } else {
      gb = gb_prev + ss > mu_prev + oe ? gb_prev + ss : mu_prev + oe;
    }
    if (gb < kNegInf) gb = kNegInf;
    int32_t mu = tmp > gb ? tmp : gb;
    int32_t bound = spec.bound_base > bound_col ? spec.bound_base : bound_col;
    bound_col += spec.bound_step;
    if (mu > bound) {
      spec.out_m[k] = mu;
      if (stats->first_alive < 0) stats->first_alive = k;
      stats->last_alive = k;
    } else {
      spec.out_m[k] = kNegInf;
    }
    spec.out_ga[k] = ga;
    if (spec.out_gb != nullptr) spec.out_gb[k] = gb;
    gb_prev = gb;
    mu_prev = mu;
  }
  if (k0 < spec.len) {
    stats->gb_last = gb_prev;
    stats->mu_last = mu_prev;
  }
}
}  // namespace internal

// ComputeRow with the short-row cutoff hoisted to the call site: narrow
// rows run the header-inline scalar loop directly (letting the caller's TU
// constant-fold the spec), everything else goes through the dispatch. The
// result is identical either way — the vector kernels delegate short rows
// to the same loop.
inline void ComputeRowAuto(const RowSpec& spec, RowStats* stats) {
  if (spec.len < kMinVectorRow) {
    internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
  } else {
    ComputeRow(spec, stats);
  }
}

// Computes two INDEPENDENT rows (no data dependence between them) in one
// call. Identical to ComputeRowAuto on each spec; under the int16 tier,
// rows of 1..8 cells each are computed together in one 16-lane kernel pass
// — row a in the low 128-bit lane, row b in the high lane — so the vector
// lanes a narrow row leaves empty do the other row's work. Results are
// bit-exact against sequential ComputeRowAuto calls in every case.
void ComputeRowPair(const RowSpec& a, const RowSpec& b, RowStats* sa,
                    RowStats* sb);

}  // namespace simd
}  // namespace alae

#endif  // ALAE_ALIGN_SIMD_DP_H_
