#include "src/align/simd_dp.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace alae {
namespace simd {

void ComputeRowScalar(const RowSpec& spec, RowStats* stats) {
  assert(spec.len >= 1);
  assert(spec.gap_extend < 0 && spec.gap_open_extend <= spec.gap_extend);
  internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
}

namespace {

RowKernelFn KernelFor(DpTier tier) {
  switch (tier) {
    case DpTier::kAvx2:
      return internal::Avx2Kernel();
    case DpTier::kSse2:
      return internal::Sse2Kernel();
    case DpTier::kScalar:
      return &ComputeRowScalar;
  }
  return &ComputeRowScalar;
}

bool CpuSupports(DpTier tier) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (tier) {
    case DpTier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case DpTier::kSse2:
      return __builtin_cpu_supports("sse2");
    case DpTier::kScalar:
      return true;
  }
#endif
  return tier == DpTier::kScalar;
}

DpTier DetectTier() {
  if (KernelFor(DpTier::kAvx2) != nullptr && CpuSupports(DpTier::kAvx2)) {
    return DpTier::kAvx2;
  }
  if (KernelFor(DpTier::kSse2) != nullptr && CpuSupports(DpTier::kSse2)) {
    return DpTier::kSse2;
  }
  return DpTier::kScalar;
}

struct Dispatch {
  std::atomic<RowKernelFn> fn;
  std::atomic<DpTier> tier;
  Dispatch() {
    DpTier t = DetectTier();
    tier.store(t, std::memory_order_relaxed);
    fn.store(KernelFor(t), std::memory_order_relaxed);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;  // magic static: thread-safe one-time cpuid
  return dispatch;
}

}  // namespace

void ComputeRow(const RowSpec& spec, RowStats* stats) {
  GetDispatch().fn.load(std::memory_order_relaxed)(spec, stats);
}

DpTier ActiveDpTier() {
  return GetDispatch().tier.load(std::memory_order_relaxed);
}

bool DpTierSupported(DpTier tier) {
  return KernelFor(tier) != nullptr && CpuSupports(tier);
}

bool SetDpTier(DpTier tier) {
  if (!DpTierSupported(tier)) return false;
  Dispatch& d = GetDispatch();
  d.tier.store(tier, std::memory_order_relaxed);
  d.fn.store(KernelFor(tier), std::memory_order_relaxed);
  return true;
}

const char* DpTierName(DpTier tier) {
  switch (tier) {
    case DpTier::kAvx2:
      return "avx2";
    case DpTier::kSse2:
      return "sse2";
    case DpTier::kScalar:
      return "scalar";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace alae
