#include "src/align/simd_dp.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace alae {
namespace simd {

void ComputeRowScalar(const RowSpec& spec, RowStats* stats) {
  assert(spec.len >= 1);
  assert(spec.gap_extend < 0 && spec.gap_open_extend <= spec.gap_extend);
  internal::RowScalarTail(spec, 0, kNegInf, kNegInf, stats);
}

namespace {

RowKernelFn KernelFor(DpTier tier) {
  switch (tier) {
    case DpTier::kAvx2i16:
      return internal::Avx2I16Kernel();
    case DpTier::kAvx2:
      return internal::Avx2Kernel();
    case DpTier::kSse2:
      return internal::Sse2Kernel();
    case DpTier::kScalar:
      return &ComputeRowScalar;
  }
  return &ComputeRowScalar;
}

bool CpuSupports(DpTier tier) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (tier) {
    case DpTier::kAvx2i16:
    case DpTier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case DpTier::kSse2:
      return __builtin_cpu_supports("sse2");
    case DpTier::kScalar:
      return true;
  }
#endif
  return tier == DpTier::kScalar;
}

DpTier DetectTier() {
  // The int32 AVX2 kernel wins on standalone rows (the int16 tier's
  // pack/unpack and range checks eat its ALU-width advantage when inputs
  // and outputs stay int32 in memory — see bench_dp); the int16 kernel's
  // real edge is the 16-lane *pair* batching, which ComputeRowPair uses
  // under any AVX2-capable dispatch. So the resolved default is kAvx2,
  // with kAvx2i16 still selectable through SetDpTier.
  if (KernelFor(DpTier::kAvx2) != nullptr && CpuSupports(DpTier::kAvx2)) {
    return DpTier::kAvx2;
  }
  if (KernelFor(DpTier::kAvx2i16) != nullptr &&
      CpuSupports(DpTier::kAvx2i16)) {
    return DpTier::kAvx2i16;
  }
  if (KernelFor(DpTier::kSse2) != nullptr && CpuSupports(DpTier::kSse2)) {
    return DpTier::kSse2;
  }
  return DpTier::kScalar;
}

struct Dispatch {
  std::atomic<RowKernelFn> fn;
  std::atomic<DpTier> tier;
  Dispatch() {
    DpTier t = DetectTier();
    tier.store(t, std::memory_order_relaxed);
    fn.store(KernelFor(t), std::memory_order_relaxed);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;  // magic static: thread-safe one-time cpuid
  return dispatch;
}

}  // namespace

void ComputeRow(const RowSpec& spec, RowStats* stats) {
  GetDispatch().fn.load(std::memory_order_relaxed)(spec, stats);
}

void ComputeRowPair(const RowSpec& a, const RowSpec& b, RowStats* sa,
                    RowStats* sb) {
  // The int16 pair kernel is where narrow-row batching pays (two fork rows
  // share one 16-lane pass); it is bit-exact against the scalar spec, so
  // any AVX2-capable dispatch uses it — including the default int32 tier,
  // where standalone rows are faster in int32 but paired narrow rows are
  // not. Scalar/SSE2 dispatches keep pairs on the sequential path.
  if (ActiveDpTier() >= DpTier::kAvx2 && CpuSupports(DpTier::kAvx2i16)) {
    PairKernelFn fn = internal::Avx2I16PairKernel();
    if (fn != nullptr) {
      fn(a, b, sa, sb);
      return;
    }
  }
  ComputeRowAuto(a, sa);
  ComputeRowAuto(b, sb);
}

DpTier ActiveDpTier() {
  return GetDispatch().tier.load(std::memory_order_relaxed);
}

bool DpTierSupported(DpTier tier) {
  return KernelFor(tier) != nullptr && CpuSupports(tier);
}

bool SetDpTier(DpTier tier) {
  if (!DpTierSupported(tier)) return false;
  Dispatch& d = GetDispatch();
  d.tier.store(tier, std::memory_order_relaxed);
  d.fn.store(KernelFor(tier), std::memory_order_relaxed);
  return true;
}

const char* DpTierName(DpTier tier) {
  switch (tier) {
    case DpTier::kAvx2i16:
      return "avx2_i16";
    case DpTier::kAvx2:
      return "avx2";
    case DpTier::kSse2:
      return "sse2";
    case DpTier::kScalar:
      return "scalar";
  }
  return "unknown";
}

}  // namespace simd
}  // namespace alae
