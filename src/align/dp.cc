#include "src/align/dp.h"

#include <algorithm>

namespace alae {

DpMatrix ComputeMatrix(const std::vector<Symbol>& x,
                       const std::vector<Symbol>& p,
                       const ScoringScheme& scheme) {
  DpMatrix dp;
  dp.rows = static_cast<int64_t>(x.size());
  dp.cols = static_cast<int64_t>(p.size());
  size_t cells = static_cast<size_t>((dp.rows + 1) * (dp.cols + 1));
  dp.m.assign(cells, kNegInf);
  dp.ga.assign(cells, kNegInf);
  dp.gb.assign(cells, kNegInf);

  for (int64_t j = 0; j <= dp.cols; ++j) dp.M(0, j) = 0;
  for (int64_t i = 1; i <= dp.rows; ++i) {
    dp.M(i, 0) = scheme.sg + static_cast<int32_t>(i) * scheme.ss;
  }
  for (int64_t i = 1; i <= dp.rows; ++i) {
    for (int64_t j = 1; j <= dp.cols; ++j) {
      int32_t ga = std::max(dp.Ga(i - 1, j) + scheme.ss,
                            dp.M(i - 1, j) + scheme.sg + scheme.ss);
      int32_t gb = std::max(dp.Gb(i, j - 1) + scheme.ss,
                            dp.M(i, j - 1) + scheme.sg + scheme.ss);
      int32_t diag = dp.M(i - 1, j - 1) +
                     scheme.Delta(x[static_cast<size_t>(i - 1)],
                                  p[static_cast<size_t>(j - 1)]);
      dp.Ga(i, j) = ga;
      dp.Gb(i, j) = gb;
      dp.M(i, j) = std::max({diag, ga, gb});
    }
  }
  return dp;
}

int32_t BestLocalScore(const Sequence& a, const Sequence& b,
                       const ScoringScheme& scheme) {
  // Standard Gotoh local alignment, two rolling rows.
  int64_t n = static_cast<int64_t>(a.size());
  int64_t m = static_cast<int64_t>(b.size());
  std::vector<int32_t> h_prev(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> h_cur(static_cast<size_t>(m + 1), 0);
  std::vector<int32_t> e(static_cast<size_t>(m + 1), kNegInf);  // gap in a
  int32_t best = 0;
  for (int64_t i = 1; i <= n; ++i) {
    int32_t f = kNegInf;  // gap in b within this row
    h_cur[0] = 0;
    for (int64_t j = 1; j <= m; ++j) {
      e[static_cast<size_t>(j)] =
          std::max(e[static_cast<size_t>(j)] + scheme.ss,
                   h_prev[static_cast<size_t>(j)] + scheme.sg + scheme.ss);
      f = std::max(f + scheme.ss,
                   h_cur[static_cast<size_t>(j - 1)] + scheme.sg + scheme.ss);
      int32_t diag = h_prev[static_cast<size_t>(j - 1)] +
                     scheme.Delta(a[static_cast<size_t>(i - 1)],
                                  b[static_cast<size_t>(j - 1)]);
      int32_t h = std::max({0, diag, e[static_cast<size_t>(j)], f});
      h_cur[static_cast<size_t>(j)] = h;
      best = std::max(best, h);
    }
    std::swap(h_prev, h_cur);
  }
  return best;
}

std::vector<int32_t> BuildDeltaProfile(const ScoringScheme& scheme,
                                       const Sequence& query) {
  const size_t sigma = static_cast<size_t>(query.sigma());
  const size_t m = query.size();
  std::vector<int32_t> profile(sigma * m);
  for (size_t c = 0; c < sigma; ++c) {
    for (size_t j = 0; j < m; ++j) {
      profile[c * m + j] = scheme.Delta(static_cast<Symbol>(c), query[j]);
    }
  }
  return profile;
}

}  // namespace alae
