#ifndef ALAE_ALIGN_SCORING_H_
#define ALAE_ALIGN_SCORING_H_

#include <cstdint>
#include <string>

#include "src/io/sequence.h"

namespace alae {

// Affine-gap scoring scheme <sa, sb, sg, ss> (paper §2.1): match reward
// sa > 0, mismatch penalty sb < 0, and a gap of r characters costs
// sg + r*ss with sg < 0 (open) and ss < 0 (extend per character).
struct ScoringScheme {
  int32_t sa = 1;    // match (> 0)
  int32_t sb = -3;   // mismatch (< 0)
  int32_t sg = -5;   // gap open (< 0)
  int32_t ss = -2;   // gap extend (< 0)

  // The default of both BLAST and BWT-SW, used throughout the paper.
  static ScoringScheme Default() { return {1, -3, -5, -2}; }

  // The four representative schemes of Fig 9 / Fig 10.
  static ScoringScheme Fig9(int idx);

  bool Valid() const { return sa > 0 && sb < 0 && sg < 0 && ss < 0; }

  int32_t Delta(Symbol a, Symbol b) const { return a == b ? sa : sb; }

  // Cost of a gap of r >= 1 characters.
  int32_t GapCost(int32_t r) const { return sg + r * ss; }

  // q-prefix length (paper Eq. 2): every meaningful fork starts with q
  // exact matches because a defect within the first q positions drives the
  // running score non-positive.
  int32_t QPrefixLength() const;

  // Effective q for a threshold H: the fork decomposition is exact only
  // when H >= q*sa, so q shrinks to ceil(H/sa) for small thresholds
  // (see DESIGN.md, "Exactness caveat").
  int32_t EffectiveQ(int32_t threshold) const;

  // FGOE threshold |sg + ss| (paper §3.1.3): a gap region can only open
  // from a diagonal entry whose score exceeds this value.
  int32_t FgoeThreshold() const { return -(sg + ss); }

  std::string ToString() const;

  bool operator==(const ScoringScheme& o) const {
    return sa == o.sa && sb == o.sb && sg == o.sg && ss == o.ss;
  }
};

// Length-filter upper bound Lmax (paper Theorem 1): the longest text-side
// substring worth aligning against a query of length m under threshold H.
int64_t LengthUpperBound(const ScoringScheme& s, int64_t m, int32_t threshold);

// Length-filter lower bound ceil(H / sa).
int64_t LengthLowerBound(const ScoringScheme& s, int32_t threshold);

}  // namespace alae

#endif  // ALAE_ALIGN_SCORING_H_
