#include "src/align/result.h"

#include <algorithm>

namespace alae {

void ResultCollector::Add(int64_t text_end, int64_t query_end, int32_t score,
                          int64_t text_start) {
  uint64_t key = Key(text_end, query_end);
  auto [it, inserted] = hits_.try_emplace(
      key, AlignmentHit{text_end, query_end, score, text_start});
  if (!inserted && score > it->second.score) {
    it->second.score = score;
    it->second.text_start = text_start;
  }
  if (score > best_score_) best_score_ = score;
}

std::vector<AlignmentHit> ResultCollector::Sorted() const {
  std::vector<AlignmentHit> out;
  out.reserve(hits_.size());
  for (const auto& [k, hit] : hits_) {
    (void)k;
    out.push_back(hit);
  }
  std::sort(out.begin(), out.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              if (a.text_end != b.text_end) return a.text_end < b.text_end;
              return a.query_end < b.query_end;
            });
  return out;
}

void ResultCollector::Clear() {
  hits_.clear();
  best_score_ = 0;
}

}  // namespace alae
