#include "src/align/traceback.h"

#include <algorithm>
#include <vector>

#include "src/align/dp.h"

namespace alae {
namespace {

// Traceback states per cell, 2 bits each for H/E/F provenance.
enum HFrom : uint8_t { kHZero = 0, kHDiag = 1, kHE = 2, kHF = 3 };
enum GapFrom : uint8_t { kGapOpen = 0, kGapExtend = 1 };

struct CellTrace {
  uint8_t h_from : 2;
  uint8_t e_from : 1;  // E = gap in query (vertical, consumes text)
  uint8_t f_from : 1;  // F = gap in text (horizontal, consumes query)
};

}  // namespace

double AlignmentPath::Identity() const {
  int64_t cols = matches + mismatches + gap_columns;
  return cols > 0 ? static_cast<double>(matches) / static_cast<double>(cols)
                  : 0.0;
}

std::string AlignmentPath::Pretty(const Sequence& text, const Sequence& query,
                                  size_t width) const {
  std::string top, mid, bot;
  int64_t t = text_begin, p = query_begin;
  // Expand the CIGAR into columns.
  int64_t run = 0;
  for (char c : cigar) {
    if (c >= '0' && c <= '9') {
      run = run * 10 + (c - '0');
      continue;
    }
    for (int64_t k = 0; k < run; ++k) {
      switch (c) {
        case 'M': {
          char a = text.alphabet().CharOf(text[static_cast<size_t>(t)]);
          char b = query.alphabet().CharOf(query[static_cast<size_t>(p)]);
          top.push_back(a);
          bot.push_back(b);
          mid.push_back(a == b ? '|' : ' ');
          ++t;
          ++p;
          break;
        }
        case 'D':  // consumes text only
          top.push_back(text.alphabet().CharOf(text[static_cast<size_t>(t)]));
          bot.push_back('-');
          mid.push_back(' ');
          ++t;
          break;
        case 'I':  // consumes query only
          top.push_back('-');
          bot.push_back(query.alphabet().CharOf(query[static_cast<size_t>(p)]));
          mid.push_back(' ');
          ++p;
          break;
        default:
          break;
      }
    }
    run = 0;
  }
  std::string out;
  for (size_t at = 0; at < top.size(); at += width) {
    size_t len = std::min(width, top.size() - at);
    out += "T " + top.substr(at, len) + "\n";
    out += "  " + mid.substr(at, len) + "\n";
    out += "Q " + bot.substr(at, len) + "\n";
    if (at + width < top.size()) out += "\n";
  }
  return out;
}

AlignmentPath TracebackAlignment(const Sequence& text, const Sequence& query,
                                 int64_t text_end, int64_t query_end,
                                 const ScoringScheme& scheme,
                                 const TracebackOptions& options) {
  AlignmentPath path;
  path.text_end = text_end;
  path.query_end = query_end;
  if (text_end < 0 || query_end < 0 ||
      text_end >= static_cast<int64_t>(text.size()) ||
      query_end >= static_cast<int64_t>(query.size())) {
    return path;
  }
  // Window: rows cover text [t0, text_end], columns query [q0, query_end].
  int64_t rows = std::min<int64_t>(text_end + 1, options.max_window);
  int64_t cols = std::min<int64_t>(query_end + 1, options.max_window);
  int64_t t0 = text_end - rows + 1;
  int64_t q0 = query_end - cols + 1;

  // Full Gotoh over the window with traceback bits. H is local (max 0).
  std::vector<int32_t> h((rows + 1) * (cols + 1), 0);
  std::vector<int32_t> e((rows + 1) * (cols + 1), kNegInf);
  std::vector<int32_t> f((rows + 1) * (cols + 1), kNegInf);
  std::vector<CellTrace> trace((rows + 1) * (cols + 1), CellTrace{0, 0, 0});
  auto idx = [cols](int64_t i, int64_t j) {
    return static_cast<size_t>(i * (cols + 1) + j);
  };
  for (int64_t i = 1; i <= rows; ++i) {
    Symbol tc = text[static_cast<size_t>(t0 + i - 1)];
    for (int64_t j = 1; j <= cols; ++j) {
      Symbol qc = query[static_cast<size_t>(q0 + j - 1)];
      size_t cur = idx(i, j);
      CellTrace tr{0, 0, 0};
      int32_t e_open = h[idx(i - 1, j)] + scheme.sg + scheme.ss;
      int32_t e_ext = e[idx(i - 1, j)] + scheme.ss;
      e[cur] = std::max(e_open, e_ext);
      tr.e_from = e_ext > e_open ? kGapExtend : kGapOpen;
      int32_t f_open = h[idx(i, j - 1)] + scheme.sg + scheme.ss;
      int32_t f_ext = f[idx(i, j - 1)] + scheme.ss;
      f[cur] = std::max(f_open, f_ext);
      tr.f_from = f_ext > f_open ? kGapExtend : kGapOpen;
      int32_t diag = h[idx(i - 1, j - 1)] + scheme.Delta(tc, qc);
      int32_t best = 0;
      tr.h_from = kHZero;
      if (diag > best) {
        best = diag;
        tr.h_from = kHDiag;
      }
      if (e[cur] > best) {
        best = e[cur];
        tr.h_from = kHE;
      }
      if (f[cur] > best) {
        best = f[cur];
        tr.h_from = kHF;
      }
      h[cur] = best;
      trace[cur] = tr;
    }
  }

  path.score = h[idx(rows, cols)];
  if (path.score <= 0) {
    path.score = 0;
    return path;
  }

  // Walk back from the end cell.
  std::string ops;  // one char per column, reversed
  int64_t i = rows, j = cols;
  enum State { kInH, kInE, kInF } state = kInH;
  while (i > 0 || j > 0) {
    size_t cur = idx(i, j);
    if (state == kInH) {
      uint8_t from = trace[cur].h_from;
      if (from == kHZero) break;  // local alignment start
      if (from == kHDiag) {
        ops.push_back('M');
        --i;
        --j;
      } else if (from == kHE) {
        state = kInE;
      } else {
        state = kInF;
      }
    } else if (state == kInE) {
      // E consumed the text character at row i.
      uint8_t from = trace[cur].e_from;
      ops.push_back('D');
      --i;
      if (from == kGapOpen) state = kInH;
    } else {
      uint8_t from = trace[cur].f_from;
      ops.push_back('I');
      --j;
      if (from == kGapOpen) state = kInH;
    }
    if (i == 0 && j == 0) break;
  }
  std::reverse(ops.begin(), ops.end());

  path.text_begin = t0 + i;
  path.query_begin = q0 + j;
  // Compress ops into a CIGAR and count columns.
  int64_t tpos = path.text_begin, qpos = path.query_begin;
  char prev = 0;
  int64_t run = 0;
  for (char op : ops) {
    if (op == 'M') {
      bool same = text[static_cast<size_t>(tpos)] ==
                  query[static_cast<size_t>(qpos)];
      path.matches += same ? 1 : 0;
      path.mismatches += same ? 0 : 1;
      ++tpos;
      ++qpos;
    } else if (op == 'D') {
      ++path.gap_columns;
      ++tpos;
    } else {
      ++path.gap_columns;
      ++qpos;
    }
    if (op == prev) {
      ++run;
    } else {
      if (run > 0) path.cigar += std::to_string(run) + prev;
      prev = op;
      run = 1;
    }
  }
  if (run > 0) path.cigar += std::to_string(run) + prev;
  return path;
}

}  // namespace alae
