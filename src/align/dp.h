#ifndef ALAE_ALIGN_DP_H_
#define ALAE_ALIGN_DP_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/align/scoring.h"
#include "src/align/simd_dp.h"  // kNegInf, the shared row kernel
#include "src/io/sequence.h"

namespace alae {

// Dense (d+1) x (m+1) matrices of the paper's §2.2 recurrence for one
// text-side substring X against the whole query P:
//
//   M(i,j)  = best score of aligning X[1..i] (entirely) against any
//             substring of P ending at j,
//   Ga(i,j) = best score with X[i] aligned to a gap (vertical move),
//   Gb(i,j) = best score with P[j] aligned to a gap (horizontal move),
//
// with init M(0,j)=0, M(i,0)=sg+i*ss, Ga(0,j)=Gb(i,0)=-inf. Row index is
// the text side, column index the query side, both 1-based as in the paper.
//
// This is the reference kernel: the BASIC aligner runs it along suffix-trie
// paths and unit tests pin its values to the worked example of Fig 1. The
// production engines (BWT-SW, ALAE) compute sparse subsets of these values.
struct DpMatrix {
  int64_t rows = 0;  // |X|
  int64_t cols = 0;  // |P|
  std::vector<int32_t> m, ga, gb;  // (rows+1) * (cols+1), row-major

  int32_t& M(int64_t i, int64_t j) { return m[Idx(i, j)]; }
  int32_t& Ga(int64_t i, int64_t j) { return ga[Idx(i, j)]; }
  int32_t& Gb(int64_t i, int64_t j) { return gb[Idx(i, j)]; }
  int32_t M(int64_t i, int64_t j) const { return m[Idx(i, j)]; }
  int32_t Ga(int64_t i, int64_t j) const { return ga[Idx(i, j)]; }
  int32_t Gb(int64_t i, int64_t j) const { return gb[Idx(i, j)]; }

  size_t Idx(int64_t i, int64_t j) const {
    return static_cast<size_t>(i * (cols + 1) + j);
  }
};

// Computes the full matrix for substring X vs query P.
DpMatrix ComputeMatrix(const std::vector<Symbol>& x,
                       const std::vector<Symbol>& p,
                       const ScoringScheme& scheme);

// sigma x |P| substitution profile for the SIMD row kernel: entry
// [c * |P| + j] = Delta(c, P[j]), so a row's delta lane is pure pointer
// arithmetic. Shared by the ALAE and BWT-SW engines.
std::vector<int32_t> BuildDeltaProfile(const ScoringScheme& scheme,
                                       const Sequence& query);

// Best local-alignment score between two whole sequences (Smith-Waterman
// objective, max over all substring pairs). Used by tests and examples.
int32_t BestLocalScore(const Sequence& a, const Sequence& b,
                       const ScoringScheme& scheme);

}  // namespace alae

#endif  // ALAE_ALIGN_DP_H_
