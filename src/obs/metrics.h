// Process metrics: named counters, gauges and fixed-bucket latency
// histograms behind a registry, plus a Prometheus-style text exposition.
//
// The hot path is lock-free: Counter and Histogram spread their updates
// over cache-line-padded per-thread atomic shards (a relaxed fetch_add on
// a line no other thread is hammering), and aggregation only happens when
// a scrape calls Value()/Snap()/Expose(). Instrument pointers returned by
// the registry are stable for the registry's lifetime, so callers resolve
// them once at construction and never touch the registry lock again.
//
// SampleSummary is the deliberately *unsharded* sibling: an exact-sample
// percentile/histogram helper for single-threaded reporting paths (driver
// summaries, bench tables). It exists so every p50/p90/p99 printed by
// this repo comes from one tested nearest-rank implementation.

#ifndef ALAE_SRC_OBS_METRICS_H_
#define ALAE_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alae {
namespace obs {

// Stable per-thread index into sharded-atomic arrays, assigned round-robin
// on first use. Two threads may share a shard (the shard count bounds
// memory, not correctness — updates stay atomic either way).
size_t ThreadShardIndex();

// Monotonically increasing event count. Add() is wait-free.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[ThreadShardIndex() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Instantaneous signed level (queue depth, outstanding deltas, ...).
// A single atomic: gauges are updated at bounded rates, not per-cell.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram over ascending upper bounds (plus an implicit
// +Inf overflow bucket). Observe() is a bucket search plus two relaxed
// atomic adds on the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kShards = 8;

  // Latency buckets in seconds, 100us .. 10s, roughly 1-2.5-5 spaced.
  static std::vector<double> DefaultLatencyBounds();

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;    // finite upper bounds, ascending
    std::vector<uint64_t> counts;  // bounds.size()+1; last is +Inf
    double sum = 0;
    uint64_t count = 0;

    // Nearest-rank percentile estimate: the upper bound of the bucket
    // holding the q-th observation (last finite bound if it landed in
    // the overflow bucket). q in (0, 1].
    double Percentile(double q) const;
  };
  Snapshot Snap() const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  // bounds_.size()+1
    std::atomic<double> sum{0};
  };
  std::vector<double> bounds_;
  Shard shards_[kShards];
};

// Name -> instrument map. Get*() interns the instrument on first use and
// returns a pointer stable for the registry's lifetime; callers cache it.
// Names follow Prometheus conventions (`alae_pool_queue_depth`,
// `alae_scheduler_requests_total{verb="search"}`): any label decoration
// is part of the name string, the registry does not parse it.
class MetricsRegistry {
 public:
  // The process-wide registry; long-lived components default to it.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // Bounds are fixed on first registration; a second Get with different
  // bounds returns the existing histogram unchanged.
  Histogram* GetHistogram(
      const std::string& name,
      std::vector<double> bounds = Histogram::DefaultLatencyBounds());

  // Text exposition, one `name value` line per counter/gauge and the
  // usual `_bucket{le=...}/_sum/_count` triple per histogram, sorted by
  // instrument name. Safe to call concurrently with hot-path updates.
  std::string Expose() const;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Exact-sample summary for single-threaded reporting: keeps every value,
// sorts lazily. Percentile(q) is nearest-rank — index ceil(q*n)-1 into
// the sorted samples, clamped — so serve_main and bench_net print
// identical numbers for identical inputs.
class SampleSummary {
 public:
  void Add(double v);
  size_t count() const { return samples_.size(); }
  double mean() const;
  double Percentile(double q);

  // Bucketed text rendering (`<= bound  count |#####` rows plus an
  // overflow row), bars scaled to the fullest bucket. `unit` is appended
  // to each bound label. Returns "" when empty.
  std::string RenderHistogram(const std::vector<double>& bounds,
                              const std::string& unit);

 private:
  std::vector<double> samples_;
  double sum_ = 0;
  bool sorted_ = true;
};

}  // namespace obs
}  // namespace alae

#endif  // ALAE_SRC_OBS_METRICS_H_
