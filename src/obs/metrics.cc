#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace alae {
namespace obs {

namespace {

// atomic<double> fetch_add is C++20 but not universally lowered well;
// a relaxed CAS loop on a per-thread shard sees next to no contention.
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

// Shortest-ish decimal rendering; %g keeps golden outputs readable
// (0.0025 stays "0.0025", integers drop the point).
std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_.push_back(1.0);
  for (Shard& shard : shards_) {
    shard.counts.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Shard& shard = shards_[ThreadShardIndex() % kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(q, 0.0));
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::Expose() const {
  // One sorted block per instrument name; the three maps are merged by
  // collecting rendered blocks into a name-keyed map.
  std::map<std::string, std::string> blocks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      blocks[name] = name + " " + std::to_string(counter->Value()) + "\n";
    }
    for (const auto& [name, gauge] : gauges_) {
      blocks[name] = name + " " + std::to_string(gauge->Value()) + "\n";
    }
    for (const auto& [name, histogram] : histograms_) {
      const Histogram::Snapshot snap = histogram->Snap();
      std::string block;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < snap.counts.size(); ++i) {
        cumulative += snap.counts[i];
        const std::string le =
            i < snap.bounds.size() ? FormatNumber(snap.bounds[i]) : "+Inf";
        block += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
      }
      block += name + "_sum " + FormatNumber(snap.sum) + "\n";
      block += name + "_count " + std::to_string(snap.count) + "\n";
      blocks[name] = std::move(block);
    }
  }
  std::string out;
  for (const auto& [name, block] : blocks) out += block;
  return out;
}

void SampleSummary::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double SampleSummary::mean() const {
  return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
}

double SampleSummary::Percentile(double q) {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::min(1.0, std::max(q, 0.0));
  const size_t n = samples_.size();
  const size_t rank =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(q * n)));
  return samples_[std::min(n - 1, rank - 1)];
}

std::string SampleSummary::RenderHistogram(const std::vector<double>& bounds,
                                           const std::string& unit) {
  if (samples_.empty()) return "";
  std::vector<uint64_t> counts(bounds.size() + 1, 0);
  for (double v : samples_) {
    counts[std::upper_bound(bounds.begin(), bounds.end(), v) -
           bounds.begin()]++;
  }
  const uint64_t peak = *std::max_element(counts.begin(), counts.end());
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int bar =
        static_cast<int>(1 + (counts[i] * 40) / std::max<uint64_t>(peak, 1));
    std::string label = i < bounds.size()
                            ? "<= " + FormatNumber(bounds[i]) + unit
                            : "> " + FormatNumber(bounds.back()) + unit;
    std::snprintf(line, sizeof(line), "  %-14s %8llu |%s\n", label.c_str(),
                  static_cast<unsigned long long>(counts[i]),
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace alae
