#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace alae {
namespace obs {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int64_t Trace::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Trace::BeginSpan(std::string name, int parent) {
  const int64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(TraceSpan{std::move(name), now, 0, parent});
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int id) {
  const int64_t now = NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  if (spans_[id].end_ns == 0) spans_[id].end_ns = now;
}

int Trace::AddSpan(std::string name, int64_t start_ns, int64_t end_ns,
                   int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(TraceSpan{std::move(name), start_ns, end_ns, parent});
  return static_cast<int>(spans_.size()) - 1;
}

std::vector<TraceSpan> Trace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

int64_t Trace::WallNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t first = 0, last = 0;
  bool any = false;
  for (const TraceSpan& span : spans_) {
    const int64_t end = span.end_ns != 0 ? span.end_ns : span.start_ns;
    if (!any) {
      first = span.start_ns;
      last = end;
      any = true;
    } else {
      first = std::min(first, span.start_ns);
      last = std::max(last, end);
    }
  }
  return any ? last - first : 0;
}

std::string Trace::Render() const {
  const std::vector<TraceSpan> spans = Spans();
  // Children in creation order under each parent; one DFS with an
  // explicit stack keeps it linear in span count.
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int parent = spans[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < spans.size() &&
        static_cast<size_t>(parent) != i) {
      children[parent].push_back(static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  std::string out;
  char line[192];
  // (index, depth), pushed in reverse so pops come in creation order.
  std::vector<std::pair<int, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const TraceSpan& span = spans[index];
    const int64_t end = span.end_ns != 0 ? span.end_ns : span.start_ns;
    std::snprintf(line, sizeof(line), "%*s%s: %.1fus\n", depth * 2, "",
                  span.name.c_str(),
                  static_cast<double>(end - span.start_ns) / 1e3);
    out += line;
    for (auto it = children[index].rbegin(); it != children[index].rend();
         ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

Tracer::Tracer(TracerOptions options)
    : options_(std::move(options)), rng_state_(options_.seed) {}

std::unique_ptr<Trace> Tracer::MaybeSample() {
  if (options_.sample_rate <= 0.0) return nullptr;
  bool take = options_.sample_rate >= 1.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t draw = SplitMix64(&rng_state_);
    if (!take) {
      take = static_cast<double>(draw >> 11) * 0x1.0p-53 <
             options_.sample_rate;
    }
  }
  if (!take) return nullptr;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Trace>();
}

void Tracer::Finish(std::unique_ptr<Trace> trace) {
  if (trace == nullptr) return;
  if (options_.slow_query_ns <= 0 ||
      trace->WallNanos() < options_.slow_query_ns) {
    return;
  }
  slow_.fetch_add(1, std::memory_order_relaxed);
  std::string rendered = trace->Render();
  {
    std::lock_guard<std::mutex> lock(mu_);
    slow_ring_.push_back(rendered);
    while (slow_ring_.size() > std::max<size_t>(options_.keep_slow, 1)) {
      slow_ring_.pop_front();
    }
  }
  if (options_.slow_sink) options_.slow_sink(rendered);
}

std::vector<std::string> Tracer::SlowTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {slow_ring_.begin(), slow_ring_.end()};
}

}  // namespace obs
}  // namespace alae
