// Request-scoped tracing: a Trace is a flat, thread-safe list of named
// spans (start/end steady-clock nanoseconds plus a parent index) that a
// request carries alongside its CancelToken through the scheduler. Spans
// are cheap enough to record from shard worker threads — one mutex-guarded
// vector push — because only sampled (or explicitly traced) requests
// carry a Trace at all; the common case is a null pointer.
//
// Tracer owns the sampling decision (deterministic splitmix64 sequence
// over a seed, so tests can pin which requests get sampled) and the
// slow-query log: any finished trace whose wall time crosses the
// threshold is rendered as an indented span tree and kept in a small
// ring, optionally forwarded to a sink (e.g. stderr).

#ifndef ALAE_SRC_OBS_TRACE_H_
#define ALAE_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alae {
namespace obs {

struct TraceSpan {
  std::string name;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  int parent = -1;  // index into the trace's span list; -1 = top level
};

class Trace {
 public:
  // Steady-clock nanoseconds; the same clock CancelToken deadlines use.
  static int64_t NowNanos();

  // Opens a span starting now; returns its id (stable index).
  int BeginSpan(std::string name, int parent = -1);
  // Closes an open span at now. No-op for out-of-range ids.
  void EndSpan(int id);
  // Records a fully-formed span (for intervals measured elsewhere, e.g.
  // queue wait captured at submit time on another thread).
  int AddSpan(std::string name, int64_t start_ns, int64_t end_ns,
              int parent = -1);

  std::vector<TraceSpan> Spans() const;

  // Indented tree, creation order within each level:
  //   search: 1523.4us
  //     admit: 12.1us
  //     execute: 1370.2us
  std::string Render() const;

  // max(end) - min(start) over all spans; 0 when empty.
  int64_t WallNanos() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

// RAII span. A null trace makes every operation a no-op, so call sites
// can create one unconditionally on hot paths.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name, int parent = -1)
      : trace_(trace),
        id_(trace ? trace->BeginSpan(name, parent) : -1) {}
  ~ScopedSpan() { End(); }

  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }
  int id() const { return id_; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  int id_;
};

struct TracerOptions {
  double sample_rate = 0.0;    // fraction of requests traced, [0, 1]
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  int64_t slow_query_ns = 0;   // 0 disables the slow-query log
  size_t keep_slow = 8;        // rendered slow traces retained
  // Called with the rendered tree of each slow query (outside any lock).
  std::function<void(const std::string&)> slow_sink;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  // Returns a fresh Trace for sampled requests, nullptr otherwise. The
  // decision sequence is a pure function of (seed, call index).
  std::unique_ptr<Trace> MaybeSample();

  // Completes a sampled trace: counts it, and if its wall time crosses
  // the slow-query threshold, renders and logs it. Null-safe.
  void Finish(std::unique_ptr<Trace> trace);

  std::vector<std::string> SlowTraces() const;
  uint64_t sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  uint64_t slow() const { return slow_.load(std::memory_order_relaxed); }
  const TracerOptions& options() const { return options_; }

 private:
  TracerOptions options_;
  mutable std::mutex mu_;          // rng state + slow ring
  uint64_t rng_state_;
  std::deque<std::string> slow_ring_;
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> slow_{0};
};

}  // namespace obs
}  // namespace alae

#endif  // ALAE_SRC_OBS_TRACE_H_
