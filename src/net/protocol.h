#ifndef ALAE_NET_PROTOCOL_H_
#define ALAE_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/api/status.h"

namespace alae {
namespace net {

// The ALAE wire protocol, version 1 — the framed, length-prefixed byte
// format the socket front-end speaks. docs/PROTOCOL.md is the normative
// spec (and its worked byte example is round-tripped through this codec in
// CI); this header is the single implementation both the server and the
// client link.
//
// Shape: every message is one frame = a fixed 12-byte little-endian header
// followed by `payload_len` payload bytes. A client sends REQUEST and
// CANCEL frames; the server answers each request with zero or more HITS
// frames followed by exactly one STATUS frame. Responses are multiplexed:
// frames carry the originating request_id, and frames of different
// in-flight requests may interleave on one connection (per-request frame
// order is preserved).
//
// The codec itself is transport-free — pure byte-buffer encode/decode plus
// an incremental FrameReader — so tests can fuzz it without sockets.

// ---------------------------------------------------------------------------
// Frame layout constants.
// ---------------------------------------------------------------------------

inline constexpr size_t kHeaderSize = 12;
inline constexpr uint8_t kProtocolVersion = 1;

// Hard upper bound on payload_len. A header announcing more than this is a
// protocol error (the connection is poisoned — the decoder cannot resync),
// which also bounds the memory a malicious or corrupt peer can make the
// reader stage.
inline constexpr uint32_t kMaxPayload = 1u << 20;

inline constexpr size_t kMaxBackendLen = 32;
// Query residues must fit one request frame alongside the fixed fields.
inline constexpr uint32_t kMaxQueryLen = kMaxPayload - 128;

// Wire size of one hit inside a HITS frame (4 little-endian fields).
inline constexpr size_t kWireHitSize = 8 + 8 + 8 + 4;
// count field + hits must fit kMaxPayload.
inline constexpr size_t kMaxHitsPerFrame = (kMaxPayload - 4) / kWireHitSize;

enum FrameType : uint8_t {
  kFrameRequest = 0x01,       // client -> server: one search request
  kFrameCancel = 0x02,        // client -> server: cancel an in-flight request_id
  kFrameStatsRequest = 0x03,  // client -> server: scrape the metrics registry
  kFrameHits = 0x81,          // server -> client: a batch of streamed hits
  kFrameStatus = 0x82,        // server -> client: terminal status (+stats)
  kFrameStats = 0x83,         // server -> client: metrics exposition text
};

// Wire status codes. RESOURCE_EXHAUSTED is the one *retryable* code — the
// service shed the request under load and a retry with backoff can
// genuinely succeed; every other code is terminal for the request (and
// PROTOCOL_ERROR is terminal for the connection: the server closes after
// sending it, since a framing violation leaves no safe resync point).
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  kResourceExhausted = 5,  // retryable
  kDeadlineExceeded = 6,
  kCancelled = 7,
  kProtocolError = 8,  // connection-fatal
};

bool IsRetryable(WireCode code);
WireCode WireCodeFor(api::StatusCode code);
api::StatusCode ApiCodeFor(WireCode code);
std::string_view WireCodeName(WireCode code);

// STATUS frame flag bits (the `sflags` byte).
inline constexpr uint8_t kStatusFlagRetryable = 0x01;

// STATUS stats-block flag bits.
inline constexpr uint32_t kStatFlagTruncated = 0x01;
inline constexpr uint32_t kStatFlagTruncatedByDeadline = 0x02;

// Request alphabet codes.
inline constexpr uint8_t kAlphabetDna = 0;
inline constexpr uint8_t kAlphabetProtein = 1;

// Request option bits.
inline constexpr uint8_t kRequestFlagAllowPartial = 0x01;

// ---------------------------------------------------------------------------
// Decoded message structs.
// ---------------------------------------------------------------------------

struct FrameHeader {
  uint32_t payload_len = 0;
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint16_t flags = 0;  // reserved, 0 in v1 (receivers ignore unknown bits)
  uint32_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

// One search request as it travels the wire. The query is ASCII residues
// (the server encodes them against its corpus alphabet; unknown residues
// mask to code 0, exactly like Sequence::FromString).
struct WireRequest {
  uint32_t request_id = 0;
  std::string backend;
  uint8_t alphabet = kAlphabetDna;
  bool allow_partial = false;
  ScoringScheme scheme;
  int32_t threshold = 0;
  uint64_t max_hits = 0;
  uint32_t deadline_ms = 0;  // 0 = no per-request deadline
  std::string query;
};

// The fixed stats block of a STATUS frame (zeroed on error responses).
struct WireStats {
  uint64_t hits = 0;           // hits streamed for this request
  uint64_t engine_micros = 0;  // server-side engine wall time
  bool truncated = false;
  bool truncated_by_deadline = false;
};

struct WireStatus {
  WireCode code = WireCode::kOk;
  bool retryable = false;
  WireStats stats;
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding. Each Append* writes one complete frame (header + payload) to
// `out`. Inputs are trusted here — the server/client construct them — but
// size limits are asserted so an encoder bug cannot emit an undecodable
// frame.
// ---------------------------------------------------------------------------

void AppendRequestFrame(const WireRequest& request, std::string* out);
void AppendCancelFrame(uint32_t request_id, std::string* out);
// `count` <= kMaxHitsPerFrame; callers chunk larger streams.
void AppendHitsFrame(uint32_t request_id, const AlignmentHit* hits,
                     size_t count, std::string* out);
void AppendStatusFrame(uint32_t request_id, const WireStatus& status,
                       std::string* out);
// STATS_REQUEST carries no payload; STATS carries the registry's text
// exposition verbatim (length-prefixed), truncated to fit kMaxPayload.
void AppendStatsRequestFrame(uint32_t request_id, std::string* out);
void AppendStatsFrame(uint32_t request_id, std::string_view text,
                      std::string* out);

// ---------------------------------------------------------------------------
// Decoding. Payload decoders validate every length and bound and return
// kInvalidArgument on malformed input — never crash, never over-read.
// The header's request_id is the caller's to carry.
// ---------------------------------------------------------------------------

api::Status DecodeRequestPayload(std::string_view payload, WireRequest* out);
api::Status DecodeHitsPayload(std::string_view payload,
                              std::vector<AlignmentHit>* out);
api::Status DecodeStatusPayload(std::string_view payload, WireStatus* out);
api::Status DecodeStatsPayload(std::string_view payload, std::string* out);

// Incremental frame decoder: feed arbitrary byte chunks (however the
// transport fragments them — one byte at a time is fine), pop complete
// frames. A malformed header (bad version, unknown type, oversized
// payload_len) latches a permanent error: framing has no resync point, so
// the connection must be torn down.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buffer_.append(data, n); }
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  enum class Result {
    kFrame,     // *out holds the next complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // framing violation; *error explains; reader is poisoned
  };

  Result Next(Frame* out, api::Status* error);

  // Bytes buffered but not yet consumed (for tests and slow-loris
  // accounting).
  size_t buffered() const { return buffer_.size() - consumed_; }

  // Drops buffered bytes and clears any poison — for reusing one reader
  // across connections (the client does on reconnect).
  void Reset() {
    buffer_.clear();
    consumed_ = 0;
    poisoned_ = false;
    poison_status_ = api::Status::Ok();
  }

 private:
  const uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
  api::Status poison_status_;
};

}  // namespace net
}  // namespace alae

#endif  // ALAE_NET_PROTOCOL_H_
