#ifndef ALAE_NET_SERVER_H_
#define ALAE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/api/status.h"
#include "src/io/alphabet.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"
#include "src/service/scheduler.h"
#include "src/util/cancel.h"

namespace alae {
namespace net {

struct NetServerOptions {
  // Bind address. Port 0 asks the kernel for an ephemeral port; the bound
  // port is readable via NetServer::port() after Start().
  std::string host = "127.0.0.1";
  int port = 0;
  int backlog = 64;

  // Query worker threads draining the admission ring. These only *issue*
  // SearchStream calls — the engine parallelism underneath belongs to the
  // scheduler's pool — so a small number suffices; it bounds how many
  // requests are in the scheduler concurrently on this server's behalf.
  size_t workers = 2;

  // Force the portable poll() event loop even on Linux (tests exercise
  // both poller backends through this).
  bool force_poll = false;

  // Alphabet requests must declare (kAlphabetDna / kAlphabetProtein must
  // match the corpus this server fronts); mismatches are rejected with
  // INVALID_ARGUMENT rather than silently mis-encoded.
  AlphabetKind alphabet = AlphabetKind::kDna;

  // Pipelining bound: a connection may have at most this many requests
  // admitted (queued + running). The overflow request is answered
  // RESOURCE_EXHAUSTED (retryable) immediately — the wire-level analogue
  // of the scheduler shedding load.
  size_t max_pipeline = 64;

  // A connection whose client stops reading accumulates output; past this
  // bound the connection is declared dead and its in-flight queries are
  // cancelled (the streaming sink observes the death and short-circuits).
  size_t max_output_buffer = 64u << 20;

  // Hits per HITS frame on the wire (bounded by kMaxHitsPerFrame).
  size_t hits_per_frame = 512;
};

// TCP front-end for a QueryScheduler: speaks the framed protocol of
// src/net/protocol.h (normative spec: docs/PROTOCOL.md), streams each
// request's hits back as HITS frames while the engines run, and finishes
// every request with exactly one STATUS frame.
//
// Concurrency model — three kinds of threads:
//   * ONE event-loop thread owns every socket: accepts connections, reads
//     bytes into per-connection FrameReaders, writes queued output. epoll
//     on Linux, portable poll() elsewhere (or with force_poll). It never
//     blocks on a query.
//   * `workers` query threads drain the admission ring: pop a connection,
//     take ONE of its pending requests, run QueryScheduler::SearchStream,
//     re-queue the connection at the tail if it has more pending. Taking
//     one request per turn round-robins service across connections, so a
//     client that pipelines 100 requests cannot starve its neighbours —
//     fairness is per-connection, not first-come-first-served.
//   * Callers' thread(s): Start() / Stop().
//
// Cancellation: every admitted request owns a CancelToken, armed with the
// request's deadline_ms at admission (queue wait counts against the
// deadline) and handed to the scheduler as SearchRequest::cancel. A CANCEL
// frame fires it; a client disconnect fires every token of that
// connection's in-flight requests AND makes the streaming sink return
// false — either way the engine loops abort at their next poll, which is
// the "disconnect cancels server-side work" property the tests observe.
//
// Backpressure: scheduler admission failures (queue full) surface as
// RESOURCE_EXHAUSTED with the retryable flag set; clients back off and
// retry. Framing violations (bad magic version, unknown frame type,
// oversized payload) are unrecoverable — the server sends one STATUS
// frame with code PROTOCOL_ERROR (request_id 0) and closes.
//
// Thread-safe: Start/Stop may be called from any thread; Stop is
// idempotent and also runs from the destructor.
class NetServer {
 public:
  NetServer(service::QueryScheduler* scheduler, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and spins up the event loop + workers. Fails with
  // kInternal (carrying errno text) if the address cannot be bound.
  api::Status Start();

  // Graceful shutdown: stops accepting, cancels every in-flight request,
  // unblocks and joins the workers, closes every connection. In-flight
  // queries observe their tokens and wind down before Stop returns.
  void Stop();

  // The bound port (after Start); 0 before.
  int port() const { return port_; }

  // Observability counters (tests assert on these). Backed by the metrics
  // registry (`alae_net_*`, scrapable over the wire via STATS frames);
  // each accessor subtracts the registry value captured at construction,
  // so it reports this server instance's own activity even when several
  // servers share one process-wide registry across their lifetimes.
  uint64_t connections_accepted() const {
    return Delta(inst_.connections, base_.connections);
  }
  uint64_t requests_admitted() const {
    return Delta(inst_.admitted, base_.admitted);
  }
  uint64_t requests_completed() const {
    return Delta(inst_.completed, base_.completed);
  }
  uint64_t requests_cancelled() const {
    return Delta(inst_.cancelled, base_.cancelled);
  }
  uint64_t protocol_errors() const {
    return Delta(inst_.protocol_errors, base_.protocol_errors);
  }
  uint64_t disconnect_cancels() const {
    return Delta(inst_.disconnect_cancels, base_.disconnect_cancels);
  }

 private:
  struct PendingRequest {
    WireRequest wire;
    std::shared_ptr<CancelToken> token;
  };

  // All mutable connection state. The event loop owns the fd and the
  // reader; `mu` guards the fields shared with workers (pending queue,
  // in-flight tokens, output buffer, liveness).
  struct Connection {
    explicit Connection(int fd_in, uint32_t max_payload)
        : fd(fd_in), reader(max_payload) {}

    const int fd;
    FrameReader reader;  // event-loop thread only

    std::mutex mu;
    std::deque<PendingRequest> pending;
    std::unordered_map<uint32_t, std::shared_ptr<CancelToken>> inflight;
    std::string out;        // bytes queued for the wire
    size_t out_offset = 0;  // prefix of `out` already written
    bool dead = false;      // closed or poisoned; drop further output
    bool in_ring = false;   // present in the admission ring
  };

  void EventLoop();
  void WorkerLoop();

  // Feeds freshly-read bytes through the connection's FrameReader and
  // dispatches complete frames. Returns false when the connection must be
  // torn down (protocol error).
  bool HandleInput(const std::shared_ptr<Connection>& conn,
                   const char* data, size_t n);
  void HandleRequestFrame(const std::shared_ptr<Connection>& conn,
                          const Frame& frame);
  void HandleCancelFrame(const std::shared_ptr<Connection>& conn,
                         const Frame& frame);
  // Answers a STATS_REQUEST with the scheduler registry's text exposition
  // (event-loop thread; the scrape is a read-only aggregation).
  void HandleStatsRequestFrame(const std::shared_ptr<Connection>& conn,
                               const Frame& frame);

  // Runs one admitted request to completion (hits streamed, status sent).
  void ServeRequest(const std::shared_ptr<Connection>& conn,
                    PendingRequest request);

  // Appends encoded bytes to the connection's output buffer and wakes the
  // event loop to write them. Silently drops output for dead connections.
  void EnqueueOutput(const std::shared_ptr<Connection>& conn,
                     std::string bytes);

  // Writes as much buffered output as the socket accepts right now
  // (event-loop thread).
  enum class FlushResult { kDrained, kBlocked, kDead };
  FlushResult FlushOutput(Connection* conn);

  // Marks the connection dead and fires every in-flight token (disconnect
  // semantics). Safe to call from either the event loop or a worker.
  // `count_disconnect` separates genuine peer-initiated deaths (counted in
  // disconnect_cancels_) from the server's own Stop() sweep.
  void KillConnection(const std::shared_ptr<Connection>& conn,
                      bool count_disconnect);

  // Admission-ring plumbing (admit_mu_).
  void RingPush(const std::shared_ptr<Connection>& conn);

  void Wake();  // self-pipe: nudge a blocked poller

  service::QueryScheduler* const scheduler_;
  const NetServerOptions options_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // fd -> connection; event-loop thread only (workers reach connections
  // through the shared_ptrs they were handed).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Admission ring: connections with pending requests, drained round-robin.
  // Guards the ring AND Connection::in_ring.
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::deque<std::shared_ptr<Connection>> ring_;

  // Connections with freshly-enqueued output (or a worker-side kill); the
  // event loop drains this after every wakeup and flushes/updates poll
  // interest. Workers never touch the poller directly.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Connection>> dirty_;

  // Registry-backed instruments (`alae_net_*` in the scheduler's
  // registry), resolved once at construction.
  struct Instruments {
    obs::Counter* connections = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* disconnect_cancels = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* stats_scrapes = nullptr;
    obs::Gauge* pipeline_depth = nullptr;  // admitted, not yet answered
  };
  // Registry values at construction; the public accessors report deltas.
  struct Baseline {
    int64_t connections = 0;
    int64_t admitted = 0;
    int64_t completed = 0;
    int64_t cancelled = 0;
    int64_t protocol_errors = 0;
    int64_t disconnect_cancels = 0;
  };
  static uint64_t Delta(const obs::Counter* counter, int64_t base) {
    return static_cast<uint64_t>(counter->Value() - base);
  }
  static Instruments MakeInstruments(obs::MetricsRegistry* registry);
  static Baseline MakeBaseline(const Instruments& inst);

  const Instruments inst_;
  const Baseline base_;
};

}  // namespace net
}  // namespace alae

#endif  // ALAE_NET_SERVER_H_
