#include "src/net/protocol.h"

#include <cassert>
#include <cstring>

namespace alae {
namespace net {
namespace {

// All integers on the wire are little-endian. These helpers are endian-
// correct on any host (byte-by-byte), and the compilers reduce them to
// plain loads/stores on little-endian targets.

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>(v >> 8));
}
void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}
void PutI32(int32_t v, std::string* out) { PutU32(static_cast<uint32_t>(v), out); }
void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }

// Bounds-checked little-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool Bytes(size_t n, std::string* v) {
    if (pos_ + n > bytes_.size()) return false;
    v->assign(bytes_.substr(pos_, n));
    pos_ += n;
    return true;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

api::Status Malformed(const char* what) {
  return api::Status::InvalidArgument(std::string("malformed frame: ") + what);
}

void AppendHeader(uint8_t type, uint32_t request_id, uint32_t payload_len,
                  std::string* out) {
  assert(payload_len <= kMaxPayload && "encoder produced an oversized frame");
  PutU32(payload_len, out);
  PutU8(kProtocolVersion, out);
  PutU8(type, out);
  PutU16(0, out);  // flags, reserved in v1
  PutU32(request_id, out);
}

}  // namespace

bool IsRetryable(WireCode code) {
  return code == WireCode::kResourceExhausted;
}

WireCode WireCodeFor(api::StatusCode code) {
  switch (code) {
    case api::StatusCode::kOk:
      return WireCode::kOk;
    case api::StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case api::StatusCode::kNotFound:
      return WireCode::kNotFound;
    case api::StatusCode::kFailedPrecondition:
      return WireCode::kFailedPrecondition;
    case api::StatusCode::kInternal:
      return WireCode::kInternal;
    case api::StatusCode::kResourceExhausted:
      return WireCode::kResourceExhausted;
    case api::StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case api::StatusCode::kCancelled:
      return WireCode::kCancelled;
  }
  return WireCode::kInternal;
}

api::StatusCode ApiCodeFor(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return api::StatusCode::kOk;
    case WireCode::kInvalidArgument:
      return api::StatusCode::kInvalidArgument;
    case WireCode::kNotFound:
      return api::StatusCode::kNotFound;
    case WireCode::kFailedPrecondition:
      return api::StatusCode::kFailedPrecondition;
    case WireCode::kInternal:
      return api::StatusCode::kInternal;
    case WireCode::kResourceExhausted:
      return api::StatusCode::kResourceExhausted;
    case WireCode::kDeadlineExceeded:
      return api::StatusCode::kDeadlineExceeded;
    case WireCode::kCancelled:
      return api::StatusCode::kCancelled;
    case WireCode::kProtocolError:
      // A framing violation is an internal-contract failure from the
      // caller's point of view: the conversation itself broke.
      return api::StatusCode::kInternal;
  }
  return api::StatusCode::kInternal;
}

std::string_view WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "OK";
    case WireCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireCode::kNotFound:
      return "NOT_FOUND";
    case WireCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case WireCode::kInternal:
      return "INTERNAL";
    case WireCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case WireCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireCode::kCancelled:
      return "CANCELLED";
    case WireCode::kProtocolError:
      return "PROTOCOL_ERROR";
  }
  return "UNKNOWN";
}

void AppendRequestFrame(const WireRequest& request, std::string* out) {
  assert(!request.backend.empty() && request.backend.size() <= kMaxBackendLen);
  assert(request.query.size() <= kMaxQueryLen);
  std::string payload;
  PutU8(static_cast<uint8_t>(request.backend.size()), &payload);
  payload.append(request.backend);
  PutU8(request.alphabet, &payload);
  PutU8(request.allow_partial ? kRequestFlagAllowPartial : 0, &payload);
  PutU8(0, &payload);  // reserved
  PutI32(request.scheme.sa, &payload);
  PutI32(request.scheme.sb, &payload);
  PutI32(request.scheme.sg, &payload);
  PutI32(request.scheme.ss, &payload);
  PutI32(request.threshold, &payload);
  PutU64(request.max_hits, &payload);
  PutU32(request.deadline_ms, &payload);
  PutU32(static_cast<uint32_t>(request.query.size()), &payload);
  payload.append(request.query);
  AppendHeader(kFrameRequest, request.request_id,
               static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

void AppendCancelFrame(uint32_t request_id, std::string* out) {
  AppendHeader(kFrameCancel, request_id, 0, out);
}

void AppendHitsFrame(uint32_t request_id, const AlignmentHit* hits,
                     size_t count, std::string* out) {
  assert(count <= kMaxHitsPerFrame);
  std::string payload;
  payload.reserve(4 + count * kWireHitSize);
  PutU32(static_cast<uint32_t>(count), &payload);
  for (size_t i = 0; i < count; ++i) {
    PutI64(hits[i].text_end, &payload);
    PutI64(hits[i].query_end, &payload);
    PutI64(hits[i].text_start, &payload);
    PutI32(hits[i].score, &payload);
  }
  AppendHeader(kFrameHits, request_id, static_cast<uint32_t>(payload.size()),
               out);
  out->append(payload);
}

void AppendStatusFrame(uint32_t request_id, const WireStatus& status,
                       std::string* out) {
  std::string payload;
  PutU8(static_cast<uint8_t>(status.code), &payload);
  PutU8(status.retryable ? kStatusFlagRetryable : 0, &payload);
  PutU16(0, &payload);  // reserved
  PutU64(status.stats.hits, &payload);
  PutU64(status.stats.engine_micros, &payload);
  uint32_t stat_flags = 0;
  if (status.stats.truncated) stat_flags |= kStatFlagTruncated;
  if (status.stats.truncated_by_deadline) {
    stat_flags |= kStatFlagTruncatedByDeadline;
  }
  PutU32(stat_flags, &payload);
  // The message rides last so the stats block sits at a fixed offset.
  std::string message = status.message;
  if (message.size() > kMaxPayload / 2) message.resize(kMaxPayload / 2);
  PutU32(static_cast<uint32_t>(message.size()), &payload);
  payload.append(message);
  AppendHeader(kFrameStatus, request_id, static_cast<uint32_t>(payload.size()),
               out);
  out->append(payload);
}

void AppendStatsRequestFrame(uint32_t request_id, std::string* out) {
  AppendHeader(kFrameStatsRequest, request_id, 0, out);
}

void AppendStatsFrame(uint32_t request_id, std::string_view text,
                      std::string* out) {
  // Exposition text is advisory — a registry too big for one frame is
  // truncated at the last full line that fits rather than rejected.
  size_t limit = kMaxPayload - 4;
  if (text.size() > limit) {
    size_t cut = text.rfind('\n', limit);
    text = text.substr(0, cut == std::string_view::npos ? limit : cut + 1);
  }
  std::string payload;
  PutU32(static_cast<uint32_t>(text.size()), &payload);
  payload.append(text);
  AppendHeader(kFrameStats, request_id, static_cast<uint32_t>(payload.size()),
               out);
  out->append(payload);
}

api::Status DecodeRequestPayload(std::string_view payload, WireRequest* out) {
  Cursor c(payload);
  uint8_t backend_len = 0;
  if (!c.U8(&backend_len)) return Malformed("request truncated at backend_len");
  if (backend_len == 0 || backend_len > kMaxBackendLen) {
    return Malformed("backend name length out of range");
  }
  if (!c.Bytes(backend_len, &out->backend)) {
    return Malformed("request truncated inside backend name");
  }
  uint8_t options = 0, reserved = 0;
  if (!c.U8(&out->alphabet) || !c.U8(&options) || !c.U8(&reserved)) {
    return Malformed("request truncated in option bytes");
  }
  if (out->alphabet != kAlphabetDna && out->alphabet != kAlphabetProtein) {
    return Malformed("unknown alphabet code");
  }
  out->allow_partial = (options & kRequestFlagAllowPartial) != 0;
  if (!c.I32(&out->scheme.sa) || !c.I32(&out->scheme.sb) ||
      !c.I32(&out->scheme.sg) || !c.I32(&out->scheme.ss) ||
      !c.I32(&out->threshold) || !c.U64(&out->max_hits) ||
      !c.U32(&out->deadline_ms)) {
    return Malformed("request truncated in scoring block");
  }
  uint32_t query_len = 0;
  if (!c.U32(&query_len)) return Malformed("request truncated at query_len");
  if (query_len == 0 || query_len > kMaxQueryLen) {
    return Malformed("query length out of range");
  }
  if (!c.Bytes(query_len, &out->query)) {
    return Malformed("request truncated inside query");
  }
  if (!c.exhausted()) return Malformed("trailing bytes after request");
  return api::Status::Ok();
}

api::Status DecodeHitsPayload(std::string_view payload,
                              std::vector<AlignmentHit>* out) {
  Cursor c(payload);
  uint32_t count = 0;
  if (!c.U32(&count)) return Malformed("hits frame truncated at count");
  if (count > kMaxHitsPerFrame) return Malformed("hit count out of range");
  out->reserve(out->size() + count);
  for (uint32_t i = 0; i < count; ++i) {
    AlignmentHit hit;
    if (!c.I64(&hit.text_end) || !c.I64(&hit.query_end) ||
        !c.I64(&hit.text_start) || !c.I32(&hit.score)) {
      return Malformed("hits frame truncated inside hit records");
    }
    out->push_back(hit);
  }
  if (!c.exhausted()) return Malformed("trailing bytes after hits");
  return api::Status::Ok();
}

api::Status DecodeStatusPayload(std::string_view payload, WireStatus* out) {
  Cursor c(payload);
  uint8_t code = 0, sflags = 0;
  uint16_t reserved = 0;
  if (!c.U8(&code) || !c.U8(&sflags) || !c.U16(&reserved)) {
    return Malformed("status frame truncated in code block");
  }
  if (code > static_cast<uint8_t>(WireCode::kProtocolError)) {
    return Malformed("unknown status code");
  }
  out->code = static_cast<WireCode>(code);
  out->retryable = (sflags & kStatusFlagRetryable) != 0;
  uint32_t stat_flags = 0;
  if (!c.U64(&out->stats.hits) || !c.U64(&out->stats.engine_micros) ||
      !c.U32(&stat_flags)) {
    return Malformed("status frame truncated in stats block");
  }
  out->stats.truncated = (stat_flags & kStatFlagTruncated) != 0;
  out->stats.truncated_by_deadline =
      (stat_flags & kStatFlagTruncatedByDeadline) != 0;
  uint32_t message_len = 0;
  if (!c.U32(&message_len)) return Malformed("status truncated at message_len");
  if (message_len > kMaxPayload) return Malformed("message length out of range");
  if (!c.Bytes(message_len, &out->message)) {
    return Malformed("status truncated inside message");
  }
  if (!c.exhausted()) return Malformed("trailing bytes after status");
  return api::Status::Ok();
}

api::Status DecodeStatsPayload(std::string_view payload, std::string* out) {
  Cursor c(payload);
  uint32_t text_len = 0;
  if (!c.U32(&text_len)) return Malformed("stats frame truncated at text_len");
  if (text_len > kMaxPayload) return Malformed("stats text length out of range");
  if (!c.Bytes(text_len, out)) {
    return Malformed("stats frame truncated inside text");
  }
  if (!c.exhausted()) return Malformed("trailing bytes after stats text");
  return api::Status::Ok();
}

FrameReader::Result FrameReader::Next(Frame* out, api::Status* error) {
  if (poisoned_) {
    *error = poison_status_;
    return Result::kError;
  }
  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderSize) return Result::kNeedMore;
  Cursor c(std::string_view(buffer_).substr(consumed_, kHeaderSize));
  FrameHeader header;
  c.U32(&header.payload_len);
  c.U8(&header.version);
  c.U8(&header.type);
  c.U16(&header.flags);
  c.U32(&header.request_id);
  // Header validation before the payload is waited for: an oversized
  // payload_len or unknown version/type can never become a valid frame, so
  // the reader reports the error immediately and latches it.
  if (header.version != kProtocolVersion) {
    poisoned_ = true;
    poison_status_ = Malformed("unsupported protocol version");
  } else if (header.payload_len > max_payload_) {
    poisoned_ = true;
    poison_status_ = Malformed("payload length exceeds limit");
  } else if (header.type != kFrameRequest && header.type != kFrameCancel &&
             header.type != kFrameStatsRequest && header.type != kFrameHits &&
             header.type != kFrameStatus && header.type != kFrameStats) {
    poisoned_ = true;
    poison_status_ = Malformed("unknown frame type");
  }
  if (poisoned_) {
    *error = poison_status_;
    return Result::kError;
  }
  if (available < kHeaderSize + header.payload_len) return Result::kNeedMore;
  out->header = header;
  out->payload.assign(buffer_, consumed_ + kHeaderSize, header.payload_len);
  consumed_ += kHeaderSize + header.payload_len;
  return Result::kFrame;
}

}  // namespace net
}  // namespace alae
