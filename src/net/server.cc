#include "src/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "src/io/sequence.h"
#include "src/obs/trace.h"

namespace alae {
namespace net {
namespace {

api::Status ErrnoStatus(const std::string& what) {
  return api::Status::Internal(what + ": " + ::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Readiness poller behind the event loop: epoll on Linux, portable poll()
// elsewhere or when NetServerOptions::force_poll asks for it. Both
// backends are level-triggered — the loop re-arms write interest only
// while output is buffered, so level semantics cannot spin.
class Poller {
 public:
  struct Event {
    int fd;
    bool readable;
    bool writable;
    bool hangup;
  };

  virtual ~Poller() = default;
  virtual bool Add(int fd, bool want_write) = 0;
  virtual void Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  virtual void Wait(std::vector<Event>* out) = 0;
};

class PollPoller : public Poller {
 public:
  bool Add(int fd, bool want_write) override {
    interest_[fd] = want_write;
    return true;
  }
  void Update(int fd, bool want_write) override { interest_[fd] = want_write; }
  void Remove(int fd) override { interest_.erase(fd); }

  void Wait(std::vector<Event>* out) override {
    out->clear();
    fds_.clear();
    for (const auto& [fd, want_write] : interest_) {
      struct pollfd p;
      p.fd = fd;
      p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
      p.revents = 0;
      fds_.push_back(p);
    }
    const int n = ::poll(fds_.data(), fds_.size(), /*timeout_ms=*/1000);
    if (n <= 0) return;  // timeout or EINTR: the loop re-checks stopping_
    for (const struct pollfd& p : fds_) {
      if (p.revents == 0) continue;
      out->push_back(Event{p.fd, (p.revents & POLLIN) != 0,
                           (p.revents & POLLOUT) != 0,
                           (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0});
    }
  }

 private:
  // Ordered map: deterministic scan order makes poll-backend test runs
  // reproducible.
  std::map<int, bool> interest_;
  std::vector<struct pollfd> fds_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }

  bool Add(int fd, bool want_write) override {
    struct epoll_event ev;
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
  void Update(int fd, bool want_write) override {
    struct epoll_event ev;
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  void Wait(std::vector<Event>* out) override {
    out->clear();
    struct epoll_event evs[64];
    const int n = ::epoll_wait(epfd_, evs, 64, /*timeout_ms=*/1000);
    for (int i = 0; i < n; ++i) {
      out->push_back(Event{evs[i].data.fd, (evs[i].events & EPOLLIN) != 0,
                           (evs[i].events & EPOLLOUT) != 0,
                           (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0});
    }
  }

 private:
  int epfd_;
};
#endif  // __linux__

std::unique_ptr<Poller> MakePoller(bool force_poll) {
#ifdef __linux__
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->ok()) return epoll;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

uint8_t WireAlphabetCode(AlphabetKind kind) {
  return kind == AlphabetKind::kProtein ? kAlphabetProtein : kAlphabetDna;
}

}  // namespace

NetServer::Instruments NetServer::MakeInstruments(
    obs::MetricsRegistry* registry) {
  Instruments inst;
  inst.connections = registry->GetCounter("alae_net_connections_total");
  inst.admitted = registry->GetCounter("alae_net_requests_admitted_total");
  inst.completed = registry->GetCounter("alae_net_requests_completed_total");
  inst.cancelled = registry->GetCounter("alae_net_requests_cancelled_total");
  inst.protocol_errors = registry->GetCounter("alae_net_protocol_errors_total");
  inst.disconnect_cancels =
      registry->GetCounter("alae_net_disconnect_cancels_total");
  inst.bytes_in = registry->GetCounter("alae_net_bytes_in_total");
  inst.bytes_out = registry->GetCounter("alae_net_bytes_out_total");
  inst.stats_scrapes = registry->GetCounter("alae_net_stats_scrapes_total");
  inst.pipeline_depth = registry->GetGauge("alae_net_pipeline_depth");
  return inst;
}

NetServer::Baseline NetServer::MakeBaseline(const Instruments& inst) {
  Baseline base;
  base.connections = inst.connections->Value();
  base.admitted = inst.admitted->Value();
  base.completed = inst.completed->Value();
  base.cancelled = inst.cancelled->Value();
  base.protocol_errors = inst.protocol_errors->Value();
  base.disconnect_cancels = inst.disconnect_cancels->Value();
  return base;
}

NetServer::NetServer(service::QueryScheduler* scheduler,
                     NetServerOptions options)
    : scheduler_(scheduler),
      options_(std::move(options)),
      inst_(MakeInstruments(&scheduler->registry())),
      base_(MakeBaseline(inst_)) {}

NetServer::~NetServer() { Stop(); }

api::Status NetServer::Start() {
  if (started_) return api::Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return api::Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    api::Status status = ErrnoStatus("bind/listen " + options_.host + ":" +
                                     std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  if (::pipe(wake_pipe_) != 0) {
    api::Status status = ErrnoStatus("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  stopping_.store(false);
  loop_thread_ = std::thread([this] { EventLoop(); });
  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return api::Status::Ok();
}

void NetServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true);
  Wake();
  // The event loop exits its next iteration, cancelling every in-flight
  // token and closing every socket on the way out — which also unblocks
  // workers stuck inside SearchStream.
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    admit_cv_.notify_all();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) ::close(wake_pipe_[i]);
    wake_pipe_[i] = -1;
  }
  port_ = 0;
}

void NetServer::Wake() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void NetServer::RingPush(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (conn->in_ring) return;
    conn->in_ring = true;
    ring_.push_back(conn);
  }
  admit_cv_.notify_one();
}

void NetServer::KillConnection(const std::shared_ptr<Connection>& conn,
                               bool count_disconnect) {
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    conn->pending.clear();  // never-dispatched requests die with the peer
    for (auto& [id, token] : conn->inflight) tokens.push_back(token);
    // Retire the connection's slots here; ServeRequest's own erase is a
    // no-op afterwards, so the gauge never double-decrements.
    inst_.pipeline_depth->Add(-static_cast<int64_t>(conn->inflight.size()));
    conn->inflight.clear();
    conn->out.clear();
    conn->out_offset = 0;
  }
  // Fire outside the lock: workers' sinks take conn->mu.
  for (const std::shared_ptr<CancelToken>& token : tokens) token->Cancel();
  if (count_disconnect && !tokens.empty()) {
    inst_.disconnect_cancels->Add(static_cast<int64_t>(tokens.size()));
  }
}

void NetServer::EnqueueOutput(const std::shared_ptr<Connection>& conn,
                              std::string bytes) {
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    if (conn->out.size() - conn->out_offset + bytes.size() >
        options_.max_output_buffer) {
      overflow = true;
    } else {
      conn->out.append(bytes);
    }
  }
  if (overflow) {
    // The peer stopped reading: declare it gone rather than buffer without
    // bound. In-flight queries observe the cancel and wind down.
    KillConnection(conn, /*count_disconnect=*/true);
  }
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  Wake();
}

// ---------------------------------------------------------------------------
// Event loop.
// ---------------------------------------------------------------------------

NetServer::FlushResult NetServer::FlushOutput(Connection* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      inst_.bytes_out->Add(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return FlushResult::kBlocked;
    }
    if (n < 0 && errno == EINTR) continue;
    return FlushResult::kDead;
  }
  conn->out.clear();
  conn->out_offset = 0;
  return FlushResult::kDrained;
}

void NetServer::EventLoop() {
  std::unique_ptr<Poller> poller = MakePoller(options_.force_poll);
  poller->Add(listen_fd_, false);
  poller->Add(wake_pipe_[0], false);

  std::vector<Poller::Event> events;
  std::vector<char> buf(64 * 1024);

  auto close_connection = [&](const std::shared_ptr<Connection>& conn,
                              bool count_disconnect) {
    KillConnection(conn, count_disconnect);
    poller->Remove(conn->fd);
    ::close(conn->fd);
    connections_.erase(conn->fd);
  };

  while (!stopping_.load()) {
    // Worker-side output first: flush what can go now, arm write interest
    // for the rest, reap worker-killed connections.
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const std::shared_ptr<Connection>& conn : dirty) {
      auto it = connections_.find(conn->fd);
      if (it == connections_.end() || it->second != conn) continue;
      bool dead;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        dead = conn->dead;
      }
      if (dead) {
        close_connection(conn, /*count_disconnect=*/false);
        continue;
      }
      switch (FlushOutput(conn.get())) {
        case FlushResult::kDrained:
          poller->Update(conn->fd, false);
          break;
        case FlushResult::kBlocked:
          poller->Update(conn->fd, true);
          break;
        case FlushResult::kDead:
          close_connection(conn, /*count_disconnect=*/true);
          break;
      }
    }

    poller->Wait(&events);
    if (stopping_.load()) break;

    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_pipe_[0]) {
        char drain[256];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        while (true) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          SetNonBlocking(fd);
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_shared<Connection>(fd, kMaxPayload);
          connections_[fd] = conn;
          poller->Add(fd, false);
          inst_.connections->Add();
        }
        continue;
      }

      auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;

      if (ev.hangup) {
        close_connection(conn, /*count_disconnect=*/true);
        continue;
      }
      bool closed = false;
      if (ev.readable) {
        while (true) {
          const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
          if (n > 0) {
            inst_.bytes_in->Add(n);
            if (!HandleInput(conn, buf.data(), static_cast<size_t>(n))) {
              // Protocol error: the error STATUS frame is already queued;
              // push it out best-effort, then drop the peer.
              FlushOutput(conn.get());
              close_connection(conn, /*count_disconnect=*/false);
              closed = true;
              break;
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          // n == 0 (orderly shutdown) or a hard error: the peer is gone.
          close_connection(conn, /*count_disconnect=*/true);
          closed = true;
          break;
        }
      }
      if (!closed && ev.writable) {
        switch (FlushOutput(conn.get())) {
          case FlushResult::kDrained:
            poller->Update(conn->fd, false);
            break;
          case FlushResult::kBlocked:
            break;  // interest already armed
          case FlushResult::kDead:
            close_connection(conn, /*count_disconnect=*/true);
            break;
        }
      }
    }
  }

  // Shutdown sweep: cancel everything, close everything. Tokens fire so
  // workers blocked in SearchStream wind down promptly.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : remaining) {
    close_connection(conn, /*count_disconnect=*/false);
  }
}

// ---------------------------------------------------------------------------
// Frame dispatch (event-loop thread).
// ---------------------------------------------------------------------------

bool NetServer::HandleInput(const std::shared_ptr<Connection>& conn,
                            const char* data, size_t n) {
  conn->reader.Feed(data, n);
  while (true) {
    Frame frame;
    api::Status error;
    switch (conn->reader.Next(&frame, &error)) {
      case FrameReader::Result::kNeedMore:
        return true;
      case FrameReader::Result::kError: {
        inst_.protocol_errors->Add();
        WireStatus status;
        status.code = WireCode::kProtocolError;
        status.message = error.message();
        std::string bytes;
        AppendStatusFrame(/*request_id=*/0, status, &bytes);
        EnqueueOutput(conn, std::move(bytes));
        return false;
      }
      case FrameReader::Result::kFrame:
        break;
    }
    switch (frame.header.type) {
      case kFrameRequest:
        HandleRequestFrame(conn, frame);
        break;
      case kFrameCancel:
        HandleCancelFrame(conn, frame);
        break;
      case kFrameStatsRequest:
        HandleStatsRequestFrame(conn, frame);
        break;
      default: {
        // Server-bound connections must not carry response-type frames.
        inst_.protocol_errors->Add();
        WireStatus status;
        status.code = WireCode::kProtocolError;
        status.message = "unexpected server-bound frame type";
        std::string bytes;
        AppendStatusFrame(frame.header.request_id, status, &bytes);
        EnqueueOutput(conn, std::move(bytes));
        return false;
      }
    }
  }
}

void NetServer::HandleRequestFrame(const std::shared_ptr<Connection>& conn,
                                   const Frame& frame) {
  const uint32_t id = frame.header.request_id;
  auto reject = [&](WireCode code, const std::string& message) {
    WireStatus status;
    status.code = code;
    status.retryable = IsRetryable(code);
    status.message = message;
    std::string bytes;
    AppendStatusFrame(id, status, &bytes);
    EnqueueOutput(conn, std::move(bytes));
  };

  WireRequest wire;
  if (api::Status status = DecodeRequestPayload(frame.payload, &wire);
      !status.ok()) {
    // A frame that parsed but whose payload is malformed means the peer's
    // encoder is broken: request-scoped rejection is enough (framing is
    // intact, so the connection can carry its neighbours' requests).
    reject(WireCode::kInvalidArgument, status.message());
    return;
  }
  wire.request_id = id;
  if (wire.alphabet != WireAlphabetCode(options_.alphabet)) {
    reject(WireCode::kInvalidArgument,
           "request alphabet does not match the corpus alphabet");
    return;
  }

  enum class Verdict { kAdmitted, kDuplicate, kPipelineFull, kDeadPeer };
  Verdict verdict = Verdict::kAdmitted;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) {
      verdict = Verdict::kDeadPeer;
    } else if (conn->inflight.count(id) != 0) {
      verdict = Verdict::kDuplicate;
    } else if (conn->inflight.size() >= options_.max_pipeline) {
      // inflight covers queued AND running requests (ids register at
      // admission), so this is the full pipelining bound.
      verdict = Verdict::kPipelineFull;
    } else {
      PendingRequest pending;
      pending.wire = std::move(wire);
      pending.token = std::make_shared<CancelToken>();
      if (pending.wire.deadline_ms > 0) {
        // Armed at admission: time spent queued behind the peer's own
        // pipeline counts against the peer's deadline.
        pending.token->SetDeadlineAfter(
            std::chrono::milliseconds(pending.wire.deadline_ms));
      }
      conn->inflight.emplace(id, pending.token);
      conn->pending.push_back(std::move(pending));
    }
  }
  switch (verdict) {
    case Verdict::kAdmitted:
      inst_.admitted->Add();
      inst_.pipeline_depth->Add(1);
      RingPush(conn);
      break;
    case Verdict::kDuplicate:
      reject(WireCode::kInvalidArgument,
             "request_id is already in flight on this connection");
      break;
    case Verdict::kPipelineFull:
      reject(WireCode::kResourceExhausted,
             "pipeline limit reached (" +
                 std::to_string(options_.max_pipeline) +
                 " requests in flight); retry after a response arrives");
      break;
    case Verdict::kDeadPeer:
      break;
  }
}

void NetServer::HandleCancelFrame(const std::shared_ptr<Connection>& conn,
                                  const Frame& frame) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    auto it = conn->inflight.find(frame.header.request_id);
    if (it != conn->inflight.end()) token = it->second;
  }
  // Unknown ids are ignored: a CANCEL racing the request's own STATUS is
  // the normal case, not an error.
  if (token != nullptr) token->Cancel();
}

void NetServer::HandleStatsRequestFrame(const std::shared_ptr<Connection>& conn,
                                        const Frame& frame) {
  // Payload is defined empty in v1; tolerate (and ignore) trailing bytes so
  // a future revision can extend the request without versioning the frame.
  inst_.stats_scrapes->Add();
  std::string bytes;
  AppendStatsFrame(frame.header.request_id, scheduler_->registry().Expose(),
                   &bytes);
  EnqueueOutput(conn, std::move(bytes));
}

// ---------------------------------------------------------------------------
// Query workers.
// ---------------------------------------------------------------------------

void NetServer::WorkerLoop() {
  while (true) {
    std::shared_ptr<Connection> conn;
    PendingRequest request;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(admit_mu_);
      admit_cv_.wait(lock, [this] { return stopping_.load() || !ring_.empty(); });
      if (stopping_.load()) return;
      conn = ring_.front();
      ring_.pop_front();
      {
        std::lock_guard<std::mutex> cl(conn->mu);
        if (!conn->pending.empty()) {
          request = std::move(conn->pending.front());
          conn->pending.pop_front();
          have = true;
        }
        // ONE request per turn: if the connection still has work, it goes
        // to the BACK of the ring — round-robin across connections.
        if (!conn->pending.empty()) {
          ring_.push_back(conn);
        } else {
          conn->in_ring = false;
        }
      }
      if (!ring_.empty()) admit_cv_.notify_one();
    }
    if (have) ServeRequest(conn, std::move(request));
  }
}

void NetServer::ServeRequest(const std::shared_ptr<Connection>& conn,
                             PendingRequest pending) {
  const uint32_t id = pending.wire.request_id;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) {
      if (conn->inflight.erase(id) != 0) inst_.pipeline_depth->Add(-1);
      return;
    }
  }

  api::SearchRequest request;
  request.query = Sequence::FromString(pending.wire.query,
                                       Alphabet::Get(options_.alphabet));
  request.scheme = pending.wire.scheme;
  request.threshold = pending.wire.threshold;
  request.max_hits = pending.wire.max_hits;
  request.allow_partial = pending.wire.allow_partial;
  request.cancel = pending.token.get();

  // Front-end-owned trace sampling: by supplying the trace ourselves we can
  // append the "serialize" spans the scheduler never sees before handing
  // the finished trace back to the shared tracer (slow-query log).
  std::unique_ptr<obs::Trace> trace = scheduler_->tracer().MaybeSample();
  request.trace = trace.get();

  const size_t per_frame =
      std::min(std::max<size_t>(1, options_.hits_per_frame), kMaxHitsPerFrame);
  std::vector<AlignmentHit> chunk;
  chunk.reserve(per_frame);
  auto flush = [&] {
    if (chunk.empty()) return;
    const int64_t start = trace ? obs::Trace::NowNanos() : 0;
    std::string bytes;
    AppendHitsFrame(id, chunk.data(), chunk.size(), &bytes);
    chunk.clear();
    EnqueueOutput(conn, std::move(bytes));
    if (trace) trace->AddSpan("serialize", start, obs::Trace::NowNanos());
  };

  api::StatusOr<api::EngineStats> result = scheduler_->SearchStream(
      pending.wire.backend, request, [&](const AlignmentHit& hit) {
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          // A dead peer stops the stream: SearchStream's cap token fires
          // and the engines short-circuit instead of computing unread hits.
          if (conn->dead) return false;
        }
        chunk.push_back(hit);
        if (chunk.size() >= per_frame) flush();
        return true;
      });

  WireStatus status;
  if (result.ok()) {
    flush();
    status.code = WireCode::kOk;
    status.stats.hits = result->hits_emitted;
    status.stats.engine_micros = static_cast<uint64_t>(result->seconds * 1e6);
    status.stats.truncated = result->truncated;
    status.stats.truncated_by_deadline = result->truncated_by_deadline;
  } else {
    chunk.clear();  // an errored request keeps its stream incomplete
    status.code = WireCodeFor(result.status().code());
    status.retryable = IsRetryable(status.code);
    status.message = result.status().message();
    if (status.code == WireCode::kCancelled ||
        status.code == WireCode::kDeadlineExceeded) {
      inst_.cancelled->Add();
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->inflight.erase(id) != 0) inst_.pipeline_depth->Add(-1);
  }
  const int64_t serialize_start = trace ? obs::Trace::NowNanos() : 0;
  std::string bytes;
  AppendStatusFrame(id, status, &bytes);
  EnqueueOutput(conn, std::move(bytes));
  if (trace) {
    trace->AddSpan("serialize", serialize_start, obs::Trace::NowNanos());
    scheduler_->tracer().Finish(std::move(trace));
  }
  inst_.completed->Add();
}

}  // namespace net
}  // namespace alae
