#include "src/net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace alae {
namespace net {

NetClient::~NetClient() { Close(); }

api::Status NetClient::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return api::Status::FailedPrecondition("already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return api::Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return api::Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    api::Status status = api::Status::Internal(
        "connect " + host + ":" + std::to_string(port) + ": " +
        ::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return api::Status::Ok();
}

void NetClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reader_.Reset();
  partial_.clear();
  done_.clear();
  stats_done_.clear();
}

api::Status NetClient::WriteAll(const std::string& bytes) {
  if (fd_ < 0) return api::Status::FailedPrecondition("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return api::Status::Internal(std::string("send: ") + ::strerror(errno));
  }
  return api::Status::Ok();
}

api::Status NetClient::Send(const WireRequest& request) {
  std::string bytes;
  AppendRequestFrame(request, &bytes);
  return WriteAll(bytes);
}

api::Status NetClient::SendCancel(uint32_t request_id) {
  std::string bytes;
  AppendCancelFrame(request_id, &bytes);
  return WriteAll(bytes);
}

api::Status NetClient::ReadMore() {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      return api::Status::Ok();
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return api::Status::Internal("server closed the connection");
    }
    return api::Status::Internal(std::string("recv: ") + ::strerror(errno));
  }
}

api::Status NetClient::PumpFrame(uint32_t waiting_id) {
  Frame frame;
  api::Status error;
  while (true) {
    const FrameReader::Result result = reader_.Next(&frame, &error);
    if (result == FrameReader::Result::kError) return error;
    if (result == FrameReader::Result::kNeedMore) {
      if (api::Status status = ReadMore(); !status.ok()) return status;
      continue;
    }
    break;
  }
  const uint32_t id = frame.header.request_id;
  switch (frame.header.type) {
    case kFrameHits: {
      std::vector<AlignmentHit> hits;
      if (api::Status status = DecodeHitsPayload(frame.payload, &hits);
          !status.ok()) {
        return status;
      }
      std::vector<AlignmentHit>& sink = partial_[id].hits;
      sink.insert(sink.end(), hits.begin(), hits.end());
      break;
    }
    case kFrameStatus: {
      Response response = std::move(partial_[id]);
      partial_.erase(id);
      if (api::Status status =
              DecodeStatusPayload(frame.payload, &response.status);
          !status.ok()) {
        return status;
      }
      // A protocol-error status is connection-scoped: the server sends
      // it with request_id 0 and closes. Surface it to whoever is
      // waiting rather than filing it under a never-awaited id.
      if (response.status.code == WireCode::kProtocolError &&
          id != waiting_id) {
        return api::Status::InvalidArgument(
            "server reported a protocol error: " + response.status.message);
      }
      done_.emplace(id, std::move(response));
      break;
    }
    case kFrameStats: {
      std::string text;
      if (api::Status status = DecodeStatsPayload(frame.payload, &text);
          !status.ok()) {
        return status;
      }
      stats_done_[id] = std::move(text);
      break;
    }
    default:
      return api::Status::InvalidArgument("unexpected client-bound frame type");
  }
  return api::Status::Ok();
}

api::StatusOr<NetClient::Response> NetClient::Await(uint32_t request_id) {
  if (fd_ < 0) return api::Status::FailedPrecondition("not connected");
  while (true) {
    if (auto it = done_.find(request_id); it != done_.end()) {
      Response response = std::move(it->second);
      done_.erase(it);
      return response;
    }
    if (api::Status status = PumpFrame(request_id); !status.ok()) return status;
  }
}

api::StatusOr<std::string> NetClient::Scrape(uint32_t request_id) {
  std::string bytes;
  AppendStatsRequestFrame(request_id, &bytes);
  if (api::Status status = WriteAll(bytes); !status.ok()) return status;
  while (true) {
    if (auto it = stats_done_.find(request_id); it != stats_done_.end()) {
      std::string text = std::move(it->second);
      stats_done_.erase(it);
      return text;
    }
    if (api::Status status = PumpFrame(request_id); !status.ok()) return status;
  }
}

api::StatusOr<NetClient::Response> NetClient::Call(const WireRequest& request) {
  if (api::Status status = Send(request); !status.ok()) return status;
  return Await(request.request_id);
}

}  // namespace net
}  // namespace alae
