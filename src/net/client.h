#ifndef ALAE_NET_CLIENT_H_
#define ALAE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/align/result.h"
#include "src/api/status.h"
#include "src/net/protocol.h"

namespace alae {
namespace net {

// Blocking client for the ALAE wire protocol — the driver the tests, the
// example binary, and bench_net use. One instance owns one TCP connection
// and must be used from one thread at a time; pipelining comes from
// issuing several Send() calls before the matching Await() calls, not
// from sharing the client across threads (run one client per thread for
// concurrent load).
//
// Responses are demultiplexed by request_id: Await(id) reads frames until
// id's STATUS arrives, filing away interleaved frames of *other*
// in-flight requests for their own Await calls.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  api::Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // The raw socket, for tests that need to wound the connection
  // (::shutdown mid-stream) to exercise server-side disconnect handling.
  int fd() const { return fd_; }

  // Writes one REQUEST frame. Returns once the frame is fully handed to
  // the kernel; the response is collected by Await(request.request_id).
  api::Status Send(const WireRequest& request);

  // Writes one CANCEL frame for an in-flight request id.
  api::Status SendCancel(uint32_t request_id);

  // One complete response: the streamed hits (global sorted order) plus
  // the terminal status. `status.code` carries the request's outcome —
  // transport-level failures surface through the StatusOr instead.
  struct Response {
    std::vector<AlignmentHit> hits;
    WireStatus status;
  };

  // Blocks until request_id's STATUS frame arrives. Fails with kInternal
  // if the connection drops first, and with the decoded error if the
  // server's byte stream violates the protocol.
  api::StatusOr<Response> Await(uint32_t request_id);

  // Send + Await in one call — the non-pipelined convenience path.
  api::StatusOr<Response> Call(const WireRequest& request);

  // Scrapes the server's metrics registry: sends one STATS_REQUEST frame
  // and blocks until the matching STATS frame returns its text exposition.
  // Interleaves with pipelined requests like any other frame — hits and
  // statuses arriving meanwhile are filed for their own Await calls.
  api::StatusOr<std::string> Scrape(uint32_t request_id);

 private:
  api::Status WriteAll(const std::string& bytes);
  api::Status ReadMore();  // one blocking recv into reader_

  // Reads exactly one frame (blocking as needed) and files it under its
  // request_id. `waiting_id` only disambiguates connection-scoped
  // protocol-error statuses, which must surface to the caller in the loop.
  api::Status PumpFrame(uint32_t waiting_id);

  int fd_ = -1;
  FrameReader reader_;
  std::unordered_map<uint32_t, Response> partial_;  // hits before STATUS
  std::unordered_map<uint32_t, Response> done_;     // STATUS seen
  std::unordered_map<uint32_t, std::string> stats_done_;
};

}  // namespace net
}  // namespace alae

#endif  // ALAE_NET_CLIENT_H_
