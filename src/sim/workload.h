#ifndef ALAE_SIM_WORKLOAD_H_
#define ALAE_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/align/scoring.h"
#include "src/io/sequence.h"

namespace alae {

// A benchmark workload: one text and a batch of queries, mirroring the
// paper's setup (one genome, 100 queries of a fixed length sampled from a
// related genome; §7 "Data sets").
struct Workload {
  Sequence text;
  std::vector<Sequence> queries;
};

struct WorkloadSpec {
  int64_t text_length = 1 << 20;
  int64_t query_length = 2000;
  int32_t num_queries = 4;
  AlphabetKind alphabet = AlphabetKind::kDna;
  // Repeat structure of the text (drives the reuse ratio, Fig 7(b)).
  bool plant_repeats = true;
  // Homology model of the queries (drives hit counts, Tables 2-3).
  double homolog_fraction = 0.5;
  double divergence = 0.30;
  double indel_rate = 0.01;
  uint64_t seed = 42;
};

// Deterministically builds the workload for a spec.
Workload BuildWorkload(const WorkloadSpec& spec);

}  // namespace alae

#endif  // ALAE_SIM_WORKLOAD_H_
