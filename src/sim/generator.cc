#include "src/sim/generator.h"

#include <algorithm>

namespace alae {
namespace {

// Robinson & Robinson (1991) amino-acid frequencies, indexed in the order
// of Alphabet::Protein() ("ARNDCQEGHILKMFPSTWYV"), in 1e-5 units.
constexpr int32_t kRobinson[20] = {
    7805, 5129, 4487, 5364, 1925, 4264, 6295, 7377, 2199, 5142,
    9019, 5744, 2243, 3856, 5203, 7120, 5841, 1330, 3216, 6441};

}  // namespace

Symbol SequenceGenerator::RandomSymbol(const Alphabet& alphabet,
                                       bool residue_freqs) {
  if (residue_freqs && alphabet.kind() == AlphabetKind::kProtein) {
    int32_t total = 0;
    for (int32_t f : kRobinson) total += f;
    int32_t pick = static_cast<int32_t>(rng_.Below(static_cast<uint64_t>(total)));
    for (int i = 0; i < 20; ++i) {
      pick -= kRobinson[i];
      if (pick < 0) return static_cast<Symbol>(i);
    }
    return 19;
  }
  return static_cast<Symbol>(rng_.Below(static_cast<uint64_t>(alphabet.sigma())));
}

Sequence SequenceGenerator::Random(int64_t length, const Alphabet& alphabet,
                                   bool use_residue_frequencies) {
  std::vector<Symbol> out(static_cast<size_t>(length));
  for (auto& c : out) c = RandomSymbol(alphabet, use_residue_frequencies);
  return Sequence(std::move(out), alphabet);
}

Sequence SequenceGenerator::TextWithRepeats(
    int64_t length, const Alphabet& alphabet,
    const std::vector<RepeatSpec>& families) {
  Sequence text = Random(length, alphabet, false);
  std::vector<Symbol> symbols = text.symbols();
  for (const RepeatSpec& family : families) {
    if (family.unit_length >= length) continue;
    Sequence unit = Random(family.unit_length, alphabet, false);
    for (int32_t copy = 0; copy < family.copies; ++copy) {
      int64_t at = static_cast<int64_t>(
          rng_.Below(static_cast<uint64_t>(length - family.unit_length)));
      for (int64_t i = 0; i < family.unit_length; ++i) {
        Symbol c = unit[static_cast<size_t>(i)];
        if (rng_.Bernoulli(family.divergence)) {
          c = RandomSymbol(alphabet, false);
        }
        symbols[static_cast<size_t>(at + i)] = c;
      }
    }
  }
  return Sequence(std::move(symbols), alphabet);
}

void SequenceGenerator::MutateInto(const Sequence& text, int64_t src_begin,
                                   int64_t src_len, double divergence,
                                   double indel_rate,
                                   std::vector<Symbol>* out) {
  const Alphabet& alphabet = text.alphabet();
  for (int64_t i = 0; i < src_len; ++i) {
    if (indel_rate > 0 && rng_.Bernoulli(indel_rate)) {
      // Geometric indel: 50/50 insertion vs deletion, mean length 2.
      int64_t len = 1;
      while (rng_.Bernoulli(0.5)) ++len;
      if (rng_.Bernoulli(0.5)) {
        for (int64_t k = 0; k < len; ++k) {
          out->push_back(RandomSymbol(alphabet, false));
        }
      } else {
        i += len - 1;  // deletion: skip source characters
        continue;
      }
    }
    Symbol c = text[static_cast<size_t>(src_begin + i)];
    if (rng_.Bernoulli(divergence)) c = RandomSymbol(alphabet, false);
    out->push_back(c);
  }
}

Sequence SequenceGenerator::HomologousQuery(const Sequence& text,
                                            int64_t length,
                                            double homolog_fraction,
                                            double divergence,
                                            double indel_rate) {
  const Alphabet& alphabet = text.alphabet();
  std::vector<Symbol> out;
  out.reserve(static_cast<size_t>(length));
  // Alternate random spacers and mutated segments until the target length
  // is reached. Segment length ~ 1/20 of the query, at least 50.
  int64_t segment_len = std::max<int64_t>(50, length / 20);
  while (static_cast<int64_t>(out.size()) < length) {
    bool homolog = rng_.NextDouble() < homolog_fraction &&
                   static_cast<int64_t>(text.size()) > segment_len + 1;
    int64_t remaining = length - static_cast<int64_t>(out.size());
    int64_t len = std::min(segment_len, remaining);
    if (homolog) {
      int64_t src = static_cast<int64_t>(rng_.Below(
          static_cast<uint64_t>(static_cast<int64_t>(text.size()) - len)));
      MutateInto(text, src, len, divergence, indel_rate, &out);
    } else {
      for (int64_t i = 0; i < len; ++i) {
        out.push_back(RandomSymbol(alphabet, false));
      }
    }
  }
  out.resize(static_cast<size_t>(length));
  return Sequence(std::move(out), alphabet);
}

}  // namespace alae
