#ifndef ALAE_SIM_GENERATOR_H_
#define ALAE_SIM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"
#include "src/util/rng.h"

namespace alae {

// Synthetic biosequence generator.
//
// Substitutes for the paper's real corpora (GRCh37 human chromosomes,
// MGSCv37 mouse chr1, UniParc): ALAE's filtering behaviour depends on
// q-gram statistics and its reuse behaviour on repeat content, and the
// generator exposes both as knobs (see DESIGN.md §4). Real FASTA input
// remains supported through FastaReader.
struct RepeatSpec {
  int64_t unit_length = 300;   // length of one repeat unit
  int32_t copies = 20;         // occurrences planted across the text
  double divergence = 0.05;    // per-character substitution rate per copy
};

class SequenceGenerator {
 public:
  explicit SequenceGenerator(uint64_t seed) : rng_(seed) {}

  // Uniform random sequence over the alphabet. For proteins,
  // `use_residue_frequencies` switches to Robinson-Robinson background
  // frequencies (the standard amino-acid composition).
  Sequence Random(int64_t length, const Alphabet& alphabet,
                  bool use_residue_frequencies = false);

  // Random text with planted repeat families: the background is random and
  // each family's unit is copied `copies` times at random offsets with
  // per-copy divergence. Mimics genomic repeat structure (LINE/SINE-like).
  Sequence TextWithRepeats(int64_t length, const Alphabet& alphabet,
                           const std::vector<RepeatSpec>& families);

  // A homologous query (the mouse-vs-human workload, paper §7): sample
  // `homolog_fraction` of the query as segments copied from random
  // positions of `text` and mutated (substitution rate `divergence`,
  // geometric indels at rate `indel_rate`), embedded in random background.
  // Divergence >= ~0.25 keeps DNA local-alignment scores bounded, which is
  // what real inter-species homology looks like under <1,-3,-5,-2>.
  Sequence HomologousQuery(const Sequence& text, int64_t length,
                           double homolog_fraction, double divergence,
                           double indel_rate);

  Rng& rng() { return rng_; }

 private:
  Symbol RandomSymbol(const Alphabet& alphabet, bool residue_freqs);
  void MutateInto(const Sequence& text, int64_t src_begin, int64_t src_len,
                  double divergence, double indel_rate,
                  std::vector<Symbol>* out);

  Rng rng_;
};

}  // namespace alae

#endif  // ALAE_SIM_GENERATOR_H_
