#include "src/sim/workload.h"

#include "src/sim/generator.h"

namespace alae {

Workload BuildWorkload(const WorkloadSpec& spec) {
  SequenceGenerator gen(spec.seed);
  const Alphabet& alphabet = Alphabet::Get(spec.alphabet);
  Workload w;
  if (spec.plant_repeats) {
    // Three families scaled to the text (LINE/SINE-like structure),
    // together ~15% of the text — real mammalian genomes are ~50%
    // repetitive, and the repeat content is what drives ALAE's reuse
    // ratio (queries sampled from the text then contain near-duplicate
    // stretches, Fig 7(b)).
    std::vector<RepeatSpec> families;
    RepeatSpec line_family;
    line_family.unit_length = 500;
    line_family.copies =
        static_cast<int32_t>(std::max<int64_t>(4, spec.text_length / 10000));
    line_family.divergence = 0.10;
    RepeatSpec mid_family;
    mid_family.unit_length = 150;
    mid_family.copies =
        static_cast<int32_t>(std::max<int64_t>(8, spec.text_length / 3000));
    mid_family.divergence = 0.12;
    RepeatSpec sine_family;
    sine_family.unit_length = 70;
    sine_family.copies =
        static_cast<int32_t>(std::max<int64_t>(12, spec.text_length / 1500));
    sine_family.divergence = 0.15;
    families.push_back(line_family);
    families.push_back(mid_family);
    families.push_back(sine_family);
    w.text = gen.TextWithRepeats(spec.text_length, alphabet, families);
  } else {
    w.text = gen.Random(spec.text_length, alphabet,
                        spec.alphabet == AlphabetKind::kProtein);
  }
  for (int32_t i = 0; i < spec.num_queries; ++i) {
    w.queries.push_back(gen.HomologousQuery(w.text, spec.query_length,
                                            spec.homolog_fraction,
                                            spec.divergence, spec.indel_rate));
  }
  return w;
}

}  // namespace alae
