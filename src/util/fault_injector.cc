#include "src/util/fault_injector.h"

namespace alae {

std::atomic<FaultInjector*> FaultInjector::current_{nullptr};

void FaultInjector::FailAt(std::string_view site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_ = std::string(site);
  armed_nth_ = nth == 0 ? 1 : nth;
  random_mode_ = false;
}

void FaultInjector::FailRandomly(double probability, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_site_.clear();
  random_mode_ = true;
  random_probability_ = probability;
  rng_state_ = seed == 0 ? 0x9E3779B97F4A7C15ull : seed;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  armed_site_.clear();
  armed_nth_ = 0;
  random_mode_ = false;
  random_probability_ = 0;
  failures_ = 0;
}

bool FaultInjector::ShouldFail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  if (it == counts_.end()) {
    it = counts_.emplace(std::string(site), 0).first;
  }
  const uint64_t crossing = ++it->second;  // 1-based ordinal
  bool fail = false;
  if (!armed_site_.empty()) {
    fail = armed_site_ == site && crossing == armed_nth_;
  } else if (random_mode_) {
    // splitmix64: deterministic for a fixed seed and crossing order.
    uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    fail = static_cast<double>(z >> 11) * 0x1.0p-53 < random_probability_;
  }
  if (fail) ++failures_;
  return fail;
}

std::vector<std::string> FaultInjector::SitesSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> sites;
  sites.reserve(counts_.size());
  for (const auto& [site, count] : counts_) {
    (void)count;
    sites.push_back(site);
  }
  return sites;
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

uint64_t FaultInjector::failures_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

}  // namespace alae
