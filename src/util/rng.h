#ifndef ALAE_UTIL_RNG_H_
#define ALAE_UTIL_RNG_H_

#include <cstdint>

namespace alae {

// xoshiro256** 1.0 — small, fast, high-quality PRNG used for workload
// generation and property tests. Deterministic for a given seed so every
// experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace alae

#endif  // ALAE_UTIL_RNG_H_
