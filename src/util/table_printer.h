#ifndef ALAE_UTIL_TABLE_PRINTER_H_
#define ALAE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace alae {

// Renders aligned ASCII tables for the benchmark harnesses, mirroring the
// row/column layout of the paper's tables so measured output can be compared
// side by side with the published numbers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; cells beyond the header width are dropped, missing cells
  // are rendered empty.
  void AddRow(std::vector<std::string> row);

  // Returns the fully formatted table with a separator under the header.
  std::string ToString() const;

  // Convenience: formats a double with the given precision.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace alae

#endif  // ALAE_UTIL_TABLE_PRINTER_H_
