#ifndef ALAE_UTIL_SERIALIZE_H_
#define ALAE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace alae {

// Appends `value`'s raw bytes to a string. The in-memory fixed-width
// encoder behind both halves of the service cache key (the plan
// fingerprint and the max_hits/epoch suffix) — one definition so the two
// can never desynchronise byte-wise.
template <typename T>
void AppendRaw(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

// Tiny little-endian binary (de)serialisation helpers for the index
// save/load paths. All methods return false on stream failure so callers
// can surface I/O errors without exceptions.

inline bool PutU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  return static_cast<bool>(out);
}

inline bool GetU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

template <typename T>
bool PutVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!PutU64(out, v.size())) return false;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool GetVec(std::istream& in, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  if (!GetU64(in, &size)) return false;
  // Cap pathological sizes (corrupt streams) at 16 GiB of payload.
  if (size > (16ULL << 30) / sizeof(T)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace alae

#endif  // ALAE_UTIL_SERIALIZE_H_
