#ifndef ALAE_UTIL_FAULT_INJECTOR_H_
#define ALAE_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace alae {

// Deterministic fault injection for the persistence and admission paths.
//
// Production code marks its failure points with FaultInjector::Hit("site")
// — every write/rename/fsync in the corpus save paths, the allocation-
// pressure point of index build, pool admission. With no injector
// installed (the default, and the only configuration outside tests) Hit
// is one relaxed atomic load of a null pointer — the hooks are compiled
// in everywhere but cost nothing.
//
// Tests install an injector and drive it in two phases:
//
//   1. Record: install a fresh injector, run the operation once, read
//      SitesSeen() — the complete, ordered-by-name list of failure points
//      the operation actually crossed, with per-site hit counts.
//   2. Sweep: for every (site, nth) pair recorded, re-run the operation
//      with FailAt(site, nth) armed and assert the failure is contained
//      (e.g. the previous manifest still loads bit-exact).
//
// The sweep is exhaustive by construction: a new persistence write site
// added to the code shows up in the recording and is swept automatically.
// FailRandomly's seeded mode exists for soak-style tests.
//
// Thread-safe; sites may be hit concurrently.
class FaultInjector {
 public:
  // The process-wide injector, or null when none is installed.
  static FaultInjector* Get() {
    return current_.load(std::memory_order_relaxed);
  }

  // Installs `injector` (null to uninstall). The caller owns it and must
  // uninstall before destroying it; tests use ScopedFaultInjector.
  static void Install(FaultInjector* injector) {
    current_.store(injector, std::memory_order_release);
  }

  // The production-side hook: records the crossing and reports whether
  // this site should fail now. Free when no injector is installed.
  static bool Hit(std::string_view site) {
    FaultInjector* injector = Get();
    return injector != nullptr && injector->ShouldFail(site);
  }

  // Arms the nth (1-based) crossing of `site` to fail. Replaces any
  // previously armed point; one armed point at a time keeps sweeps
  // single-fault by construction.
  void FailAt(std::string_view site, uint64_t nth);

  // Seeded pseudo-random mode: every crossing of every site fails with
  // `probability`, reproducibly for a fixed seed and crossing order.
  void FailRandomly(double probability, uint64_t seed);

  // Clears armed faults and recorded counts.
  void Reset();

  // Recording: sites crossed since the last Reset, name-sorted, and the
  // number of crossings of one site.
  std::vector<std::string> SitesSeen() const;
  uint64_t HitCount(std::string_view site) const;

  // Total crossings that were made to fail (for assertions).
  uint64_t failures_injected() const;

 private:
  bool ShouldFail(std::string_view site);

  static std::atomic<FaultInjector*> current_;

  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counts_;
  std::string armed_site_;      // empty = nothing armed
  uint64_t armed_nth_ = 0;      // 1-based crossing ordinal
  bool random_mode_ = false;
  double random_probability_ = 0;
  uint64_t rng_state_ = 0;
  uint64_t failures_ = 0;
};

// RAII install/uninstall for tests.
class ScopedFaultInjector {
 public:
  ScopedFaultInjector() { FaultInjector::Install(&injector_); }
  ~ScopedFaultInjector() { FaultInjector::Install(nullptr); }

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& get() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace alae

#endif  // ALAE_UTIL_FAULT_INJECTOR_H_
