#ifndef ALAE_UTIL_CANCEL_H_
#define ALAE_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace alae {

// Cooperative cancellation: an atomic flag plus an optional steady-clock
// deadline, observed (never blocked on) by the engine hot loops. A token
// has two producers — the owner calling Cancel()/SetDeadline*, and the
// clock — and any number of consumer threads polling Expired(). All state
// is monotone (a fired token never un-fires within one run), so relaxed
// atomics suffice; Reset() is only for reusing a token between runs that
// are externally ordered (e.g. consecutive background compactions).
//
// Tokens compose by observation: a scheduler-owned token can carry an
// observe-only pointer to the caller's request token, so the scheduler
// can impose its own default deadline or shutdown-cancel every in-flight
// query without mutating (or outliving) caller state. Parents are checked
// on every Expired() call; chains are expected to be depth <= 2.
class CancelToken {
 public:
  enum class Why : int { kNone = 0, kCancelled, kDeadline };

  CancelToken() = default;
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Fires the token. Idempotent; an explicit cancel wins over a deadline
  // that expires later (Why() reports the first cause observed).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Absolute steady-clock deadline. 0 duration-since-epoch is reserved to
  // mean "none"; a real deadline that collapses to 0 is nudged by 1 ns.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     deadline.time_since_epoch())
                     .count();
    if (ns == 0) ns = 1;
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds budget) {
    SetDeadline(std::chrono::steady_clock::now() + budget);
  }
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_relaxed); }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // True once the token (or any ancestor) is cancelled or past deadline.
  // Reads the clock only when a deadline is armed.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns != 0 && NowNanos() >= ns) return true;
    return parent_ != nullptr && parent_->Expired();
  }

  // Why the token fired (kNone if it has not). Explicit cancellation wins
  // over a deadline when both hold — cancel is the more deliberate signal.
  Why ExpiredWhy() const {
    if (cancelled_.load(std::memory_order_relaxed)) return Why::kCancelled;
    const int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    if (ns != 0 && NowNanos() >= ns) return Why::kDeadline;
    return parent_ == nullptr ? Why::kNone : parent_->ExpiredWhy();
  }

  // Re-arms a token for the next externally-ordered run. Does not touch
  // the parent (which belongs to someone else).
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
  const CancelToken* parent_ = nullptr;  // observed, never mutated
};

// Amortised poll for hot loops: counts work units down and consults the
// token only when the stride is spent, so the steady-clock read (the
// expensive part of a deadline check) happens once per ~stride ops. A
// null token makes Tick() a compare against a never-reached budget —
// effectively free, which is what keeps the cancellation plumbing
// unmeasurable on the no-deadline path.
class CancelScan {
 public:
  explicit CancelScan(const CancelToken* token, int64_t stride = 4096)
      : token_(token), stride_(stride), budget_(stride) {}

  // Accounts `ops` units of work; returns true once the token has fired.
  // After firing it keeps returning true without further token reads.
  bool Tick(int64_t ops = 1) {
    if (token_ == nullptr) return false;
    budget_ -= ops;
    if (budget_ > 0) return fired_;
    budget_ = stride_;
    if (token_->Expired()) fired_ = true;
    return fired_;
  }

  bool fired() const { return fired_; }
  const CancelToken* token() const { return token_; }

 private:
  const CancelToken* token_;
  int64_t stride_;
  int64_t budget_;
  bool fired_ = false;
};

}  // namespace alae

#endif  // ALAE_UTIL_CANCEL_H_
