#include "src/util/table_printer.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace alae {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) { return std::to_string(v); }

}  // namespace alae
