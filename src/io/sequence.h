#ifndef ALAE_IO_SEQUENCE_H_
#define ALAE_IO_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/io/alphabet.h"

namespace alae {

// A biosequence: encoded symbols plus the alphabet they were encoded with.
//
// This is the unit the aligners consume. Sequences are value types; large
// texts are typically built once and passed by const reference.
class Sequence {
 public:
  Sequence() : alphabet_(&Alphabet::Dna()) {}
  Sequence(std::vector<Symbol> symbols, const Alphabet& alphabet)
      : symbols_(std::move(symbols)), alphabet_(&alphabet) {}

  // Builds a sequence from ASCII text, masking unknown residues to code 0.
  static Sequence FromString(std::string_view text, const Alphabet& alphabet);

  size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }
  Symbol operator[](size_t i) const { return symbols_[i]; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  const Alphabet& alphabet() const { return *alphabet_; }
  int sigma() const { return alphabet_->sigma(); }

  // Subsequence [pos, pos+len) as a new Sequence.
  Sequence Substr(size_t pos, size_t len) const;

  // Reversed copy (used to build the FM-index over T^-1; see paper §5).
  Sequence Reversed() const;

  // Appends another sequence (used to concatenate database records, §2.2).
  void Append(const Sequence& other);

  std::string ToString() const { return alphabet_->Decode(symbols_); }

  bool operator==(const Sequence& other) const {
    return symbols_ == other.symbols_ &&
           alphabet_->kind() == other.alphabet_->kind();
  }

 private:
  std::vector<Symbol> symbols_;
  const Alphabet* alphabet_;
};

// One document's placement inside a concatenated corpus text: the unit of
// mutation for live corpora (appends create one, deletes tombstone one)
// and of provenance when a FASTA collection is flattened into a single
// text (paper §2.2's collection-to-text reduction).
struct DocumentSpan {
  uint64_t id = 0;
  int64_t begin = 0;  // global text span [begin, end)
  int64_t end = 0;

  int64_t length() const { return end - begin; }
  bool Contains(int64_t pos) const { return pos >= begin && pos < end; }

  bool operator==(const DocumentSpan& o) const {
    return id == o.id && begin == o.begin && end == o.end;
  }
};

// 2-bit packed storage for DNA texts. The FM-index stores its BWT this way
// when sigma <= 4, which is what makes the "BWT index" curve of Fig 11(a)
// small (2 bits/char plus rank samples).
class PackedDnaStore {
 public:
  PackedDnaStore() = default;
  explicit PackedDnaStore(const std::vector<Symbol>& symbols);

  size_t size() const { return size_; }
  Symbol Get(size_t i) const {
    return static_cast<Symbol>((words_[i >> 5] >> ((i & 31) * 2)) & 3);
  }
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace alae

#endif  // ALAE_IO_SEQUENCE_H_
