#include "src/io/sequence.h"

#include <algorithm>
#include <cstddef>

namespace alae {

Sequence Sequence::FromString(std::string_view text, const Alphabet& alphabet) {
  return Sequence(alphabet.Encode(text), alphabet);
}

Sequence Sequence::Substr(size_t pos, size_t len) const {
  pos = std::min(pos, symbols_.size());
  len = std::min(len, symbols_.size() - pos);
  return Sequence(
      std::vector<Symbol>(symbols_.begin() + static_cast<ptrdiff_t>(pos),
                          symbols_.begin() + static_cast<ptrdiff_t>(pos + len)),
      *alphabet_);
}

Sequence Sequence::Reversed() const {
  std::vector<Symbol> rev(symbols_.rbegin(), symbols_.rend());
  return Sequence(std::move(rev), *alphabet_);
}

void Sequence::Append(const Sequence& other) {
  symbols_.insert(symbols_.end(), other.symbols_.begin(), other.symbols_.end());
}

PackedDnaStore::PackedDnaStore(const std::vector<Symbol>& symbols)
    : size_(symbols.size()) {
  words_.assign((size_ + 31) / 32, 0);
  for (size_t i = 0; i < size_; ++i) {
    words_[i >> 5] |= static_cast<uint64_t>(symbols[i] & 3) << ((i & 31) * 2);
  }
}

}  // namespace alae
