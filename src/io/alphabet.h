#ifndef ALAE_IO_ALPHABET_H_
#define ALAE_IO_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alae {

// Symbol type used throughout the library. Sequences are stored as small
// integer codes in [0, sigma); the FM-index additionally reserves code
// `sigma` internally for the sentinel.
using Symbol = uint8_t;

enum class AlphabetKind { kDna, kProtein };

// Maps between ASCII residue characters and dense integer codes.
//
// DNA uses A,C,G,T (sigma = 4). Protein uses the 20 standard amino acids
// (sigma = 20). Characters outside the alphabet (N, ambiguity codes, ...)
// are canonicalised to code 0, mirroring the common practice of masking
// unknown residues; parsing APIs report how many were replaced.
class Alphabet {
 public:
  static const Alphabet& Dna();
  static const Alphabet& Protein();
  static const Alphabet& Get(AlphabetKind kind);

  AlphabetKind kind() const { return kind_; }
  int sigma() const { return sigma_; }

  // Returns the code for an ASCII character, or -1 if it is not a canonical
  // residue (callers decide whether to mask or reject).
  int CodeOf(char c) const { return code_of_[static_cast<unsigned char>(c)]; }

  char CharOf(Symbol code) const { return char_of_[code]; }

  // Encodes `text`, masking unknown characters to code 0. If `masked` is
  // non-null it receives the number of masked characters.
  std::vector<Symbol> Encode(std::string_view text, size_t* masked = nullptr) const;

  std::string Decode(const std::vector<Symbol>& codes) const;

 private:
  Alphabet(AlphabetKind kind, std::string_view chars);

  AlphabetKind kind_;
  int sigma_;
  char char_of_[32];
  int code_of_[256];
};

}  // namespace alae

#endif  // ALAE_IO_ALPHABET_H_
