#include "src/io/fasta.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace alae {

bool FastaReader::ParseString(const std::string& payload,
                              std::vector<FastaRecord>* records,
                              std::string* error) {
  records->clear();
  std::istringstream in(payload);
  std::string line;
  FastaRecord current;
  bool have_record = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      if (have_record) {
        if (current.residues.empty()) {
          if (error) *error = "empty record before line " + std::to_string(line_no);
          return false;
        }
        records->push_back(std::move(current));
        current = FastaRecord();
      }
      current.header = line.substr(1);
      have_record = true;
    } else if (line[0] == ';') {
      continue;  // Old-style comment lines are skipped.
    } else {
      if (!have_record) {
        if (error) {
          *error = "residues before first '>' header at line " +
                   std::to_string(line_no);
        }
        return false;
      }
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          current.residues.push_back(c);
        }
      }
    }
  }
  if (have_record) {
    if (current.residues.empty()) {
      if (error) *error = "empty final record";
      return false;
    }
    records->push_back(std::move(current));
  }
  if (records->empty()) {
    if (error) *error = "no FASTA records found";
    return false;
  }
  return true;
}

bool FastaReader::ParseFile(const std::string& path,
                            std::vector<FastaRecord>* records,
                            std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseString(buf.str(), records, error);
}

Sequence FastaReader::ToText(const std::vector<FastaRecord>& records,
                             const Alphabet& alphabet,
                             std::vector<size_t>* boundaries) {
  Sequence text({}, alphabet);
  if (boundaries) boundaries->clear();
  for (const auto& rec : records) {
    if (boundaries) boundaries->push_back(text.size());
    text.Append(Sequence::FromString(rec.residues, alphabet));
  }
  return text;
}

Sequence FastaReader::ToDocuments(const std::vector<FastaRecord>& records,
                                  const Alphabet& alphabet,
                                  std::vector<DocumentSpan>* spans) {
  Sequence text({}, alphabet);
  if (spans) spans->clear();
  for (size_t r = 0; r < records.size(); ++r) {
    const int64_t begin = static_cast<int64_t>(text.size());
    text.Append(Sequence::FromString(records[r].residues, alphabet));
    if (spans) {
      spans->push_back(DocumentSpan{r, begin,
                                    static_cast<int64_t>(text.size())});
    }
  }
  return text;
}

std::string FastaWriter::ToString(const std::vector<FastaRecord>& records,
                                  size_t line_width) {
  std::ostringstream out;
  for (const auto& rec : records) {
    out << '>' << rec.header << '\n';
    for (size_t i = 0; i < rec.residues.size(); i += line_width) {
      out << rec.residues.substr(i, line_width) << '\n';
    }
  }
  return out.str();
}

bool FastaWriter::WriteFile(const std::string& path,
                            const std::vector<FastaRecord>& records,
                            std::string* error, size_t line_width) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToString(records, line_width);
  return static_cast<bool>(out);
}

}  // namespace alae
