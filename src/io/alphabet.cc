#include "src/io/alphabet.h"

#include <cctype>

namespace alae {

Alphabet::Alphabet(AlphabetKind kind, std::string_view chars)
    : kind_(kind), sigma_(static_cast<int>(chars.size())) {
  for (int i = 0; i < 256; ++i) code_of_[i] = -1;
  for (int i = 0; i < 32; ++i) char_of_[i] = '?';
  for (int i = 0; i < sigma_; ++i) {
    char c = chars[static_cast<size_t>(i)];
    char_of_[i] = c;
    code_of_[static_cast<unsigned char>(c)] = i;
    code_of_[static_cast<unsigned char>(std::tolower(c))] = i;
  }
}

const Alphabet& Alphabet::Dna() {
  static const Alphabet* a = new Alphabet(AlphabetKind::kDna, "ACGT");
  return *a;
}

const Alphabet& Alphabet::Protein() {
  // The 20 standard amino acids in the conventional single-letter order.
  static const Alphabet* a =
      new Alphabet(AlphabetKind::kProtein, "ARNDCQEGHILKMFPSTWYV");
  return *a;
}

const Alphabet& Alphabet::Get(AlphabetKind kind) {
  return kind == AlphabetKind::kDna ? Dna() : Protein();
}

std::vector<Symbol> Alphabet::Encode(std::string_view text, size_t* masked) const {
  std::vector<Symbol> out;
  out.reserve(text.size());
  size_t bad = 0;
  for (char c : text) {
    int code = CodeOf(c);
    if (code < 0) {
      ++bad;
      code = 0;
    }
    out.push_back(static_cast<Symbol>(code));
  }
  if (masked != nullptr) *masked = bad;
  return out;
}

std::string Alphabet::Decode(const std::vector<Symbol>& codes) const {
  std::string out;
  out.reserve(codes.size());
  for (Symbol s : codes) out.push_back(CharOf(s));
  return out;
}

}  // namespace alae
