#ifndef ALAE_IO_FASTA_H_
#define ALAE_IO_FASTA_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// One FASTA record: ">header" line plus residue lines.
struct FastaRecord {
  std::string header;
  std::string residues;
};

// Minimal, strict FASTA reader/writer.
//
// Parse errors (no '>' at start, empty record, stray characters before the
// first header) are reported through the bool return + error string rather
// than exceptions, per the project style.
class FastaReader {
 public:
  // Parses an entire FASTA payload. Returns false and sets *error on
  // malformed input. Whitespace inside residue lines is ignored.
  static bool ParseString(const std::string& payload,
                          std::vector<FastaRecord>* records,
                          std::string* error);

  static bool ParseFile(const std::string& path,
                        std::vector<FastaRecord>* records,
                        std::string* error);

  // Concatenates all records of a parsed FASTA payload into one Sequence
  // (the paper's collection-of-sequences-to-single-text reduction, §2.2).
  // `boundaries` (optional) receives the start offset of each record.
  static Sequence ToText(const std::vector<FastaRecord>& records,
                         const Alphabet& alphabet,
                         std::vector<size_t>* boundaries = nullptr);

  // Same concatenation, but reporting each record as a DocumentSpan (ids
  // are record ordinals) — the shape LiveCorpus mutates by: every span is
  // individually deletable once the text is served live.
  static Sequence ToDocuments(const std::vector<FastaRecord>& records,
                              const Alphabet& alphabet,
                              std::vector<DocumentSpan>* spans);
};

class FastaWriter {
 public:
  // Serialises records with the given line width (default 70 columns).
  static std::string ToString(const std::vector<FastaRecord>& records,
                              size_t line_width = 70);
  static bool WriteFile(const std::string& path,
                        const std::vector<FastaRecord>& records,
                        std::string* error, size_t line_width = 70);
};

}  // namespace alae

#endif  // ALAE_IO_FASTA_H_
