#ifndef ALAE_SERVICE_LIVE_CORPUS_H_
#define ALAE_SERVICE_LIVE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/api.h"
#include "src/io/sequence.h"
#include "src/obs/metrics.h"
#include "src/service/corpus_view.h"
#include "src/service/delta_shard.h"
#include "src/service/sharded_corpus.h"
#include "src/service/thread_pool.h"
#include "src/util/cancel.h"

namespace alae {
namespace service {

struct LiveCorpusOptions {
  // Geometry and index options for the immutable base (initial build and
  // every compaction rebuild). The overlap doubles as the delta shards'
  // context margin, so the usual sizing rule covers both shard kinds.
  ShardedCorpusOptions base;

  // Fold the deltas back into the base once this many are outstanding
  // (0 = compact only on explicit Compact() calls).
  size_t compact_after_deltas = 8;

  // Run triggered compactions on a dedicated background thread (cleanly
  // joined at destruction); with `false` a triggered compaction runs
  // synchronously inside the mutating call — deterministic, for tests.
  bool background_compaction = true;

  // Registry for the live-corpus instruments — append latency, compaction
  // duration and swap pause, delta/tombstone levels (null = the process
  // Default()). Always recorded: every site is on the mutation path, off
  // the query hot path.
  obs::MetricsRegistry* registry = nullptr;
};

// A mutable corpus in the log-structured mould (LogBase): an immutable
// ShardedCorpus base absorbs no writes — instead AppendDocument builds a
// small write-absorbing DeltaShard over just the new text (synchronously;
// it is tiny), DeleteDocument records a tombstone over the document's
// global span, and queries fan out over base + delta slices through the
// ordinary QueryScheduler path, with HitMerger suppressing tombstoned
// hits at read time. Compaction — background-triggered or explicit —
// rewrites the physical text without the dead spans, rebuilds a fresh
// base, and atomically swaps it in under a new epoch (document ids are
// stable across the swap; coordinates are not).
//
// Geometry. The physical text is the concatenation of every appended
// document, dead ones included until compaction. Delta shard k absorbs
// document [b_k, e_k) and its index covers [max(0, cut_k - overlap), e_k)
// where cut_k = max(0, b_k - overlap) is its ownership cut: the delta
// takes over the trailing `overlap` characters of the preceding region,
// so every end position it owns — including re-owned ones just before
// its document — has at least `overlap` characters of context on BOTH
// sides inside its own slice, exactly the base-shard contract. (The
// previous owner loses those ends but could not serve them with right
// context anyway: the new document changed what follows them.) Owned
// ranges [cut_k, cut_{k+1}) partition everything past the base's clamped
// frontier, so the merged answer is bit-exact against a monolithic
// rebuild of the same physical text — the invariant the randomized
// mutation differential enforces for all five backends.
//
// Deletion semantics. A tombstone suppresses every hit whose conservative
// alignment window — RequiredSpan(backend, request) characters ending at
// the hit's text_end — touches the dead span. No backend ever reports an
// alignment using deleted characters; alignments merely near a dead span
// are withheld until compaction reclaims the bytes (they reappear under
// the post-compaction epoch). The window depends only on text_end, which
// every backend reports, so all five backends filter identically.
//
// Concurrency. Queries never block on mutations: Snapshot() hands out an
// immutable CorpusView pinning the base and deltas it references, and
// mutations swap fresh state in behind it. Mutations (append, delete,
// compact, save) serialise on one mutation lock — an append stalls for
// the duration of a concurrent compaction's rebuild (the "compaction
// pause" bench_live measures), queries do not.
class LiveCorpus : public CorpusSource {
 public:
  struct DocumentInfo {
    DocumentSpan span;
    bool alive = true;
  };

  // One-document corpus over `text`.
  static api::StatusOr<std::unique_ptr<LiveCorpus>> Build(
      Sequence text, LiveCorpusOptions options = {});

  // Multi-document corpus: `docs` must partition [0, text.size()) in
  // order, with unique ids (e.g. FastaReader::ToDocuments output). Every
  // document is individually deletable.
  static api::StatusOr<std::unique_ptr<LiveCorpus>> Build(
      Sequence text, std::vector<DocumentSpan> docs,
      LiveCorpusOptions options = {});

  // Loads a directory written by Save (live manifest v3 with
  // generation-stamped data files, or the older ungenerated v2, including
  // pending deltas and the tombstone journal) or by ShardedCorpus::Save
  // (v1; wrapped as a single-document live corpus). Stale staging files
  // from an interrupted save/compaction (corpus.manifest.tmp,
  // compact.tmp, data files of other generations) are ignored and cleaned
  // up. Geometry and index options come from the manifest; `options`
  // supplies the runtime knobs (compaction trigger, background thread).
  static api::StatusOr<std::unique_ptr<LiveCorpus>> Load(
      const std::string& dir, LiveCorpusOptions options = {});

  // Cancels any in-flight background compaction (its base rebuild aborts
  // at the next shard boundary, nothing is swapped in) and joins the
  // compactor thread before the state it reads is torn down.
  ~LiveCorpus() override;

  // Appends one document: builds its delta shard synchronously and
  // publishes a new snapshot. Returns the document's id. May trigger a
  // compaction (see LiveCorpusOptions). kInvalidArgument for an empty
  // document, an alphabet mismatch, or overflowing the 2^32-1 coordinate
  // limit.
  api::StatusOr<uint64_t> AppendDocument(const Sequence& doc);

  // Tombstones one document. kNotFound for an unknown id,
  // kFailedPrecondition if already deleted.
  api::Status DeleteDocument(uint64_t doc_id);

  // Synchronous compaction: rewrites the text without dead spans, rebuilds
  // the base, swaps under a new epoch. No-op Ok when there is nothing to
  // fold; kFailedPrecondition when every document is deleted (an empty
  // corpus cannot be indexed — append first).
  api::Status Compact();

  // Directory persistence (manifest v3). Crash-safe cutover at every
  // point: each save writes its data files under a fresh generation
  // number (`shard-K.g<gen>.fm`, `delta-K.g<gen>.fm`,
  // `tombstones.g<gen>.journal`) without touching the files the current
  // manifest names, then stages the manifest and renames it into place as
  // the sole mutation of existing state — a save interrupted (or
  // fault-injected) at ANY write leaves the previous on-disk corpus
  // authoritative and bit-exact. Files of other generations are swept
  // after the rename.
  api::Status Save(const std::string& dir) const;

  // The immutable snapshot queries run against: base slices (ownership
  // clamped at the delta frontier), delta slices, tombstones.
  CorpusView Snapshot() const override;

  // Observability. Values are coherent per call (one lock), but two calls
  // may straddle a mutation; epoch() changes with every mutation.
  uint64_t epoch() const;
  int64_t text_size() const;        // physical text incl. dead spans
  size_t num_deltas() const;
  size_t num_tombstones() const;
  uint64_t compactions() const;
  uint64_t background_compactions() const;  // completed background runs
  std::vector<DocumentInfo> Documents() const;
  std::vector<TombstoneSpan> Tombstones() const;
  std::shared_ptr<const ShardedCorpus> base() const;
  const Alphabet& alphabet() const { return *alphabet_; }
  size_t IndexBytes() const;  // base + deltas

 private:
  LiveCorpus() = default;

  // Resolves the registry-backed instruments; options_ must be set.
  // Called (with StartCompactorIfConfigured) by every construction path.
  void InitInstruments();

  void StartCompactorIfConfigured();

  // Compaction body; mutate_mu_ must be held. `cancel` (may be null) is
  // observed between shard builds of the base rebuild: a fired token
  // aborts the compaction without swapping anything in.
  api::Status CompactLocked(const CancelToken* cancel);

  // Trigger policy after a mutation; mutate_mu_ must be held.
  void MaybeCompactLocked();

  LiveCorpusOptions options_;
  const Alphabet* alphabet_ = nullptr;

  // Registry-backed instruments (see LiveCorpusOptions::registry).
  struct Instruments {
    obs::Counter* appends = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* tombstones_gced = nullptr;
    obs::Gauge* delta_shards = nullptr;
    obs::Gauge* tombstones = nullptr;
    obs::Histogram* append_seconds = nullptr;
    obs::Histogram* compaction_seconds = nullptr;
    obs::Histogram* compaction_pause_seconds = nullptr;
  };
  Instruments inst_;

  // Serialises mutations (append/delete/compact/save) against each other;
  // held across index builds. Queries never take it.
  mutable std::mutex mutate_mu_;
  // The full physical text. Written under mutate_mu_ (+ state_mu_ for the
  // swap in compaction); holding either lock is enough to read it.
  Sequence text_;
  uint64_t next_doc_id_ = 0;  // mutate_mu_

  // Snapshot state: swapped whole under state_mu_; every writer holds
  // mutate_mu_ too, so holding either lock suffices for reads.
  mutable std::mutex state_mu_;
  std::shared_ptr<const ShardedCorpus> base_;
  std::vector<std::shared_ptr<const DeltaShard>> deltas_;
  std::vector<TombstoneSpan> tombstones_;  // sorted by begin, disjoint
  std::vector<DocumentInfo> docs_;         // append order == text order
  int64_t text_size_ = 0;
  uint64_t epoch_ = 0;
  uint64_t compactions_ = 0;

  // Fired once at destruction so a running background compaction aborts
  // promptly instead of being waited out to completion.
  CancelToken compact_cancel_;

  // Declared last: joins before the state it compacts is torn down.
  std::unique_ptr<BackgroundWorker> compactor_;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_LIVE_CORPUS_H_
