#ifndef ALAE_SERVICE_SERVICE_H_
#define ALAE_SERVICE_SERVICE_H_

// Umbrella header for the sharded concurrent query service:
//
//   auto corpus = service::ShardedCorpus::Build(text, {.shard_size = 1 << 20,
//                                                      .overlap = 4096});
//   service::QueryScheduler scheduler(**corpus, {.threads = 8});
//   auto response = scheduler.Search("alae", request);
//
// ShardedCorpus partitions the text into overlapping shards, each with its
// own FM-index and per-backend Aligners; QueryScheduler fans requests
// across the shards on a bounded ThreadPool, merges the per-shard streams
// through HitMerger, and serves repeats from an LRU ResultCache. See
// README "Serving" for the architecture and the shard-sizing rule.

#include "src/service/hit_merger.h"      // IWYU pragma: export
#include "src/service/result_cache.h"    // IWYU pragma: export
#include "src/service/scheduler.h"       // IWYU pragma: export
#include "src/service/sharded_corpus.h"  // IWYU pragma: export
#include "src/service/thread_pool.h"     // IWYU pragma: export

#endif  // ALAE_SERVICE_SERVICE_H_
