#ifndef ALAE_SERVICE_SERVICE_H_
#define ALAE_SERVICE_SERVICE_H_

// Umbrella header for the sharded concurrent query service:
//
//   auto corpus = service::ShardedCorpus::Build(text, {.shard_size = 1 << 20,
//                                                      .overlap = 4096});
//   service::QueryScheduler scheduler(**corpus, {.threads = 8});
//   auto response = scheduler.Search("alae", request);
//
// ShardedCorpus partitions the text into overlapping shards, each with its
// own FM-index and per-backend Aligners; QueryScheduler fans requests
// across the slices of a CorpusSource snapshot on a bounded ThreadPool,
// merges the per-slice streams through HitMerger, and serves repeats from
// an LRU ResultCache (plus an optional content-keyed fragment cache). For
// a corpus that changes while being served, LiveCorpus layers delta shards
// and tombstones over an immutable base with background compaction:
//
//   auto live = service::LiveCorpus::Build(text, {.base = {...}});
//   (*live)->AppendDocument(doc);
//   service::QueryScheduler scheduler(**live, {.threads = 8});
//
// See README "Serving" and "Live corpora" for the architecture, the
// shard-sizing rule and the mutation semantics.

#include "src/service/corpus_view.h"     // IWYU pragma: export
#include "src/service/delta_shard.h"     // IWYU pragma: export
#include "src/service/hit_merger.h"      // IWYU pragma: export
#include "src/service/live_corpus.h"     // IWYU pragma: export
#include "src/service/result_cache.h"    // IWYU pragma: export
#include "src/service/scheduler.h"       // IWYU pragma: export
#include "src/service/sharded_corpus.h"  // IWYU pragma: export
#include "src/service/thread_pool.h"     // IWYU pragma: export

#endif  // ALAE_SERVICE_SERVICE_H_
