#include "src/service/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/api/backends.h"
#include "src/core/alae.h"
#include "src/service/hit_merger.h"
#include "src/util/timer.h"

namespace alae {
namespace service {
namespace {

// Completion latch for one request's (or one batch's) fan-out. Callers
// always Wait before returning, so tasks may safely reference caller-stack
// state through this.
class TaskGroup {
 public:
  explicit TaskGroup(size_t pending) : pending_(pending) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_;
};

// First-error slot shared by a request's slice tasks.
class ErrorSlot {
 public:
  void Record(api::Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = std::move(status);
  }

  api::Status Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::mutex mu_;
  api::Status status_;
};

api::Status SliceError(size_t slice, const api::Status& status) {
  return api::Status(status.code(),
                     "slice " + std::to_string(slice) + ": " +
                         status.message());
}

}  // namespace

QueryScheduler::QueryScheduler(const CorpusSource& source,
                               SchedulerOptions options)
    : source_(source),
      batch_size_(std::max<size_t>(1, options.batch_size)),
      fuse_alae_shards_(options.fuse_alae_shards),
      default_deadline_ms_(options.default_deadline_ms),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::MetricsRegistry::Default()),
      inst_(MakeInstruments(options, registry_)),
      tracer_(obs::TracerOptions{options.trace_sample_rate, options.trace_seed,
                                 options.slow_query_ms * 1'000'000,
                                 /*keep_slow=*/8, options.slow_query_sink}),
      cache_(options.cache_capacity),
      shard_cache_(options.shard_cache_capacity),
      pool_(options.threads, options.queue_capacity,
            PoolMetrics{inst_.pool_queue_depth, inst_.pool_rejects}) {}

QueryScheduler::Instruments QueryScheduler::MakeInstruments(
    const SchedulerOptions& options, obs::MetricsRegistry* registry) {
  Instruments inst;
  if (!options.enable_metrics) return inst;
  obs::MetricsRegistry& r = *registry;
  inst.requests_search =
      r.GetCounter("alae_scheduler_requests_total{verb=\"search\"}");
  inst.requests_stream =
      r.GetCounter("alae_scheduler_requests_total{verb=\"stream\"}");
  inst.sheds = r.GetCounter("alae_scheduler_shed_total");
  inst.cancelled = r.GetCounter("alae_scheduler_cancelled_total");
  inst.deadline_exceeded = r.GetCounter("alae_scheduler_deadline_exceeded_total");
  inst.errors = r.GetCounter("alae_scheduler_errors_total");
  inst.response_cache_hits =
      r.GetCounter("alae_scheduler_response_cache_hits_total");
  inst.response_cache_misses =
      r.GetCounter("alae_scheduler_response_cache_misses_total");
  inst.fragment_cache_hits =
      r.GetCounter("alae_scheduler_fragment_cache_hits_total");
  inst.fragment_cache_misses =
      r.GetCounter("alae_scheduler_fragment_cache_misses_total");
  inst.fused_queries = r.GetCounter("alae_scheduler_fused_queries_total");
  inst.dp_cells = r.GetCounter("alae_engine_dp_cells_total");
  inst.fm_extends = r.GetCounter("alae_engine_fm_extends_total");
  inst.trie_nodes = r.GetCounter("alae_engine_trie_nodes_total");
  inst.forks_opened = r.GetCounter("alae_engine_forks_opened_total");
  inst.pool_queue_depth = r.GetGauge("alae_pool_queue_depth");
  inst.pool_rejects = r.GetCounter("alae_pool_admission_rejects_total");
  inst.latency = r.GetHistogram("alae_scheduler_search_seconds");
  return inst;
}

void QueryScheduler::RecordResult(const api::Status& status,
                                  const api::EngineStats* stats) {
  if (inst_.latency == nullptr) return;  // metrics disabled
  if (!status.ok()) {
    switch (status.code()) {
      case api::StatusCode::kResourceExhausted:
        inst_.sheds->Add();
        break;
      case api::StatusCode::kCancelled:
        inst_.cancelled->Add();
        break;
      case api::StatusCode::kDeadlineExceeded:
        inst_.deadline_exceeded->Add();
        break;
      default:
        inst_.errors->Add();
        break;
    }
    return;
  }
  if (stats == nullptr) return;
  inst_.latency->Observe(stats->seconds);
  if (stats->cache_hits > 0) inst_.response_cache_hits->Add(stats->cache_hits);
  if (stats->cache_misses > 0) {
    inst_.response_cache_misses->Add(stats->cache_misses);
  }
  if (stats->shard_cache_hits > 0) {
    inst_.fragment_cache_hits->Add(stats->shard_cache_hits);
  }
  if (stats->shard_cache_misses > 0) {
    inst_.fragment_cache_misses->Add(stats->shard_cache_misses);
  }
  const DpCounters& c = stats->counters;
  if (const uint64_t cells = c.Calculated(); cells > 0) {
    inst_.dp_cells->Add(cells);
  }
  if (c.fm_extends + c.fm_extend_alls > 0) {
    inst_.fm_extends->Add(c.fm_extends + c.fm_extend_alls);
  }
  if (c.trie_nodes_visited > 0) inst_.trie_nodes->Add(c.trie_nodes_visited);
  if (c.forks_opened > 0) inst_.forks_opened->Add(c.forks_opened);
}

QueryScheduler::~QueryScheduler() { Shutdown(); }

void QueryScheduler::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    shutdown_ = true;
    // Fire every in-flight query's effective token: running engine loops
    // bail at their next poll, queued-but-unstarted tasks fast-fail, and
    // each batch returns kCancelled to its caller.
    for (CancelToken* token : inflight_) token->Cancel();
    lifecycle_cv_.wait(lock, [this] { return active_batches_ == 0; });
  }
  // With every batch gone nothing submits anymore; close and join.
  pool_.Shutdown();
}

api::StatusOr<api::SearchResponse> QueryScheduler::Search(
    std::string_view backend, const api::SearchRequest& request) {
  std::vector<api::QueryOutcome> outcomes = SearchBatch(backend, {request});
  if (!outcomes[0].ok()) return outcomes[0].status;
  return std::move(outcomes[0].response);
}

api::Status QueryScheduler::RunSliceQuery(const CorpusView& view, size_t slice,
                                          const api::Aligner* aligner,
                                          const api::QueryPlan& plan,
                                          HitMerger* merger, obs::Trace* trace,
                                          int root) {
  obs::ScopedSpan execute_span(trace, "execute", root);
  const bool frag = shard_cache_.capacity() > 0;
  std::string fkey;
  if (frag) {
    fkey = ResultCache::FragmentKeyFor(view.slices[slice].content_key, plan);
    api::SearchResponse fragment;
    if (shard_cache_.Lookup(fkey, &fragment)) {
      api::EngineStats stats;
      stats.shard_cache_hits = 1;
      merger->MergeSlice(slice, fragment.hits, stats);
      return api::Status::Ok();
    }
  }
  std::vector<AlignmentHit> raw;
  api::EngineStats stats;
  api::Status status = aligner->Search(
      plan,
      [&raw](const AlignmentHit& hit) {
        raw.push_back(hit);
        return true;
      },
      &stats);
  if (!status.ok()) return SliceError(slice, status);
  // A deadline-truncated run (allow_partial) is an incomplete fragment:
  // caching it would serve missing hits forever. Merge it, don't store it.
  if (frag && !stats.truncated_by_deadline) {
    // Fragments are the raw slice-local stream — ownership cuts and
    // tombstones are applied at reuse time, so a fragment stays valid for
    // as long as the slice *content* does, however the frontier moves.
    api::SearchResponse fragment;
    fragment.hits = raw;
    shard_cache_.Insert(fkey, fragment);
    stats.shard_cache_misses = 1;
  }
  merger->MergeSlice(slice, raw, stats);
  return api::Status::Ok();
}

api::Status QueryScheduler::RunFusedQuery(
    const CorpusView& view, const api::QueryPlan& plan,
    const std::vector<const api::Aligner*>& aligners, HitMerger* merger,
    obs::Trace* trace, int root) {
  const size_t slices = view.slices.size();
  // The fused walk needs the typed ALAE plan and cannot host the
  // (single-index, test-only) bitset filter; everything else — including
  // plans from a custom backend registered under the "alae" name — runs
  // the per-slice loop below, serially inside this one task (which opens
  // its own per-slice execute spans, so none is opened here).
  const auto* compiled = dynamic_cast<const api::AlaePlan*>(&plan);
  if (compiled == nullptr || plan.request().alae.bitset_global_filter) {
    for (size_t s = 0; s < slices; ++s) {
      if (api::Status status =
              RunSliceQuery(view, s, aligners[s], plan, merger, trace, root);
          !status.ok()) {
        return status;
      }
    }
    return api::Status::Ok();
  }

  obs::ScopedSpan execute_span(trace, "execute", root);
  const bool frag = shard_cache_.capacity() > 0;
  std::vector<std::string> fkeys;
  if (frag) {
    // All-or-nothing against the fragment cache: the fused walk computes
    // every slice in one pass, so one missing fragment means running the
    // walk anyway — partial reuse would save nothing.
    fkeys.reserve(slices);
    std::vector<api::SearchResponse> fragments(slices);
    bool all_cached = true;
    for (size_t s = 0; s < slices; ++s) {
      fkeys.push_back(
          ResultCache::FragmentKeyFor(view.slices[s].content_key, plan));
      if (all_cached && !shard_cache_.Lookup(fkeys[s], &fragments[s])) {
        all_cached = false;
      }
    }
    if (all_cached) {
      for (size_t s = 0; s < slices; ++s) {
        api::EngineStats stats;
        stats.shard_cache_hits = 1;
        merger->MergeSlice(s, fragments[s].hits, stats);
      }
      return api::Status::Ok();
    }
  }

  // The fused walk bypasses Aligner::Search, so the cancellation status
  // conversion that layer normally performs happens here instead.
  const CancelToken* cancel = plan.request().cancel;
  const bool allow_partial = plan.request().allow_partial;
  bool partial = false;
  if (cancel != nullptr) {
    switch (cancel->ExpiredWhy()) {
      case CancelToken::Why::kCancelled:
        return api::Status::Cancelled("request cancelled before execution");
      case CancelToken::Why::kDeadline:
        if (!allow_partial) {
          return api::Status::DeadlineExceeded(
              "deadline expired before execution");
        }
        partial = true;
        break;
      case CancelToken::Why::kNone:
        break;
    }
  }

  std::vector<const AlaeIndex*> indexes;
  indexes.reserve(slices);
  for (size_t s = 0; s < slices; ++s) {
    indexes.push_back(&view.slices[s].registry->index());
  }
  Timer timer;
  AlaeRunStats run;
  std::vector<ResultCollector> per_slice;
  if (!partial) {
    Alae::RunSharded(compiled->core(), indexes, &per_slice, &run, cancel);
  } else {
    per_slice.resize(slices);  // already expired: empty partial answer
  }
  api::EngineStats walk_stats;
  walk_stats.seconds = timer.ElapsedSeconds();
  walk_stats.counters = run.counters;
  walk_stats.anchors_considered = run.anchors_considered;
  walk_stats.grams_searched = run.grams_searched;
  walk_stats.plan_reuses = 1;
  if (cancel != nullptr && !partial) {
    switch (cancel->ExpiredWhy()) {
      case CancelToken::Why::kCancelled:
        return api::Status::Cancelled("request cancelled during execution");
      case CancelToken::Why::kDeadline:
        if (!allow_partial) {
          return api::Status::DeadlineExceeded("deadline expired mid-search");
        }
        partial = true;
        break;
      case CancelToken::Why::kNone:
        break;
    }
  }
  if (partial) {
    walk_stats.truncated = true;
    walk_stats.truncated_by_deadline = true;
  }
  for (size_t s = 0; s < slices; ++s) {
    std::vector<AlignmentHit> raw;
    // Drain unsorted: MergeSlice re-keys and Take sorts.
    per_slice[s].ForEach(
        [&raw](const AlignmentHit& hit) { raw.push_back(hit); });
    // The fused walk's counters cover all slices; attribute them once.
    api::EngineStats stats = s == 0 ? walk_stats : api::EngineStats{};
    // An aborted walk left every slice's fragment incomplete — merge them
    // (they are a correct subset) but never cache them.
    if (frag && !partial) {
      api::SearchResponse fragment;
      fragment.hits = raw;
      shard_cache_.Insert(fkeys[s], fragment);
      stats.shard_cache_misses = 1;
    }
    merger->MergeSlice(s, raw, stats);
  }
  return api::Status::Ok();
}

std::vector<api::QueryOutcome> QueryScheduler::SearchBatch(
    std::string_view backend,
    const std::vector<api::SearchRequest>& requests) {
  Timer timer;
  std::vector<api::QueryOutcome> outcomes(requests.size());
  if (requests.empty()) return outcomes;
  if (inst_.requests_search != nullptr) {
    inst_.requests_search->Add(requests.size());
  }

  // Per-query traces: caller-supplied (the caller finishes those), else
  // sampled from the tracer. roots[i] is the query's "search" root span.
  // The exit guard below closes every root, hands sampled traces to the
  // tracer (slow-query log) and folds final outcomes into the metrics on
  // every return path.
  std::vector<obs::Trace*> traces(requests.size(), nullptr);
  std::vector<std::unique_ptr<obs::Trace>> sampled(requests.size());
  std::vector<int> roots(requests.size(), -1);
  bool any_trace = false;
  for (size_t i = 0; i < requests.size(); ++i) {
    traces[i] = requests[i].trace;
    if (traces[i] == nullptr) {
      sampled[i] = tracer_.MaybeSample();
      traces[i] = sampled[i].get();
    }
    if (traces[i] != nullptr) {
      roots[i] = traces[i]->BeginSpan("search");
      any_trace = true;
    }
  }
  struct ObsExit {
    QueryScheduler* self;
    std::vector<api::QueryOutcome>* outcomes;
    std::vector<obs::Trace*>* traces;
    std::vector<std::unique_ptr<obs::Trace>>* sampled;
    std::vector<int>* roots;
    ~ObsExit() {
      for (size_t i = 0; i < traces->size(); ++i) {
        if ((*traces)[i] != nullptr) (*traces)[i]->EndSpan((*roots)[i]);
        self->tracer_.Finish(std::move((*sampled)[i]));
      }
      for (const api::QueryOutcome& o : *outcomes) {
        self->RecordResult(o.status, &o.response.stats);
      }
    }
  } obs_exit{this, &outcomes, &traces, &sampled, &roots};

  // Lifecycle registration: a batch admitted here is guaranteed to finish
  // (Shutdown waits for it); a batch arriving after Shutdown began is
  // refused whole.
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shutdown_) {
      for (api::QueryOutcome& o : outcomes) {
        o.status = api::Status::Cancelled("scheduler is shut down");
      }
      return outcomes;
    }
    ++active_batches_;
  }
  // Scheduler-owned effective tokens, one per live query: each observes
  // the request's token (if any), carries the scheduler default deadline,
  // and is registered in inflight_ so Shutdown can fire it. Deque: tasks
  // hold pointers, so addresses must be stable.
  std::deque<CancelToken> tokens;
  struct BatchExit {
    QueryScheduler* self;
    std::deque<CancelToken>* tokens;
    ~BatchExit() {
      std::lock_guard<std::mutex> lock(self->lifecycle_mu_);
      for (CancelToken& token : *tokens) self->inflight_.erase(&token);
      --self->active_batches_;
      self->lifecycle_cv_.notify_all();
    }
  } exit_guard{this, &tokens};

  // One snapshot serves the whole batch: a concurrent live-corpus
  // mutation or compaction swaps state for *later* batches, while this
  // one keeps reading the slices (and indexes) the snapshot pinned.
  const CorpusView view = source_.Snapshot();
  const size_t slices = view.slices.size();
  const size_t num_deltas = view.NumDeltaSlices();

  std::vector<const api::Aligner*> aligners;
  aligners.reserve(slices);
  for (size_t s = 0; s < slices; ++s) {
    api::StatusOr<const api::Aligner*> aligner =
        view.slices[s].aligner_for(backend);
    if (!aligner.ok()) {
      for (api::QueryOutcome& o : outcomes) o.status = aligner.status();
      return outcomes;
    }
    aligners.push_back(*aligner);
  }

  // Per-query admission: validation, span check, then the cache — all
  // before compilation, so a cache hit never pays the query-side
  // precompute it exists to avoid (the request-shaped cache key is byte
  // identical to the plan-based one). Only cache misses compile, ONCE
  // per query (slice 0's aligner; plans are index-independent), with
  // max_hits zeroed — slices must compute their full owned answer (a
  // per-slice cap could starve owned hits out of the merge); the global
  // cap is applied by HitMerger::Take and preserved in the cache key.
  // `live` collects the indexes that actually need engine work.
  std::vector<size_t> live;
  std::vector<std::string> keys(requests.size());
  std::vector<int64_t> guards(requests.size(), 0);
  std::vector<std::unique_ptr<const api::QueryPlan>> plans(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    // Admission span: validation, span check and the cache lookup. Ends
    // where compilation starts; the scope exit covers every `continue`.
    obs::ScopedSpan admit_span(traces[i], "admit", roots[i]);
    if (api::Status status = aligners[0]->Validate(requests[i]);
        !status.ok()) {
      outcomes[i].status = status;
      continue;
    }
    // Fast-fail before the pool (or even the cache) is touched: an
    // already-expired request costs the service nothing.
    if (requests[i].cancel != nullptr) {
      switch (requests[i].cancel->ExpiredWhy()) {
        case CancelToken::Why::kCancelled:
          outcomes[i].status =
              api::Status::Cancelled("request cancelled before admission");
          continue;
        case CancelToken::Why::kDeadline:
          if (!requests[i].allow_partial) {
            outcomes[i].status = api::Status::DeadlineExceeded(
                "deadline expired before admission");
            continue;
          }
          outcomes[i].response.stats.truncated = true;
          outcomes[i].response.stats.truncated_by_deadline = true;
          outcomes[i].response.stats.seconds = timer.ElapsedSeconds();
          continue;
        case CancelToken::Why::kNone:
          break;
      }
    }
    if (api::Status status = view.ValidateSpan(backend, requests[i]);
        !status.ok()) {
      outcomes[i].status = status;
      continue;
    }
    // The tombstone guard (and BLAST window) for this query; also the
    // value ValidateSpan just checked against the overlap.
    guards[i] = RequiredSpan(backend, requests[i]);
    keys[i] = ResultCache::KeyFor(backend, requests[i], view.epoch);
    if (cache_.Lookup(keys[i], &outcomes[i].response)) {
      outcomes[i].response.stats.cache_hits = 1;
      outcomes[i].response.stats.cache_misses = 0;
      outcomes[i].response.stats.seconds = timer.ElapsedSeconds();
      continue;
    }
    // Compile against the effective token (replacing the caller's in the
    // plan): engines under this plan observe caller cancellation AND the
    // scheduler's default deadline AND a scheduler Shutdown, whichever
    // fires first. Neither token nor allow_partial is fingerprinted, so
    // cache keys are unaffected.
    admit_span.End();
    obs::ScopedSpan compile_span(traces[i], "compile", roots[i]);
    tokens.emplace_back(requests[i].cancel);
    if (default_deadline_ms_ > 0) {
      tokens.back().SetDeadlineAfter(
          std::chrono::milliseconds(default_deadline_ms_));
    }
    api::SearchRequest uncapped = requests[i];
    uncapped.max_hits = 0;
    uncapped.cancel = &tokens.back();
    api::StatusOr<std::unique_ptr<api::QueryPlan>> plan =
        aligners[0]->Compile(std::move(uncapped));
    if (!plan.ok()) {
      outcomes[i].status = plan.status();
      tokens.pop_back();
      continue;
    }
    plans[i] = std::move(*plan);
    live.push_back(i);
  }
  if (live.empty()) return outcomes;
  {
    // Register the effective tokens; if Shutdown won the race since this
    // batch was admitted, its cancel sweep missed them — fire them here so
    // the batch still winds down promptly.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    for (CancelToken& token : tokens) {
      inflight_.insert(&token);
      if (shutdown_) token.Cancel();
    }
  }

  // Fan out. Every live query needs every slice; micro-batching packs up
  // to batch_size same-backend queries into one pool task so the task
  // dispatch (and the slice's index going cold) is paid per group. For
  // the built-in ALAE backend a group is ONE task running the fused
  // union-trie walk (all slices share the query's fork DP); for the other
  // backends a group spawns one task per slice.
  const size_t group = batch_size_;
  const bool fused = fuse_alae_shards_ && aligners[0]->name() == "alae";
  const size_t tasks_per_group = fused ? 1 : slices;
  if (fused && inst_.fused_queries != nullptr) {
    inst_.fused_queries->Add(live.size());
  }
  // deque: HitMerger carries a mutex and must be constructed in place.
  std::deque<HitMerger> mergers;
  for (size_t k = 0; k < live.size(); ++k) {
    mergers.emplace_back(view, guards[live[k]]);
  }
  std::vector<ErrorSlot> errors(live.size());

  // A batch's full fan-out may legitimately exceed the queue bound, and a
  // single all-or-nothing submit would then reject it forever no matter
  // how idle the pool is. Split the live queries into waves whose task
  // count fits the queue, admit each wave all-or-nothing, and wait between
  // waves; a wave shed by *competing* traffic marks only its own queries
  // kResourceExhausted (retrying those can genuinely succeed later).
  size_t wave_queries = live.size();
  if (tasks_per_group * ((live.size() + group - 1) / group) >
      pool_.queue_capacity()) {
    wave_queries = pool_.queue_capacity() / tasks_per_group * group;
  }
  if (wave_queries == 0) {
    // The queue cannot hold even one query's fan-out: a configuration
    // misfit, not transient load.
    api::Status misfit = api::Status::ResourceExhausted(
        "one query fans out into " + std::to_string(tasks_per_group) +
        " slice tasks but the service queue holds only " +
        std::to_string(pool_.queue_capacity()) +
        "; raise queue_capacity to at least the slice count");
    for (size_t k = 0; k < live.size(); ++k) {
      outcomes[live[k]].status = misfit;
    }
    return outcomes;
  }
  for (size_t wave = 0; wave < live.size(); wave += wave_queries) {
    const size_t wave_end = std::min(live.size(), wave + wave_queries);
    const size_t num_groups = (wave_end - wave + group - 1) / group;
    const size_t num_tasks = tasks_per_group * num_groups;
    TaskGroup done(num_tasks);
    // Queue-wait accounting for traced queries: stamped just before the
    // wave submits, read by the first task that starts running the query.
    int64_t submit_ns = 0;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_tasks);
    if (fused) {
      for (size_t g = wave; g < wave_end; g += group) {
        const size_t g_end = std::min(wave_end, g + group);
        tasks.push_back([this, g, g_end, &view, &live, &plans, &aligners,
                         &mergers, &errors, &done, &traces, &roots,
                         &submit_ns] {
          int64_t start_ns = 0;
          for (size_t k = g; k < g_end; ++k) {
            obs::Trace* trace = traces[live[k]];
            const int root = roots[live[k]];
            if (trace != nullptr) {
              if (start_ns == 0) start_ns = obs::Trace::NowNanos();
              trace->AddSpan("queue", submit_ns, start_ns, root);
            }
            api::Status status = RunFusedQuery(view, *plans[live[k]], aligners,
                                               &mergers[k], trace, root);
            if (!status.ok()) errors[k].Record(std::move(status));
          }
          done.Done();
        });
      }
    } else {
      for (size_t s = 0; s < slices; ++s) {
        for (size_t g = wave; g < wave_end; g += group) {
          const size_t g_end = std::min(wave_end, g + group);
          const api::Aligner* aligner = aligners[s];
          tasks.push_back([this, s, g, g_end, aligner, &view, &live, &plans,
                           &mergers, &errors, &done, &traces, &roots,
                           &submit_ns] {
            int64_t start_ns = 0;
            for (size_t k = g; k < g_end; ++k) {
              obs::Trace* trace = traces[live[k]];
              const int root = roots[live[k]];
              // One queue span per query (slice 0's task), not one per
              // slice: the per-slice waits overlap and would double-book
              // the tree.
              if (s == 0 && trace != nullptr) {
                if (start_ns == 0) start_ns = obs::Trace::NowNanos();
                trace->AddSpan("queue", submit_ns, start_ns, root);
              }
              // The shared plan carries max_hits = 0 (see admission), so
              // every slice streams its full owned answer; the global cap
              // is applied by HitMerger::Take on the sorted merged set —
              // which is exactly the unsharded prefix.
              api::Status status =
                  RunSliceQuery(view, s, aligner, *plans[live[k]], &mergers[k],
                                trace, root);
              if (!status.ok()) errors[k].Record(std::move(status));
            }
            done.Done();
          });
        }
      }
    }
    if (any_trace) submit_ns = obs::Trace::NowNanos();
    if (!pool_.TrySubmitBatch(std::move(tasks))) {
      // A shutdown closes admission too; report that truthfully rather
      // than as transient overload someone might retry against.
      api::Status refused =
          pool_.IsShutdown()
              ? api::Status::Cancelled("scheduler is shutting down")
              : api::Status::ResourceExhausted(
                    "service queue is full (" +
                    std::to_string(pool_.QueueDepth()) + "/" +
                    std::to_string(pool_.queue_capacity()) +
                    " tasks queued, this wave needs " +
                    std::to_string(num_tasks) + "); retry with backoff");
      for (size_t k = wave; k < wave_end; ++k) {
        errors[k].Record(refused);
      }
      continue;
    }
    done.Wait();
  }

  for (size_t k = 0; k < live.size(); ++k) {
    const size_t i = live[k];
    if (api::Status status = errors[k].Take(); !status.ok()) {
      outcomes[i].status = status;
      continue;
    }
    obs::ScopedSpan merge_span(traces[i], "merge", roots[i]);
    api::SearchResponse response = mergers[k].Take(requests[i].max_hits);
    merge_span.End();
    response.stats.delta_shards = num_deltas;
    response.stats.compactions = view.compactions;
    // Cache the computed payload without this call's cache or compile
    // accounting — a later hit reports its own counters and compiled
    // nothing. A deadline-truncated partial is NOT the answer this key
    // stands for; caching it would serve missing hits until the epoch
    // turns, so partials are merged to the caller and forgotten.
    if (!response.stats.truncated_by_deadline) {
      cache_.Insert(keys[i], response);
    }
    response.stats.plan_compile_ns = plans[i]->compile_ns();
    response.stats.cache_misses = 1;
    response.stats.seconds = timer.ElapsedSeconds();
    outcomes[i].response = std::move(response);
  }
  return outcomes;
}

api::Status QueryScheduler::RunStreamSlice(const CorpusView& view, size_t slice,
                                           const api::Aligner* aligner,
                                           const api::QueryPlan& plan,
                                           StreamMerger* merger,
                                           obs::Trace* trace, int root) {
  obs::ScopedSpan execute_span(trace, "execute", root);
  if (shard_cache_.capacity() > 0) {
    // Lookup only: a streamed run may be cut short by the cap at any
    // moment, which would leave a raw fragment incomplete — fragments are
    // inserted exclusively by the buffered (SearchBatch) path.
    const std::string fkey =
        ResultCache::FragmentKeyFor(view.slices[slice].content_key, plan);
    api::SearchResponse fragment;
    if (shard_cache_.Lookup(fkey, &fragment)) {
      for (const AlignmentHit& hit : fragment.hits) {
        if (!merger->Publish(slice, hit)) break;
      }
      api::EngineStats stats;
      stats.shard_cache_hits = 1;
      merger->Close(slice, stats);
      return api::Status::Ok();
    }
  }
  api::EngineStats stats;
  api::Status status = aligner->Search(
      plan,
      [merger, slice](const AlignmentHit& hit) {
        return merger->Publish(slice, hit);
      },
      &stats);
  // Close unconditionally (exactly once per slice): even a failed slice
  // merged its stats and must unblock buffered successors — the overall
  // request fails through the error slot, not through a stalled merge.
  merger->Close(slice, stats);
  if (!status.ok()) {
    if (merger->cap_satisfied() && (status.code() == api::StatusCode::kCancelled ||
                                    status.code() ==
                                        api::StatusCode::kDeadlineExceeded)) {
      // The cap token aborted this slice because the stream is already
      // satisfied: that is the short-circuit working, not a failure.
      return api::Status::Ok();
    }
    return SliceError(slice, status);
  }
  return api::Status::Ok();
}

api::StatusOr<api::EngineStats> QueryScheduler::SearchStream(
    std::string_view backend, const api::SearchRequest& request,
    const api::HitSink& sink) {
  if (inst_.requests_stream != nullptr) inst_.requests_stream->Add();
  // Caller-supplied traces are finished by the caller (the net front-end
  // appends serialize spans after the scheduler is done); sampled traces
  // are closed and offered to the slow-query log here.
  obs::Trace* trace = request.trace;
  std::unique_ptr<obs::Trace> owned;
  if (trace == nullptr) {
    owned = tracer_.MaybeSample();
    trace = owned.get();
  }
  const int root = trace != nullptr ? trace->BeginSpan("search") : -1;
  api::StatusOr<api::EngineStats> result =
      SearchStreamImpl(backend, request, sink, trace, root);
  if (trace != nullptr) trace->EndSpan(root);
  tracer_.Finish(std::move(owned));
  if (result.ok()) {
    RecordResult(api::Status::Ok(), &*result);
  } else {
    RecordResult(result.status(), nullptr);
  }
  return result;
}

api::StatusOr<api::EngineStats> QueryScheduler::SearchStreamImpl(
    std::string_view backend, const api::SearchRequest& request,
    const api::HitSink& sink, obs::Trace* trace, int root) {
  Timer timer;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shutdown_) return api::Status::Cancelled("scheduler is shut down");
    ++active_batches_;
  }
  // Effective token: observes the caller's token, carries the scheduler
  // default deadline, and is registered in inflight_ so Shutdown fires it.
  CancelToken effective(request.cancel);
  if (default_deadline_ms_ > 0) {
    effective.SetDeadlineAfter(std::chrono::milliseconds(default_deadline_ms_));
  }
  bool registered = false;
  struct StreamExit {
    QueryScheduler* self;
    CancelToken* token;
    bool* registered;
    ~StreamExit() {
      std::lock_guard<std::mutex> lock(self->lifecycle_mu_);
      if (*registered) self->inflight_.erase(token);
      --self->active_batches_;
      self->lifecycle_cv_.notify_all();
    }
  } exit_guard{this, &effective, &registered};

  obs::ScopedSpan admit_span(trace, "admit", root);
  const CorpusView view = source_.Snapshot();
  const size_t slices = view.slices.size();

  std::vector<const api::Aligner*> aligners;
  aligners.reserve(slices);
  for (size_t s = 0; s < slices; ++s) {
    api::StatusOr<const api::Aligner*> aligner =
        view.slices[s].aligner_for(backend);
    if (!aligner.ok()) return aligner.status();
    aligners.push_back(*aligner);
  }

  if (api::Status status = aligners[0]->Validate(request); !status.ok()) {
    return status;
  }
  if (request.cancel != nullptr) {
    switch (request.cancel->ExpiredWhy()) {
      case CancelToken::Why::kCancelled:
        return api::Status::Cancelled("request cancelled before admission");
      case CancelToken::Why::kDeadline: {
        if (!request.allow_partial) {
          return api::Status::DeadlineExceeded(
              "deadline expired before admission");
        }
        api::EngineStats stats;
        stats.truncated = true;
        stats.truncated_by_deadline = true;
        stats.seconds = timer.ElapsedSeconds();
        return stats;  // empty partial stream
      }
      case CancelToken::Why::kNone:
        break;
    }
  }
  if (api::Status status = view.ValidateSpan(backend, request); !status.ok()) {
    return status;
  }
  const int64_t guard = RequiredSpan(backend, request);
  const std::string key = ResultCache::KeyFor(backend, request, view.epoch);
  {
    api::SearchResponse cached;
    if (cache_.Lookup(key, &cached)) {
      // Replay the cached (already sorted, already capped) answer through
      // the sink — a stream and a buffered Search share this cache.
      for (const AlignmentHit& hit : cached.hits) {
        if (!sink(hit)) break;
      }
      api::EngineStats stats = cached.stats;
      stats.cache_hits = 1;
      stats.cache_misses = 0;
      stats.seconds = timer.ElapsedSeconds();
      return stats;
    }
  }

  admit_span.End();
  obs::ScopedSpan compile_span(trace, "compile", root);
  // The cap token is what the engines observe: it inherits the effective
  // token's cancellation/deadline AND fires on its own when the merger
  // satisfies max_hits (or the sink stops) — the streaming short-circuit.
  CancelToken cap(&effective);
  api::SearchRequest uncapped = request;
  uncapped.max_hits = 0;  // slices stream their full owned answer
  uncapped.cancel = &cap;
  api::StatusOr<std::unique_ptr<api::QueryPlan>> plan =
      aligners[0]->Compile(std::move(uncapped));
  if (!plan.ok()) return plan.status();
  compile_span.End();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    inflight_.insert(&effective);
    registered = true;
    if (shutdown_) effective.Cancel();
  }

  StreamMerger merger(view, guard, request.max_hits, sink, &cap);
  ErrorSlot error;
  TaskGroup done(slices);
  int64_t submit_ns = 0;  // stamped just before the batch submits
  std::vector<std::function<void()>> tasks;
  tasks.reserve(slices);
  for (size_t s = 0; s < slices; ++s) {
    const api::Aligner* aligner = aligners[s];
    const api::QueryPlan* compiled = plan->get();
    tasks.push_back([this, s, aligner, compiled, &view, &merger, &error,
                     &done, trace, root, &submit_ns] {
      // One queue span for the stream (slice 0's task); per-slice waits
      // overlap and would double-book the tree.
      if (s == 0 && trace != nullptr) {
        trace->AddSpan("queue", submit_ns, obs::Trace::NowNanos(), root);
      }
      api::Status status =
          RunStreamSlice(view, s, aligner, *compiled, &merger, trace, root);
      if (!status.ok()) error.Record(std::move(status));
      done.Done();
    });
  }
  if (trace != nullptr) submit_ns = obs::Trace::NowNanos();
  if (!pool_.TrySubmitBatch(std::move(tasks))) {
    return pool_.IsShutdown()
               ? api::Status::Cancelled("scheduler is shutting down")
               : api::Status::ResourceExhausted(
                     "service queue is full (" +
                     std::to_string(pool_.QueueDepth()) + "/" +
                     std::to_string(pool_.queue_capacity()) +
                     " tasks queued, this stream needs " +
                     std::to_string(slices) + "); retry with backoff");
  }
  done.Wait();
  if (api::Status status = error.Take(); !status.ok()) return status;

  api::EngineStats stats = merger.TakeStats();
  stats.delta_shards = view.NumDeltaSlices();
  stats.compactions = view.compactions;
  // Cache the completed stream for later Search/SearchStream calls. A
  // deadline-truncated partial is not the key's answer; neither is a
  // prefix the *sink* chose to cut (the key carries max_hits, not the
  // sink's stopping point). A genuine max_hits cap IS the keyed answer —
  // identical to the truncation Search would cache.
  if (!stats.truncated_by_deadline && !merger.sink_stopped()) {
    api::SearchResponse response;
    response.hits = merger.emitted();
    response.stats = stats;
    cache_.Insert(key, response);
  }
  stats.plan_compile_ns = (*plan)->compile_ns();
  stats.cache_misses = 1;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace service
}  // namespace alae
