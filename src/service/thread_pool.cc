#include "src/service/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/fault_injector.h"

namespace alae {
namespace service {

ThreadPool::ThreadPool(int threads, size_t queue_capacity,
                       PoolMetrics metrics)
    : capacity_(std::max<size_t>(1, queue_capacity)), metrics_(metrics) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  work_available_.notify_all();
  if (join_here) {
    for (std::thread& w : workers_) w.join();
  }
  // A concurrent Shutdown call lost the join race; the queue may still be
  // draining. That is fine — Shutdown only guarantees admission is closed
  // and (for the joining caller, which includes the destructor) that the
  // workers are gone.
}

bool ThreadPool::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (FaultInjector::Hit("pool/admit")) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) {
      if (metrics_.admission_rejects) metrics_.admission_rejects->Add();
      return false;
    }
    queue_.push_back(std::move(task));
  }
  if (metrics_.queue_depth) metrics_.queue_depth->Add(1);
  work_available_.notify_one();
  return true;
}

bool ThreadPool::TrySubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return true;
  if (FaultInjector::Hit("pool/admit")) return false;
  const size_t admitted = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() + tasks.size() > capacity_) {
      if (metrics_.admission_rejects) metrics_.admission_rejects->Add();
      return false;
    }
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  if (metrics_.queue_depth) {
    metrics_.queue_depth->Add(static_cast<int64_t>(admitted));
  }
  work_available_.notify_all();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (metrics_.queue_depth) metrics_.queue_depth->Add(-1);
    task();
  }
}

BackgroundWorker::BackgroundWorker(std::function<void()> job)
    : job_(std::move(job)), thread_([this] { Loop(); }) {}

BackgroundWorker::~BackgroundWorker() { Shutdown(); }

void BackgroundWorker::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    pending_ = false;  // drop, don't start, queued work at shutdown
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BackgroundWorker::Trigger() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    pending_ = true;
  }
  cv_.notify_all();
}

uint64_t BackgroundWorker::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

void BackgroundWorker::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return (!pending_ && !running_) || shutdown_; });
}

void BackgroundWorker::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || pending_; });
      if (shutdown_) return;
      pending_ = false;
      running_ = true;
    }
    job_();
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ = false;
      ++runs_;
    }
    cv_.notify_all();
  }
}

}  // namespace service
}  // namespace alae
