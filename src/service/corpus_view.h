#ifndef ALAE_SERVICE_CORPUS_VIEW_H_
#define ALAE_SERVICE_CORPUS_VIEW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/api.h"

namespace alae {
namespace service {

// Process-unique generation counter shared by everything corpus-shaped:
// ShardedCorpus builds and every LiveCorpus mutation or compaction draw
// from the same sequence, so two snapshots that could answer differently
// never share an epoch and epoch-keyed cache entries cannot leak across a
// rebuild, an append, a delete or a compaction.
uint64_t NextServiceEpoch();

// A deleted document's global span [begin, end). The bytes stay in the
// physical text (and in the indexes built over it) until compaction
// reclaims them; until then hits are suppressed at merge time.
struct TombstoneSpan {
  uint64_t doc_id = 0;
  int64_t begin = 0;
  int64_t end = 0;
};

// One searchable slice of a corpus snapshot — a base shard or a delta
// shard. Both obey the same geometry contract: the slice's index covers
// global text [text_start, text_start + slice length), it *owns* the
// global end positions [owned_begin, owned_end), and every owned end has
// >= min(overlap, distance-to-corpus-edge) characters of context on each
// side inside the slice — which is exactly what makes per-slice answers
// merge bit-exactly (see ShardedCorpus's geometry comment).
struct ShardSlice {
  int64_t text_start = 0;   // global position of slice-local coordinate 0
  int64_t owned_begin = 0;  // global text ends [owned_begin, owned_end)
  int64_t owned_end = 0;
  bool is_delta = false;

  // The slice's index/registry, for the fused ALAE walk.
  const api::AlignerRegistry* registry = nullptr;

  // Identity of the slice's *content*, not of the snapshot: base shards
  // keep their (corpus epoch, shard index), delta shards their build id.
  // The shard-local fragment cache keys on this, so base-shard fragments
  // survive delta churn and live-epoch bumps — they only die when the
  // content itself is replaced (a compaction swaps in a new base).
  std::string content_key;

  // Resolves the per-backend aligner (built on first use, cached by the
  // owning corpus object, thread-safe).
  std::function<api::StatusOr<const api::Aligner*>(std::string_view)>
      aligner_for;

  // Keepalive for registry/aligner_for: a LiveCorpus may swap its base out
  // from under in-flight queries; the snapshot pins the old one. Null for
  // slices of a plain ShardedCorpus (whose lifetime the caller owns).
  std::shared_ptr<const void> owner;

  bool OwnsGlobalEnd(int64_t global_end) const {
    return global_end >= owned_begin && global_end < owned_end;
  }
};

// An immutable snapshot of a corpus: what the scheduler fans a batch over
// and what the merger filters against. Cheap to copy (slice descriptors
// and tombstone spans, not indexes); taking one never blocks mutations.
struct CorpusView {
  uint64_t epoch = 0;        // snapshot generation (result-cache key)
  int64_t text_size = 0;     // total searchable global length
  int64_t overlap = 0;       // geometry margin both slice kinds obey
  uint64_t compactions = 0;  // lifetime compactions behind this snapshot
  std::vector<ShardSlice> slices;
  // Sorted by begin, pairwise disjoint (documents partition the text).
  std::vector<TombstoneSpan> tombstones;

  size_t NumDeltaSlices() const {
    size_t n = 0;
    for (const ShardSlice& s : slices) n += s.is_delta ? 1 : 0;
    return n;
  }

  // Whether `backend`'s answer for `request` is guaranteed bit-exact under
  // this geometry: the request's worst-case alignment span must fit in the
  // overlap margin. kInvalidArgument with the limiting numbers otherwise.
  api::Status ValidateSpan(std::string_view backend,
                           const api::SearchRequest& request) const;
};

// Worst-case text span of a positive-scoring alignment a slice must be
// able to hold for `backend` to answer `request` bit-exactly: Theorem 1's
// length bound for the exact engines, the full seed-and-extend window for
// BLAST. Shared by ValidateSpan and by the tombstone guard below. The
// scheme must be Valid() (callers check; this divides by scheme.ss).
int64_t RequiredSpan(std::string_view backend,
                     const api::SearchRequest& request);

// Conservative tombstone suppression, identical for every backend: a hit
// is dropped iff a dead span intersects [text_end - guard + 1, text_end],
// where `guard` is the request's RequiredSpan. Any alignment that used
// deleted characters ends inside that window, so no backend ever reports
// one; alignments merely *near* a dead span are withheld until compaction
// physically reclaims the bytes. Depending only on text_end (which every
// backend reports; text_start some do not) keeps the five backends'
// filtered answer sets identical. `tombstones` must be sorted by begin
// and disjoint.
bool TombstoneSuppressed(const std::vector<TombstoneSpan>& tombstones,
                         int64_t text_end, int64_t guard);

// Something a QueryScheduler can serve: hands out immutable snapshots.
// ShardedCorpus snapshots are always the same geometry under a constant
// epoch; LiveCorpus snapshots change with every mutation and compaction.
class CorpusSource {
 public:
  virtual ~CorpusSource() = default;
  virtual CorpusView Snapshot() const = 0;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_CORPUS_VIEW_H_
