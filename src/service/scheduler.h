#ifndef ALAE_SERVICE_SCHEDULER_H_
#define ALAE_SERVICE_SCHEDULER_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "src/api/api.h"
#include "src/service/result_cache.h"
#include "src/service/sharded_corpus.h"
#include "src/service/thread_pool.h"

namespace alae {
namespace service {

class HitMerger;

struct SchedulerOptions {
  // Worker threads; <= 0 picks hardware concurrency.
  int threads = 0;

  // Bounded shard-task queue. When a request's fan-out does not fit the
  // queue's remaining capacity the request is rejected whole with
  // kResourceExhausted — admission is all-or-nothing, so an overloaded
  // service sheds entire requests instead of half-running them.
  size_t queue_capacity = 1024;

  // LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 256;

  // SearchBatch micro-batching: up to this many same-backend queries ride
  // one shard task, so a task switch (and the shard index going cold) is
  // paid once per group rather than once per query.
  size_t batch_size = 8;

  // Fused execution for the built-in ALAE backend: one engine walk over
  // the union of the shards' suffix tries per query, sharing the fork DP
  // across shards (per-shard work reduces to occurrence anchoring +
  // descent — see Alae::RunSharded). This flattens the per-shard fixed
  // query cost; results are bit-exact either way. A fused query is one
  // pool task instead of one per shard, so it trades intra-query
  // parallelism for strictly less total work — batch throughput wins,
  // single-query latency on an idle many-core box may prefer `false`.
  bool fuse_alae_shards = true;
};

// The multi-tenant front door of the sharded query service: compiles each
// request into a QueryPlan once (shard 0's aligner; plans are
// index-independent), fans the work across the shards of a ShardedCorpus
// as pool tasks that share the plan — fused into one union-trie walk for
// ALAE, one task per shard otherwise — merges the per-shard streams
// through a HitMerger, and answers repeated requests from an LRU result
// cache keyed on the plan fingerprint.
//
// Thread-safe: any number of client threads may call Search/SearchBatch
// concurrently; they share the worker pool and the cache. Destroying the
// scheduler while calls are in flight is undefined — join your clients
// first (the pool itself drains its queue on destruction).
class QueryScheduler {
 public:
  explicit QueryScheduler(const ShardedCorpus& corpus,
                          SchedulerOptions options = {});

  // One query against every shard. Failure modes beyond the facade's
  // request validation: kInvalidArgument when the query's worst-case
  // alignment span does not fit the corpus overlap (the sharded answer
  // would not be bit-exact), kNotFound for unknown backends, and
  // kResourceExhausted when the task queue cannot take the fan-out —
  // callers should back off and retry.
  api::StatusOr<api::SearchResponse> Search(std::string_view backend,
                                            const api::SearchRequest& request);

  // Micro-batched form: same-backend requests are grouped `batch_size` to
  // a shard task. Outcomes come back in input order, each with its own
  // Status — one bad query never takes down its neighbours (same contract
  // as MultiQueryDriver::RunEach).
  std::vector<api::QueryOutcome> SearchBatch(
      std::string_view backend,
      const std::vector<api::SearchRequest>& requests);

  const ShardedCorpus& corpus() const { return corpus_; }
  ThreadPool& pool() { return pool_; }
  const ResultCache& cache() const { return cache_; }

 private:
  // Resolves the per-shard aligners for `backend` (kNotFound if unknown).
  api::Status ResolveAligners(std::string_view backend,
                              std::vector<const api::Aligner*>* aligners);

  // Executes one compiled query against every shard inside one pool task:
  // the fused ALAE walk when the plan supports it, else a serial per-shard
  // loop. Streams each shard's hits through `merger`; reports the first
  // shard failure into `error`.
  void RunFusedQuery(const api::QueryPlan& plan,
                     const std::vector<const api::Aligner*>& aligners,
                     HitMerger* merger, api::Status* error) const;

  const ShardedCorpus& corpus_;
  const size_t batch_size_;
  const bool fuse_alae_shards_;
  ResultCache cache_;
  ThreadPool pool_;  // declared last: workers must die before the cache
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_SCHEDULER_H_
