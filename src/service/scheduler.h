#ifndef ALAE_SERVICE_SCHEDULER_H_
#define ALAE_SERVICE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/api/api.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/corpus_view.h"
#include "src/service/result_cache.h"
#include "src/service/thread_pool.h"
#include "src/util/cancel.h"

namespace alae {
namespace service {

class HitMerger;
class StreamMerger;

struct SchedulerOptions {
  // Worker threads; <= 0 picks hardware concurrency.
  int threads = 0;

  // Bounded shard-task queue. When a request's fan-out does not fit the
  // queue's remaining capacity the request is rejected whole with
  // kResourceExhausted — admission is all-or-nothing, so an overloaded
  // service sheds entire requests instead of half-running them.
  size_t queue_capacity = 1024;

  // LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 256;

  // Shard-local fragment cache: raw per-slice hit lists keyed by (slice
  // content, plan fingerprint) — deliberately NOT by epoch, so base-shard
  // fragments survive the epoch bumps of live-corpus mutations and only
  // die when the slice content itself is replaced (compaction swaps in a
  // new base). Load-bearing for live corpora, where every append/delete
  // invalidates the whole-response cache above; 0 disables the tier.
  size_t shard_cache_capacity = 0;

  // SearchBatch micro-batching: up to this many same-backend queries ride
  // one shard task, so a task switch (and the shard index going cold) is
  // paid once per group rather than once per query.
  size_t batch_size = 8;

  // Fused execution for the built-in ALAE backend: one engine walk over
  // the union of the slices' suffix tries per query, sharing the fork DP
  // across slices (per-slice work reduces to occurrence anchoring +
  // descent — see Alae::RunSharded). This flattens the per-slice fixed
  // query cost; results are bit-exact either way. A fused query is one
  // pool task instead of one per slice, so it trades intra-query
  // parallelism for strictly less total work — batch throughput wins,
  // single-query latency on an idle many-core box may prefer `false`.
  bool fuse_alae_shards = true;

  // Default deadline imposed on every query (0 = none). Each query runs
  // under a scheduler-owned token that carries this deadline AND observes
  // the request's own cancel token, so whichever fires first wins; a
  // caller-supplied sooner deadline is unaffected.
  int64_t default_deadline_ms = 0;

  // --- Observability ---

  // Routes scheduler, pool and engine counters into the metrics registry
  // (`registry`, or the process-wide MetricsRegistry::Default() when
  // null). `false` skips every metric update — the uninstrumented
  // baseline the bench overhead gate (service/obs/off) measures against.
  bool enable_metrics = true;
  obs::MetricsRegistry* registry = nullptr;

  // Request tracing: this fraction of requests that do NOT carry their
  // own SearchRequest::trace get a scheduler-owned Trace recording the
  // admission / compile / queue-wait / per-slice execute / merge stages.
  // The sampling sequence is deterministic in trace_seed. Sampled traces
  // whose wall time reaches slow_query_ms are rendered as span trees
  // into the slow-query log (kept in a small ring, and forwarded to
  // slow_query_sink when set). 0 disables sampling / the slow log.
  double trace_sample_rate = 0.0;
  uint64_t trace_seed = 0x9e3779b97f4a7c15ull;
  int64_t slow_query_ms = 0;
  std::function<void(const std::string&)> slow_query_sink;
};

// The multi-tenant front door of the sharded query service: snapshots the
// corpus source once per batch, compiles each request into a QueryPlan
// once (slice 0's aligner; plans are index-independent), fans the work
// across the snapshot's slices — base shards plus any live-corpus delta
// shards — as pool tasks that share the plan (fused into one union-trie
// walk for ALAE, one task per slice otherwise), merges the per-slice
// streams through a HitMerger with ownership and tombstone filtering, and
// answers repeats from two cache tiers: the epoch-keyed whole-response
// LRU and the content-keyed shard-fragment LRU.
//
// Thread-safe: any number of client threads may call Search/SearchBatch
// concurrently; they share the worker pool and the caches. Mutating a
// LiveCorpus source concurrently is safe (each batch works off its own
// snapshot). Destroying the scheduler while calls are in flight is safe:
// the destructor runs Shutdown(), which cancels every in-flight query
// (they return kCancelled), waits them out, and drains the pool.
//
// Deadlines and cancellation: a request's CancelToken (and the scheduler's
// default_deadline_ms) bound each query cooperatively — engines poll every
// ~4k work units, queued-but-unstarted shard tasks for an expired request
// fast-fail without running, and the outcome is kDeadlineExceeded /
// kCancelled, or — with request.allow_partial — an Ok response carrying
// the hits gathered so far, flagged truncated_by_deadline. Partial
// responses are never stored in either cache tier.
class QueryScheduler {
 public:
  explicit QueryScheduler(const CorpusSource& source,
                          SchedulerOptions options = {});

  ~QueryScheduler();

  // Graceful shutdown: refuses new batches (kCancelled), cancels the
  // tokens of every in-flight query, waits for those batches to return to
  // their callers, then closes and joins the pool. Idempotent; safe to
  // call while clients are still issuing Search calls.
  void Shutdown();

  // One query against every slice of the current snapshot. Failure modes
  // beyond the facade's request validation: kInvalidArgument when the
  // query's worst-case alignment span does not fit the corpus overlap
  // (the sharded answer would not be bit-exact), kNotFound for unknown
  // backends, and kResourceExhausted when the task queue cannot take the
  // fan-out — callers should back off and retry.
  api::StatusOr<api::SearchResponse> Search(std::string_view backend,
                                            const api::SearchRequest& request);

  // Micro-batched form: same-backend requests are grouped `batch_size` to
  // a slice task. Outcomes come back in input order, each with its own
  // Status — one bad query never takes down its neighbours (same contract
  // as MultiQueryDriver::RunEach).
  std::vector<api::QueryOutcome> SearchBatch(
      std::string_view backend,
      const std::vector<api::SearchRequest>& requests);

  // Streaming form, built for the socket front-end: hits reach `sink` in
  // global (text_end, query_end) order *while slice engines are still
  // running*, instead of materialising in a response. On success the
  // returned stats describe the whole stream (hits_emitted, truncated when
  // the cap fired). Semantics match Search bit-for-bit: the emitted
  // sequence is exactly Search(...).hits for the same request — including
  // the max_hits prefix — and both cache tiers are shared (a cached
  // response is replayed to the sink; a completed stream populates the
  // cache for later Search calls and vice versa).
  //
  // Short-circuit: once max_hits hits have been emitted (or the sink
  // returns false), a cap token fires and every still-running slice aborts
  // at its next cancellation poll, so a small max_hits costs a fraction of
  // the full answer. Streaming always runs one task per slice (never the
  // fused ALAE walk — fusion produces unordered results, which would force
  // buffering the very stream this call exists to avoid).
  //
  // The sink runs under the merger's lock on pool worker threads: keep it
  // fast, never call back into the scheduler from it.
  api::StatusOr<api::EngineStats> SearchStream(std::string_view backend,
                                               const api::SearchRequest& request,
                                               const api::HitSink& sink);

  const CorpusSource& source() const { return source_; }
  ThreadPool& pool() { return pool_; }
  const ResultCache& cache() const { return cache_; }
  const ResultCache& shard_cache() const { return shard_cache_; }

  // The registry scheduler metrics land in (resolved even when
  // enable_metrics is false, so a front-end can still scrape it) and the
  // tracer behind sampling + the slow-query log. The front-end uses the
  // tracer to sample its own request-scoped traces so it can append
  // serialize spans the scheduler never sees.
  obs::MetricsRegistry& registry() const { return *registry_; }
  obs::Tracer& tracer() { return tracer_; }

 private:
  // Registry-backed instruments, resolved once at construction. All null
  // when the options disable metrics — every hot-path update is a single
  // null check away from free.
  struct Instruments {
    obs::Counter* requests_search = nullptr;
    obs::Counter* requests_stream = nullptr;
    obs::Counter* sheds = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* response_cache_hits = nullptr;
    obs::Counter* response_cache_misses = nullptr;
    obs::Counter* fragment_cache_hits = nullptr;
    obs::Counter* fragment_cache_misses = nullptr;
    obs::Counter* fused_queries = nullptr;
    obs::Counter* dp_cells = nullptr;
    obs::Counter* fm_extends = nullptr;
    obs::Counter* trie_nodes = nullptr;
    obs::Counter* forks_opened = nullptr;
    obs::Gauge* pool_queue_depth = nullptr;
    obs::Counter* pool_rejects = nullptr;
    obs::Histogram* latency = nullptr;
  };
  static Instruments MakeInstruments(const SchedulerOptions& options,
                                     obs::MetricsRegistry* registry);

  // Folds one finished outcome into the instruments: error-class counters
  // for failures; latency, cache-tier and engine DpCounters for answers.
  void RecordResult(const api::Status& status, const api::EngineStats* stats);

  // Executes one compiled query against one slice: fragment-cache lookup,
  // engine run on miss (raw slice-local hits; the fragment inserted before
  // merging), MergeSlice either way. `trace`/`root` (nullable / -1) hang
  // an "execute" span under the request's root span.
  api::Status RunSliceQuery(const CorpusView& view, size_t slice,
                            const api::Aligner* aligner,
                            const api::QueryPlan& plan, HitMerger* merger,
                            obs::Trace* trace, int root);

  // Executes one compiled query against every slice inside one pool task:
  // the fused ALAE walk when the plan supports it (all-or-nothing against
  // the fragment cache), else a serial per-slice loop.
  api::Status RunFusedQuery(const CorpusView& view, const api::QueryPlan& plan,
                            const std::vector<const api::Aligner*>& aligners,
                            HitMerger* merger, obs::Trace* trace, int root);

  // Streaming sibling of RunSliceQuery: publishes each engine hit into the
  // StreamMerger as it is produced (fragment-cache lookups replay the
  // cached raw stream; inserts are skipped — a capped run leaves fragments
  // incomplete). Converts cap-token cancellation into success.
  api::Status RunStreamSlice(const CorpusView& view, size_t slice,
                             const api::Aligner* aligner,
                             const api::QueryPlan& plan, StreamMerger* merger,
                             obs::Trace* trace, int root);

  // SearchStream's body; the public wrapper owns trace sampling, the
  // root span and result recording around it.
  api::StatusOr<api::EngineStats> SearchStreamImpl(
      std::string_view backend, const api::SearchRequest& request,
      const api::HitSink& sink, obs::Trace* trace, int root);

  const CorpusSource& source_;
  const size_t batch_size_;
  const bool fuse_alae_shards_;
  const int64_t default_deadline_ms_;
  obs::MetricsRegistry* const registry_;  // never null (Default() fallback)
  const Instruments inst_;
  obs::Tracer tracer_;
  ResultCache cache_;
  ResultCache shard_cache_;

  // Shutdown lifecycle. Every SearchBatch registers under lifecycle_mu_
  // (refused once shutdown_ is set) and registers its queries' effective
  // cancel tokens in inflight_ so Shutdown can fire them all; the batch
  // deregisters before returning and signals lifecycle_cv_.
  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool shutdown_ = false;
  size_t active_batches_ = 0;
  std::unordered_set<CancelToken*> inflight_;

  ThreadPool pool_;  // declared last: workers must die before the caches
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_SCHEDULER_H_
