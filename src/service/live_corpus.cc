#include "src/service/live_corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/util/fault_injector.h"
#include "src/util/serialize.h"
#include "src/util/timer.h"

namespace alae {
namespace service {
namespace {

// Manifest v3 ("ALAESRV3"): v2 plus a leading generation number, with the
// data files carrying that generation in their names — a save writes a
// fresh generation without touching the files the current manifest points
// at, so the manifest rename is the sole cutover. v2 ("ALAESRV2", plain
// file names = generation 0) and v1 ("ALAESRV1", written by
// ShardedCorpus::Save; the degenerate live corpus with one document and
// nothing pending) stay loadable.
constexpr uint64_t kLiveManifestMagicV3 = 0x414C414553525633ULL;
constexpr uint64_t kLiveManifestMagicV2 = 0x414C414553525632ULL;
constexpr uint64_t kBaseManifestMagic = 0x414C414553525631ULL;
// Tombstone journal ("ALAETOMB"): doc_id/begin/end triples to EOF.
constexpr uint64_t kJournalMagic = 0x414C4145544F4D42ULL;

std::string ManifestFileName(const std::string& dir) {
  return dir + "/corpus.manifest";
}

std::string GenInfix(uint64_t gen) {
  return gen == 0 ? std::string() : ".g" + std::to_string(gen);
}

std::string ShardFileName(const std::string& dir, size_t k, uint64_t gen) {
  std::ostringstream name;
  name << dir << "/shard-" << k << GenInfix(gen) << ".fm";
  return name.str();
}

std::string DeltaFileName(const std::string& dir, size_t k, uint64_t gen) {
  std::ostringstream name;
  name << dir << "/delta-" << k << GenInfix(gen) << ".fm";
  return name.str();
}

std::string JournalFileName(const std::string& dir, uint64_t gen) {
  return dir + "/tombstones" + GenInfix(gen) + ".journal";
}

// The generation a corpus data file's name carries: <stem>.g<gen>.<ext>
// maps to <gen>, anything else (the plain v2 names) to 0.
uint64_t FileNameGeneration(const std::string& name) {
  const size_t ext = name.rfind('.');
  if (ext == std::string::npos || ext == 0) return 0;
  const size_t gdot = name.rfind(".g", ext - 1);
  if (gdot == std::string::npos || gdot + 2 >= ext) return 0;
  uint64_t gen = 0;
  for (size_t i = gdot + 2; i < ext; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    gen = gen * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return gen;
}

// Sweeps every corpus data file whose generation is not `keep_gen` —
// the previous save's files after a successful cutover, and the litter of
// any interrupted or fault-injected saves in between. Best-effort: a
// leftover is inert (the manifest never names it), removal just keeps the
// directory from accumulating dead index files.
void RemoveOtherGenerations(const std::string& dir, uint64_t keep_gen) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec), end;
  if (ec) return;
  for (; it != end; it.increment(ec)) {
    if (ec) return;
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    const bool data_file =
        ((name.rfind("shard-", 0) == 0 || name.rfind("delta-", 0) == 0) &&
         name.size() > 3 && name.compare(name.size() - 3, 3, ".fm") == 0) ||
        (name.rfind("tombstones", 0) == 0 && name.size() > 8 &&
         name.compare(name.size() - 8, 8, ".journal") == 0);
    if (!data_file) continue;
    if (FileNameGeneration(name) == keep_gen) continue;
    std::filesystem::remove(it->path(), ec);
  }
}

// The generation the next save must write: one past the generation the
// directory's current manifest names (a v2 manifest or no manifest at all
// names generation 0, so the first v3 save writes generation 1 and the
// plain-named files survive until its cutover completes).
uint64_t NextGeneration(const std::string& dir) {
  std::ifstream manifest(ManifestFileName(dir), std::ios::binary);
  uint64_t magic = 0, gen = 0;
  if (manifest.is_open() && GetU64(manifest, &magic) &&
      magic == kLiveManifestMagicV3 && GetU64(manifest, &gen)) {
    return gen + 1;
  }
  return 1;
}

// The delta's indexed slice starts one overlap before its ownership cut,
// which itself sits one overlap before the document: the first overlap is
// the margin the delta takes over from the preceding region, the second is
// that margin's own left context.
int64_t DeltaTextStart(int64_t doc_begin, int64_t overlap) {
  const int64_t cut = std::max<int64_t>(0, doc_begin - overlap);
  return std::max<int64_t>(0, cut - overlap);
}

api::Status ValidateDocumentPartition(
    const std::vector<DocumentSpan>& docs, int64_t text_size) {
  if (docs.empty()) {
    return api::Status::InvalidArgument("document list is empty");
  }
  std::unordered_set<uint64_t> ids;
  int64_t next = 0;
  for (const DocumentSpan& d : docs) {
    if (d.begin != next || d.end <= d.begin) {
      return api::Status::InvalidArgument(
          "document spans must partition the text in order (document " +
          std::to_string(d.id) + " covers [" + std::to_string(d.begin) +
          ", " + std::to_string(d.end) + "), expected begin " +
          std::to_string(next) + ")");
    }
    if (!ids.insert(d.id).second) {
      return api::Status::InvalidArgument(
          "duplicate document id " + std::to_string(d.id));
    }
    next = d.end;
  }
  if (next != text_size) {
    return api::Status::InvalidArgument(
        "document spans cover " + std::to_string(next) +
        " characters but the text has " + std::to_string(text_size));
  }
  return api::Status::Ok();
}

}  // namespace

LiveCorpus::~LiveCorpus() {
  // Fire the token first, then join: a mid-rebuild background compaction
  // observes the token at its next shard boundary and returns without
  // swapping, so teardown is prompt instead of waiting out a full build.
  compact_cancel_.Cancel();
  if (compactor_ != nullptr) compactor_->Shutdown();
}

api::StatusOr<std::unique_ptr<LiveCorpus>> LiveCorpus::Build(
    Sequence text, LiveCorpusOptions options) {
  std::vector<DocumentSpan> docs;
  docs.push_back(DocumentSpan{0, 0, static_cast<int64_t>(text.size())});
  return Build(std::move(text), std::move(docs), options);
}

api::StatusOr<std::unique_ptr<LiveCorpus>> LiveCorpus::Build(
    Sequence text, std::vector<DocumentSpan> docs, LiveCorpusOptions options) {
  api::Status partition =
      ValidateDocumentPartition(docs, static_cast<int64_t>(text.size()));
  if (!partition.ok()) return partition;
  api::StatusOr<std::unique_ptr<ShardedCorpus>> base =
      ShardedCorpus::Build(text, options.base);
  if (!base.ok()) return base.status();

  auto live = std::unique_ptr<LiveCorpus>(new LiveCorpus());
  live->options_ = options;
  live->alphabet_ = &text.alphabet();
  live->text_ = std::move(text);
  live->text_size_ = static_cast<int64_t>(live->text_.size());
  live->base_ = std::move(base).value();
  live->epoch_ = live->base_->epoch();
  uint64_t max_id = 0;
  for (const DocumentSpan& d : docs) {
    max_id = std::max(max_id, d.id);
    live->docs_.push_back(DocumentInfo{d, true});
  }
  live->next_doc_id_ = max_id + 1;
  live->StartCompactorIfConfigured();
  return live;
}

void LiveCorpus::InitInstruments() {
  obs::MetricsRegistry& r = options_.registry != nullptr
                                ? *options_.registry
                                : obs::MetricsRegistry::Default();
  inst_.appends = r.GetCounter("alae_live_appends_total");
  inst_.deletes = r.GetCounter("alae_live_deletes_total");
  inst_.compactions = r.GetCounter("alae_live_compactions_total");
  inst_.tombstones_gced = r.GetCounter("alae_live_tombstones_gced_total");
  inst_.delta_shards = r.GetGauge("alae_live_delta_shards");
  inst_.tombstones = r.GetGauge("alae_live_tombstones");
  inst_.append_seconds = r.GetHistogram("alae_live_append_seconds");
  inst_.compaction_seconds = r.GetHistogram("alae_live_compaction_seconds");
  inst_.compaction_pause_seconds =
      r.GetHistogram("alae_live_compaction_pause_seconds");
}

void LiveCorpus::StartCompactorIfConfigured() {
  InitInstruments();
  if (options_.background_compaction && options_.compact_after_deltas > 0) {
    compactor_ = std::make_unique<BackgroundWorker>([this] {
      std::lock_guard<std::mutex> mlock(mutate_mu_);
      if (compact_cancel_.Expired()) return;  // tearing down: don't start
      // A failed background compaction (nothing alive, or cancelled by
      // destruction) leaves the corpus serving from its deltas — correct,
      // just unfolded; the next trigger retries.
      (void)CompactLocked(&compact_cancel_);
    });
  }
}

api::StatusOr<uint64_t> LiveCorpus::AppendDocument(const Sequence& doc) {
  if (doc.empty()) {
    return api::Status::InvalidArgument("appended document is empty");
  }
  if (doc.alphabet().kind() != alphabet_->kind()) {
    return api::Status::InvalidArgument(
        "appended document's alphabet does not match the corpus");
  }
  Timer append_timer;
  std::lock_guard<std::mutex> mlock(mutate_mu_);
  const int64_t begin = static_cast<int64_t>(text_.size());
  const int64_t end = begin + static_cast<int64_t>(doc.size());
  if (end >= (int64_t{1} << 32)) {
    return api::Status::InvalidArgument(
        "append would grow the corpus past the 2^32-1 coordinate limit");
  }
  const int64_t slice_start = DeltaTextStart(begin, options_.base.overlap);
  text_.Append(doc);
  const uint64_t id = next_doc_id_++;
  DeltaShardMeta meta;
  meta.doc_id = id;
  meta.text_start = slice_start;
  meta.doc_begin = begin;
  meta.doc_end = end;
  // The synchronous part of an append: index the document plus its
  // context margin. Small by construction (doc + 2*overlap).
  auto delta = std::make_shared<const DeltaShard>(
      text_.Substr(static_cast<size_t>(slice_start),
                   static_cast<size_t>(end - slice_start)),
      meta, options_.base.index);
  size_t outstanding = 0;
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    docs_.push_back(DocumentInfo{DocumentSpan{id, begin, end}, true});
    deltas_.push_back(std::move(delta));
    outstanding = deltas_.size();
    text_size_ = end;
    epoch_ = NextServiceEpoch();
  }
  // Latency up to publication: the synchronous cost a caller experienced
  // (a triggered compaction below accounts for itself).
  inst_.appends->Add();
  inst_.delta_shards->Set(static_cast<int64_t>(outstanding));
  inst_.append_seconds->Observe(append_timer.ElapsedSeconds());
  MaybeCompactLocked();
  return id;
}

api::Status LiveCorpus::DeleteDocument(uint64_t doc_id) {
  std::lock_guard<std::mutex> mlock(mutate_mu_);
  DocumentInfo* doc = nullptr;
  for (DocumentInfo& d : docs_) {
    if (d.span.id == doc_id) {
      doc = &d;
      break;
    }
  }
  if (doc == nullptr) {
    return api::Status::NotFound("document id " + std::to_string(doc_id) +
                                 " is not in the corpus");
  }
  if (!doc->alive) {
    return api::Status::FailedPrecondition(
        "document id " + std::to_string(doc_id) + " is already deleted");
  }
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    doc->alive = false;
    TombstoneSpan tomb{doc_id, doc->span.begin, doc->span.end};
    tombstones_.insert(
        std::upper_bound(tombstones_.begin(), tombstones_.end(), tomb,
                         [](const TombstoneSpan& a, const TombstoneSpan& b) {
                           return a.begin < b.begin;
                         }),
        tomb);
    epoch_ = NextServiceEpoch();
    inst_.tombstones->Set(static_cast<int64_t>(tombstones_.size()));
  }
  inst_.deletes->Add();
  return api::Status::Ok();
}

api::Status LiveCorpus::Compact() {
  std::lock_guard<std::mutex> mlock(mutate_mu_);
  return CompactLocked(nullptr);
}

void LiveCorpus::MaybeCompactLocked() {
  if (options_.compact_after_deltas == 0) return;
  if (deltas_.size() < options_.compact_after_deltas) return;
  if (compactor_ != nullptr) {
    compactor_->Trigger();
  } else {
    // Synchronous trigger mode: the document just appended is alive, so
    // this cannot hit the nothing-left precondition.
    (void)CompactLocked(nullptr);
  }
}

api::Status LiveCorpus::CompactLocked(const CancelToken* cancel) {
  if (deltas_.empty() && tombstones_.empty()) return api::Status::Ok();
  Timer compaction_timer;

  // Rewrite the physical text without the dead spans, preserving ids and
  // order; coordinates shift, which is why this publishes a new epoch.
  Sequence fresh({}, *alphabet_);
  std::vector<DocumentInfo> remapped;
  for (const DocumentInfo& d : docs_) {
    if (!d.alive) continue;
    const int64_t begin = static_cast<int64_t>(fresh.size());
    fresh.Append(text_.Substr(static_cast<size_t>(d.span.begin),
                              static_cast<size_t>(d.span.length())));
    remapped.push_back(DocumentInfo{
        DocumentSpan{d.span.id, begin, static_cast<int64_t>(fresh.size())},
        true});
  }
  if (fresh.empty()) {
    return api::Status::FailedPrecondition(
        "compaction would leave an empty corpus (every document is "
        "deleted); append before compacting");
  }
  api::StatusOr<std::unique_ptr<ShardedCorpus>> rebuilt =
      ShardedCorpus::Build(fresh, options_.base, cancel);
  if (!rebuilt.ok()) return rebuilt.status();
  size_t gced = 0;
  Timer pause_timer;
  {
    // The swap: the only window in which a Snapshot() call would wait on
    // a compaction (the "pause" the metrics histogram records; the full
    // rebuild above blocks only other mutations).
    std::lock_guard<std::mutex> slock(state_mu_);
    base_ = std::move(rebuilt).value();
    deltas_.clear();
    gced = tombstones_.size();
    tombstones_.clear();
    docs_ = std::move(remapped);
    text_size_ = static_cast<int64_t>(fresh.size());
    epoch_ = NextServiceEpoch();
    ++compactions_;
  }
  inst_.compaction_pause_seconds->Observe(pause_timer.ElapsedSeconds());
  text_ = std::move(fresh);
  inst_.compactions->Add();
  if (gced > 0) inst_.tombstones_gced->Add(gced);
  inst_.delta_shards->Set(0);
  inst_.tombstones->Set(0);
  inst_.compaction_seconds->Observe(compaction_timer.ElapsedSeconds());
  return api::Status::Ok();
}

CorpusView LiveCorpus::Snapshot() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  CorpusView view;
  view.epoch = epoch_;
  view.text_size = text_size_;
  view.overlap = options_.base.overlap;
  view.compactions = compactions_;
  view.tombstones = tombstones_;
  view.slices.reserve(base_->num_shards() + deltas_.size());

  // Ownership cuts: delta k owns global ends [cut_k, cut_{k+1}); the base
  // keeps everything before cut_0. cut_k lags document k's start by one
  // overlap so the delta serves the re-owned margin with the full right
  // context only it has (the document itself).
  const int64_t overlap = options_.base.overlap;
  std::vector<int64_t> cuts(deltas_.size() + 1);
  for (size_t k = 0; k < deltas_.size(); ++k) {
    cuts[k] = std::max<int64_t>(0, deltas_[k]->meta().doc_begin - overlap);
  }
  cuts[deltas_.size()] = text_size_;
  const int64_t base_limit = deltas_.empty() ? text_size_ : cuts[0];

  std::shared_ptr<const ShardedCorpus> base = base_;
  for (size_t k = 0; k < base->num_shards(); ++k) {
    const ShardedCorpus::Shard& shard = base->shard(k);
    ShardSlice slice;
    slice.text_start = shard.start;
    slice.owned_begin = shard.owned_begin;
    slice.owned_end = std::min(shard.owned_end, base_limit);
    if (slice.owned_begin >= slice.owned_end) continue;
    slice.registry = shard.registry.get();
    // Same content key as the base's own Snapshot(): fragments cached for
    // these shards survive every append, delete and live-epoch bump, and
    // die only when a compaction replaces the base itself.
    slice.content_key.push_back('B');
    AppendRaw(&slice.content_key, base->epoch());
    AppendRaw(&slice.content_key, static_cast<uint64_t>(k));
    slice.aligner_for = [base, k](std::string_view backend) {
      return base->AlignerFor(k, backend);
    };
    slice.owner = base;
    view.slices.push_back(std::move(slice));
  }
  for (size_t k = 0; k < deltas_.size(); ++k) {
    std::shared_ptr<const DeltaShard> delta = deltas_[k];
    ShardSlice slice;
    slice.text_start = delta->meta().text_start;
    slice.owned_begin = cuts[k];
    slice.owned_end = cuts[k + 1];
    if (slice.owned_begin >= slice.owned_end) continue;
    slice.is_delta = true;
    slice.registry = &delta->registry();
    slice.content_key.push_back('D');
    AppendRaw(&slice.content_key, delta->content_id());
    slice.aligner_for = [delta](std::string_view backend) {
      return delta->AlignerFor(backend);
    };
    slice.owner = std::move(delta);
    view.slices.push_back(std::move(slice));
  }
  return view;
}

api::Status LiveCorpus::Save(const std::string& dir) const {
  std::lock_guard<std::mutex> mlock(mutate_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return api::Status::InvalidArgument("cannot create corpus directory " +
                                        dir + ": " + ec.message());
  }
  // Everything below writes files of a generation the current manifest
  // does not name: a failure (or crash, or injected fault) at any point
  // leaves the previous save untouched and authoritative. The manifest
  // rename is the only mutation of existing state.
  const uint64_t gen = NextGeneration(dir);
  api::Status shards = base_->SaveShardFiles(dir, gen);
  if (!shards.ok()) return shards;
  for (size_t k = 0; k < deltas_.size(); ++k) {
    std::ofstream out(DeltaFileName(dir, k, gen), std::ios::binary);
    // Fault hooks sit past the open so an injected failure leaves the
    // truncated new-generation file the sweep test expects to be inert.
    bool ok = out.is_open() && !FaultInjector::Hit("live/save/delta") &&
              deltas_[k]->registry().index().fm().Save(out);
    out.flush();
    if (!ok || !out.good()) {
      return api::Status::InvalidArgument("failed writing " +
                                          DeltaFileName(dir, k, gen));
    }
  }
  {
    std::ofstream journal(JournalFileName(dir, gen), std::ios::binary);
    bool ok = journal.is_open() && !FaultInjector::Hit("live/save/journal") &&
              PutU64(journal, kJournalMagic);
    for (const TombstoneSpan& t : tombstones_) {
      ok = ok && PutU64(journal, t.doc_id);
      ok = ok && PutU64(journal, static_cast<uint64_t>(t.begin));
      ok = ok && PutU64(journal, static_cast<uint64_t>(t.end));
    }
    journal.flush();
    if (!ok || !journal.good()) {
      return api::Status::InvalidArgument("failed writing " +
                                          JournalFileName(dir, gen));
    }
  }

  // Stage the manifest and rename it into place last: an interrupted save
  // leaves the directory under its previous (complete) manifest.
  const std::string tmp = ManifestFileName(dir) + ".tmp";
  {
    std::ofstream manifest(tmp, std::ios::binary);
    bool ok = manifest.is_open() &&
              !FaultInjector::Hit("live/save/manifest-write");
    ok = ok && PutU64(manifest, kLiveManifestMagicV3);
    ok = ok && PutU64(manifest, gen);
    ok = ok &&
         PutU64(manifest, static_cast<uint64_t>(options_.base.shard_size));
    ok = ok && PutU64(manifest, static_cast<uint64_t>(options_.base.overlap));
    ok = ok && PutU64(manifest, options_.base.index.use_wavelet ? 1 : 0);
    ok = ok && PutU64(manifest,
                      static_cast<uint64_t>(options_.base.index.sa_sample_rate));
    ok = ok && PutU64(manifest, static_cast<uint64_t>(alphabet_->kind()));
    ok = ok && PutU64(manifest, base_->num_shards());
    ok = ok && PutU64(manifest, static_cast<uint64_t>(base_->text_size()));
    ok = ok && PutVec(manifest, text_.symbols());
    ok = ok && PutU64(manifest, compactions_);
    ok = ok && PutU64(manifest, next_doc_id_);
    ok = ok && PutU64(manifest, docs_.size());
    for (const DocumentInfo& d : docs_) {
      ok = ok && PutU64(manifest, d.span.id);
      ok = ok && PutU64(manifest, static_cast<uint64_t>(d.span.begin));
      ok = ok && PutU64(manifest, static_cast<uint64_t>(d.span.end));
      ok = ok && PutU64(manifest, d.alive ? 1 : 0);
    }
    ok = ok && PutU64(manifest, deltas_.size());
    for (const auto& delta : deltas_) {
      const DeltaShardMeta& m = delta->meta();
      ok = ok && PutU64(manifest, m.doc_id);
      ok = ok && PutU64(manifest, static_cast<uint64_t>(m.text_start));
      ok = ok && PutU64(manifest, static_cast<uint64_t>(m.doc_begin));
      ok = ok && PutU64(manifest, static_cast<uint64_t>(m.doc_end));
    }
    ok = ok && PutU64(manifest, tombstones_.size());
    manifest.flush();
    if (!ok || !manifest.good()) {
      return api::Status::InvalidArgument("failed writing " + tmp);
    }
  }
  if (FaultInjector::Hit("live/save/manifest-rename")) {
    return api::Status::InvalidArgument("cannot activate " +
                                        ManifestFileName(dir) +
                                        ": injected rename failure");
  }
  std::filesystem::rename(tmp, ManifestFileName(dir), ec);
  if (ec) {
    return api::Status::InvalidArgument("cannot activate " +
                                        ManifestFileName(dir) + ": " +
                                        ec.message());
  }

  // The cutover is done; every data file of another generation — the
  // previous save's, and any litter from interrupted saves — is now
  // unreferenced. Sweep it.
  RemoveOtherGenerations(dir, gen);
  return api::Status::Ok();
}

api::StatusOr<std::unique_ptr<LiveCorpus>> LiveCorpus::Load(
    const std::string& dir, LiveCorpusOptions options) {
  std::ifstream manifest(ManifestFileName(dir), std::ios::binary);
  uint64_t magic = 0;
  if (!manifest.is_open() || !GetU64(manifest, &magic)) {
    return api::Status::InvalidArgument("unreadable corpus manifest in " +
                                        dir);
  }
  if (magic == kBaseManifestMagic) {
    // A plain ShardedCorpus directory: wrap it as a single-document live
    // corpus (everything is in the base, nothing pending).
    manifest.close();
    api::StatusOr<std::unique_ptr<ShardedCorpus>> base =
        ShardedCorpus::Load(dir);
    if (!base.ok()) return base.status();
    auto live = std::unique_ptr<LiveCorpus>(new LiveCorpus());
    live->options_ = options;
    live->options_.base = (*base)->options();
    live->alphabet_ = &(*base)->text().alphabet();
    live->text_ = (*base)->text();
    live->text_size_ = (*base)->text_size();
    live->docs_.push_back(
        DocumentInfo{DocumentSpan{0, 0, live->text_size_}, true});
    live->next_doc_id_ = 1;
    live->base_ = std::move(base).value();
    live->epoch_ = live->base_->epoch();
    live->StartCompactorIfConfigured();
    return live;
  }
  uint64_t gen = 0;
  if (magic == kLiveManifestMagicV3) {
    if (!GetU64(manifest, &gen)) {
      return api::Status::InvalidArgument("unreadable corpus manifest in " +
                                          dir);
    }
  } else if (magic != kLiveManifestMagicV2) {
    return api::Status::InvalidArgument("unreadable corpus manifest in " +
                                        dir);
  }

  uint64_t shard_size = 0, overlap = 0, wavelet = 0, rate = 0, kind = 0,
           num_base_shards = 0, base_text_size = 0, compactions = 0,
           next_doc_id = 0, num_docs = 0;
  std::vector<Symbol> symbols;
  bool ok = GetU64(manifest, &shard_size) && GetU64(manifest, &overlap) &&
            GetU64(manifest, &wavelet) && GetU64(manifest, &rate) &&
            GetU64(manifest, &kind) && GetU64(manifest, &num_base_shards) &&
            GetU64(manifest, &base_text_size) && GetVec(manifest, &symbols) &&
            GetU64(manifest, &compactions) && GetU64(manifest, &next_doc_id) &&
            GetU64(manifest, &num_docs);
  if (!ok) {
    return api::Status::InvalidArgument("unreadable corpus manifest in " +
                                        dir);
  }
  if (kind > 1 || rate < 1 || rate > (1ULL << 30) || shard_size < 1 ||
      shard_size > (1ULL << 40) || overlap > shard_size ||
      num_base_shards < 1 || symbols.empty() ||
      symbols.size() >= (uint64_t{1} << 32) || base_text_size < 1 ||
      base_text_size > symbols.size() || num_docs < 1 ||
      num_docs > symbols.size()) {
    return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
  }
  const int64_t text_size = static_cast<int64_t>(symbols.size());

  struct DocEntry {
    DocumentSpan span;
    bool alive = true;
  };
  std::vector<DocEntry> docs(static_cast<size_t>(num_docs));
  std::vector<DocumentSpan> spans;
  for (DocEntry& d : docs) {
    uint64_t id = 0, begin = 0, end = 0, alive = 0;
    if (!GetU64(manifest, &id) || !GetU64(manifest, &begin) ||
        !GetU64(manifest, &end) || !GetU64(manifest, &alive) || alive > 1 ||
        id >= next_doc_id || end > symbols.size()) {
      return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
    }
    d.span = DocumentSpan{id, static_cast<int64_t>(begin),
                          static_cast<int64_t>(end)};
    d.alive = alive == 1;
    spans.push_back(d.span);
  }
  api::Status partition = ValidateDocumentPartition(spans, text_size);
  if (!partition.ok()) {
    return api::Status::InvalidArgument(
        "corrupt corpus manifest in " + dir + ": " + partition.message());
  }

  uint64_t num_deltas = 0;
  if (!GetU64(manifest, &num_deltas) || num_deltas > num_docs) {
    return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
  }
  std::vector<DeltaShardMeta> delta_metas(static_cast<size_t>(num_deltas));
  for (DeltaShardMeta& m : delta_metas) {
    uint64_t doc_id = 0, text_start = 0, doc_begin = 0, doc_end = 0;
    if (!GetU64(manifest, &doc_id) || !GetU64(manifest, &text_start) ||
        !GetU64(manifest, &doc_begin) || !GetU64(manifest, &doc_end)) {
      return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
    }
    m.doc_id = doc_id;
    m.text_start = static_cast<int64_t>(text_start);
    m.doc_begin = static_cast<int64_t>(doc_begin);
    m.doc_end = static_cast<int64_t>(doc_end);
  }
  uint64_t num_tombstones = 0;
  if (!GetU64(manifest, &num_tombstones) || num_tombstones > num_docs) {
    return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
  }

  // The delta list must be exactly the documents past the base frontier,
  // in order, each with the geometry AppendDocument would have produced —
  // a manifest naming an out-of-range or mismatched document is rejected,
  // not guessed around.
  std::vector<const DocEntry*> post_base;
  for (const DocEntry& d : docs) {
    if (d.span.begin >= static_cast<int64_t>(base_text_size)) {
      post_base.push_back(&d);
    } else if (d.span.end > static_cast<int64_t>(base_text_size)) {
      return api::Status::InvalidArgument(
          "corrupt corpus manifest in " + dir +
          ": a document straddles the base/delta frontier");
    }
  }
  if (post_base.size() != delta_metas.size()) {
    return api::Status::InvalidArgument(
        "corrupt corpus manifest in " + dir + ": manifest lists " +
        std::to_string(delta_metas.size()) + " delta shards but " +
        std::to_string(post_base.size()) + " documents lie past the base");
  }
  for (size_t k = 0; k < delta_metas.size(); ++k) {
    const DeltaShardMeta& m = delta_metas[k];
    const DocumentSpan& doc = post_base[k]->span;
    if (m.doc_id != doc.id || m.doc_begin != doc.begin ||
        m.doc_end != doc.end ||
        m.text_start !=
            DeltaTextStart(m.doc_begin, static_cast<int64_t>(overlap))) {
      return api::Status::InvalidArgument(
          "delta shard " + std::to_string(k) + " in " + dir +
          " references an unknown or mismatched document (id " +
          std::to_string(m.doc_id) + ")");
    }
  }

  // Tombstone journal: magic plus triples to EOF. A partial trailing entry
  // means a torn write — reject rather than load half a deletion.
  std::vector<TombstoneSpan> tombstones;
  {
    std::ifstream journal(JournalFileName(dir, gen), std::ios::binary);
    uint64_t jmagic = 0;
    if (!journal.is_open() || !GetU64(journal, &jmagic) ||
        jmagic != kJournalMagic) {
      return api::Status::InvalidArgument(
          "unreadable or corrupt tombstone journal in " + dir);
    }
    while (journal.peek() != std::char_traits<char>::eof()) {
      uint64_t doc_id = 0, begin = 0, end = 0;
      if (!GetU64(journal, &doc_id) || !GetU64(journal, &begin) ||
          !GetU64(journal, &end)) {
        return api::Status::InvalidArgument("truncated tombstone journal in " +
                                            dir);
      }
      tombstones.push_back(TombstoneSpan{doc_id, static_cast<int64_t>(begin),
                                         static_cast<int64_t>(end)});
    }
  }
  if (tombstones.size() != num_tombstones) {
    return api::Status::InvalidArgument(
        "tombstone journal in " + dir + " holds " +
        std::to_string(tombstones.size()) + " entries but the manifest says " +
        std::to_string(num_tombstones));
  }
  std::sort(tombstones.begin(), tombstones.end(),
            [](const TombstoneSpan& a, const TombstoneSpan& b) {
              return a.begin < b.begin;
            });
  std::unordered_map<uint64_t, const DocEntry*> by_id;
  for (const DocEntry& d : docs) by_id[d.span.id] = &d;
  size_t dead = 0;
  for (const DocEntry& d : docs) dead += d.alive ? 0 : 1;
  if (dead != tombstones.size()) {
    return api::Status::InvalidArgument(
        "tombstone journal in " + dir +
        " does not match the manifest's deleted documents");
  }
  for (size_t i = 0; i < tombstones.size(); ++i) {
    const TombstoneSpan& t = tombstones[i];
    if (i > 0 && t.begin < tombstones[i - 1].end) {
      return api::Status::InvalidArgument(
          "overlapping tombstone spans in " + JournalFileName(dir, gen));
    }
    auto it = by_id.find(t.doc_id);
    if (it == by_id.end() || it->second->alive ||
        it->second->span.begin != t.begin || it->second->span.end != t.end) {
      return api::Status::InvalidArgument(
          "tombstone journal in " + dir +
          " does not match the manifest's deleted documents (doc id " +
          std::to_string(t.doc_id) + ")");
    }
  }

  ShardedCorpusOptions base_options;
  base_options.shard_size = static_cast<int64_t>(shard_size);
  base_options.overlap = static_cast<int64_t>(overlap);
  base_options.index.use_wavelet = wavelet != 0;
  base_options.index.sa_sample_rate = static_cast<int>(rate);
  const Alphabet& alphabet = Alphabet::Get(static_cast<AlphabetKind>(kind));
  Sequence text(std::move(symbols), alphabet);

  // Reassemble the base over the text prefix from its persisted shard
  // indexes (content-probed inside Assemble).
  std::vector<FmIndex> prebuilt(static_cast<size_t>(num_base_shards));
  for (uint64_t k = 0; k < num_base_shards; ++k) {
    const std::string name =
        ShardFileName(dir, static_cast<size_t>(k), gen);
    std::ifstream in(name, std::ios::binary);
    if (!in.is_open() || !prebuilt[static_cast<size_t>(k)].Load(in)) {
      return api::Status::InvalidArgument(
          "unreadable or corrupt shard index " + name);
    }
  }
  api::StatusOr<std::unique_ptr<ShardedCorpus>> base = ShardedCorpus::Assemble(
      text.Substr(0, static_cast<size_t>(base_text_size)), base_options,
      std::move(prebuilt));
  if (!base.ok()) return base.status();
  if ((*base)->num_shards() != num_base_shards) {
    return api::Status::InvalidArgument(
        "corpus manifest shard count does not match its geometry");
  }

  // Rebuild the delta shards from their persisted indexes, content-probed
  // like base shards: a stale or swapped delta file must not load.
  std::vector<std::shared_ptr<const DeltaShard>> deltas;
  for (size_t k = 0; k < delta_metas.size(); ++k) {
    const DeltaShardMeta& m = delta_metas[k];
    std::ifstream in(DeltaFileName(dir, k, gen), std::ios::binary);
    FmIndex fm;
    if (!in.is_open() || !fm.Load(in)) {
      return api::Status::InvalidArgument(
          "unreadable or corrupt delta index " + DeltaFileName(dir, k, gen));
    }
    Sequence slice = text.Substr(static_cast<size_t>(m.text_start),
                                 static_cast<size_t>(m.doc_end - m.text_start));
    if (fm.text_size() != slice.size() || fm.sigma() != slice.sigma()) {
      return api::Status::InvalidArgument(
          "delta index " + DeltaFileName(dir, k, gen) +
          " does not match the manifest text (size/sigma mismatch)");
    }
    Sequence rev = slice.Reversed();
    if (fm.Find(rev.symbols().data(), rev.size()).Empty()) {
      return api::Status::InvalidArgument(
          "delta index " + DeltaFileName(dir, k, gen) +
          " does not correspond to the manifest text");
    }
    deltas.push_back(
        std::make_shared<const DeltaShard>(std::move(slice), m, std::move(fm)));
  }

  // Leftovers of an interrupted save or compaction are inert — the
  // manifest rename is the cutover — but clean them so they cannot
  // accumulate.
  std::error_code ec;
  std::filesystem::remove(ManifestFileName(dir) + ".tmp", ec);
  std::filesystem::remove_all(dir + "/compact.tmp", ec);
  RemoveOtherGenerations(dir, gen);

  auto live = std::unique_ptr<LiveCorpus>(new LiveCorpus());
  live->options_ = options;
  live->options_.base = base_options;
  live->alphabet_ = &alphabet;
  live->text_ = std::move(text);
  live->text_size_ = text_size;
  live->next_doc_id_ = next_doc_id;
  live->base_ = std::move(base).value();
  for (const DocEntry& d : docs) {
    live->docs_.push_back(DocumentInfo{d.span, d.alive});
  }
  live->deltas_ = std::move(deltas);
  live->tombstones_ = std::move(tombstones);
  live->compactions_ = compactions;
  live->epoch_ = NextServiceEpoch();
  live->StartCompactorIfConfigured();
  return live;
}

uint64_t LiveCorpus::epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return epoch_;
}

int64_t LiveCorpus::text_size() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return text_size_;
}

size_t LiveCorpus::num_deltas() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return deltas_.size();
}

size_t LiveCorpus::num_tombstones() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return tombstones_.size();
}

uint64_t LiveCorpus::compactions() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return compactions_;
}

uint64_t LiveCorpus::background_compactions() const {
  return compactor_ ? compactor_->runs() : 0;
}

std::vector<LiveCorpus::DocumentInfo> LiveCorpus::Documents() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return docs_;
}

std::vector<TombstoneSpan> LiveCorpus::Tombstones() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return tombstones_;
}

std::shared_ptr<const ShardedCorpus> LiveCorpus::base() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return base_;
}

size_t LiveCorpus::IndexBytes() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  size_t total = base_->IndexBytes();
  for (const auto& d : deltas_) total += d->IndexBytes();
  return total;
}

}  // namespace service
}  // namespace alae
