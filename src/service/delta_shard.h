#ifndef ALAE_SERVICE_DELTA_SHARD_H_
#define ALAE_SERVICE_DELTA_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/api/api.h"
#include "src/index/fm_index.h"
#include "src/io/sequence.h"

namespace alae {
namespace service {

// Where a delta shard sits in the global text. Persisted verbatim in the
// live-corpus manifest (v2); everything else about a delta shard is
// derivable from it plus the physical text.
struct DeltaShardMeta {
  uint64_t doc_id = 0;     // the absorbed document
  int64_t text_start = 0;  // global start of the indexed slice (context incl.)
  int64_t doc_begin = 0;   // the document's global span [doc_begin, doc_end)
  int64_t doc_end = 0;
};

// A small write-absorbing shard over one appended document: its own
// FM-index/AlignerRegistry built synchronously over the document plus up
// to 2*overlap characters of preceding context (one overlap for the
// ownership margin the delta takes over from the preceding region, one
// for that margin's own left context — see LiveCorpus's geometry note).
//
// Immutable after construction. Ownership *cuts* are not stored here: the
// owned range of a delta shard shifts when a later document appends (the
// newcomer takes over the trailing margin), so LiveCorpus computes owned
// ranges per snapshot.
class DeltaShard {
 public:
  // Builds the index over `slice_text` = physical text [meta.text_start,
  // meta.doc_end). This is the synchronous cost of AppendDocument.
  DeltaShard(Sequence slice_text, DeltaShardMeta meta, FmIndexOptions options);

  // Adopts an index loaded from disk. The caller (the manifest-v2 loader)
  // must have content-probed `fm` against slice_text, like the base
  // corpus loader does for its shards.
  DeltaShard(Sequence slice_text, DeltaShardMeta meta, FmIndex fm);

  const DeltaShardMeta& meta() const { return meta_; }
  int64_t slice_size() const { return meta_.doc_end - meta_.text_start; }

  // Process-unique content identity (fragment-cache key component): drawn
  // from the service epoch counter at construction, so no two delta-shard
  // builds — even of identical text — ever share one.
  uint64_t content_id() const { return content_id_; }

  const api::AlignerRegistry& registry() const { return registry_; }

  // The per-backend aligner, built on first use and cached (thread-safe).
  // kNotFound for unknown backend names.
  api::StatusOr<const api::Aligner*> AlignerFor(std::string_view backend) const;

  size_t IndexBytes() const;

 private:
  DeltaShardMeta meta_;
  uint64_t content_id_;
  api::AlignerRegistry registry_;

  mutable std::mutex aligners_mu_;
  mutable std::map<std::string, std::unique_ptr<api::Aligner>, std::less<>>
      aligners_;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_DELTA_SHARD_H_
