#include "src/service/result_cache.h"

#include <utility>

#include "src/util/serialize.h"

namespace alae {
namespace service {

std::string ResultCache::KeyFor(const api::QueryPlan& plan, uint64_t max_hits,
                                uint64_t epoch) {
  std::string key = plan.fingerprint();
  AppendRaw(&key, max_hits);
  AppendRaw(&key, epoch);
  return key;
}

std::string ResultCache::KeyFor(std::string_view backend,
                                const api::SearchRequest& request,
                                uint64_t epoch) {
  std::string key = api::QueryPlan::Fingerprint(backend, request);
  AppendRaw(&key, request.max_hits);
  AppendRaw(&key, epoch);
  return key;
}

std::string ResultCache::FragmentKeyFor(const std::string& content_key,
                                        const api::QueryPlan& plan) {
  return content_key + plan.fingerprint();
}

bool ResultCache::Lookup(const std::string& key,
                         api::SearchResponse* response) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::shared_ptr<const api::SearchResponse> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(std::string_view(key));
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    found = it->second->response;
  }
  // Deep-copy the hit vector outside the lock; entries are immutable once
  // published, so concurrent readers of a hot key no longer serialise on
  // the copy.
  *response = *found;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const api::SearchResponse& response) {
  if (capacity_ == 0) return;
  auto payload = std::make_shared<const api::SearchResponse>(response);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    // A concurrent miss already computed and inserted this key; keep the
    // fresher entry's recency and swap in the newer payload (both valid).
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->response = std::move(payload);
    return;
  }
  lru_.push_front(Entry{key, std::move(payload)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace service
}  // namespace alae
