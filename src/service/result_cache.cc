#include "src/service/result_cache.h"

#include <cstring>
#include <utility>

namespace alae {
namespace service {
namespace {

template <typename T>
void AppendRaw(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

}  // namespace

std::string ResultCache::KeyFor(std::string_view backend,
                                const api::SearchRequest& request,
                                uint64_t epoch) {
  std::string key;
  key.reserve(64 + request.query.size());
  key.append(backend);
  key.push_back('\0');
  AppendRaw(&key, epoch);
  AppendRaw(&key, request.scheme.sa);
  AppendRaw(&key, request.scheme.sb);
  AppendRaw(&key, request.scheme.sg);
  AppendRaw(&key, request.scheme.ss);
  AppendRaw(&key, request.threshold);
  AppendRaw(&key, request.max_hits);
  // Per-backend knobs: engines that ignore them still get distinct keys,
  // which only costs a rare duplicate entry, never a wrong answer.
  AppendRaw(&key, static_cast<uint8_t>((request.alae.length_filter << 0) |
                                       (request.alae.score_filter << 1) |
                                       (request.alae.prefix_filter << 2) |
                                       (request.alae.domination_filter << 3) |
                                       (request.alae.bitset_global_filter << 4) |
                                       (request.alae.reuse << 5)));
  AppendRaw(&key, request.blast.word_size);
  AppendRaw(&key, static_cast<uint8_t>(request.blast.two_hit));
  AppendRaw(&key, request.blast.x_drop_ungapped);
  AppendRaw(&key, request.blast.x_drop_gapped);
  AppendRaw(&key, request.blast.gap_trigger);
  AppendRaw(&key, static_cast<uint8_t>(request.query.alphabet().kind()));
  key.append(reinterpret_cast<const char*>(request.query.symbols().data()),
             request.query.size());
  return key;
}

bool ResultCache::Lookup(const std::string& key,
                         api::SearchResponse* response) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::shared_ptr<const api::SearchResponse> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(std::string_view(key));
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    found = it->second->response;
  }
  // Deep-copy the hit vector outside the lock; entries are immutable once
  // published, so concurrent readers of a hot key no longer serialise on
  // the copy.
  *response = *found;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const api::SearchResponse& response) {
  if (capacity_ == 0) return;
  auto payload = std::make_shared<const api::SearchResponse>(response);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    // A concurrent miss already computed and inserted this key; keep the
    // fresher entry's recency and swap in the newer payload (both valid).
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->response = std::move(payload);
    return;
  }
  lru_.push_front(Entry{key, std::move(payload)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace service
}  // namespace alae
