#ifndef ALAE_SERVICE_SHARDED_CORPUS_H_
#define ALAE_SERVICE_SHARDED_CORPUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/api/api.h"
#include "src/index/fm_index.h"
#include "src/io/sequence.h"
#include "src/service/corpus_view.h"
#include "src/util/cancel.h"

namespace alae {
namespace service {

struct ShardedCorpusOptions {
  // Shard geometry. Each shard covers `shard_size` text characters and
  // consecutive shards share `overlap` characters on each side of the
  // ownership boundary, so every position has at least `overlap` context
  // in the shard that owns it. Requests whose worst-case alignment span
  // (query length plus the gap characters the scheme affords — the
  // paper's Theorem 1 bound, i.e. max_query_len + max_errors) exceeds the
  // overlap are refused per request rather than answered incompletely.
  int64_t shard_size = 1 << 20;
  int64_t overlap = 4096;

  // Per-shard FM-index construction options (packed flat or wavelet).
  FmIndexOptions index;
};

// A long text split into fixed-size shards, each carrying its own
// FM-index (built, or loaded from disk via the ALAEF2M format) and its own
// per-backend Aligner instances from the AlignerRegistry. This is the
// LogBase shape: partition the store, keep per-partition indexes, serve
// every partition through one front door.
//
// Geometry. Shard k covers text [k*step, k*step + shard_size) with
// step = shard_size - 2*overlap, and *owns* the end positions
// [k*step + overlap, (k+1)*step + overlap) (clamped to the text at both
// edges). The owned intervals partition [0, n), and an owner shard always
// has >= overlap characters of context on both sides of every owned
// position, so:
//  - exact engines: any alignment ending at an owned position whose text
//    span fits in `overlap` lies entirely inside the shard, and the shard
//    scores it exactly like the unsharded engine;
//  - heuristic BLAST: the whole seed-and-extend window around an owned
//    end position fits, so extensions are not truncated differently than
//    in the unsharded run.
// The scheduler drops hits a shard finds outside its owned region (a
// neighbour owns them and scores them with full context), then merges the
// per-shard streams by global coordinate.
//
// Immutable after construction; every accessor is const and thread-safe.
class ShardedCorpus : public CorpusSource {
 public:
  struct Shard {
    int64_t start = 0;       // first covered text position
    int64_t length = 0;      // covered characters
    int64_t owned_begin = 0; // global ends [owned_begin, owned_end) are ours
    int64_t owned_end = 0;
    std::unique_ptr<api::AlignerRegistry> registry;
  };

  // Splits `text` and builds one FM-index per shard. The optional cancel
  // token is observed between shard builds: a compaction (or any other
  // long rebuild) aborts with kCancelled / kDeadlineExceeded at the next
  // shard boundary instead of finishing a build nobody wants.
  static api::StatusOr<std::unique_ptr<ShardedCorpus>> Build(
      Sequence text, ShardedCorpusOptions options = {},
      const CancelToken* cancel = nullptr);

  // Persists the corpus as a directory: one `shard-NNNN.fm` ALAEF2M file
  // per shard plus `corpus.manifest` (geometry + the full text, stored
  // once), staged and renamed into place last so an interrupted save of a
  // fresh directory never leaves a manifest naming missing shards. Any
  // index mode round-trips, including wavelet.
  api::Status Save(const std::string& dir) const;

  // Writes just the per-shard shard files into `dir` (which must exist):
  // `shard-NNNN.fm` for generation 0, `shard-NNNN.g<gen>.fm` otherwise.
  // Save composes this (gen 0) with the v1 manifest; LiveCorpus::Save
  // composes it with the live manifest under the generation it is staging,
  // so the files of the still-authoritative previous save are never
  // touched.
  api::Status SaveShardFiles(const std::string& dir, uint64_t gen = 0) const;

  // Loads a corpus saved by Save, reusing the persisted per-shard
  // FM-indexes instead of rebuilding them.
  static api::StatusOr<std::unique_ptr<ShardedCorpus>> Load(
      const std::string& dir);

  // Computes shard boundaries and constructs registries from the given
  // per-shard indexes; with an empty `prebuilt` list the indexes are built
  // from the text (== Build). Exposed for the live-corpus loader, which
  // reassembles a base from manifest-v2 payloads; `prebuilt` indexes are
  // content-probed against the text.
  static api::StatusOr<std::unique_ptr<ShardedCorpus>> Assemble(
      Sequence text, ShardedCorpusOptions options,
      std::vector<FmIndex> prebuilt, const CancelToken* cancel = nullptr);

  const Sequence& text() const { return text_; }
  int64_t text_size() const { return static_cast<int64_t>(text_.size()); }
  size_t num_shards() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return shards_[i]; }
  const ShardedCorpusOptions& options() const { return options_; }

  // Process-unique corpus generation, part of every result-cache key: two
  // corpora never share an epoch, so cached responses cannot leak across a
  // rebuild or reload.
  uint64_t epoch() const { return epoch_; }

  // The shard-k aligner for a backend, built on first use and cached
  // (thread-safe). kNotFound for unknown backend names.
  api::StatusOr<const api::Aligner*> AlignerFor(size_t shard,
                                               std::string_view backend) const;

  // Whether `backend`'s answer for `request` is guaranteed bit-exact under
  // this geometry: the request's worst-case alignment span (plus BLAST's
  // X-drop exploration margin for the heuristic backend) must fit in the
  // overlap. kInvalidArgument with the limiting numbers otherwise.
  api::Status ValidateSpan(std::string_view backend,
                           const api::SearchRequest& request) const;

  // True when `global_end` (a text end coordinate) is owned by `shard`.
  bool OwnsGlobalEnd(size_t shard, int64_t global_end) const {
    return global_end >= shards_[shard].owned_begin &&
           global_end < shards_[shard].owned_end;
  }

  // Total index footprint across shards.
  size_t IndexBytes() const;

  // The corpus as an immutable snapshot: one slice per shard, no deltas,
  // no tombstones. The corpus must outlive the view (slices reference its
  // registries; a plain corpus carries no keepalive owner).
  CorpusView Snapshot() const override;

 private:
  ShardedCorpus() = default;

  Sequence text_;
  ShardedCorpusOptions options_;
  std::vector<Shard> shards_;
  uint64_t epoch_ = 0;

  mutable std::mutex aligners_mu_;
  mutable std::map<std::pair<size_t, std::string>,
                   std::unique_ptr<api::Aligner>, std::less<>>
      aligners_;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_SHARDED_CORPUS_H_
