#include "src/service/corpus_view.h"

#include <algorithm>
#include <atomic>

#include "src/align/scoring.h"

namespace alae {
namespace service {

uint64_t NextServiceEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1);
}

int64_t RequiredSpan(std::string_view backend,
                     const api::SearchRequest& request) {
  const int64_t m = static_cast<int64_t>(request.query.size());
  if (backend == "blast") {
    // BLAST anchors extensions at a seed that can sit a full alignment
    // span away from the reported end pair, and its X-drop passes explore
    // up to x_drop/|ss| rows beyond the best cell before giving up — the
    // window must fit even where the exploration finds nothing, or a
    // truncated exploration could surface a different local optimum than
    // the unsharded run.
    const int32_t x_drop = std::max(request.blast.x_drop_ungapped,
                                    request.blast.x_drop_gapped);
    const int64_t reach = LengthUpperBound(request.scheme, m, 1) +
                          x_drop / -request.scheme.ss + 1;
    return 2 * reach;
  }
  // Exact engines enumerate alignments *ending* at each position; only
  // left context matters and Theorem 1 bounds it.
  return LengthUpperBound(request.scheme, m, std::max(request.threshold, 1));
}

api::Status CorpusView::ValidateSpan(std::string_view backend,
                                     const api::SearchRequest& request) const {
  if (slices.size() <= 1 && tombstones.empty()) return api::Status::Ok();
  // RequiredSpan divides by scheme.ss; guard malformed schemes here so
  // direct callers (not just the scheduler, which validates first) get a
  // Status instead of a division fault.
  if (!request.scheme.Valid()) {
    return api::Status::InvalidArgument(
        "scoring scheme " + request.scheme.ToString() + " is malformed");
  }
  if (slices.size() <= 1) return api::Status::Ok();
  const int64_t required = RequiredSpan(backend, request);
  if (required <= overlap) return api::Status::Ok();
  return api::Status::InvalidArgument(
      "query of length " + std::to_string(request.query.size()) + " needs " +
      std::to_string(required) +
      " characters of shard context under this scheme/threshold, but the "
      "corpus overlap is only " +
      std::to_string(overlap) +
      "; rebuild the corpus with a larger overlap or shorten the query");
}

bool TombstoneSuppressed(const std::vector<TombstoneSpan>& tombstones,
                         int64_t text_end, int64_t guard) {
  if (tombstones.empty()) return false;
  // Suppression window [w0, text_end] intersected against the sorted,
  // disjoint dead spans: the only candidate is the first span whose end
  // exceeds w0 (disjoint + sorted by begin implies sorted by end).
  const int64_t w0 = text_end - std::max<int64_t>(guard, 1) + 1;
  auto it = std::upper_bound(
      tombstones.begin(), tombstones.end(), w0,
      [](int64_t v, const TombstoneSpan& t) { return v < t.end; });
  return it != tombstones.end() && it->begin <= text_end;
}

}  // namespace service
}  // namespace alae
