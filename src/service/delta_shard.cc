#include "src/service/delta_shard.h"

#include <utility>

#include "src/service/corpus_view.h"

namespace alae {
namespace service {

DeltaShard::DeltaShard(Sequence slice_text, DeltaShardMeta meta,
                       FmIndexOptions options)
    : meta_(meta),
      content_id_(NextServiceEpoch()),
      registry_(std::move(slice_text), options) {}

DeltaShard::DeltaShard(Sequence slice_text, DeltaShardMeta meta, FmIndex fm)
    : meta_(meta),
      content_id_(NextServiceEpoch()),
      registry_(std::make_shared<const AlaeIndex>(std::move(slice_text),
                                                  std::move(fm))) {}

api::StatusOr<const api::Aligner*> DeltaShard::AlignerFor(
    std::string_view backend) const {
  std::lock_guard<std::mutex> lock(aligners_mu_);
  auto it = aligners_.find(backend);
  if (it == aligners_.end()) {
    api::StatusOr<std::unique_ptr<api::Aligner>> created =
        registry_.Create(backend);
    if (!created.ok()) return created.status();
    it = aligners_.emplace(std::string(backend), std::move(created).value())
             .first;
  }
  return it->second.get();
}

size_t DeltaShard::IndexBytes() const {
  AlaeIndex::Sizes sz = registry_.index().SizeBytes();
  return sz.bwt_bytes + sz.sample_bytes + sz.domination_bytes;
}

}  // namespace service
}  // namespace alae
