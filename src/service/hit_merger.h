#ifndef ALAE_SERVICE_HIT_MERGER_H_
#define ALAE_SERVICE_HIT_MERGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/api/search.h"
#include "src/service/corpus_view.h"

namespace alae {
namespace service {

// Collects one query's per-slice result streams into a single global
// response: remaps slice-local coordinates to global ones, drops hits the
// producing slice does not own (a neighbour scores them with full
// context), suppresses hits whose alignment window touches a tombstoned
// span, deduplicates by global (text_end, query_end) keeping the best
// score, and merges per-slice EngineStats.
//
// Slice tasks run concurrently; each buffers its *raw* slice-local hits
// (which is also what the shard-local fragment cache stores — raw hits
// stay valid however the ownership frontier or tombstone set moves) and
// publishes the buffer with one MergeSlice call, so the merger's lock is
// taken once per slice rather than once per hit.
class HitMerger {
 public:
  // `view` must outlive the merger (the scheduler holds both on the
  // batch's stack). `tombstone_guard` is the query's RequiredSpan — the
  // conservative alignment-window length behind TombstoneSuppressed.
  HitMerger(const CorpusView& view, int64_t tombstone_guard)
      : view_(view), tombstone_guard_(tombstone_guard) {}

  // Publishes one slice's raw (slice-local, unfiltered) hits and the stats
  // of the run that produced them. Thread-safe.
  void MergeSlice(size_t slice, const std::vector<AlignmentHit>& raw,
                  const api::EngineStats& stats);

  // Final response: hits sorted by (text_end, query_end), stats merged
  // across slices (including the tombstone_filtered count). Call after
  // every slice task completed.
  api::SearchResponse Take(uint64_t max_hits);

 private:
  struct KeyHash {
    size_t operator()(uint64_t k) const {
      k ^= k >> 33;
      k *= 0xFF51AFD7ED558CCDULL;
      k ^= k >> 33;
      return static_cast<size_t>(k);
    }
  };

  const CorpusView& view_;
  const int64_t tombstone_guard_;
  std::mutex mu_;
  std::unordered_map<uint64_t, AlignmentHit, KeyHash> hits_;
  api::EngineStats stats_;
  uint64_t tombstone_filtered_ = 0;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_HIT_MERGER_H_
