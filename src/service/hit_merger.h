#ifndef ALAE_SERVICE_HIT_MERGER_H_
#define ALAE_SERVICE_HIT_MERGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/api/search.h"
#include "src/service/sharded_corpus.h"

namespace alae {
namespace service {

// Collects one query's per-shard result streams into a single global
// response: remaps shard-local coordinates to global ones, drops hits the
// producing shard does not own (its neighbour scores them with full
// context), deduplicates by global (text_end, query_end) keeping the best
// score, and merges per-shard EngineStats.
//
// Shard tasks run concurrently; each streams its hits into a shard-local
// buffer through ShardSink (the facade's HitSink composed with the
// ownership filter) and publishes the buffer with one MergeShard call, so
// the merger's lock is taken once per shard rather than once per hit.
class HitMerger {
 public:
  explicit HitMerger(const ShardedCorpus& corpus) : corpus_(corpus) {}

  // A sink for `shard`'s Aligner::Search call: filters ownership, remaps
  // coordinates, buffers into `local`. The returned sink always asks for
  // more hits (per-shard truncation is handled by request.max_hits).
  api::HitSink ShardSink(size_t shard, std::vector<AlignmentHit>* local) const;

  // Publishes one shard's buffered hits and stats. Thread-safe.
  void MergeShard(std::vector<AlignmentHit> hits, const api::EngineStats& stats);

  // Final response: hits sorted by (text_end, query_end), stats merged
  // across shards. Call after every shard task completed.
  api::SearchResponse Take(uint64_t max_hits);

 private:
  struct KeyHash {
    size_t operator()(uint64_t k) const {
      k ^= k >> 33;
      k *= 0xFF51AFD7ED558CCDULL;
      k ^= k >> 33;
      return static_cast<size_t>(k);
    }
  };

  const ShardedCorpus& corpus_;
  std::mutex mu_;
  std::unordered_map<uint64_t, AlignmentHit, KeyHash> hits_;
  api::EngineStats stats_;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_HIT_MERGER_H_
