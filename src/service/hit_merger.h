#ifndef ALAE_SERVICE_HIT_MERGER_H_
#define ALAE_SERVICE_HIT_MERGER_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/api/search.h"
#include "src/service/corpus_view.h"
#include "src/util/cancel.h"

namespace alae {
namespace service {

// Collects one query's per-slice result streams into a single global
// response: remaps slice-local coordinates to global ones, drops hits the
// producing slice does not own (a neighbour scores them with full
// context), suppresses hits whose alignment window touches a tombstoned
// span, deduplicates by global (text_end, query_end) keeping the best
// score, and merges per-slice EngineStats.
//
// Slice tasks run concurrently; each buffers its *raw* slice-local hits
// (which is also what the shard-local fragment cache stores — raw hits
// stay valid however the ownership frontier or tombstone set moves) and
// publishes the buffer with one MergeSlice call, so the merger's lock is
// taken once per slice rather than once per hit.
class HitMerger {
 public:
  // `view` must outlive the merger (the scheduler holds both on the
  // batch's stack). `tombstone_guard` is the query's RequiredSpan — the
  // conservative alignment-window length behind TombstoneSuppressed.
  HitMerger(const CorpusView& view, int64_t tombstone_guard)
      : view_(view), tombstone_guard_(tombstone_guard) {}

  // Publishes one slice's raw (slice-local, unfiltered) hits and the stats
  // of the run that produced them. Thread-safe.
  void MergeSlice(size_t slice, const std::vector<AlignmentHit>& raw,
                  const api::EngineStats& stats);

  // Final response: hits sorted by (text_end, query_end), stats merged
  // across slices (including the tombstone_filtered count). Call after
  // every slice task completed.
  api::SearchResponse Take(uint64_t max_hits);

 private:
  struct KeyHash {
    size_t operator()(uint64_t k) const {
      k ^= k >> 33;
      k *= 0xFF51AFD7ED558CCDULL;
      k ^= k >> 33;
      return static_cast<size_t>(k);
    }
  };

  const CorpusView& view_;
  const int64_t tombstone_guard_;
  std::mutex mu_;
  std::unordered_map<uint64_t, AlignmentHit, KeyHash> hits_;
  api::EngineStats stats_;
  uint64_t tombstone_filtered_ = 0;
};

// Streaming counterpart of HitMerger: a k-way merge over per-slice
// *sorted* hit streams that forwards hits to a sink in global
// (text_end, query_end) order while the slice engines are still running,
// and short-circuits remaining shard work once `max_hits` is satisfied.
//
// Why a merge degenerates to an ordered hand-off here: ownership
// partitions the corpus's text-end positions across slices into disjoint,
// sorted intervals, and every backend emits its hits in (text_end,
// query_end) order (the Aligner sink contract) — so after ownership
// filtering, the slice streams are internally sorted AND pairwise
// disjoint in rank. Global sorted order is therefore the slices' streams
// concatenated in owned_begin order. The merger keeps one "live" slice
// (the lowest-ranked not yet closed): its hits flow straight to the sink;
// hits published by higher-ranked slices running concurrently are
// buffered and flushed the moment every lower rank has closed.
//
// Short-circuit: once the emitted count reaches `max_hits` (or the sink
// returns false), the merger fires `cap_token` — the token the slice
// engines observe — so every still-running slice aborts at its next
// cancellation poll and queued slice tasks fast-fail, instead of
// computing a full answer that Take() would then throw away. The emitted
// prefix is bit-identical to HitMerger::Take(max_hits)'s truncation of
// the full merge.
//
// Thread-safe: Publish/Close may race across slice tasks. The sink runs
// under the merger's lock (publication order IS the global order), so it
// must be fast and must not call back into the merger.
class StreamMerger {
 public:
  // `view` must outlive the merger; `guard` is the query's RequiredSpan
  // (tombstone suppression window). `max_hits` = 0 streams everything.
  // `cap_token` (not owned, may be null) is fired when the cap is hit.
  StreamMerger(const CorpusView& view, int64_t guard, uint64_t max_hits,
               api::HitSink sink, CancelToken* cap_token);

  // Publishes one raw slice-local hit from slice `slice`'s engine stream.
  // Applies remap + ownership + tombstone filtering inline. Returns false
  // once the stream is satisfied (cap reached or sink stopped) — the
  // engine's sink should propagate that false to stop the slice run.
  bool Publish(size_t slice, const AlignmentHit& raw);

  // Slice `slice` finished (successfully or not); merges its stats and
  // unblocks buffered successors. Call exactly once per slice.
  void Close(size_t slice, const api::EngineStats& stats);

  // True once max_hits was reached or the sink returned false; engines
  // seeing kCancelled from the cap token should treat the run as
  // successfully truncated when this is set.
  bool cap_satisfied() const;

  // True when the cap was the *sink* stopping (returned false) rather than
  // max_hits filling up. A sink-stopped prefix has no cache meaning (the
  // cache key carries max_hits, not the sink's whim), so the scheduler
  // refuses to cache it.
  bool sink_stopped() const;

  // Hits emitted so far, in emission (= global sorted) order. Only valid
  // after every slice closed; the scheduler uses it to populate the
  // response cache without re-buffering the stream.
  const std::vector<AlignmentHit>& emitted() const { return emitted_; }

  uint64_t tombstone_filtered() const;

  // Merged stats: per-slice EngineStats plus emission accounting
  // (hits_emitted, truncated when capped, tombstone_filtered). Call after
  // every slice closed.
  api::EngineStats TakeStats();

 private:
  // Emits one already-filtered global hit; fires the cap when satisfied.
  // Caller holds mu_.
  void EmitLocked(const AlignmentHit& hit);
  // Advances live_rank_ past closed slices, flushing their buffers.
  // Caller holds mu_.
  void AdvanceLocked();

  const CorpusView& view_;
  const int64_t guard_;
  const uint64_t max_hits_;
  const api::HitSink sink_;
  CancelToken* const cap_token_;

  mutable std::mutex mu_;
  std::vector<size_t> rank_of_slice_;   // slice index -> merge rank
  std::vector<size_t> slice_of_rank_;   // merge rank -> slice index
  std::vector<std::vector<AlignmentHit>> buffered_;  // by rank
  std::vector<bool> closed_;                         // by rank
  size_t live_rank_ = 0;
  std::vector<AlignmentHit> emitted_;
  bool capped_ = false;
  bool sink_stopped_ = false;
  api::EngineStats stats_;
  uint64_t tombstone_filtered_ = 0;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_HIT_MERGER_H_
