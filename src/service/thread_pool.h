#ifndef ALAE_SERVICE_THREAD_POOL_H_
#define ALAE_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace alae {
namespace service {

// Optional pool instrumentation (null members = uninstrumented). The
// gauge tracks the queued-task depth live; the counter ticks once per
// rejected TrySubmit/TrySubmitBatch (the backpressure sheds).
struct PoolMetrics {
  obs::Gauge* queue_depth = nullptr;
  obs::Counter* admission_rejects = nullptr;
};

// Fixed-size worker pool with a bounded task queue.
//
// The bound is the service's backpressure mechanism: admission is
// try-only, so when the queue is full the caller gets an immediate `false`
// (which the scheduler surfaces as kResourceExhausted) instead of an
// unbounded pile-up of queued work. Tasks never block on the pool
// themselves — the scheduler's shard tasks only compute and signal a
// completion latch — so worker starvation cannot deadlock admission.
class ThreadPool {
 public:
  // `threads` <= 0 picks hardware concurrency (clamped to >= 1).
  // `queue_capacity` bounds the number of *queued* (not yet running)
  // tasks.
  explicit ThreadPool(int threads, size_t queue_capacity = 1024,
                      PoolMetrics metrics = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Begins draining: admission is closed (TrySubmit returns false from
  // here on), already-queued tasks still run — the scheduler's task groups
  // signal completion latches, so dropping them would strand waiters —
  // and the workers are joined. Idempotent and safe to call concurrently
  // with submitters; the destructor calls it.
  void Shutdown();

  // True once Shutdown began (admission is closed).
  bool IsShutdown() const;

  // Enqueues one task; false when the queue is full or the pool is
  // shutting down.
  bool TrySubmit(std::function<void()> task);

  // All-or-nothing admission of a task group. A request that fans out into
  // per-shard tasks must not be half-admitted: the admitted half would run
  // while the caller has already given up on the request, wasting workers
  // on an answer nobody collects. Either every task fits in the queue's
  // remaining capacity or none is enqueued.
  bool TrySubmitBatch(std::vector<std::function<void()>> tasks);

  int threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_capacity() const { return capacity_; }

  // Currently queued (not yet dequeued) tasks; for stats and tests.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  const size_t capacity_;
  const PoolMetrics metrics_;
  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  bool joined_ = false;  // workers joined (only Shutdown writes this)
  std::vector<std::thread> workers_;
};

// One named background job on its own thread, run once per Trigger with
// coalescing: triggers that arrive while the job is running fold into a
// single follow-up run instead of queueing unboundedly (the shed-aware
// idiom of the pool above, specialised to a singleton job). The live
// corpus drives its compactions through this. Destruction is a clean
// join: a pending trigger is dropped, a *running* job is waited out — the
// job must therefore never block on the worker's owner.
class BackgroundWorker {
 public:
  explicit BackgroundWorker(std::function<void()> job);
  ~BackgroundWorker();

  BackgroundWorker(const BackgroundWorker&) = delete;
  BackgroundWorker& operator=(const BackgroundWorker&) = delete;

  // Requests a run. Never blocks; coalesces with an already-pending
  // trigger. No-op after shutdown began.
  void Trigger();

  // Begins shutdown and joins: a pending trigger is dropped, a running
  // job is waited out (the owner is expected to have cancelled it first
  // for promptness). Idempotent; the destructor calls it.
  void Shutdown();

  // Completed job runs (for stats and tests).
  uint64_t runs() const;

  // Blocks until no run is pending or in flight (for tests and orderly
  // shutdown sequencing).
  void Drain();

 private:
  void Loop();

  std::function<void()> job_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool pending_ = false;
  bool running_ = false;
  bool shutdown_ = false;
  uint64_t runs_ = 0;
  std::thread thread_;
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_THREAD_POOL_H_
