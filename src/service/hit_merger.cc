#include "src/service/hit_merger.h"

#include <algorithm>
#include <cassert>

namespace alae {
namespace service {

void HitMerger::MergeSlice(size_t slice, const std::vector<AlignmentHit>& raw,
                           const api::EngineStats& stats) {
  const ShardSlice& s = view_.slices[slice];
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Merge(stats);
  for (const AlignmentHit& hit : raw) {
    AlignmentHit global = hit;
    global.text_end += s.text_start;
    if (!s.OwnsGlobalEnd(global.text_end)) continue;
    if (TombstoneSuppressed(view_.tombstones, global.text_end,
                            tombstone_guard_)) {
      ++tombstone_filtered_;
      continue;
    }
    if (global.text_start >= 0) global.text_start += s.text_start;
    assert(global.text_end >= 0 && global.text_end < (int64_t{1} << 32) &&
           global.query_end >= 0 && global.query_end < (int64_t{1} << 32) &&
           "hit coordinates outside the injective key range");
    const uint64_t key = (static_cast<uint64_t>(global.text_end) << 32) |
                         static_cast<uint64_t>(global.query_end);
    auto [it, inserted] = hits_.try_emplace(key, global);
    if (!inserted && global.score > it->second.score) {
      // Ownership partitions end positions, so cross-slice duplicates
      // should not occur; this max-merge keeps the merger correct for any
      // producer that does overlap-emit (e.g. direct MergeSlice users).
      it->second = global;
    }
  }
}

api::SearchResponse HitMerger::Take(uint64_t max_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  api::SearchResponse response;
  response.hits.reserve(hits_.size());
  for (const auto& [key, hit] : hits_) {
    (void)key;
    response.hits.push_back(hit);
  }
  std::sort(response.hits.begin(), response.hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              return a.text_end != b.text_end ? a.text_end < b.text_end
                                              : a.query_end < b.query_end;
            });
  if (max_hits > 0 && response.hits.size() > max_hits) {
    response.hits.resize(max_hits);
    response.stats.truncated = true;
  }
  response.stats.Merge(stats_);
  response.stats.hits_emitted = response.hits.size();
  response.stats.tombstone_filtered = tombstone_filtered_;
  hits_.clear();
  stats_ = api::EngineStats();
  tombstone_filtered_ = 0;
  return response;
}

}  // namespace service
}  // namespace alae
