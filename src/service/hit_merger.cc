#include "src/service/hit_merger.h"

#include <algorithm>
#include <cassert>

namespace alae {
namespace service {

void HitMerger::MergeSlice(size_t slice, const std::vector<AlignmentHit>& raw,
                           const api::EngineStats& stats) {
  const ShardSlice& s = view_.slices[slice];
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Merge(stats);
  for (const AlignmentHit& hit : raw) {
    AlignmentHit global = hit;
    global.text_end += s.text_start;
    if (!s.OwnsGlobalEnd(global.text_end)) continue;
    if (TombstoneSuppressed(view_.tombstones, global.text_end,
                            tombstone_guard_)) {
      ++tombstone_filtered_;
      continue;
    }
    if (global.text_start >= 0) global.text_start += s.text_start;
    assert(global.text_end >= 0 && global.text_end < (int64_t{1} << 32) &&
           global.query_end >= 0 && global.query_end < (int64_t{1} << 32) &&
           "hit coordinates outside the injective key range");
    const uint64_t key = (static_cast<uint64_t>(global.text_end) << 32) |
                         static_cast<uint64_t>(global.query_end);
    auto [it, inserted] = hits_.try_emplace(key, global);
    if (!inserted && global.score > it->second.score) {
      // Ownership partitions end positions, so cross-slice duplicates
      // should not occur; this max-merge keeps the merger correct for any
      // producer that does overlap-emit (e.g. direct MergeSlice users).
      it->second = global;
    }
  }
}

api::SearchResponse HitMerger::Take(uint64_t max_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  api::SearchResponse response;
  response.hits.reserve(hits_.size());
  for (const auto& [key, hit] : hits_) {
    (void)key;
    response.hits.push_back(hit);
  }
  std::sort(response.hits.begin(), response.hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              return a.text_end != b.text_end ? a.text_end < b.text_end
                                              : a.query_end < b.query_end;
            });
  if (max_hits > 0 && response.hits.size() > max_hits) {
    response.hits.resize(max_hits);
    response.stats.truncated = true;
  }
  response.stats.Merge(stats_);
  response.stats.hits_emitted = response.hits.size();
  response.stats.tombstone_filtered = tombstone_filtered_;
  hits_.clear();
  stats_ = api::EngineStats();
  tombstone_filtered_ = 0;
  return response;
}

StreamMerger::StreamMerger(const CorpusView& view, int64_t guard,
                           uint64_t max_hits, api::HitSink sink,
                           CancelToken* cap_token)
    : view_(view),
      guard_(guard),
      max_hits_(max_hits),
      sink_(std::move(sink)),
      cap_token_(cap_token) {
  const size_t n = view.slices.size();
  slice_of_rank_.resize(n);
  for (size_t s = 0; s < n; ++s) slice_of_rank_[s] = s;
  // Merge rank = ownership order. Base slices and deltas are appended in
  // owned order already, but the merge is only correct under that order,
  // so it is established here rather than assumed.
  std::sort(slice_of_rank_.begin(), slice_of_rank_.end(),
            [&view](size_t a, size_t b) {
              return view.slices[a].owned_begin < view.slices[b].owned_begin;
            });
  rank_of_slice_.resize(n);
  for (size_t r = 0; r < n; ++r) rank_of_slice_[slice_of_rank_[r]] = r;
  buffered_.resize(n);
  closed_.assign(n, false);
}

void StreamMerger::EmitLocked(const AlignmentHit& hit) {
  if (capped_) return;
  emitted_.push_back(hit);
  const bool keep_going = sink_ ? sink_(hit) : true;
  if (!keep_going ||
      (max_hits_ > 0 && emitted_.size() >= static_cast<size_t>(max_hits_))) {
    capped_ = true;
    if (!keep_going) sink_stopped_ = true;
    // Fire the engines' token: running slices abort at their next poll,
    // queued slice tasks fast-fail — the short-circuit that makes a
    // small max_hits cheaper than computing the full answer.
    if (cap_token_ != nullptr) cap_token_->Cancel();
  }
}

bool StreamMerger::Publish(size_t slice, const AlignmentHit& raw) {
  const ShardSlice& s = view_.slices[slice];
  AlignmentHit global = raw;
  global.text_end += s.text_start;
  if (global.text_start >= 0) global.text_start += s.text_start;
  std::lock_guard<std::mutex> lock(mu_);
  if (capped_) return false;
  if (!s.OwnsGlobalEnd(global.text_end)) return true;
  if (TombstoneSuppressed(view_.tombstones, global.text_end, guard_)) {
    ++tombstone_filtered_;
    return true;
  }
  const size_t rank = rank_of_slice_[slice];
  if (rank == live_rank_) {
    EmitLocked(global);
  } else {
    buffered_[rank].push_back(global);
  }
  return !capped_;
}

void StreamMerger::Close(size_t slice, const api::EngineStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Merge(stats);
  const size_t rank = rank_of_slice_[slice];
  closed_[rank] = true;
  if (rank == live_rank_) AdvanceLocked();
}

void StreamMerger::AdvanceLocked() {
  while (live_rank_ < closed_.size() && closed_[live_rank_]) {
    ++live_rank_;
    if (live_rank_ >= closed_.size()) break;
    // The next rank's concurrently-published backlog becomes emittable the
    // moment every lower rank is done.
    for (const AlignmentHit& hit : buffered_[live_rank_]) {
      if (capped_) break;
      EmitLocked(hit);
    }
    buffered_[live_rank_].clear();
  }
}

bool StreamMerger::cap_satisfied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capped_;
}

bool StreamMerger::sink_stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_stopped_;
}

uint64_t StreamMerger::tombstone_filtered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstone_filtered_;
}

api::EngineStats StreamMerger::TakeStats() {
  std::lock_guard<std::mutex> lock(mu_);
  api::EngineStats stats = stats_;
  stats.hits_emitted = emitted_.size();
  stats.tombstone_filtered = tombstone_filtered_;
  if (capped_) stats.truncated = true;
  return stats;
}

}  // namespace service
}  // namespace alae
