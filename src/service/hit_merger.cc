#include "src/service/hit_merger.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace alae {
namespace service {

api::HitSink HitMerger::ShardSink(size_t shard,
                                  std::vector<AlignmentHit>* local) const {
  const int64_t shard_start = corpus_.shard(shard).start;
  const ShardedCorpus* corpus = &corpus_;
  return [corpus, shard, shard_start, local](const AlignmentHit& hit) {
    AlignmentHit global = hit;
    global.text_end += shard_start;
    if (corpus->OwnsGlobalEnd(shard, global.text_end)) {
      if (global.text_start >= 0) global.text_start += shard_start;
      local->push_back(global);
    }
    return true;
  };
}

void HitMerger::MergeShard(std::vector<AlignmentHit> hits,
                           const api::EngineStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Merge(stats);
  for (const AlignmentHit& hit : hits) {
    assert(hit.text_end >= 0 && hit.text_end < (int64_t{1} << 32) &&
           hit.query_end >= 0 && hit.query_end < (int64_t{1} << 32) &&
           "hit coordinates outside the injective key range");
    const uint64_t key = (static_cast<uint64_t>(hit.text_end) << 32) |
                         static_cast<uint64_t>(hit.query_end);
    auto [it, inserted] = hits_.try_emplace(key, hit);
    if (!inserted && hit.score > it->second.score) {
      // Ownership partitions end positions, so cross-shard duplicates
      // should not occur; this max-merge keeps the merger correct for any
      // producer that does overlap-emit (e.g. direct MergeShard users).
      it->second = hit;
    }
  }
}

api::SearchResponse HitMerger::Take(uint64_t max_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  api::SearchResponse response;
  response.hits.reserve(hits_.size());
  for (const auto& [key, hit] : hits_) {
    (void)key;
    response.hits.push_back(hit);
  }
  std::sort(response.hits.begin(), response.hits.end(),
            [](const AlignmentHit& a, const AlignmentHit& b) {
              return a.text_end != b.text_end ? a.text_end < b.text_end
                                              : a.query_end < b.query_end;
            });
  if (max_hits > 0 && response.hits.size() > max_hits) {
    response.hits.resize(max_hits);
    response.stats.truncated = true;
  }
  response.stats.Merge(stats_);
  response.stats.hits_emitted = response.hits.size();
  hits_.clear();
  stats_ = api::EngineStats();
  return response;
}

}  // namespace service
}  // namespace alae
