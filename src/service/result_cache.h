#ifndef ALAE_SERVICE_RESULT_CACHE_H_
#define ALAE_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/api/plan.h"
#include "src/api/search.h"

namespace alae {
namespace service {

// LRU cache of materialised SearchResponses.
//
// Keys are the compiled query's canonical fingerprint (QueryPlan — backend
// name, query symbols, every scoring/threshold parameter and the
// per-backend option blocks) plus the request's max_hits cap and the
// corpus epoch — so a response can never be served across a corpus
// rebuild or a parameter change. Values are full responses (hits + the
// stats of the run that computed them).
//
// Thread-safe; hit/miss counters are monotonic over the cache's lifetime
// and also surfaced per-response through EngineStats by the scheduler.
class ResultCache {
 public:
  // `capacity` = max cached responses; 0 disables the cache entirely
  // (Lookup always misses, Insert is a no-op).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  // Builds the canonical cache key for a compiled plan against a corpus
  // epoch. `max_hits` is the original request's cap (the plan fingerprint
  // deliberately excludes it: truncated responses must not be served to
  // uncapped requests or vice versa).
  static std::string KeyFor(const api::QueryPlan& plan, uint64_t max_hits,
                            uint64_t epoch);

  // Key for an uncompiled request (same bytes as the plan form).
  static std::string KeyFor(std::string_view backend,
                            const api::SearchRequest& request,
                            uint64_t epoch);

  // Key for a shard-local result fragment: the slice's content key (which
  // encodes what text the slice indexes, not which snapshot it appeared
  // in) plus the plan fingerprint. Deliberately epoch-free — a fragment
  // stays valid across live-corpus epoch bumps until the slice's content
  // itself is replaced. max_hits is irrelevant here: slice runs are always
  // uncapped (the global cap applies after the merge).
  static std::string FragmentKeyFor(const std::string& content_key,
                                    const api::QueryPlan& plan);

  // On hit, copies the cached response into *response and returns true.
  bool Lookup(const std::string& key, api::SearchResponse* response);

  void Insert(const std::string& key, const api::SearchResponse& response);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  // Responses are held behind shared_ptr so a Lookup only copies a pointer
  // while the lock is held — the (potentially large) hit vector is copied
  // into the caller's response outside the critical section.
  struct Entry {
    std::string key;
    std::shared_ptr<const api::SearchResponse> response;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  // Most-recently-used at the front; the map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace service
}  // namespace alae

#endif  // ALAE_SERVICE_RESULT_CACHE_H_
