#include "src/service/sharded_corpus.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/fault_injector.h"
#include "src/util/serialize.h"

namespace alae {
namespace service {
namespace {

constexpr uint64_t kManifestMagic = 0x414C414553525631ULL;  // "ALAESRV1"

// Generation 0 is the plain historical name; later generations carry a
// `.g<gen>` infix so a staged save never overwrites the files the current
// manifest points at.
std::string ShardFileName(const std::string& dir, size_t shard,
                          uint64_t gen = 0) {
  std::ostringstream name;
  name << dir << "/shard-" << shard;
  if (gen > 0) name << ".g" << gen;
  name << ".fm";
  return name.str();
}

// Converts a fired token into the matching refusal Status.
api::Status CancelStatus(const CancelToken& cancel, const char* what) {
  if (cancel.ExpiredWhy() == CancelToken::Why::kDeadline) {
    return api::Status::DeadlineExceeded(std::string(what) +
                                         " hit its deadline");
  }
  return api::Status::Cancelled(std::string(what) + " was cancelled");
}

std::string ManifestFileName(const std::string& dir) {
  return dir + "/corpus.manifest";
}

}  // namespace

api::StatusOr<std::unique_ptr<ShardedCorpus>> ShardedCorpus::Assemble(
    Sequence text, ShardedCorpusOptions options,
    std::vector<FmIndex> prebuilt, const CancelToken* cancel) {
  if (text.empty()) {
    return api::Status::InvalidArgument("corpus text is empty");
  }
  // Global coordinates must fit the merger's packed (text_end, query_end)
  // dedup key (and ResultCollector's, repo-wide): cap the corpus where the
  // injective key range ends instead of silently colliding beyond it.
  if (text.size() >= (size_t{1} << 32)) {
    return api::Status::InvalidArgument(
        "corpus of " + std::to_string(text.size()) +
        " chars exceeds the 2^32-1 coordinate limit");
  }
  if (options.overlap < 0) {
    return api::Status::InvalidArgument("overlap must be >= 0");
  }
  if (options.shard_size <= 2 * options.overlap) {
    return api::Status::InvalidArgument(
        "shard_size (" + std::to_string(options.shard_size) +
        ") must exceed twice the overlap (" + std::to_string(options.overlap) +
        "): each owned position needs overlap-sized context on both sides");
  }

  auto corpus = std::unique_ptr<ShardedCorpus>(new ShardedCorpus());
  corpus->text_ = std::move(text);
  corpus->options_ = options;
  corpus->epoch_ = NextServiceEpoch();

  const int64_t n = corpus->text_size();
  const int64_t step = options.shard_size - 2 * options.overlap;
  int64_t start = 0;
  for (size_t k = 0;; ++k) {
    // Building (or content-probing) a shard index is the expensive unit of
    // work here; a cancelled compaction or a shut-down owner aborts at
    // this boundary rather than finishing a corpus nobody will swap in.
    if (cancel != nullptr && cancel->Expired()) {
      return CancelStatus(*cancel, "corpus build");
    }
    Shard shard;
    shard.start = start;
    shard.owned_begin = k == 0 ? 0 : start + options.overlap;
    const bool last = start + options.shard_size >= n;
    shard.length = last ? n - start : options.shard_size;
    shard.owned_end = last ? n : start + options.shard_size - options.overlap;

    Sequence shard_text = corpus->text_.Substr(
        static_cast<size_t>(shard.start), static_cast<size_t>(shard.length));
    if (prebuilt.empty()) {
      if (FaultInjector::Hit("sharded/build/shard-index")) {
        return api::Status::ResourceExhausted(
            "injected allocation failure building shard " +
            std::to_string(k) + "'s index");
      }
      shard.registry = std::make_unique<api::AlignerRegistry>(
          std::move(shard_text), options.index);
    } else {
      if (k >= prebuilt.size()) {
        return api::Status::InvalidArgument(
            "corpus payload has too few shard indexes");
      }
      FmIndex& fm = prebuilt[k];
      if (fm.text_size() != static_cast<size_t>(shard.length) ||
          fm.sigma() != shard_text.sigma()) {
        return api::Status::InvalidArgument(
            "shard " + std::to_string(k) +
            " index does not match the manifest text (size/sigma mismatch)");
      }
      // Content probe: the *entire* reversed shard text must be findable
      // in its index (the FM-index is built over reverse(T)). A short
      // prefix probe would be vacuous — interior shards share length and
      // sigma, so a swapped or stale same-geometry shard file would load
      // and silently serve wrong hits. Full-length Find is O(shard_len)
      // extend steps, negligible against the cost of loading the index.
      Sequence rev = shard_text.Reversed();
      if (fm.Find(rev.symbols().data(), rev.size()).Empty()) {
        return api::Status::InvalidArgument(
            "shard " + std::to_string(k) +
            " index does not correspond to the manifest text");
      }
      shard.registry = std::make_unique<api::AlignerRegistry>(
          std::make_shared<const AlaeIndex>(std::move(shard_text),
                                            std::move(fm)));
    }
    corpus->shards_.push_back(std::move(shard));
    if (last) break;
    start += step;
  }
  if (!prebuilt.empty() && prebuilt.size() != corpus->shards_.size()) {
    return api::Status::InvalidArgument(
        "corpus payload has extra shard indexes");
  }
  return corpus;
}

api::StatusOr<std::unique_ptr<ShardedCorpus>> ShardedCorpus::Build(
    Sequence text, ShardedCorpusOptions options, const CancelToken* cancel) {
  return Assemble(std::move(text), options, {}, cancel);
}

api::Status ShardedCorpus::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return api::Status::InvalidArgument("cannot create corpus directory " +
                                        dir + ": " + ec.message());
  }
  // Shard files first, manifest last (staged + renamed): the manifest is
  // the cutover, so an interrupted save never publishes one that names
  // missing or half-written shard files.
  api::Status shards = SaveShardFiles(dir);
  if (!shards.ok()) return shards;
  const std::string tmp = ManifestFileName(dir) + ".tmp";
  {
    std::ofstream manifest(tmp, std::ios::binary);
    bool ok = manifest.is_open() &&
              !FaultInjector::Hit("sharded/save/manifest");
    ok = ok && PutU64(manifest, kManifestMagic);
    ok = ok && PutU64(manifest, static_cast<uint64_t>(options_.shard_size));
    ok = ok && PutU64(manifest, static_cast<uint64_t>(options_.overlap));
    ok = ok && PutU64(manifest, options_.index.use_wavelet ? 1 : 0);
    ok = ok &&
         PutU64(manifest, static_cast<uint64_t>(options_.index.sa_sample_rate));
    ok = ok && PutU64(manifest,
                      static_cast<uint64_t>(text_.alphabet().kind()));
    ok = ok && PutU64(manifest, shards_.size());
    ok = ok && PutVec(manifest, text_.symbols());
    // Flush before reporting success: a buffered tail lost at destructor
    // time (disk full, quota) must not be reported as a successful save.
    manifest.flush();
    if (!ok || !manifest.good()) {
      return api::Status::InvalidArgument("failed writing " + tmp);
    }
  }
  std::filesystem::rename(tmp, ManifestFileName(dir), ec);
  if (ec) {
    return api::Status::InvalidArgument("cannot activate " +
                                        ManifestFileName(dir) + ": " +
                                        ec.message());
  }
  return api::Status::Ok();
}

api::Status ShardedCorpus::SaveShardFiles(const std::string& dir,
                                          uint64_t gen) const {
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::ofstream out(ShardFileName(dir, k, gen), std::ios::binary);
    // The fault hook sits past the open: an injected failure leaves a
    // truncated file behind, exactly the torn write the generation scheme
    // must tolerate.
    bool shard_ok = out.is_open() && !FaultInjector::Hit("sharded/save/shard") &&
                    shards_[k].registry->index().fm().Save(out);
    out.flush();
    if (!shard_ok || !out.good()) {
      return api::Status::InvalidArgument("failed writing " +
                                          ShardFileName(dir, k, gen));
    }
  }
  return api::Status::Ok();
}

api::StatusOr<std::unique_ptr<ShardedCorpus>> ShardedCorpus::Load(
    const std::string& dir) {
  std::ifstream manifest(ManifestFileName(dir), std::ios::binary);
  uint64_t magic = 0, shard_size = 0, overlap = 0, wavelet = 0, rate = 0,
           kind = 0, num_shards = 0;
  std::vector<Symbol> symbols;
  if (!manifest.is_open() || !GetU64(manifest, &magic) ||
      magic != kManifestMagic || !GetU64(manifest, &shard_size) ||
      !GetU64(manifest, &overlap) || !GetU64(manifest, &wavelet) ||
      !GetU64(manifest, &rate) || !GetU64(manifest, &kind) ||
      !GetU64(manifest, &num_shards) || !GetVec(manifest, &symbols)) {
    return api::Status::InvalidArgument("unreadable corpus manifest in " +
                                        dir);
  }
  // Bound every manifest integer before it feeds an allocation or signed
  // arithmetic: a corrupt field must reject cleanly, not OOM or overflow.
  if (kind > 1 || rate < 1 || rate > (1ULL << 30)) {
    return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
  }
  if (shard_size < 1 || shard_size > (1ULL << 40) ||
      overlap > shard_size || num_shards < 1 ||
      num_shards > symbols.size()) {
    return api::Status::InvalidArgument("corrupt corpus manifest in " + dir);
  }
  ShardedCorpusOptions options;
  options.shard_size = static_cast<int64_t>(shard_size);
  options.overlap = static_cast<int64_t>(overlap);
  options.index.use_wavelet = wavelet != 0;
  options.index.sa_sample_rate = static_cast<int>(rate);
  Sequence text(std::move(symbols),
                Alphabet::Get(static_cast<AlphabetKind>(kind)));

  std::vector<FmIndex> prebuilt(num_shards);
  for (uint64_t k = 0; k < num_shards; ++k) {
    std::ifstream in(ShardFileName(dir, static_cast<size_t>(k)),
                     std::ios::binary);
    if (!in.is_open() || !prebuilt[static_cast<size_t>(k)].Load(in)) {
      return api::Status::InvalidArgument(
          "unreadable or corrupt shard index " +
          ShardFileName(dir, static_cast<size_t>(k)));
    }
  }
  auto corpus = Assemble(std::move(text), options, std::move(prebuilt));
  if (corpus.ok() && (*corpus)->num_shards() != num_shards) {
    return api::Status::InvalidArgument(
        "corpus manifest shard count does not match its geometry");
  }
  return corpus;
}

api::StatusOr<const api::Aligner*> ShardedCorpus::AlignerFor(
    size_t shard, std::string_view backend) const {
  std::lock_guard<std::mutex> lock(aligners_mu_);
  auto key = std::make_pair(shard, std::string(backend));
  auto it = aligners_.find(key);
  if (it == aligners_.end()) {
    api::StatusOr<std::unique_ptr<api::Aligner>> created =
        shards_[shard].registry->Create(backend);
    if (!created.ok()) return created.status();
    it = aligners_.emplace(std::move(key), std::move(created).value()).first;
  }
  return it->second.get();
}

api::Status ShardedCorpus::ValidateSpan(
    std::string_view backend, const api::SearchRequest& request) const {
  if (shards_.size() <= 1) return api::Status::Ok();
  // RequiredSpan divides by scheme.ss; guard malformed schemes here so
  // direct callers (not just the scheduler, which validates first) get a
  // Status instead of a division fault.
  if (!request.scheme.Valid()) {
    return api::Status::InvalidArgument(
        "scoring scheme " + request.scheme.ToString() + " is malformed");
  }
  const int64_t required = RequiredSpan(backend, request);
  if (required <= options_.overlap) return api::Status::Ok();
  return api::Status::InvalidArgument(
      "query of length " + std::to_string(request.query.size()) +
      " needs " + std::to_string(required) +
      " characters of shard context under this scheme/threshold, but the "
      "corpus overlap is only " +
      std::to_string(options_.overlap) +
      "; rebuild the corpus with a larger overlap or shorten the query");
}

CorpusView ShardedCorpus::Snapshot() const {
  CorpusView view;
  view.epoch = epoch_;
  view.text_size = text_size();
  view.overlap = options_.overlap;
  view.slices.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = shards_[k];
    ShardSlice slice;
    slice.text_start = shard.start;
    slice.owned_begin = shard.owned_begin;
    slice.owned_end = shard.owned_end;
    slice.registry = shard.registry.get();
    slice.content_key.push_back('B');
    AppendRaw(&slice.content_key, epoch_);
    AppendRaw(&slice.content_key, static_cast<uint64_t>(k));
    slice.aligner_for = [this, k](std::string_view backend) {
      return AlignerFor(k, backend);
    };
    view.slices.push_back(std::move(slice));
  }
  return view;
}

size_t ShardedCorpus::IndexBytes() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    AlaeIndex::Sizes sz = s.registry->index().SizeBytes();
    total += sz.bwt_bytes + sz.sample_bytes + sz.domination_bytes;
  }
  return total;
}

}  // namespace service
}  // namespace alae
