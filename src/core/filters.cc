#include "src/core/filters.h"

namespace alae {

FilterContext::FilterContext(const ScoringScheme& scheme, int64_t query_len,
                             int32_t threshold, const AlaeConfig& config)
    : threshold_(threshold),
      m_(query_len),
      sa_(scheme.sa),
      score_filter_(config.score_filter) {
  q_ = config.prefix_filter ? scheme.EffectiveQ(threshold) : 1;
  lmin_ = LengthLowerBound(scheme, threshold);
  // With length filtering off, fall back to the positivity bound (H=1),
  // which is what pure BWT-SW pruning implies.
  lmax_ = LengthUpperBound(scheme, query_len,
                           config.length_filter ? threshold : 1);
  fgoe_threshold_ = scheme.FgoeThreshold();
}

}  // namespace alae
