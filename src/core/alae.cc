#include "src/core/alae.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "src/align/dp.h"
#include "src/align/simd_dp.h"
#include "src/core/fork.h"
#include "src/core/global_filter.h"
#include "src/core/reuse.h"

namespace alae {

AlaeIndex::AlaeIndex(Sequence text, FmIndexOptions options)
    : text_(std::move(text)), fm_(text_.Reversed(), options) {}

AlaeIndex::AlaeIndex(Sequence text, FmIndex fm)
    : text_(std::move(text)), fm_(std::move(fm)) {
  // The caller owns the text<->index pairing (content can't be verified
  // cheaply here), but shape mismatches are detectable and would otherwise
  // surface as out-of-bounds text reads deep inside the engines.
  assert(fm_.text_size() == text_.size() &&
         "adopted FM-index was built over a text of a different length");
  assert(fm_.sigma() == text_.sigma() &&
         "adopted FM-index was built over a different alphabet");
}

const DominationIndex& AlaeIndex::Domination(int32_t q) const {
  std::lock_guard<std::mutex> lock(domination_mu_);
  auto it = domination_.find(q);
  if (it == domination_.end()) {
    it = domination_
             .emplace(q, std::make_unique<DominationIndex>(text_, q))
             .first;
  }
  return *it->second;
}

AlaeIndex::Sizes AlaeIndex::SizeBytes() const {
  Sizes sizes;
  FmIndex::Sizes fm_sizes = fm_.SizeBytes();
  sizes.bwt_bytes = fm_sizes.bwt_bytes;
  sizes.sample_bytes = fm_sizes.sample_bytes;
  for (const auto& [q, dom] : domination_) {
    (void)q;
    sizes.domination_bytes += dom->SizeBytes();
  }
  return sizes;
}

Alae::Alae(const AlaeIndex& index, AlaeConfig config)
    : index_(index), config_(config) {}

// ---------------------------------------------------------------------------
// AlaeQueryPlan
// ---------------------------------------------------------------------------

AlaeQueryPlan::AlaeQueryPlan(Sequence query, const ScoringScheme& scheme,
                             int32_t threshold, const AlaeConfig& config)
    : query_(std::move(query)),
      scheme_(scheme),
      threshold_(threshold),
      config_(config),
      filters_(scheme, static_cast<int64_t>(query_.size()), threshold, config),
      qgrams_(query_, filters_.q()) {
  // Enumerate the distinct q-grams of P in first-occurrence order: the
  // engine's anchoring work list, identical for every index it runs
  // against.
  const int32_t q = filters_.q();
  const int64_t m = static_cast<int64_t>(query_.size());
  if (m >= q) {
    std::unordered_map<uint64_t, int32_t> seen;
    for (int64_t j = 0; j + q <= m; ++j) {
      uint64_t key = qgrams_.KeyOf(query_.symbols().data() + j);
      seen.try_emplace(key, static_cast<int32_t>(j));
    }
    grams_.reserve(seen.size());
    for (const auto& [key, first] : seen) grams_.push_back({first, key});
    std::sort(grams_.begin(), grams_.end());

    // Key-sorted descent order with shared-prefix lengths, so each index
    // extends a shared gram prefix once (the gram set as a prefix tree).
    descent_order_.reserve(grams_.size());
    for (size_t g = 0; g < grams_.size(); ++g) {
      descent_order_.push_back({static_cast<int32_t>(g), 0});
    }
    std::sort(descent_order_.begin(), descent_order_.end(),
              [this](const GramStep& a, const GramStep& b) {
                return grams_[static_cast<size_t>(a.gram)].second <
                       grams_[static_cast<size_t>(b.gram)].second;
              });
    const Symbol* symbols = query_.symbols().data();
    for (size_t g = 1; g < descent_order_.size(); ++g) {
      const Symbol* prev =
          symbols + grams_[static_cast<size_t>(descent_order_[g - 1].gram)]
                        .first;
      const Symbol* cur =
          symbols +
          grams_[static_cast<size_t>(descent_order_[g].gram)].first;
      int32_t lcp = 0;
      while (lcp < q && prev[lcp] == cur[lcp]) ++lcp;
      descent_order_[g].lcp = lcp;
    }
  }
  profile_ = BuildDeltaProfile(scheme_, query_);
  if (config_.reuse) query_lcp_ = std::make_unique<LcpIndex>(query_);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

// The engine is written over `L` index lanes: the fused sharded execution
// (Alae::RunSharded) walks the union of the lanes' suffix tries, paying the
// fork DP once per distinct path while each lane pays only range extension
// and hit location. The single-index Run is the L == 1 special case of the
// same code.
class Alae::Engine {
 public:
  Engine(const std::vector<const AlaeIndex*>& indexes,
         const AlaeQueryPlan& plan, const CancelToken* cancel)
      : scan_(cancel),
        indexes_(indexes),
        config_(plan.config()),
        query_(plan.query()),
        scheme_(plan.scheme()),
        m_(static_cast<int64_t>(plan.query().size())),
        threshold_(plan.threshold()),
        filters_(plan.filters()),
        qgrams_(plan.qgrams()),
        grams_(plan.grams()),
        descent_(plan.descent_order()),
        profile_(plan.profile()),
        query_lcp_(plan.query_lcp()),
        reuse_group_(config_.reuse ? query_lcp_ : nullptr) {
    const size_t lanes = indexes_.size();
    n_.reserve(lanes);
    fms_.reserve(lanes);
    cursors_.reserve(lanes);
    for (const AlaeIndex* index : indexes_) {
      n_.push_back(index->text_size());
      fms_.push_back(&index->fm());
      cursors_.emplace_back(index->fm());
      texts_.push_back(index->text().symbols().data());
    }
    if (config_.domination_filter) {
      domination_.reserve(lanes);
      for (const AlaeIndex* index : indexes_) {
        domination_.push_back(&index->Domination(filters_.q()));
      }
    }
    results_.resize(lanes);
  }

  void Run(std::vector<ResultCollector>* results, AlaeRunStats* stats);

 private:
  struct Frame {
    // Live lanes only, as parallel arrays: lane ids (ascending) and their
    // nonempty SA ranges. A lane whose range empties simply drops out of
    // the child frame, so deep in the union trie — where a path typically
    // survives in one shard — per-node work degrades to the single-index
    // engine's.
    std::vector<uint32_t> lanes;
    std::vector<SaRange> ranges;
    // Lanes whose singleton chain crossed an SA sample and got converted
    // to direct text descent: pos_vals[i] is the lane-local END position
    // of this node's (unique) occurrence. Extension is one text read —
    // the next matched symbol is text[pos+1] — and hit flushing needs no
    // Locate at all. Results are identical to keeping the lane on FM
    // extends; only the work per step changes.
    std::vector<uint32_t> pos_lanes;
    std::vector<int64_t> pos_vals;
    // Expansion result, bucketed by symbol: child_lanes[c]/child_ranges[c]
    // are exactly child c's live-lane arrays, built in ONE pass over this
    // node's lanes (a singleton lane contributes one bucket push, not a
    // sigma-wide block) and swapped into the child frame when its symbol
    // comes up. Buckets are (re)initialised at expansion time, so
    // ResetFrame leaves them alone.
    std::vector<std::vector<uint32_t>> child_lanes;
    std::vector<std::vector<SaRange>> child_ranges;
    std::vector<std::vector<uint32_t>> child_pos_lanes;
    std::vector<std::vector<int64_t>> child_pos_vals;
    std::vector<DiagFork> diag;  // forks in the cheap EMR/NGR phase
    std::vector<ForkState> gap;  // forks with open gap regions
    // Lazily located text end positions, parallel to `lanes`.
    std::vector<std::vector<int64_t>> ends;
    bool located = false;
    Symbol next_child = 0;
  };

  // One (column, score) hit discovered while computing a child row.
  struct PendingHit {
    int32_t col;    // 0-based query end index
    int32_t score;
  };

  // Upper bound on per-node child fan-out (alphabet codes); DNA uses 4-5,
  // protein ~21 — 64 leaves generous headroom for custom alphabets.
  static constexpr size_t kMaxStride = 64;

  size_t lanes() const { return indexes_.size(); }
  const FmIndex& fm(size_t lane) const { return *fms_[lane]; }
  // The fused walk's rank calls all go through per-lane cursors: view and
  // dispatch are resolved once per run, not once per call — at one-core
  // L2-resident shard sizes the wrapper overhead is a measurable slice of
  // every per-lane operation.
  const FmIndex::RankCursor& cur(size_t lane) const { return cursors_[lane]; }

  void ProcessGram(size_t gram_index, const std::vector<int32_t>& anchors);
  bool AnchorSurvivesGlobalFilters(const Symbol* gram,
                                   const std::vector<int64_t>& starts,
                                   int32_t anchor);

  ForkState OpenGapRegion(int32_t anchor, int64_t row, int32_t fgoe_score);

  // A gap-fork row step, split around its kernel call so two sibling
  // forks' windows can issue as ONE paired kernel (16 int16 lanes for the
  // 1..8-cell rows that dominate deep descent). BeginGapRow builds the
  // reuse prefix and the RowSpec; the caller runs the kernel (single or
  // paired); FinishGapRow consumes the stats and runs the scalar
  // boundary/tail cells. Begin + ComputeRowAuto + Finish is exactly the
  // old single-fork step.
  struct GapStep {
    ForkState next;
    const ForkState* fork = nullptr;
    const int32_t* prof = nullptr;  // symbol profile lane at fgoe_col
    bool has_kernel = false;
    simd::RowSpec spec;
    simd::RowStats stats;
    int64_t start = 0;
    int64_t copied_cnt = 0;   // cells taken verbatim from the reuse source
    int32_t chain_gb = 0;     // raw chain state entering the kernel window
    int32_t chain_mu = 0;
  };
  void BeginGapRow(const ForkState& fork, Symbol c, int64_t row,
                   const ForkState* source, int slot, GapStep* step);
  ForkState FinishGapRow(GapStep* step, int64_t row);

  // Finds a reuse source among this row's already-updated gap forks.
  static const ForkState* FindSource(const std::vector<ForkState>& updated,
                                     int32_t anchor) {
    if (anchor < 0) return nullptr;
    for (const ForkState& f : updated) {
      if (f.anchor == anchor) return &f;
    }
    return nullptr;
  }

  void NoteCell(int64_t row, int32_t col, int32_t score) {
    if (score >= threshold_) pending_hits_.push_back({col, score});
    if (bitset_ != nullptr && score >= scheme_.sa) {
      bitset_pending_.push_back({col, score});
    }
    (void)row;
  }

  // Flushes pending hits/bitset updates for a node covering `range` whose
  // paths end at depth `depth`.
  void FlushNode(Frame* frame, int64_t depth);

  // Cooperative cancellation: ticked per trie node and per DP-row cell
  // block, so a fired token stops the walk within ~one stride of work.
  CancelScan scan_;

  const std::vector<const AlaeIndex*>& indexes_;
  std::vector<const FmIndex*> fms_;  // per-lane, hoisted out of hot loops
  std::vector<FmIndex::RankCursor> cursors_;  // parallel to fms_
  const AlaeConfig& config_;
  const Sequence& query_;
  const ScoringScheme& scheme_;
  std::vector<int64_t> n_;  // per-lane text length
  std::vector<const Symbol*> texts_;  // per-lane original (forward) text
  int64_t m_;
  int32_t threshold_;
  // Query-side compiled state, all borrowed from the (immutable) plan.
  const FilterContext& filters_;
  const QGramIndex& qgrams_;
  const std::vector<std::pair<int32_t, uint64_t>>& grams_;
  const std::vector<AlaeQueryPlan::GramStep>& descent_;
  const std::vector<int32_t>& profile_;
  std::vector<SaRange> gram_roots_;  // grams x lanes, gram-major
  const LcpIndex* query_lcp_;
  RowReuseGroup reuse_group_;
  std::vector<const DominationIndex*> domination_;  // per lane, maybe empty
  std::unique_ptr<BitsetGlobalFilter> bitset_owned_;
  BitsetGlobalFilter* bitset_ = nullptr;

  std::vector<ResultCollector> results_;  // one per lane
  DpCounters counters_;
  uint64_t anchors_considered_ = 0;
  uint64_t grams_searched_ = 0;

  std::vector<PendingHit> pending_hits_;
  std::vector<PendingHit> bitset_pending_;

  // Buffers for the one-cell-shifted diagonal view of the previous row —
  // one per in-flight GapStep, so a pending pair cannot alias.
  std::vector<int32_t> scratch_diag_m_[2];

  // Retired gap-row buffers, recycled so the DFS does not pay three heap
  // allocations per stepped row.
  std::vector<simd::DpRow> row_pool_;

  void AcquireRow(simd::DpRow* row) {
    if (!row_pool_.empty()) {
      *row = std::move(row_pool_.back());
      row_pool_.pop_back();
      row->Clear();
      row->lo = 0;
    }
  }
  void ReleaseRow(simd::DpRow&& row) { row_pool_.push_back(std::move(row)); }

  // The DFS stack as persistent slots: depth is bounded by Lmax, frames
  // are never moved or destroyed mid-run, and a slot's vectors keep their
  // capacity across pushes at the same depth — steady-state descent does
  // no frame allocation at all. dfs_stack_[0] is the current gram's root.
  std::vector<Frame> dfs_stack_;

  static void ResetFrame(Frame* frame) {
    frame->lanes.clear();
    frame->ranges.clear();
    frame->pos_lanes.clear();
    frame->pos_vals.clear();
    // child_lanes/child_ranges are cleared by the expansion pass itself.
    frame->diag.clear();
    frame->gap.clear();
    frame->ends.clear();
    frame->located = false;
    frame->next_child = 0;
  }
};

void Alae::Engine::Run(std::vector<ResultCollector>* results,
                       AlaeRunStats* stats) {
  // The quadratic bitset filter records lane-local coordinates, so it only
  // applies to single-index runs (it is a test/ablation feature; skipping
  // it never changes results, only the amount of pruned work).
  if (config_.bitset_global_filter && lanes() == 1) {
    bitset_owned_ = std::make_unique<BitsetGlobalFilter>();
    bitset_ = bitset_owned_.get();
  }
  const int32_t q = filters_.q();
  bool any_lane = false;
  for (int64_t n : n_) any_lane = any_lane || n >= q;
  if (m_ >= q && any_lane) {
    // Size the persistent DFS slots once: children sit at stack level
    // depth - q, and depth never exceeds lmax.
    const size_t max_levels = static_cast<size_t>(
        std::max<int64_t>(1, filters_.lmax() - q + 2));
    if (dfs_stack_.size() < max_levels) dfs_stack_.resize(max_levels);

    // Root anchoring: locate every distinct gram's subtree in every lane,
    // descending the gram set in key order as a prefix tree. The walk is
    // level-order: at depth k, every gram that has diverged from its
    // key-order predecessor (lcp <= k) owns a tree node and extends its
    // range by one symbol; a gram whose lcp equals k diverges now and is
    // seeded from the nearest earlier owner, with which it shares the
    // depth-k prefix. Each level is then issued as one ExtendBatch per
    // lane behind a cross-lane prefetch pass — the (gram x lane) boundary
    // blocks of a level are independent fetches, so batching overlaps the
    // misses that the old lane-major descent paid one serial chain at a
    // time. This is what keeps the fused walk's per-lane anchoring cost
    // roughly flat in the shard count.
    const size_t num_lanes = lanes();
    const size_t num_slots = descent_.size();
    gram_roots_.assign(grams_.size() * num_lanes, SaRange{});
    // Seed source per slot: the nearest earlier slot with lcp <= this
    // slot's lcp. Every slot in between shares more than lcp symbols with
    // its own predecessor, hence (transitively) the whole depth-lcp prefix.
    std::vector<int32_t> seed_from(num_slots, -1);
    for (size_t s = 1; s < num_slots; ++s) {
      int32_t s2 = static_cast<int32_t>(s) - 1;
      while (descent_[static_cast<size_t>(s2)].lcp > descent_[s].lcp) --s2;
      seed_from[s] = s2;
    }
    // Per-(lane, slot) ranges, lane-major so each lane's level batch is
    // one contiguous in-place ExtendBatch. Unseeded slots sit at the
    // empty range, which batch-extends to empty for free.
    std::vector<SaRange> anchor(num_lanes * num_slots);
    std::vector<Symbol> level_syms(num_slots, 0);
    bool anchoring_fired = false;
    for (int32_t k = 0; k < q && !anchoring_fired; ++k) {
      for (size_t s = 0; s < num_slots; ++s) {
        const AlaeQueryPlan::GramStep& step = descent_[s];
        if (step.lcp > k) continue;  // still aliasing an earlier gram's node
        if (step.lcp == k) {
          for (size_t l = 0; l < num_lanes; ++l) {
            anchor[l * num_slots + s] =
                s == 0 ? (n_[l] >= q ? fm(l).FullRange() : SaRange{})
                       : anchor[l * num_slots +
                                static_cast<size_t>(seed_from[s])];
          }
        }
        level_syms[s] = query_[static_cast<size_t>(
            grams_[static_cast<size_t>(step.gram)].first + k)];
      }
      int64_t live = 0;
      for (size_t l = 0; l < num_lanes; ++l) {
        const SaRange* lane_ranges = anchor.data() + l * num_slots;
        for (size_t s = 0; s < num_slots; ++s) {
          if (!lane_ranges[s].Empty()) {
            cur(l).PrefetchRange(lane_ranges[s]);
            ++live;
          }
        }
      }
      if (scan_.Tick(std::max<int64_t>(live, 1))) {
        anchoring_fired = true;
        break;
      }
      for (size_t l = 0; l < num_lanes; ++l) {
        SaRange* lane_ranges = anchor.data() + l * num_slots;
        cur(l).ExtendBatch(lane_ranges, level_syms.data(), lane_ranges,
                          static_cast<int>(num_slots));
      }
      counters_.fm_extends += static_cast<uint64_t>(live);
    }
    if (!anchoring_fired) {
      for (size_t s = 0; s < num_slots; ++s) {
        const size_t g = static_cast<size_t>(descent_[s].gram);
        for (size_t l = 0; l < num_lanes; ++l) {
          gram_roots_[g * num_lanes + l] = anchor[l * num_slots + s];
        }
      }
    }
    for (size_t g = 0; g < grams_.size() && !scan_.fired(); ++g) {
      ProcessGram(g, qgrams_.Occurrences(grams_[g].second));
    }
  }
  if (stats != nullptr) {
    stats->counters = counters_;
    stats->anchors_considered = anchors_considered_;
    stats->grams_searched = grams_searched_;
  }
  *results = std::move(results_);
}

bool Alae::Engine::AnchorSurvivesGlobalFilters(
    const Symbol* gram, const std::vector<int64_t>& starts, int32_t anchor) {
  if (!domination_.empty() && anchor >= 1) {
    // A fork may be skipped only when every lane's text dominates it —
    // a lane where the gram is not dominated still needs the fork's rows.
    // Skipping is a work-pruning choice, never a correctness one: the
    // dominating fork reproduces the skipped fork's hits.
    bool all_dominated = true;
    for (const DominationIndex* dom : domination_) {
      Symbol predecessor = 0;
      if (!(dom->IsDominated(gram, &predecessor) &&
            query_[static_cast<size_t>(anchor - 1)] == predecessor)) {
        all_dominated = false;
        break;
      }
    }
    if (all_dominated) {
      ++counters_.forks_skipped_domination;
      return false;
    }
  }
  if (bitset_ != nullptr && !starts.empty()) {
    bool all_set = true;
    for (int64_t t : starts) {
      if (!bitset_->Test(t, anchor)) {
        all_set = false;
        break;
      }
    }
    if (all_set) {
      ++counters_.forks_skipped_bitset;
      return false;
    }
  }
  return true;
}

void Alae::Engine::ProcessGram(size_t gram_index,
                               const std::vector<int32_t>& anchors) {
  if (anchors.empty()) return;
  const int32_t q = filters_.q();
  const size_t num_lanes = lanes();
  const Symbol* gram = query_.symbols().data() + anchors[0];
  ++grams_searched_;

  // The gram's subtree root in every lane was anchored up front (Run's
  // prefix-tree descent); lanes where the gram does not occur drop out
  // here and are never touched again for this gram.
  Frame& root = dfs_stack_[0];
  ResetFrame(&root);
  for (size_t l = 0; l < num_lanes; ++l) {
    const SaRange& range = gram_roots_[gram_index * num_lanes + l];
    if (range.Empty()) continue;
    root.lanes.push_back(static_cast<uint32_t>(l));
    root.ranges.push_back(range);
  }
  if (root.lanes.empty()) return;

  // Text start positions are needed by the bitset filter only (single
  // lane by construction; see Run).
  std::vector<int64_t> starts;
  if (bitset_ != nullptr) {
    starts = fm(0).Locate(root.ranges[0], &counters_.fm_lf_steps,
                          scan_.token());
    // p is a start in reverse(T) of (gram)^-1; the gram starts in T at
    // n - p - q.
    for (int64_t& p : starts) p = n_[0] - p - q;
  }

  std::vector<DiagFork> root_forks;
  root_forks.reserve(anchors.size());
  for (int32_t anchor : anchors) {
    ++anchors_considered_;
    if (!AnchorSurvivesGlobalFilters(gram, starts, anchor)) continue;
    root_forks.push_back({anchor, scheme_.sa * q, -1, 0});
    ++counters_.forks_opened;
  }
  // Lemma 2 reuse assignments: each fork copies from the earlier anchor
  // whose query suffix shares the longest prefix (anchors are ascending).
  if (config_.reuse && query_lcp_ != nullptr) {
    for (size_t k = 1; k < root_forks.size(); ++k) {
      int64_t best = 0;
      for (size_t j = 0; j < k; ++j) {
        int64_t l = static_cast<int64_t>(query_lcp_->Lcp(
            static_cast<size_t>(root_forks[j].anchor),
            static_cast<size_t>(root_forks[k].anchor)));
        if (l > best) {
          best = l;
          root_forks[k].src_anchor = root_forks[j].anchor;
        }
      }
      root_forks[k].shared_len = static_cast<int32_t>(best);
      if (best <= q) root_forks[k].src_anchor = -1;  // nothing beyond EMR
    }
  }
  if (root_forks.empty()) return;
  counters_.assigned +=
      static_cast<uint64_t>(q) * root_forks.size();  // EMR cells

  // Root-level bookkeeping: EMR scores can already be results when
  // q == ceil(H/sa), and in bitset mode all EMR cells carry score >= sa.
  root.diag = std::move(root_forks);
  pending_hits_.clear();
  bitset_pending_.clear();
  for (const DiagFork& fork : root.diag) {
    for (int32_t i = 1; i <= q; ++i) {
      NoteCell(i, fork.anchor + i - 1, scheme_.sa * i);
    }
  }
  // EMR hits end at depth-relative rows; FlushNode records end positions
  // for the node's full depth q, so translate per-row hits here instead.
  if (!pending_hits_.empty() || !bitset_pending_.empty()) {
    for (size_t i_lane = 0; i_lane < root.lanes.size(); ++i_lane) {
      const size_t l = root.lanes[i_lane];
      std::vector<int64_t> ends = fm(l).Locate(
          root.ranges[i_lane], &counters_.fm_lf_steps, scan_.token());
      for (int64_t& p : ends) p = n_[l] - 1 - p;  // end of the q-char path
      for (const PendingHit& hit : pending_hits_) {
        // hit.col - fork-relative row encodes the cell's own depth: the
        // cell at EMR row i ends q - i characters before the path end.
        // (col = anchor + i - 1  =>  i = col - anchor + 1; we stored col
        // absolute, so recover i from the score: score = sa * i.)
        int32_t i = hit.score / scheme_.sa;
        for (int64_t end : ends) {
          results_[l].Add(end - (q - i), hit.col, hit.score,
                          end - (q - i) - i + 1);
        }
      }
      if (bitset_ != nullptr) {
        for (const PendingHit& hit : bitset_pending_) {
          int32_t i = hit.score / scheme_.sa;
          for (int64_t end : ends) bitset_->Set(end - (q - i), hit.col);
        }
      }
    }
    pending_hits_.clear();
    bitset_pending_.clear();
  }

  // Iterative DFS over the subtree (the union of the lanes' subtrees: a
  // node is expanded while any lane's range is nonempty, and the fork DP —
  // a function of the path characters and the query only — is shared).
  // Frames live in persistent stack slots (dfs_stack_[level]); "pop" just
  // lowers the level, leaving the slot's buffers for the next push there.
  size_t level = 1;
  const int sigma = query_.sigma();
  // ExtendAll fills one entry per *index* symbol; stride for whichever
  // alphabet is widest so a query/index mismatch cannot overflow.
  size_t stride = static_cast<size_t>(sigma);
  for (size_t l = 0; l < num_lanes; ++l) {
    stride = std::max(stride, static_cast<size_t>(fm(l).sigma()));
  }
  assert(stride <= kMaxStride && "alphabet wider than the fan-out bound");

  while (level > 0) {
    // Cooperative abort: one tick per node visit (DP cells are accounted
    // inside FinishGapRow); a fired token abandons the walk mid-subtree —
    // results gathered so far stay valid, the rest never materialise.
    if (scan_.Tick()) break;
    Frame& top = dfs_stack_[level - 1];
    if (top.next_child >= sigma) {
      for (ForkState& fork : top.gap) ReleaseRow(std::move(fork.cells));
      top.gap.clear();
      --level;
      continue;
    }
    int64_t depth = static_cast<int64_t>(q) + static_cast<int64_t>(level);
    if (top.next_child == 0) {
      // First visit: the children's depth is fixed for the whole frame, so
      // the length filter prunes all of them at once, and one batched
      // ExtendAll per live lane over the two boundary blocks replaces
      // sigma single-symbol Extend calls.
      if (depth > filters_.lmax()) {
        for (ForkState& fork : top.gap) ReleaseRow(std::move(fork.cells));
        top.gap.clear();
        --level;
        continue;
      }
      if (top.child_lanes.size() < stride) {
        top.child_lanes.resize(stride);
        top.child_ranges.resize(stride);
        top.child_pos_lanes.resize(stride);
        top.child_pos_vals.resize(stride);
      }
      for (size_t c = 0; c < stride; ++c) {
        top.child_lanes[c].clear();
        top.child_ranges[c].clear();
        top.child_pos_lanes[c].clear();
        top.child_pos_vals[c].clear();
      }
      SaRange block[kMaxStride];
      if (top.lanes.size() > 1) {
        // Cross-lane prefetch: each live lane is about to rank its
        // boundary block(s); issuing every lane's fetch up front lets the
        // misses overlap instead of serialising lane by lane. Singleton
        // ranges only touch the block holding their one row.
        for (size_t i = 0; i < top.lanes.size(); ++i) {
          const SaRange& r = top.ranges[i];
          if (r.Count() == 1) {
            cur(top.lanes[i]).PrefetchRow(r.lo);
          } else {
            cur(top.lanes[i]).PrefetchRange(r);
          }
        }
      }
      for (size_t i = 0; i < top.lanes.size(); ++i) {
        const SaRange& r = top.ranges[i];
        const uint32_t lane = top.lanes[i];
        const FmIndex::RankCursor& cursor = cur(lane);
        if (r.Count() == 1) {
          // Deep nodes are mostly singleton chains; one access + one rank
          // (and one bucket push) replaces the two all-symbol boundary
          // ranks and the sigma-wide child scan.
          Symbol only = 0;
          SaRange child;
          if (cursor.ExtendSingleton(r.lo, &only, &child)) {
            // The chain visits consecutive text positions, so it crosses
            // an SA sample within sample_rate steps; the moment the child
            // row carries one, the lane's position is known for free and
            // the rest of the chain becomes direct text reads.
            const int64_t p = cursor.SampledPosition(child.lo);
            if (p >= 0) {
              top.child_pos_lanes[only].push_back(lane);
              top.child_pos_vals[only].push_back(n_[lane] - 1 - p);
            } else {
              top.child_lanes[only].push_back(lane);
              top.child_ranges[only].push_back(child);
            }
          }
          ++counters_.fm_extends;
        } else {
          cursor.ExtendAll(r, block);
          const size_t index_sigma = static_cast<size_t>(cursor.sigma());
          for (size_t c = 0; c < index_sigma; ++c) {
            if (block[c].Empty()) continue;
            if (block[c].Count() == 1) {
              const int64_t p = cursor.SampledPosition(block[c].lo);
              if (p >= 0) {
                top.child_pos_lanes[c].push_back(lane);
                top.child_pos_vals[c].push_back(n_[lane] - 1 - p);
                continue;
              }
            }
            top.child_lanes[c].push_back(lane);
            top.child_ranges[c].push_back(block[c]);
          }
          ++counters_.fm_extend_alls;
        }
      }
      // Converted lanes: one sequential text read each — the next matched
      // symbol is the one after the current occurrence's end — and the
      // lane dies when the match runs off the text.
      for (size_t i = 0; i < top.pos_lanes.size(); ++i) {
        const uint32_t lane = top.pos_lanes[i];
        const int64_t nt = top.pos_vals[i] + 1;
        if (nt >= n_[lane]) continue;
        const Symbol sym = texts_[lane][nt];
        top.child_pos_lanes[sym].push_back(lane);
        top.child_pos_vals[sym].push_back(nt);
        ++counters_.fm_text_steps;
      }
    }
    Symbol c = top.next_child++;
    // The expansion pass bucketed child c's live lanes already; an empty
    // bucket means the symbol extends nowhere and the candidate dies
    // unpriced.
    if (top.child_lanes[c].empty() && top.child_pos_lanes[c].empty()) continue;

    // Evolve every fork by one row. Gap forks go first (their reuse
    // sources are earlier gap forks), then the cheap diagonal forks, whose
    // FGOE transitions append new gap regions; within each category anchor
    // order guarantees reuse sources are updated before dependants.
    pending_hits_.clear();
    bitset_pending_.clear();
    reuse_group_.NewRow();
    Frame& child = dfs_stack_[level];
    ResetFrame(&child);
    child.lanes.swap(top.child_lanes[c]);
    child.ranges.swap(top.child_ranges[c]);
    child.pos_lanes.swap(top.child_pos_lanes[c]);
    child.pos_vals.swap(top.child_pos_vals[c]);
    child.diag.reserve(top.diag.size());
    child.gap.reserve(top.gap.size());
    // Step forks two at a time: both pending kernel windows issue as one
    // ComputeRowPair call (one 16-lane int16 kernel when both rows are
    // narrow). Finishing in fork order keeps child.gap and the hit stream
    // identical to the sequential step. The only ordering hazard is Lemma-3
    // reuse — a fork whose source is still pending would miss its prefix
    // copy — so such a fork forces a flush first.
    {
      GapStep steps[2];
      size_t npend = 0;
      auto flush = [&]() {
        if (npend == 2 && steps[0].has_kernel && steps[1].has_kernel) {
          simd::ComputeRowPair(steps[0].spec, steps[1].spec, &steps[0].stats,
                               &steps[1].stats);
        } else {
          for (size_t j = 0; j < npend; ++j) {
            if (steps[j].has_kernel) {
              simd::ComputeRowAuto(steps[j].spec, &steps[j].stats);
            }
          }
        }
        for (size_t j = 0; j < npend; ++j) {
          ForkState next = FinishGapRow(&steps[j], depth);
          if (!next.cells.Empty()) {
            child.gap.push_back(std::move(next));
          } else {
            ReleaseRow(std::move(next.cells));
          }
        }
        npend = 0;
      };
      for (const ForkState& fork : top.gap) {
        if (npend > 0 && fork.reuse_src_anchor >= 0) {
          bool src_pending = false;
          for (size_t j = 0; j < npend; ++j) {
            if (steps[j].next.anchor == fork.reuse_src_anchor) {
              src_pending = true;
            }
          }
          if (src_pending) flush();
        }
        BeginGapRow(fork, c, depth,
                    FindSource(child.gap, fork.reuse_src_anchor),
                    static_cast<int>(npend), &steps[npend]);
        if (++npend == 2) flush();
      }
      flush();
    }
    const int32_t fgoe_threshold = filters_.fgoe_threshold();
    for (const DiagFork& fork : top.diag) {
      int64_t col = static_cast<int64_t>(fork.anchor) + depth - 1;  // 0-based
      if (col >= m_) continue;  // Diagonal ran off the query.
      // Lemma 2: within the shared prefix, this fork's diagonal score
      // equals the already-updated source fork's (anchor order guarantees
      // the source was stepped first). Copy instead of computing.
      int32_t score;
      const DiagFork* src = nullptr;
      if (fork.src_anchor >= 0 && depth <= fork.shared_len) {
        auto it = std::lower_bound(
            child.diag.begin(), child.diag.end(), fork.src_anchor,
            [](const DiagFork& f, int32_t a) { return f.anchor < a; });
        if (it != child.diag.end() && it->anchor == fork.src_anchor) {
          src = &*it;
        }
      }
      if (src != nullptr) {
        score = src->score;
        ++counters_.reused;
      } else {
        score =
            fork.score + scheme_.Delta(c, query_[static_cast<size_t>(col)]);
        ++counters_.cells_cost1;  // Simplified recurrence, Eq. 3.
        if (score <= filters_.Bound(depth, col)) continue;
      }
      NoteCell(depth, static_cast<int32_t>(col), score);
      if (score > fgoe_threshold) {
        child.gap.push_back(OpenGapRegion(fork.anchor, depth, score));
      } else {
        child.diag.push_back(
            {fork.anchor, score, fork.src_anchor, fork.shared_len});
      }
    }
    ++counters_.trie_nodes_visited;
    // A child with no live forks never becomes the top; its slot (and any
    // buffers it grew) is simply reused by the next push at this level.
    if (child.diag.empty() && child.gap.empty()) continue;

    FlushNode(&child, depth);
    ++level;
  }
}

void Alae::Engine::FlushNode(Frame* frame, int64_t depth) {
  if (pending_hits_.empty() && bitset_pending_.empty()) return;
  if (!frame->located) {
    frame->ends.resize(frame->lanes.size());
    for (size_t i = 0; i < frame->lanes.size(); ++i) {
      frame->ends[i] = fm(frame->lanes[i])
                           .Locate(frame->ranges[i], &counters_.fm_lf_steps,
                                   scan_.token());
      for (int64_t& p : frame->ends[i]) p = n_[frame->lanes[i]] - 1 - p;
    }
    frame->located = true;
  }
  for (size_t i = 0; i < frame->lanes.size(); ++i) {
    ResultCollector& out = results_[frame->lanes[i]];
    for (const PendingHit& hit : pending_hits_) {
      for (int64_t end : frame->ends[i]) {
        out.Add(end, hit.col, hit.score, end - depth + 1);
      }
    }
  }
  // Converted lanes carry their end position outright — no Locate walk.
  for (size_t i = 0; i < frame->pos_lanes.size(); ++i) {
    ResultCollector& out = results_[frame->pos_lanes[i]];
    const int64_t end = frame->pos_vals[i];
    for (const PendingHit& hit : pending_hits_) {
      out.Add(end, hit.col, hit.score, end - depth + 1);
    }
  }
  if (bitset_ != nullptr) {
    for (const PendingHit& hit : bitset_pending_) {
      if (!frame->ends.empty()) {
        for (int64_t end : frame->ends[0]) bitset_->Set(end, hit.col);
      }
      for (int64_t end : frame->pos_vals) bitset_->Set(end, hit.col);
    }
  }
  pending_hits_.clear();
  bitset_pending_.clear();
}

ForkState Alae::Engine::OpenGapRegion(int32_t anchor, int64_t row,
                                      int32_t fgoe_score) {
  ForkState next;
  AcquireRow(&next.cells);
  next.anchor = anchor;
  next.phase = ForkState::kGap;
  next.fgoe_row = static_cast<int32_t>(row);
  next.fgoe_col = static_cast<int32_t>(anchor + row - 1);

  RowReuseGroup::Assignment assignment;
  if (config_.reuse) {
    assignment = reuse_group_.Register(next.anchor, next.fgoe_col);
    next.reuse_src_anchor = assignment.source_anchor;
    next.reuse_len = assignment.shared_len;
  }

  // Seed row: the FGOE cell plus its rightward Gb extension entries
  // (paper §3.1.3: from the FGOE we calculate the (l, pi_p + l) extension).
  next.cells.PushCell(fgoe_score, kNegInf, kNegInf);
  int32_t gb = kNegInf;
  const int32_t row_bound = filters_.RowBound(row);
  const int64_t col_cut = filters_.ColCut(row_bound);
  for (int64_t d = 1;; ++d) {
    int64_t col = next.fgoe_col + d;
    if (col >= m_) break;
    gb = std::max(gb + scheme_.ss,
                  next.cells.m[static_cast<size_t>(d - 1)] + scheme_.sg +
                      scheme_.ss);
    ++counters_.cells_cost2;  // Boundary cell: two live inputs.
    int32_t bound = col <= col_cut ? row_bound : filters_.Bound(row, col);
    if (gb <= bound) break;
    next.cells.PushCell(gb, kNegInf, gb);
    NoteCell(row, static_cast<int32_t>(col), gb);
  }
  return next;
}

void Alae::Engine::BeginGapRow(const ForkState& fork, Symbol c, int64_t row,
                               const ForkState* source, int slot,
                               GapStep* step) {
  step->fork = &fork;
  step->has_kernel = false;
  step->copied_cnt = 0;
  // The kernels merge into RowStats (the scalar tail extends what a vector
  // prefix recorded), so a reused pairing slot must start from a clean one —
  // a stale alive window would make FinishGapRow read past this row's cells.
  step->stats = simd::RowStats();
  ForkState& next = step->next;
  next = ForkState();
  AcquireRow(&next.cells);
  next.anchor = fork.anchor;
  next.fgoe_col = fork.fgoe_col;
  next.fgoe_row = fork.fgoe_row;
  next.reuse_src_anchor = fork.reuse_src_anchor;
  next.reuse_len = fork.reuse_len;

  const int32_t ss = scheme_.ss;
  const int32_t open_ext = scheme_.sg + scheme_.ss;
  const int64_t prev_lo = fork.cells.lo;
  const int64_t prev_hi = fork.cells.hi();
  const int32_t row_bound = filters_.RowBound(row);
  const int64_t col_base = filters_.ColTermBase();
  const int32_t col_step = filters_.ColTermStep();

  // Copyable prefix from the reuse source: offsets below the shared query
  // length evolve identically (Lemma 3), so take them verbatim — three
  // SoA block copies.
  bool copied = false;
  if (source != nullptr && config_.reuse) {
    int64_t src_lo = source->cells.lo;
    int64_t hi = std::min(source->cells.hi(), fork.reuse_len - 1);
    if (src_lo <= hi) {
      const int64_t cnt = hi - src_lo + 1;
      next.cells.lo = src_lo;
      next.cells.m.assign(source->cells.m.begin(),
                          source->cells.m.begin() + cnt);
      next.cells.ga.assign(source->cells.ga.begin(),
                           source->cells.ga.begin() + cnt);
      next.cells.gb.assign(source->cells.gb.begin(),
                           source->cells.gb.begin() + cnt);
      counters_.reused += static_cast<uint64_t>(cnt);
      // Hits inside the copied prefix are noted by FinishGapRow, so the
      // hit stream stays per-fork contiguous under pairing.
      step->copied_cnt = cnt;
      copied = true;
    }
  }

  // Candidate window: offsets with previous-row inputs run through
  // prev_hi + 1. The kernel sweeps the fully-in-range part [start, prev_hi]
  // with direct pointers into the previous row's lanes (only the diagonal
  // view can need a one-cell shift copy); the prev_hi + 1 cell, whose only
  // previous-row input is the diagonal, is folded into the scalar tail.
  int64_t start =
      copied ? next.cells.lo + next.cells.Size() : prev_lo;
  if (!copied) next.cells.lo = start;
  const int64_t max_d = m_ - 1 - next.fgoe_col;  // last offset inside P
  const int64_t kend = std::min(prev_hi, max_d);

  int32_t chain_gb = kNegInf;  // raw chain state of cell (start - 1)
  int32_t chain_mu = kNegInf;
  if (!next.cells.Empty()) {
    chain_gb = next.cells.gb.back();
    chain_mu = next.cells.m.back();
  }

  const int32_t* prof = profile_.data() +
                        static_cast<size_t>(c) * static_cast<size_t>(m_) +
                        static_cast<size_t>(next.fgoe_col);
  step->prof = prof;
  const int64_t len = kend - start + 1;
  if (len > 0) {
    simd::RowSpec& spec = step->spec;
    spec.prev_m = fork.cells.m.data() + (start - prev_lo);
    spec.prev_ga = fork.cells.ga.data() + (start - prev_lo);
    if (start - 1 >= prev_lo) {
      spec.prev_diag_m = fork.cells.m.data() + (start - 1 - prev_lo);
    } else {
      // start == prev_lo: shift the M lane right by one, dead on the left.
      std::vector<int32_t>& scratch = scratch_diag_m_[slot];
      scratch.resize(static_cast<size_t>(len));
      scratch[0] = kNegInf;
      std::copy(fork.cells.m.begin(), fork.cells.m.begin() + (len - 1),
                scratch.begin() + 1);
      spec.prev_diag_m = scratch.data();
    }
    spec.delta = prof + start;
    const size_t base = next.cells.m.size();
    next.cells.m.resize(base + static_cast<size_t>(len));
    next.cells.ga.resize(base + static_cast<size_t>(len));
    next.cells.gb.resize(base + static_cast<size_t>(len));
    spec.out_m = next.cells.m.data() + base;
    spec.out_ga = next.cells.ga.data() + base;
    spec.out_gb = next.cells.gb.data() + base;
    spec.len = len;
    spec.gap_extend = ss;
    spec.gap_open_extend = open_ext;
    spec.gb_init = std::max(chain_gb + ss, chain_mu + open_ext);
    spec.bound_base = row_bound;
    spec.bound0 = static_cast<int32_t>(std::max<int64_t>(
        col_base + (next.fgoe_col + start) * col_step, kNegInf));
    spec.bound_step = col_step;
    step->has_kernel = true;
  }
  step->start = start;
  step->chain_gb = chain_gb;
  step->chain_mu = chain_mu;
}

ForkState Alae::Engine::FinishGapRow(GapStep* step, int64_t row) {
  const ForkState& fork = *step->fork;
  ForkState& next = step->next;
  const int32_t ss = scheme_.ss;
  const int32_t open_ext = scheme_.sg + scheme_.ss;
  const int64_t prev_lo = fork.cells.lo;
  const int64_t prev_hi = fork.cells.hi();
  const int32_t row_bound = filters_.RowBound(row);
  const int64_t col_base = filters_.ColTermBase();
  const int32_t col_step = filters_.ColTermStep();
  // Bound(row, col) in the kernel's affine decomposition, for the scalar
  // cells computed outside the kernel call.
  const auto bound_at = [row_bound, col_base, col_step](int64_t col) {
    return static_cast<int32_t>(std::max<int64_t>(
        row_bound, std::max<int64_t>(col_base + col * col_step, kNegInf)));
  };
  bool any_alive = false;

  if (step->copied_cnt > 0) {
    const int64_t lo = next.cells.lo;
    for (int64_t d = lo; d < lo + step->copied_cnt; ++d) {
      int32_t mv = next.cells.m[static_cast<size_t>(d - lo)];
      int64_t col = next.fgoe_col + d;
      if (mv != kNegInf && col < m_) {
        any_alive = true;
        NoteCell(row, static_cast<int32_t>(col), mv);
      }
    }
  }

  const int64_t start = step->start;
  const int64_t hi_candidate = prev_hi + 1;
  const int64_t max_d = m_ - 1 - next.fgoe_col;  // last offset inside P
  const int32_t* prof = step->prof;
  int32_t chain_gb = step->chain_gb;
  int32_t chain_mu = step->chain_mu;
  if (step->has_kernel) {
    const simd::RowSpec& spec = step->spec;
    const simd::RowStats& stats = step->stats;
    const int64_t len = spec.len;
    scan_.Tick(len);  // account the kernel's cells toward the cancel stride
    if (start == 0) {
      ++counters_.cells_cost2;  // Left boundary: no Gb/diag inputs.
      counters_.cells_cost3 += static_cast<uint64_t>(len - 1);
    } else {
      counters_.cells_cost3 += static_cast<uint64_t>(len);
    }
    if (stats.first_alive >= 0) {
      any_alive = true;
      for (int64_t k = stats.first_alive; k <= stats.last_alive; ++k) {
        int32_t mv = spec.out_m[k];
        if (mv != kNegInf) {
          NoteCell(row, static_cast<int32_t>(next.fgoe_col + start + k), mv);
        }
      }
    }
    chain_gb = stats.gb_last;
    chain_mu = stats.mu_last;
  }

  // The prev_hi + 1 candidate: its previous-row input is the diagonal only.
  if (start <= hi_candidate && hi_candidate <= max_d) {
    const int64_t d = hi_candidate;
    const int64_t col = next.fgoe_col + d;
    int32_t gb = std::max(chain_gb + ss, chain_mu + open_ext);
    int32_t diag = (d - 1 >= prev_lo && d - 1 <= prev_hi)
                       ? fork.cells.m[static_cast<size_t>(d - 1 - prev_lo)] +
                             prof[col - next.fgoe_col]
                       : kNegInf;
    int32_t mu = std::max(diag, gb);
    int32_t bound = bound_at(col);
    ++counters_.cells_cost3;
    if (mu > bound) {
      NoteCell(row, static_cast<int32_t>(col), mu);
      any_alive = true;
      next.cells.PushCell(mu, kNegInf, std::max(gb, kNegInf));
    } else {
      next.cells.PushCell(kNegInf, kNegInf, std::max(gb, kNegInf));
    }
    chain_gb = gb;
    chain_mu = mu;
  }

  // Gb spill beyond the candidate window: a pure horizontal chain with no
  // previous-row inputs, stepped scalar. Bounds only grow along the row, so
  // the chain is finished the moment it cannot beat the next cell's bound.
  const int64_t tail_d = std::max(start, hi_candidate + 1);
  for (int64_t d = tail_d;; ++d) {
    int64_t col = next.fgoe_col + d;
    if (col >= m_) break;
    int32_t gb = std::max(chain_gb + ss, chain_mu + open_ext);
    if (gb <= bound_at(col)) break;
    ++counters_.cells_cost3;
    NoteCell(row, static_cast<int32_t>(col), gb);
    any_alive = true;
    next.cells.PushCell(gb, kNegInf, gb);
    chain_gb = gb;
    chain_mu = gb;
  }

  if (!any_alive) {
    next.cells.Clear();
    return std::move(step->next);
  }
  // Trim dead edges in the M lane. A dead cell's soft Ga chain is bounded
  // by that cell's prune bound, and bounds are non-decreasing across rows
  // and columns, so an edge cell with a dead M can never influence a later
  // surviving cell — dropping it is exact.
  int64_t size = next.cells.Size();
  int64_t front = 0;
  while (front < size && next.cells.m[static_cast<size_t>(front)] == kNegInf) {
    ++front;
  }
  int64_t back = size;
  while (back > front &&
         next.cells.m[static_cast<size_t>(back - 1)] == kNegInf) {
    --back;
  }
  if (back <= front) {
    next.cells.Clear();
    return std::move(step->next);
  }
  auto trim = [front, back](std::vector<int32_t>* lane) {
    lane->erase(lane->begin() + static_cast<ptrdiff_t>(back), lane->end());
    lane->erase(lane->begin(), lane->begin() + static_cast<ptrdiff_t>(front));
  };
  trim(&next.cells.m);
  trim(&next.cells.ga);
  trim(&next.cells.gb);
  next.cells.lo += front;
  return std::move(step->next);
}

ResultCollector Alae::Run(const Sequence& query, const ScoringScheme& scheme,
                          int32_t threshold, AlaeRunStats* stats,
                          const CancelToken* cancel) const {
  AlaeQueryPlan plan(query, scheme, threshold, config_);
  return Run(plan, stats, cancel);
}

ResultCollector Alae::Run(const AlaeQueryPlan& plan, AlaeRunStats* stats,
                          const CancelToken* cancel) const {
  std::vector<const AlaeIndex*> indexes{&index_};
  std::vector<ResultCollector> results;
  Engine engine(indexes, plan, cancel);
  engine.Run(&results, stats);
  return std::move(results[0]);
}

void Alae::RunSharded(const AlaeQueryPlan& plan,
                      const std::vector<const AlaeIndex*>& indexes,
                      std::vector<ResultCollector>* results,
                      AlaeRunStats* stats, const CancelToken* cancel) {
  results->clear();
  if (indexes.empty()) return;
  Engine engine(indexes, plan, cancel);
  engine.Run(results, stats);
}

}  // namespace alae
