#ifndef ALAE_CORE_CONFIG_H_
#define ALAE_CORE_CONFIG_H_

#include <cstdint>

#include "src/index/fm_index.h"

namespace alae {

// Feature toggles for the ALAE engine. Every filter can be disabled
// independently without affecting exactness (filters only prune provably
// meaningless work), which is what the ablation bench and the exactness
// property tests exercise.
struct AlaeConfig {
  // Theorem 1: row range [ceil(H/sa), Lmax]. When disabled, Lmax falls back
  // to the positivity bound (H=1), exactly BWT-SW's implicit cap.
  bool length_filter = true;

  // Theorem 2: prune entries that provably cannot reach H. When disabled
  // only the positivity rule (score > 0) prunes.
  bool score_filter = true;

  // Theorem 3 / Eq. 2: anchor forks at q-prefix matches. When disabled the
  // engine uses q = 1 (a fork at every single-character match), which keeps
  // the fork decomposition but removes the prefix-filtering power.
  bool prefix_filter = true;

  // §3.2.2: skip forks whose q-gram is q-dominated by the preceding query
  // column's q-gram.
  bool domination_filter = true;

  // §3.2.1 / Theorem 4: online boolean matrix G. Quadratic bookkeeping —
  // intended for small inputs (tests, ablation), not production runs.
  bool bitset_global_filter = false;

  // §4: copy gap-region scores between forks with a common query prefix.
  bool reuse = true;
};

}  // namespace alae

#endif  // ALAE_CORE_CONFIG_H_
