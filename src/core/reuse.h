#ifndef ALAE_CORE_REUSE_H_
#define ALAE_CORE_REUSE_H_

#include <cstdint>

#include "src/index/lcp.h"

namespace alae {

// Assigns reuse sources to forks entering the GAP phase (paper §4).
//
// Lemma 3's precondition is that two forks' FGOEs lie in the same row of
// the same matrix; by Theorem 5 their FGOE scores are then equal
// (consecutive diagonal scores at a fixed row differ by multiples of
// sa - sb > sa while the first-crossing window has width sa, so both first
// crossings land on the same value). "Same matrix, same row" means both
// FGOEs are discovered during the same child-row computation of the trie
// DFS, so group formation is strictly row-local: the first fork to open a
// gap region in a row becomes the leader, and each later fork in that row
// copies columns while its offset stays below the LCP of the two
// FGOE-column suffixes of P — the black areas of Figs. 4/5. The assignment
// itself persists in the fork state and is consumed on every subsequent
// row until the shared prefix is exhausted or the leader dies.
class RowReuseGroup {
 public:
  explicit RowReuseGroup(const LcpIndex* query_lcp) : lcp_(query_lcp) {}

  struct Assignment {
    int32_t source_anchor = -1;
    int64_t shared_len = 0;
  };

  // Resets the group; call at the start of every child-row computation.
  void NewRow() { leader_anchor_ = -1; }

  // Registers a fork whose FGOE was just found at query column fgoe_col;
  // returns the reuse assignment against this row's leader, if any.
  Assignment Register(int32_t anchor, int32_t fgoe_col);

 private:
  const LcpIndex* lcp_;
  int32_t leader_anchor_ = -1;
  int32_t leader_fgoe_col_ = 0;
};

}  // namespace alae

#endif  // ALAE_CORE_REUSE_H_
