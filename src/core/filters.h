#ifndef ALAE_CORE_FILTERS_H_
#define ALAE_CORE_FILTERS_H_

#include <algorithm>
#include <cstdint>

#include "src/align/scoring.h"
#include "src/align/simd_dp.h"
#include "src/core/config.h"

namespace alae {

// Precomputed filter bounds for one (query, scheme, threshold) run:
// the length filter's row range (Theorem 1), the q-prefix length (Eq. 2 with
// the effective-q exactness cap), the FGOE threshold, and the score filter's
// cell bound (Theorem 2).
class FilterContext {
 public:
  FilterContext() = default;
  FilterContext(const ScoringScheme& scheme, int64_t query_len,
                int32_t threshold, const AlaeConfig& config);

  int32_t q() const { return q_; }
  int64_t lmin() const { return lmin_; }
  int64_t lmax() const { return lmax_; }
  int32_t fgoe_threshold() const { return fgoe_threshold_; }
  int32_t threshold() const { return threshold_; }

  // Theorem 2 bound for row i (1-based) and query column j0 (0-based): the
  // cell is meaningless when its score is <= this value. The occurrence
  // term uses Lmax in place of min(Lmax, n - pi_t), which is conservative
  // (never prunes more than the paper's bound).
  int32_t Bound(int64_t i, int64_t j0) const {
    if (!score_filter_) return 0;
    int64_t col_term =
        threshold_ - (m_ - 1 - j0) * sa_ - 1;        // j'' can reach m
    int64_t row_term = threshold_ - (lmax_ - i) * sa_ - 1;
    int64_t b = std::max<int64_t>({0, col_term, row_term});
    return static_cast<int32_t>(b);
  }

  // Row-constant part of the bound (everything except the column term),
  // for hoisting out of per-cell loops.
  int32_t RowBound(int64_t i) const {
    if (!score_filter_) return 0;
    int64_t row_term = threshold_ - (lmax_ - i) * sa_ - 1;
    return static_cast<int32_t>(std::max<int64_t>(0, row_term));
  }

  // Largest 0-based column whose Bound(i, j0) still equals RowBound(i):
  // beyond it the column term dominates and Bound must be consulted.
  int64_t ColCut(int32_t row_bound) const {
    if (!score_filter_) return m_;
    // col_term <= row_bound  <=>  j0 <= m-1 - (H - 1 - row_bound)/sa.
    return m_ - 1 - (threshold_ - 1 - row_bound + sa_ - 1) / sa_;
  }

  // Affine per-column decomposition of the Theorem 2 bound, in the form the
  // SIMD row kernel generates in-register:
  //   Bound(i, j0) == max(RowBound(i), ColTermBase() + j0 * ColTermStep()),
  // with ColTermStep() >= 0 so the bound is non-decreasing along the row
  // (the soundness precondition of the kernel's soft clipping). With the
  // score filter off the column term collapses to -inf and the bound is the
  // positivity rule alone.
  int32_t ColTermBase() const {
    if (!score_filter_) return kNegInf;
    int64_t base = static_cast<int64_t>(threshold_) - 1 - (m_ - 1) * sa_;
    return static_cast<int32_t>(std::max<int64_t>(base, kNegInf));
  }
  int32_t ColTermStep() const { return score_filter_ ? sa_ : 0; }

 private:
  int32_t q_ = 1;
  int64_t lmin_ = 1;
  int64_t lmax_ = 0;
  int32_t fgoe_threshold_ = 0;
  int32_t threshold_ = 1;
  int64_t m_ = 0;
  int32_t sa_ = 1;
  bool score_filter_ = true;
};

}  // namespace alae

#endif  // ALAE_CORE_FILTERS_H_
