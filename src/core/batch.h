#ifndef ALAE_CORE_BATCH_H_
#define ALAE_CORE_BATCH_H_

#include <cstdint>
#include <vector>

#include "src/core/alae.h"

namespace alae {

// Parallel multi-query driver: the paper's workloads run 100 queries per
// text (§7), and ALAE queries against one shared immutable AlaeIndex are
// embarrassingly parallel. Each worker owns its engine run; results come
// back per query, in input order.
struct BatchStats {
  double wall_seconds = 0;
  uint64_t total_hits = 0;
  DpCounters counters;  // summed over queries
};

class BatchRunner {
 public:
  BatchRunner(const AlaeIndex& index, AlaeConfig config = {})
      : index_(index), config_(config) {}

  // Runs every query at the given threshold using `threads` workers
  // (0 = hardware concurrency). Returns one collector per query.
  std::vector<ResultCollector> Run(const std::vector<Sequence>& queries,
                                   const ScoringScheme& scheme,
                                   int32_t threshold, int threads = 0,
                                   BatchStats* stats = nullptr) const;

 private:
  const AlaeIndex& index_;
  AlaeConfig config_;
};

}  // namespace alae

#endif  // ALAE_CORE_BATCH_H_
