#ifndef ALAE_CORE_FORK_H_
#define ALAE_CORE_FORK_H_

#include <cstdint>

#include "src/align/simd_dp.h"

namespace alae {

// A fork in its DIAG phase (EMR/NGR, paper Fig. 2): anchored where the
// path's q-prefix exactly matches P at query index `anchor` (0-based), it
// carries only the running diagonal score — EMR rows hold the assigned
// sa*i and NGR rows evolve by the simplified Eq. 3. Deliberately small:
// almost every live fork is in this phase, and the DFS copies fork vectors
// at every trie node.
//
// src_anchor/shared_len implement Lemma 2 (Fig 4): when the query suffixes
// at two anchors of the same q-gram share a prefix of length L, their
// diagonal scores are identical for rows <= L, so the later fork copies
// the earlier fork's freshly computed score instead of evaluating Eq. 3.
struct DiagFork {
  int32_t anchor = 0;
  int32_t score = 0;
  int32_t src_anchor = -1;  // earlier anchor sharing the longest prefix
  int32_t shared_len = 0;   // prefix length (from the anchor, >= q)
};

// State of one fork after its FGOE (the GAP phase): a full affine row over
// a column interval, rebuilt at every trie depth by the shared SIMD row
// kernel (src/align/simd_dp.h).
//
// A fork starts as a DiagFork and permanently switches to this state at
// its FGOE. Offsets are relative to fgoe_col: the row covers query columns
// [fgoe_col + cells.lo, fgoe_col + cells.lo + cells.Size()) in the SoA
// lanes of `cells`. Interior dead cells hold kNegInf in the M lane; the
// Ga/Gb lanes carry the kernel's soft-clipped gap chains.
struct ForkState {
  enum Phase : uint8_t { kDiag, kGap };

  int32_t anchor = 0;       // 0-based query index of the q-gram match
  Phase phase = kGap;
  int32_t fgoe_col = 0;     // 0-based query index of the FGOE cell
  int32_t fgoe_row = 0;     // 1-based trie depth of the FGOE
  simd::DpRow cells;        // offsets relative to fgoe_col, lo >= 0

  // Reuse (§4): anchor of the group leader sharing this fork's FGOE row,
  // and the LCP of the two FGOE-column suffixes of P. -1 = no reuse.
  int32_t reuse_src_anchor = -1;
  int64_t reuse_len = 0;
};

}  // namespace alae

#endif  // ALAE_CORE_FORK_H_
