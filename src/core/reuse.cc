#include "src/core/reuse.h"

namespace alae {

RowReuseGroup::Assignment RowReuseGroup::Register(int32_t anchor,
                                                  int32_t fgoe_col) {
  Assignment out;
  if (leader_anchor_ < 0) {
    leader_anchor_ = anchor;
    leader_fgoe_col_ = fgoe_col;
    return out;
  }
  if (lcp_ == nullptr || leader_anchor_ == anchor) return out;
  out.source_anchor = leader_anchor_;
  out.shared_len =
      static_cast<int64_t>(lcp_->Lcp(static_cast<size_t>(leader_fgoe_col_),
                                     static_cast<size_t>(fgoe_col)));
  return out;
}

}  // namespace alae
