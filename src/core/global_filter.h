#ifndef ALAE_CORE_GLOBAL_FILTER_H_
#define ALAE_CORE_GLOBAL_FILTER_H_

#include <cstdint>
#include <unordered_set>

namespace alae {

// The online boolean matrix G of §3.2.1 (Theorem 4): G[(t, j)] is set once
// some matrix produced an alignment ending at text position t and query
// column j with score >= sa. A fork anchored at query column j for a trie
// subtree whose q-gram occurs at text starts {t_1..t_k} can be skipped when
// every (t_h, j) bit is already set — the prior matrices subsume every
// extension the fork would compute.
//
// The paper notes this needs n*m bits; we store it sparsely. It is the
// small-input / ablation counterpart of the domination index, which
// achieves the same effect with an O(#distinct q-grams) structure.
class BitsetGlobalFilter {
 public:
  void Set(int64_t text_pos, int64_t query_col) {
    bits_.insert(Key(text_pos, query_col));
  }

  bool Test(int64_t text_pos, int64_t query_col) const {
    return bits_.count(Key(text_pos, query_col)) > 0;
  }

  size_t size() const { return bits_.size(); }

 private:
  static uint64_t Key(int64_t t, int64_t j) {
    return (static_cast<uint64_t>(t) << 32) | static_cast<uint64_t>(j);
  }

  std::unordered_set<uint64_t> bits_;
};

}  // namespace alae

#endif  // ALAE_CORE_GLOBAL_FILTER_H_
