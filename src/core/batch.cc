#include "src/core/batch.h"

#include <atomic>
#include <thread>

#include "src/util/timer.h"

namespace alae {

std::vector<ResultCollector> BatchRunner::Run(
    const std::vector<Sequence>& queries, const ScoringScheme& scheme,
    int32_t threshold, int threads, BatchStats* stats) const {
  Timer timer;
  std::vector<ResultCollector> results(queries.size());
  std::vector<AlaeRunStats> run_stats(queries.size());
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min<int>(threads, static_cast<int>(queries.size()));
  if (threads <= 1) {
    Alae engine(index_, config_);
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = engine.Run(queries[i], scheme, threshold, &run_stats[i]);
    }
  } else {
    // NOTE: the domination index is built lazily inside AlaeIndex; force
    // it here so workers only read shared state.
    if (config_.domination_filter) {
      index_.Domination(config_.prefix_filter
                            ? scheme.EffectiveQ(threshold)
                            : 1);
    }
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      Alae engine(index_, config_);
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= queries.size()) break;
        results[i] = engine.Run(queries[i], scheme, threshold, &run_stats[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (stats != nullptr) {
    stats->wall_seconds = timer.ElapsedSeconds();
    for (size_t i = 0; i < queries.size(); ++i) {
      stats->total_hits += results[i].size();
      const DpCounters& c = run_stats[i].counters;
      stats->counters.cells_cost1 += c.cells_cost1;
      stats->counters.cells_cost2 += c.cells_cost2;
      stats->counters.cells_cost3 += c.cells_cost3;
      stats->counters.assigned += c.assigned;
      stats->counters.reused += c.reused;
      stats->counters.forks_opened += c.forks_opened;
      stats->counters.forks_skipped_domination += c.forks_skipped_domination;
      stats->counters.trie_nodes_visited += c.trie_nodes_visited;
    }
  }
  return results;
}

}  // namespace alae
