#include "src/core/batch.h"

#include <memory>
#include <utility>

#include "src/api/backends.h"
#include "src/api/driver.h"

namespace alae {

// BatchRunner keeps its historical ALAE-only signature but is now a thin
// adapter over the backend-agnostic api::MultiQueryDriver (which any
// Aligner can drive, and which guards against hardware_concurrency() == 0).
std::vector<ResultCollector> BatchRunner::Run(
    const std::vector<Sequence>& queries, const ScoringScheme& scheme,
    int32_t threshold, int threads, BatchStats* stats) const {
  // Non-owning view of the caller's index: the backend's shared_ptr must
  // not delete it.
  api::AlaeBackend backend(
      std::shared_ptr<const AlaeIndex>(std::shared_ptr<void>(), &index_));

  // The historical interface has no error channel, so queries that fail
  // validation simply report no hits — without aborting the valid ones
  // (the driver itself is all-or-nothing by design).
  std::vector<api::SearchRequest> requests;
  std::vector<size_t> origin;  // requests[k] answers queries[origin[k]]
  for (size_t i = 0; i < queries.size(); ++i) {
    api::SearchRequest request;
    request.query = queries[i];
    request.scheme = scheme;
    request.threshold = threshold;
    request.alae = config_;
    if (backend.Validate(request).ok()) {
      requests.push_back(std::move(request));
      origin.push_back(i);
    }
  }

  api::MultiQueryDriver driver(backend);
  api::MultiSearchStats multi_stats;
  std::vector<ResultCollector> results(queries.size());
  api::StatusOr<std::vector<api::SearchResponse>> responses =
      driver.Run(requests, threads, &multi_stats);
  if (!responses.ok()) {
    return results;
  }
  for (size_t k = 0; k < responses->size(); ++k) {
    for (const AlignmentHit& hit : (*responses)[k].hits) {
      results[origin[k]].Add(hit.text_end, hit.query_end, hit.score,
                             hit.text_start);
    }
  }
  if (stats != nullptr) {
    stats->wall_seconds = multi_stats.wall_seconds;
    stats->total_hits = multi_stats.total_hits;
    stats->counters = multi_stats.stats.counters;
  }
  return results;
}

}  // namespace alae
