#ifndef ALAE_CORE_ALAE_H_
#define ALAE_CORE_ALAE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/core/config.h"
#include "src/index/domination_index.h"
#include "src/index/fm_index.h"
#include "src/io/sequence.h"

namespace alae {

// The text-side index bundle ALAE queries against: the FM-index built over
// reverse(T) (suffix-trie emulation, paper §5) plus lazily-built domination
// indexes, one per q (the q-prefix length depends on the scoring scheme and
// threshold, §3.2.2).
class AlaeIndex {
 public:
  // Takes the text by value so callers that are done with it can move it
  // in; the index keeps its own copy either way.
  explicit AlaeIndex(Sequence text, FmIndexOptions options = {});

  // Adopts an already-built FM-index (e.g. one loaded from disk by the
  // sharded corpus). `fm` must be the index of text.Reversed(); the caller
  // is responsible for that pairing — length/sigma mismatches are asserted
  // in debug builds, content equivalence cannot be checked cheaply.
  AlaeIndex(Sequence text, FmIndex fm);

  const Sequence& text() const { return text_; }
  int64_t text_size() const { return static_cast<int64_t>(text_.size()); }
  const FmIndex& fm() const { return fm_; }

  // Domination index for prefix length q (built on first use, cached;
  // thread-safe so batch runs can share one index).
  const DominationIndex& Domination(int32_t q) const;

  // Index footprint: FM components plus all materialised domination
  // indexes (the two curves of Fig 11).
  struct Sizes {
    size_t bwt_bytes = 0;
    size_t sample_bytes = 0;
    size_t domination_bytes = 0;
  };
  Sizes SizeBytes() const;

 private:
  Sequence text_;
  FmIndex fm_;
  mutable std::mutex domination_mu_;
  mutable std::map<int32_t, std::unique_ptr<DominationIndex>> domination_;
};

// One aligned query's outcome: results plus instrumentation.
struct AlaeRunStats {
  DpCounters counters;
  uint64_t anchors_considered = 0;
  uint64_t grams_searched = 0;
};

// ALAE: exact local alignment with affine gaps (the paper's contribution).
//
// The engine enumerates the distinct q-grams of the query P, anchors forks
// at their occurrences (prefix filtering, Theorem 3), walks each q-gram's
// suffix-trie subtree through the FM-index, and evolves fork states row by
// row: EMR scores are assigned, NGR rows use the simplified Eq. 3, and gap
// regions opened at FGOEs run the full affine recurrence over a column
// interval pruned by the score filter (Theorem 2) and capped by the length
// filter (Theorem 1). Forks dominated by the preceding query column are
// skipped entirely (§3.2.2), or — in bitset mode — skipped via the online
// G matrix (Theorem 4). Gap-region rows are copied between forks whose
// FGOEs share a row and whose query suffixes share a prefix (§4).
//
// Results are identical to Smith-Waterman / BWT-SW: every end pair (i, j)
// with A(i,j).score >= H, with the exact score (see the property tests).
class Alae {
 public:
  Alae(const AlaeIndex& index, AlaeConfig config = {});

  ResultCollector Run(const Sequence& query, const ScoringScheme& scheme,
                      int32_t threshold, AlaeRunStats* stats = nullptr) const;

  const AlaeConfig& config() const { return config_; }

 private:
  class Engine;  // per-run state, defined in alae.cc

  const AlaeIndex& index_;
  AlaeConfig config_;
};

}  // namespace alae

#endif  // ALAE_CORE_ALAE_H_
