#ifndef ALAE_CORE_ALAE_H_
#define ALAE_CORE_ALAE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/core/config.h"
#include "src/core/filters.h"
#include "src/index/domination_index.h"
#include "src/index/fm_index.h"
#include "src/index/lcp.h"
#include "src/index/qgram_index.h"
#include "src/io/sequence.h"
#include "src/util/cancel.h"

namespace alae {

// The text-side index bundle ALAE queries against: the FM-index built over
// reverse(T) (suffix-trie emulation, paper §5) plus lazily-built domination
// indexes, one per q (the q-prefix length depends on the scoring scheme and
// threshold, §3.2.2).
class AlaeIndex {
 public:
  // Takes the text by value so callers that are done with it can move it
  // in; the index keeps its own copy either way.
  explicit AlaeIndex(Sequence text, FmIndexOptions options = {});

  // Adopts an already-built FM-index (e.g. one loaded from disk by the
  // sharded corpus). `fm` must be the index of text.Reversed(); the caller
  // is responsible for that pairing — length/sigma mismatches are asserted
  // in debug builds, content equivalence cannot be checked cheaply.
  AlaeIndex(Sequence text, FmIndex fm);

  const Sequence& text() const { return text_; }
  int64_t text_size() const { return static_cast<int64_t>(text_.size()); }
  const FmIndex& fm() const { return fm_; }

  // Domination index for prefix length q (built on first use, cached;
  // thread-safe so batch runs can share one index).
  const DominationIndex& Domination(int32_t q) const;

  // Index footprint: FM components plus all materialised domination
  // indexes (the two curves of Fig 11).
  struct Sizes {
    size_t bwt_bytes = 0;
    size_t sample_bytes = 0;
    size_t domination_bytes = 0;
  };
  Sizes SizeBytes() const;

 private:
  Sequence text_;
  FmIndex fm_;
  mutable std::mutex domination_mu_;
  mutable std::map<int32_t, std::unique_ptr<DominationIndex>> domination_;
};

// One aligned query's outcome: results plus instrumentation.
struct AlaeRunStats {
  DpCounters counters;
  uint64_t anchors_considered = 0;
  uint64_t grams_searched = 0;
};

// The compiled query side of one (query, scheme, threshold, config) run:
// everything the engine derives from the request that does not depend on
// the text index. Compiling once and executing against many indexes (the
// sharded corpus pays per-shard work once per shard otherwise) is the
// prepare/execute split of database engines.
//
// Immutable after construction and safe to share between concurrent engine
// runs — every accessor returns const state.
class AlaeQueryPlan {
 public:
  AlaeQueryPlan(Sequence query, const ScoringScheme& scheme, int32_t threshold,
                const AlaeConfig& config);

  const Sequence& query() const { return query_; }
  const ScoringScheme& scheme() const { return scheme_; }
  int32_t threshold() const { return threshold_; }
  const AlaeConfig& config() const { return config_; }

  // Theorem 1/2 bounds, the q-prefix length and the FGOE threshold.
  const FilterContext& filters() const { return filters_; }

  // Inverted q-gram lists of the query (prefix filtering, §3.1.3).
  const QGramIndex& qgrams() const { return qgrams_; }

  // Distinct q-grams of the query as (first occurrence, key), sorted by
  // first occurrence — the engine's anchoring work list.
  const std::vector<std::pair<int32_t, uint64_t>>& grams() const {
    return grams_;
  }

  // The same grams in key (lexicographic) order, each with the length of
  // its shared prefix with the previous entry: the engine descends the
  // gram set through an index as a prefix tree, extending each shared
  // prefix once instead of once per gram.
  struct GramStep {
    int32_t gram = 0;  // index into grams()
    int32_t lcp = 0;   // symbols shared with the previous step's gram
  };
  const std::vector<GramStep>& descent_order() const {
    return descent_order_;
  }

  // sigma x m substitution profile (the row kernel's delta lane).
  const std::vector<int32_t>& profile() const { return profile_; }

  // Query LCP index for §4 score reuse; null when config.reuse is off.
  const LcpIndex* query_lcp() const { return query_lcp_.get(); }

 private:
  Sequence query_;
  ScoringScheme scheme_;
  int32_t threshold_ = 1;
  AlaeConfig config_;
  FilterContext filters_;
  QGramIndex qgrams_;
  std::vector<std::pair<int32_t, uint64_t>> grams_;
  std::vector<GramStep> descent_order_;
  std::vector<int32_t> profile_;
  std::unique_ptr<LcpIndex> query_lcp_;
};

// ALAE: exact local alignment with affine gaps (the paper's contribution).
//
// The engine enumerates the distinct q-grams of the query P, anchors forks
// at their occurrences (prefix filtering, Theorem 3), walks each q-gram's
// suffix-trie subtree through the FM-index, and evolves fork states row by
// row: EMR scores are assigned, NGR rows use the simplified Eq. 3, and gap
// regions opened at FGOEs run the full affine recurrence over a column
// interval pruned by the score filter (Theorem 2) and capped by the length
// filter (Theorem 1). Forks dominated by the preceding query column are
// skipped entirely (§3.2.2), or — in bitset mode — skipped via the online
// G matrix (Theorem 4). Gap-region rows are copied between forks whose
// FGOEs share a row and whose query suffixes share a prefix (§4).
//
// Results are identical to Smith-Waterman / BWT-SW: every end pair (i, j)
// with A(i,j).score >= H, with the exact score (see the property tests).
class Alae {
 public:
  Alae(const AlaeIndex& index, AlaeConfig config = {});

  // Compiles the query side ad hoc (with this aligner's config) and runs.
  ResultCollector Run(const Sequence& query, const ScoringScheme& scheme,
                      int32_t threshold, AlaeRunStats* stats = nullptr,
                      const CancelToken* cancel = nullptr) const;

  // Executes a compiled plan. The plan's config governs the run (it shaped
  // the compiled filters), not this aligner's; compile once, run many.
  //
  // `cancel` (optional, observed every ~4k trie nodes / DP cells) aborts
  // the walk cooperatively: the returned collector then holds whatever
  // hits were discovered before the token fired — a correct subset, which
  // callers must treat as partial (check the token, not the result).
  ResultCollector Run(const AlaeQueryPlan& plan,
                      AlaeRunStats* stats = nullptr,
                      const CancelToken* cancel = nullptr) const;

  // Fused multi-index execution: walks the union of the indexes' suffix
  // tries once, so the fork DP of a path — identical across indexes,
  // because fork evolution depends only on the path's characters and the
  // query — is computed once, while each index pays only its own range
  // extension and hit location ("occurrence anchoring + descent"). This is
  // what flattens the sharded service's per-shard fixed query cost.
  //
  // (*results)[i] receives index i's hit set, exactly what Run against
  // that index alone reports (the domination filter degrades to skipping
  // only anchors dominated in every index, and the quadratic bitset
  // global filter — a test/ablation feature — is ignored; both are
  // work-pruning heuristics whose results the dedup-by-max collector
  // makes identical either way). `stats` are totals over the fused walk.
  static void RunSharded(const AlaeQueryPlan& plan,
                         const std::vector<const AlaeIndex*>& indexes,
                         std::vector<ResultCollector>* results,
                         AlaeRunStats* stats = nullptr,
                         const CancelToken* cancel = nullptr);

  const AlaeConfig& config() const { return config_; }

 private:
  class Engine;  // per-run state, defined in alae.cc

  const AlaeIndex& index_;
  AlaeConfig config_;
};

}  // namespace alae

#endif  // ALAE_CORE_ALAE_H_
