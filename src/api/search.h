#ifndef ALAE_API_SEARCH_H_
#define ALAE_API_SEARCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/align/counters.h"
#include "src/align/result.h"
#include "src/align/scoring.h"
#include "src/baseline/blast/blast.h"
#include "src/core/config.h"
#include "src/io/sequence.h"
#include "src/obs/trace.h"
#include "src/util/cancel.h"

namespace alae {
namespace api {

// One local-alignment search: "every end pair of T x P scoring >= threshold
// under scheme" (the paper's problem statement, §2.1). The same request is
// valid against every backend; the per-backend option blocks are consulted
// only by the engine they belong to.
struct SearchRequest {
  Sequence query;
  ScoringScheme scheme = ScoringScheme::Default();
  int32_t threshold = 0;  // must be >= 1

  // Stop after this many hits (0 = unlimited). When the cap fires the
  // response is truncated, which EngineStats reports.
  uint64_t max_hits = 0;

  // Per-backend knobs. Ignored by backends they do not apply to.
  AlaeConfig alae;
  BlastOptions blast;

  // Cooperative cancellation (not owned; must outlive the call). Engines
  // poll it every ~4k work units: a fired token aborts the run with
  // kCancelled or kDeadlineExceeded per CancelToken::ExpiredWhy. Neither
  // field participates in plan fingerprints or cache keys.
  const CancelToken* cancel = nullptr;

  // With a deadline: return the hits gathered so far as an Ok response
  // (flagged truncated_by_deadline in EngineStats) instead of
  // kDeadlineExceeded. Explicit cancellation still fails with kCancelled.
  bool allow_partial = false;

  // Request-scoped trace (not owned; must outlive the call). When set,
  // the query scheduler records its stage spans — admission, compile,
  // queue wait, per-slice execute, merge — into it; a caller that
  // supplies a trace also owns finishing it (the scheduler's own sampler
  // and slow-query log are bypassed). Like `cancel`, never part of plan
  // fingerprints or cache keys.
  obs::Trace* trace = nullptr;
};

// Instrumentation merged across all backends: wall time and emission info
// always; DpCounters for the exact engines (paper Tables 4-5); the ALAE and
// BLAST extras when those engines ran.
struct EngineStats {
  double seconds = 0;
  uint64_t hits_emitted = 0;
  // True when the hit stream was cut short (sink returned false or
  // max_hits was reached): `hits` is then a prefix of the full answer.
  bool truncated = false;

  // True when a deadline expired mid-run and the request opted into
  // partial results (SearchRequest::allow_partial): `hits` is whatever
  // was gathered before the engines stopped — a correct subset, not a
  // prefix in any particular order. Never set on a cached response
  // (partial responses are not cached).
  bool truncated_by_deadline = false;

  // Exact engines (ALAE, BWT-SW, SW; BLAST reports its gapped DP cells as
  // cost-3 cells so cross-backend cost comparisons stay meaningful). Also
  // carries the per-query FM-index counters — fm_extends (single-symbol
  // backward steps), fm_extend_alls (batched sigma-way trie-node extends)
  // and fm_lf_steps (locate walks) — for the index-backed engines.
  DpCounters counters;

  // ALAE (AlaeRunStats).
  uint64_t anchors_considered = 0;
  uint64_t grams_searched = 0;

  // BLAST (BlastRunStats).
  uint64_t seeds = 0;
  uint64_t ungapped_extensions = 0;
  uint64_t gapped_extensions = 0;

  // Result-cache accounting (the sharded query service): how many of the
  // lookups behind this response were answered from the LRU cache versus
  // computed. Zero outside the service path.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  // Shard-local fragment-cache accounting (the service's second cache
  // tier, keyed by slice content rather than corpus epoch): per-slice runs
  // answered from cached fragments versus executed. Zero when the fragment
  // cache is disabled.
  uint64_t shard_cache_hits = 0;
  uint64_t shard_cache_misses = 0;

  // Live-corpus serving (zero when the source is a plain ShardedCorpus):
  // how many delta shards the answering snapshot carried, how many hits
  // the tombstone filter suppressed for this response, and the snapshot's
  // lifetime compaction count. delta_shards and compactions describe the
  // snapshot rather than work done, so Merge takes their max, not sum.
  uint64_t delta_shards = 0;
  uint64_t tombstone_filtered = 0;
  uint64_t compactions = 0;

  // Query-compilation accounting: nanoseconds Aligner::Compile spent
  // building the plan(s) behind this response, and how many engine
  // executions ran off a prebuilt plan (the sharded service compiles once
  // and reuses across shards; an ad-hoc Search compiles per call and
  // reports plan_reuses = 0).
  uint64_t plan_compile_ns = 0;
  uint64_t plan_reuses = 0;

  // Accumulates `o` into this (used by the multi-query driver).
  void Merge(const EngineStats& o);
};

// The materialised answer: hits sorted by (text_end, query_end).
struct SearchResponse {
  std::vector<AlignmentHit> hits;
  EngineStats stats;
};

// Streaming consumer: receives hits in (text_end, query_end) order as the
// backend finishes them. Return false to stop the search early (top-k
// consumers, result forwarding under deadline); the backend then reports a
// truncated response instead of materialising a full ResultCollector.
using HitSink = std::function<bool(const AlignmentHit&)>;

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_SEARCH_H_
