#ifndef ALAE_API_BACKENDS_H_
#define ALAE_API_BACKENDS_H_

#include <memory>
#include <vector>

#include "src/api/aligner.h"
#include "src/baseline/blast/seed.h"
#include "src/baseline/bwt_sw.h"
#include "src/core/alae.h"

namespace alae {
namespace api {

// The five engines of the paper wrapped as Aligner implementations. Every
// backend shares one AlaeIndex: the text lives there, and the FM-index it
// carries is built over reverse(T), which is exactly the index BWT-SW
// needs — so "alae" and "bwt-sw" share the same suffix-trie emulation and
// the text-only engines ("blast", "sw", "basic") read index->text().
//
// Constructed by AlignerRegistry; the shared_ptr keeps the index alive for
// as long as any backend does.
//
// Each backend's Compile returns its plan subclass below, carrying the
// engine's query-side precomputation. Plans are index-independent: a plan
// compiled by one shard's backend executes on every shard's.

// ALAE's compiled query: the core AlaeQueryPlan (q-gram inverted lists,
// Theorem 1/2 filter bounds, DP delta profile, reuse LCP index).
class AlaePlan : public QueryPlan {
 public:
  AlaePlan(std::string_view backend, SearchRequest request)
      : QueryPlan(backend, std::move(request)),
        core_(this->request().query, this->request().scheme,
              this->request().threshold, this->request().alae) {}

  const AlaeQueryPlan& core() const { return core_; }

 private:
  AlaeQueryPlan core_;
};

// BWT-SW's compiled query: the sigma x m substitution profile.
class BwtSwPlan : public QueryPlan {
 public:
  BwtSwPlan(std::string_view backend, SearchRequest request);

  const std::vector<int32_t>& profile() const { return profile_; }

 private:
  std::vector<int32_t> profile_;
};

// BLAST's compiled query: the seeding word index over the query (its
// neighborhood under exact-match DNA/protein seeding), word size resolved.
class BlastPlan : public QueryPlan {
 public:
  BlastPlan(std::string_view backend, SearchRequest request);

  // Null only for degenerate queries the engine answers empty.
  const WordSeeder* seeder() const { return seeder_.get(); }

 private:
  std::unique_ptr<WordSeeder> seeder_;  // references this->request().query
};

// Smith-Waterman's compiled query: the substitution profile for the
// streaming row scan.
class SwPlan : public QueryPlan {
 public:
  SwPlan(std::string_view backend, SearchRequest request);

  const std::vector<int32_t>& profile() const { return profile_; }

 private:
  std::vector<int32_t> profile_;
};

class AlaeBackend : public Aligner {
 public:
  explicit AlaeBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "alae"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }
  const AlaeIndex& index() const { return *index_; }

 protected:
  StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const override;
  Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class BwtSwBackend : public Aligner {
 public:
  explicit BwtSwBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)),
        engine_(index_->fm(), index_->text_size()) {}

  std::string_view name() const override { return "bwt-sw"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const override;
  Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
  BwtSw engine_;
};

class BlastBackend : public Aligner {
 public:
  explicit BlastBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "blast"; }
  bool exact() const override { return false; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const override;
  Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class SmithWatermanBackend : public Aligner {
 public:
  explicit SmithWatermanBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "sw"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const override;
  Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class BasicBackend : public Aligner {
 public:
  // BASIC materialises the O(n^2) explicit suffix trie (~n^2/2 nodes and
  // position entries); beyond this text size a search is refused with
  // kFailedPrecondition instead of exhausting memory (the paper only ever
  // runs BASIC on tiny texts, §7.1).
  static constexpr int64_t kMaxTextLen = 2'000;

  explicit BasicBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "basic"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  // Compilation enforces the text cap (so Prepare reports it), and so
  // does execution — a plan compiled by a small-text sibling must not
  // unlock a big-text search here.
  StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const override;
  Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  Status CheckTextCap() const;

  std::shared_ptr<const AlaeIndex> index_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_BACKENDS_H_
