#ifndef ALAE_API_BACKENDS_H_
#define ALAE_API_BACKENDS_H_

#include <memory>

#include "src/api/aligner.h"
#include "src/baseline/bwt_sw.h"
#include "src/core/alae.h"

namespace alae {
namespace api {

// The five engines of the paper wrapped as Aligner implementations. Every
// backend shares one AlaeIndex: the text lives there, and the FM-index it
// carries is built over reverse(T), which is exactly the index BWT-SW
// needs — so "alae" and "bwt-sw" share the same suffix-trie emulation and
// the text-only engines ("blast", "sw", "basic") read index->text().
//
// Constructed by AlignerRegistry; the shared_ptr keeps the index alive for
// as long as any backend does.

class AlaeBackend : public Aligner {
 public:
  explicit AlaeBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "alae"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }
  Status Prepare(const SearchRequest& request) const override;

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class BwtSwBackend : public Aligner {
 public:
  explicit BwtSwBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)),
        engine_(index_->fm(), index_->text_size()) {}

  std::string_view name() const override { return "bwt-sw"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
  BwtSw engine_;
};

class BlastBackend : public Aligner {
 public:
  explicit BlastBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "blast"; }
  bool exact() const override { return false; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class SmithWatermanBackend : public Aligner {
 public:
  explicit SmithWatermanBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "sw"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

class BasicBackend : public Aligner {
 public:
  // BASIC materialises the O(n^2) explicit suffix trie (~n^2/2 nodes and
  // position entries); beyond this text size a search is refused with
  // kFailedPrecondition instead of exhausting memory (the paper only ever
  // runs BASIC on tiny texts, §7.1).
  static constexpr int64_t kMaxTextLen = 2'000;

  explicit BasicBackend(std::shared_ptr<const AlaeIndex> index)
      : index_(std::move(index)) {}

  std::string_view name() const override { return "basic"; }
  bool exact() const override { return true; }
  const Sequence& text() const override { return index_->text(); }
  Status Prepare(const SearchRequest& request) const override;

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override;

 private:
  std::shared_ptr<const AlaeIndex> index_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_BACKENDS_H_
