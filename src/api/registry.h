#ifndef ALAE_API_REGISTRY_H_
#define ALAE_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/aligner.h"
#include "src/core/alae.h"

namespace alae {
namespace api {

// Constructs search backends by name over one shared text/index.
//
//   AlignerRegistry registry(text);
//   auto aligner = registry.Create("alae");       // or bwt-sw, blast, ...
//   if (!aligner.ok()) { ... }
//   auto response = (*aligner)->Search(request);
//
// The registry builds the AlaeIndex (FM-index over reverse(T)) once; every
// backend — including the text-only ones — reads from it, so creating five
// backends costs one index. Factories registered at runtime extend the
// backend set (custom engines slot in behind the same facade).
class AlignerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Aligner>(
      std::shared_ptr<const AlaeIndex>)>;

  // Indexes `text` and registers the built-in backends: "alae", "bwt-sw",
  // "blast", "sw", "basic" (plus aliases "bwtsw" and "smith-waterman").
  explicit AlignerRegistry(Sequence text, FmIndexOptions options = {});

  // Shares an already-built index (e.g. one loaded from disk).
  explicit AlignerRegistry(std::shared_ptr<const AlaeIndex> index);

  const Sequence& text() const { return index_->text(); }
  const AlaeIndex& index() const { return *index_; }

  // Builds the named backend, or kNotFound listing the known names.
  StatusOr<std::unique_ptr<Aligner>> Create(std::string_view name) const;

  bool Has(std::string_view name) const;

  // Canonical backend names, alphabetical, aliases excluded.
  std::vector<std::string> Names() const;

  // Adds (or replaces) a backend factory under `name`.
  void Register(std::string name, Factory factory);

  // The canonical built-in backend names.
  static const std::vector<std::string>& BuiltinNames();

 private:
  void RegisterBuiltins();

  std::shared_ptr<const AlaeIndex> index_;
  std::map<std::string, Factory, std::less<>> factories_;
  // Alias -> canonical name (aliases resolve in Create but are not listed).
  std::map<std::string, std::string, std::less<>> aliases_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_REGISTRY_H_
