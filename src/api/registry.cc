#include "src/api/registry.h"

#include <utility>

#include "src/api/backends.h"

namespace alae {
namespace api {

AlignerRegistry::AlignerRegistry(Sequence text, FmIndexOptions options)
    : index_(std::make_shared<const AlaeIndex>(std::move(text), options)) {
  RegisterBuiltins();
}

AlignerRegistry::AlignerRegistry(std::shared_ptr<const AlaeIndex> index)
    : index_(std::move(index)) {
  RegisterBuiltins();
}

void AlignerRegistry::RegisterBuiltins() {
  Register("alae", [](std::shared_ptr<const AlaeIndex> index) {
    return std::make_unique<AlaeBackend>(std::move(index));
  });
  Register("bwt-sw", [](std::shared_ptr<const AlaeIndex> index) {
    return std::make_unique<BwtSwBackend>(std::move(index));
  });
  Register("blast", [](std::shared_ptr<const AlaeIndex> index) {
    return std::make_unique<BlastBackend>(std::move(index));
  });
  Register("sw", [](std::shared_ptr<const AlaeIndex> index) {
    return std::make_unique<SmithWatermanBackend>(std::move(index));
  });
  Register("basic", [](std::shared_ptr<const AlaeIndex> index) {
    return std::make_unique<BasicBackend>(std::move(index));
  });
  aliases_.emplace("bwtsw", "bwt-sw");
  aliases_.emplace("smith-waterman", "sw");
}

StatusOr<std::unique_ptr<Aligner>> AlignerRegistry::Create(
    std::string_view name) const {
  std::string_view resolved = name;
  if (auto alias = aliases_.find(name); alias != aliases_.end()) {
    resolved = alias->second;
  }
  auto it = factories_.find(resolved);
  if (it == factories_.end()) {
    std::string known;
    for (const std::string& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown backend \"" + std::string(name) +
                            "\"; known backends: " + known);
  }
  return it->second(index_);
}

bool AlignerRegistry::Has(std::string_view name) const {
  return factories_.count(std::string(name)) > 0 ||
         aliases_.count(std::string(name)) > 0;
}

std::vector<std::string> AlignerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    names.push_back(name);
  }
  return names;
}

void AlignerRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

const std::vector<std::string>& AlignerRegistry::BuiltinNames() {
  static const std::vector<std::string> kNames = {"alae", "basic", "blast",
                                                  "bwt-sw", "sw"};
  return kNames;
}

}  // namespace api
}  // namespace alae
