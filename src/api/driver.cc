#include "src/api/driver.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "src/util/timer.h"

namespace alae {
namespace api {

int MultiQueryDriver::ResolveThreads(int threads, size_t num_requests) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, std::min<int>(threads, static_cast<int>(num_requests)));
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<SearchRequest>& requests, int threads,
    MultiSearchStats* stats) const {
  Timer timer;
  // Fail fast, before spawning anything: validate every request and warm
  // the backend's shared per-(scheme, threshold) state.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (Status status = aligner_.Prepare(requests[i]); !status.ok()) {
      return Status(status.code(), "request " + std::to_string(i) + ": " +
                                       status.message());
    }
  }

  std::vector<SearchResponse> responses(requests.size());
  std::vector<Status> statuses(requests.size());
  threads = ResolveThreads(threads, requests.size());
  if (threads <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) {
      StatusOr<SearchResponse> r = aligner_.Search(requests[i]);
      if (r.ok()) {
        responses[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= requests.size()) break;
        StatusOr<SearchResponse> r = aligner_.Search(requests[i]);
        if (r.ok()) {
          responses[i] = std::move(r).value();
        } else {
          statuses[i] = r.status();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(), "request " + std::to_string(i) +
                                            ": " + statuses[i].message());
    }
  }
  if (stats != nullptr) {
    stats->wall_seconds = timer.ElapsedSeconds();
    for (const SearchResponse& r : responses) {
      stats->total_hits += r.hits.size();
      stats->stats.Merge(r.stats);
    }
  }
  return responses;
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<Sequence>& queries, const SearchRequest& base,
    int threads, MultiSearchStats* stats) const {
  std::vector<SearchRequest> requests(queries.size(), base);
  for (size_t i = 0; i < queries.size(); ++i) requests[i].query = queries[i];
  return Run(requests, threads, stats);
}

}  // namespace api
}  // namespace alae
