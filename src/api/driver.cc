#include "src/api/driver.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "src/util/timer.h"

namespace alae {
namespace api {

int MultiQueryDriver::ResolveThreads(int threads, size_t num_requests) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, std::min<int>(threads, static_cast<int>(num_requests)));
}

std::vector<QueryOutcome> MultiQueryDriver::RunEach(
    const std::vector<SearchRequest>& requests, int threads,
    MultiSearchStats* stats) const {
  Timer timer;
  std::vector<QueryOutcome> outcomes(requests.size());
  // Validate every request and warm the backend's shared per-(scheme,
  // threshold) state up front, single-threaded. A query that fails here is
  // recorded in its own slot — it must not mask its neighbours' results —
  // and is skipped by the workers below.
  for (size_t i = 0; i < requests.size(); ++i) {
    outcomes[i].status = aligner_.Prepare(requests[i]);
  }

  auto run_one = [&](size_t i) {
    if (!outcomes[i].status.ok()) return;
    StatusOr<SearchResponse> r = aligner_.Search(requests[i]);
    if (r.ok()) {
      outcomes[i].response = std::move(r).value();
    } else {
      outcomes[i].status = r.status();
    }
  };

  threads = ResolveThreads(threads, requests.size());
  if (threads <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) run_one(i);
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= requests.size()) break;
        run_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (stats != nullptr) {
    stats->wall_seconds = timer.ElapsedSeconds();
    for (const QueryOutcome& o : outcomes) {
      if (!o.ok()) {
        ++stats->failed_queries;
        continue;
      }
      stats->total_hits += o.response.hits.size();
      stats->stats.Merge(o.response.stats);
    }
  }
  return outcomes;
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<SearchRequest>& requests, int threads,
    MultiSearchStats* stats) const {
  // Run discards partial results on any failure, so fail fast on
  // validation — a batch with one malformed request must not pay for the
  // other N-1 searches first. (Prepare is idempotent; RunEach's own
  // Prepare pass below then hits warm state.)
  for (size_t i = 0; i < requests.size(); ++i) {
    if (Status status = aligner_.Prepare(requests[i]); !status.ok()) {
      return Status(status.code(), "request " + std::to_string(i) + ": " +
                                       status.message());
    }
  }
  std::vector<QueryOutcome> outcomes = RunEach(requests, threads, stats);
  // All-or-nothing view: the first per-query failure fails the batch (with
  // that query's index), even when later queries succeeded.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      return Status(outcomes[i].status.code(),
                    "request " + std::to_string(i) + ": " +
                        outcomes[i].status.message());
    }
  }
  std::vector<SearchResponse> responses;
  responses.reserve(outcomes.size());
  for (QueryOutcome& o : outcomes) responses.push_back(std::move(o.response));
  return responses;
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<Sequence>& queries, const SearchRequest& base,
    int threads, MultiSearchStats* stats) const {
  std::vector<SearchRequest> requests(queries.size(), base);
  for (size_t i = 0; i < queries.size(); ++i) requests[i].query = queries[i];
  return Run(requests, threads, stats);
}

}  // namespace api
}  // namespace alae
