#include "src/api/driver.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "src/util/timer.h"

namespace alae {
namespace api {

int MultiQueryDriver::ResolveThreads(int threads, size_t num_requests) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, std::min<int>(threads, static_cast<int>(num_requests)));
}

namespace {

// Runs fn(0) .. fn(n-1) across `threads` workers (already resolved).
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn) {
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

void AggregateStats(const std::vector<QueryOutcome>& outcomes,
                    double wall_seconds, MultiSearchStats* stats) {
  if (stats == nullptr) return;
  stats->wall_seconds = wall_seconds;
  for (const QueryOutcome& o : outcomes) {
    if (!o.ok()) {
      ++stats->failed_queries;
      continue;
    }
    stats->total_hits += o.response.hits.size();
    stats->stats.Merge(o.response.stats);
  }
}

}  // namespace

std::vector<QueryOutcome> MultiQueryDriver::RunEach(
    const std::vector<SearchRequest>& requests, int threads,
    MultiSearchStats* stats) const {
  Timer timer;
  std::vector<QueryOutcome> outcomes(requests.size());
  // Validate every request up front, single-threaded (cheap): a query
  // that fails here is recorded in its own slot — it must not mask its
  // neighbours' results — and is skipped by the workers below. The
  // per-query compilation (the backend's query-side precomputation, one
  // Compile inside the ad-hoc Search) is NOT hoisted: each request runs
  // exactly once, so there is nothing to reuse, and compiling inside the
  // workers keeps it parallel. Compile-level refusals a Validate cannot
  // see (e.g. BASIC's text cap) surface per query from the workers.
  for (size_t i = 0; i < requests.size(); ++i) {
    outcomes[i].status = aligner_.Validate(requests[i]);
  }

  ParallelFor(requests.size(), ResolveThreads(threads, requests.size()),
              [&](size_t i) {
                if (!outcomes[i].status.ok()) return;
                StatusOr<SearchResponse> r = aligner_.Search(requests[i]);
                if (r.ok()) {
                  outcomes[i].response = std::move(r).value();
                } else {
                  outcomes[i].status = r.status();
                }
              });
  AggregateStats(outcomes, timer.ElapsedSeconds(), stats);
  return outcomes;
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<SearchRequest>& requests, int threads,
    MultiSearchStats* stats) const {
  Timer timer;
  // Run discards partial results on any failure, so fail fast on
  // anything compilation can reject — a batch with one malformed request
  // must not pay for the other N-1 searches first. The compiled plans are
  // kept and executed by the workers (compiling twice would double the
  // serial prefix for nothing).
  std::vector<std::unique_ptr<QueryPlan>> plans(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    StatusOr<std::unique_ptr<QueryPlan>> plan = aligner_.Compile(requests[i]);
    if (!plan.ok()) {
      return Status(plan.status().code(), "request " + std::to_string(i) +
                                              ": " + plan.status().message());
    }
    plans[i] = std::move(*plan);
  }

  std::vector<QueryOutcome> outcomes(requests.size());
  ParallelFor(requests.size(), ResolveThreads(threads, requests.size()),
              [&](size_t i) {
                StatusOr<SearchResponse> r = aligner_.Search(*plans[i]);
                if (r.ok()) {
                  outcomes[i].response = std::move(r).value();
                  outcomes[i].response.stats.plan_compile_ns =
                      plans[i]->compile_ns();
                } else {
                  outcomes[i].status = r.status();
                }
              });
  AggregateStats(outcomes, timer.ElapsedSeconds(), stats);
  // All-or-nothing view: the first per-query failure fails the batch (with
  // that query's index), even when later queries succeeded.
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      return Status(outcomes[i].status.code(),
                    "request " + std::to_string(i) + ": " +
                        outcomes[i].status.message());
    }
  }
  std::vector<SearchResponse> responses;
  responses.reserve(outcomes.size());
  for (QueryOutcome& o : outcomes) responses.push_back(std::move(o.response));
  return responses;
}

StatusOr<std::vector<SearchResponse>> MultiQueryDriver::Run(
    const std::vector<Sequence>& queries, const SearchRequest& base,
    int threads, MultiSearchStats* stats) const {
  std::vector<SearchRequest> requests(queries.size(), base);
  for (size_t i = 0; i < queries.size(); ++i) requests[i].query = queries[i];
  return Run(requests, threads, stats);
}

}  // namespace api
}  // namespace alae
