#include "src/api/search.h"

#include <algorithm>

namespace alae {
namespace api {

void EngineStats::Merge(const EngineStats& o) {
  seconds += o.seconds;
  hits_emitted += o.hits_emitted;
  truncated = truncated || o.truncated;
  truncated_by_deadline = truncated_by_deadline || o.truncated_by_deadline;
  counters.Merge(o.counters);
  anchors_considered += o.anchors_considered;
  grams_searched += o.grams_searched;
  seeds += o.seeds;
  ungapped_extensions += o.ungapped_extensions;
  gapped_extensions += o.gapped_extensions;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  shard_cache_hits += o.shard_cache_hits;
  shard_cache_misses += o.shard_cache_misses;
  delta_shards = std::max(delta_shards, o.delta_shards);
  tombstone_filtered += o.tombstone_filtered;
  compactions = std::max(compactions, o.compactions);
  plan_compile_ns += o.plan_compile_ns;
  plan_reuses += o.plan_reuses;
}

}  // namespace api
}  // namespace alae
