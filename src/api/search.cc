#include "src/api/search.h"

namespace alae {
namespace api {

void EngineStats::Merge(const EngineStats& o) {
  seconds += o.seconds;
  hits_emitted += o.hits_emitted;
  truncated = truncated || o.truncated;
  counters.cells_cost1 += o.counters.cells_cost1;
  counters.cells_cost2 += o.counters.cells_cost2;
  counters.cells_cost3 += o.counters.cells_cost3;
  counters.assigned += o.counters.assigned;
  counters.reused += o.counters.reused;
  counters.forks_opened += o.counters.forks_opened;
  counters.forks_skipped_domination += o.counters.forks_skipped_domination;
  counters.forks_skipped_bitset += o.counters.forks_skipped_bitset;
  counters.trie_nodes_visited += o.counters.trie_nodes_visited;
  anchors_considered += o.anchors_considered;
  grams_searched += o.grams_searched;
  seeds += o.seeds;
  ungapped_extensions += o.ungapped_extensions;
  gapped_extensions += o.gapped_extensions;
}

}  // namespace api
}  // namespace alae
