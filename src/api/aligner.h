#ifndef ALAE_API_ALIGNER_H_
#define ALAE_API_ALIGNER_H_

#include <memory>
#include <string_view>

#include "src/api/plan.h"
#include "src/api/search.h"
#include "src/api/status.h"

namespace alae {
namespace api {

// The one public search interface. ALAE, BWT-SW, BLAST, Smith-Waterman and
// BASIC all answer the same question (paper §2.1), so they all sit behind
// this facade; callers pick a backend through AlignerRegistry and never see
// the five divergent engine call shapes underneath.
//
// Every search is compile-then-execute: Compile turns a validated request
// into an immutable QueryPlan (the query-side precomputation — q-gram
// enumeration, filter bounds, DP profiles, seeding word index), and
// Search(plan, ...) executes it. The request-shaped Search overloads keep
// the old one-shot ergonomics by compiling ad hoc. Callers that run one
// request many times — or once against many same-backend aligners, like
// the sharded service — compile once and reuse the plan.
//
// Contract:
//  - Compile validates the request (empty query, alphabet mismatch,
//    non-positive threshold, malformed scheme) and returns a Status
//    instead of silently misbehaving.
//  - Hits reach the sink in (text_end, query_end) order, each end pair at
//    most once, every reported score >= request.threshold.
//  - Exact backends emit precisely the Smith-Waterman answer set; heuristic
//    backends (exact() == false) may emit a subset with under-estimated
//    scores, never spurious pairs above their true score.
//  - Search is const and thread-safe: one Aligner may serve concurrent
//    requests, and one plan may serve concurrent Search calls (the
//    multi-query driver and the sharded service rely on both).
class Aligner {
 public:
  virtual ~Aligner() = default;

  // Registry name of the backend ("alae", "bwt-sw", "blast", "sw", "basic").
  virtual std::string_view name() const = 0;

  // Whether the backend reports the exact answer set.
  virtual bool exact() const = 0;

  // The indexed text this aligner searches.
  virtual const Sequence& text() const = 0;

  // Validates a request against this backend without running it.
  Status Validate(const SearchRequest& request) const;

  // Compiles a request into an immutable, thread-safe plan: validation,
  // the backend's query-side precomputation, and warming of shared
  // text-side state (e.g. ALAE's domination index for the plan's q), so
  // concurrent Search(plan) calls only read. The plan is reusable across
  // Search calls and across aligners of the same backend whose text shares
  // the request's alphabet.
  StatusOr<std::unique_ptr<QueryPlan>> Compile(SearchRequest request) const;

  // Warms shared state and reports whether the request would compile; the
  // result plan is discarded. The default routes through Compile — the
  // one code path for "validate + warm + precompute" — and backends
  // should rarely need to override it (only for warm-up work that
  // Compile, which may run per query, must not repeat).
  virtual Status Prepare(const SearchRequest& request) const {
    return Compile(request).status();
  }

  // Executes a compiled plan: runs the engine and feeds `sink`. The sink's
  // false return and the plan request's max_hits both stop the stream
  // early; `stats` (optional) receives timing, counters and truncation
  // info, with plan_reuses = 1 (this execution reused a prebuilt plan).
  // The plan must carry this backend's name and match the text's alphabet;
  // kInvalidArgument otherwise.
  Status Search(const QueryPlan& plan, const HitSink& sink,
                EngineStats* stats = nullptr) const;

  // Materialising convenience built on the streaming form.
  StatusOr<SearchResponse> Search(const QueryPlan& plan) const;

  // One-shot forms: Compile, then execute the plan. Stats report the
  // compile time in plan_compile_ns (and plan_reuses = 0).
  Status Search(const SearchRequest& request, const HitSink& sink,
                EngineStats* stats = nullptr) const;
  StatusOr<SearchResponse> Search(const SearchRequest& request) const;

 protected:
  // Backend-specific compilation. The base implementation returns a plain
  // QueryPlan (validated request + fingerprint), which is all a backend
  // without query-side precomputation needs. Overrides may also reject
  // requests this aligner can never run (e.g. BASIC's text-size cap).
  virtual StatusOr<std::unique_ptr<QueryPlan>> CompileImpl(
      SearchRequest request) const;

  // Engine-specific body for compiled plans. `sink` already enforces
  // max_hits and counts emissions; implementations just stream ordered
  // hits into it and stop when it returns false. The base implementation
  // delegates to the legacy request-shaped overload below, so externally
  // registered backends keep working unchanged.
  virtual Status SearchImpl(const QueryPlan& plan, const HitSink& sink,
                            EngineStats* stats) const {
    return SearchImpl(plan.request(), sink, stats);
  }

  // Legacy request-shaped engine body. Built-in backends implement the
  // plan overload instead; custom backends may keep overriding this one.
  virtual Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                            EngineStats* stats) const;

  // Streams a collector's sorted hits into a sink (the adapter for engines
  // that materialise internally).
  static void Drain(const ResultCollector& collector, const HitSink& sink);
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_ALIGNER_H_
