#ifndef ALAE_API_ALIGNER_H_
#define ALAE_API_ALIGNER_H_

#include <string_view>

#include "src/api/search.h"
#include "src/api/status.h"

namespace alae {
namespace api {

// The one public search interface. ALAE, BWT-SW, BLAST, Smith-Waterman and
// BASIC all answer the same question (paper §2.1), so they all sit behind
// this facade; callers pick a backend through AlignerRegistry and never see
// the five divergent engine call shapes underneath.
//
// Contract:
//  - Search validates the request (empty query, alphabet mismatch,
//    non-positive threshold, malformed scheme) and returns a Status
//    instead of silently misbehaving.
//  - Hits reach the sink in (text_end, query_end) order, each end pair at
//    most once, every reported score >= request.threshold.
//  - Exact backends emit precisely the Smith-Waterman answer set; heuristic
//    backends (exact() == false) may emit a subset with under-estimated
//    scores, never spurious pairs above their true score.
//  - Search is const and thread-safe: one Aligner may serve concurrent
//    requests (the multi-query driver relies on this).
class Aligner {
 public:
  virtual ~Aligner() = default;

  // Registry name of the backend ("alae", "bwt-sw", "blast", "sw", "basic").
  virtual std::string_view name() const = 0;

  // Whether the backend reports the exact answer set.
  virtual bool exact() const = 0;

  // The indexed text this aligner searches.
  virtual const Sequence& text() const = 0;

  // Validates a request against this backend without running it.
  Status Validate(const SearchRequest& request) const;

  // Warms shared per-(scheme, threshold) state so concurrent Search calls
  // only read (e.g. ALAE's lazily-built domination index). Optional; Search
  // works without it.
  virtual Status Prepare(const SearchRequest& request) const {
    return Validate(request);
  }

  // Streaming search: validates, runs the engine, feeds `sink`. The sink's
  // false return and request.max_hits both stop the stream early; `stats`
  // (optional) receives timing, counters and truncation info.
  Status Search(const SearchRequest& request, const HitSink& sink,
                EngineStats* stats = nullptr) const;

  // Materialising convenience built on the streaming form.
  StatusOr<SearchResponse> Search(const SearchRequest& request) const;

 protected:
  // Engine-specific body. `sink` already enforces max_hits and counts
  // emissions; implementations just stream ordered hits into it and stop
  // when it returns false.
  virtual Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                            EngineStats* stats) const = 0;

  // Streams a collector's sorted hits into a sink (the adapter for engines
  // that materialise internally).
  static void Drain(const ResultCollector& collector, const HitSink& sink);
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_ALIGNER_H_
