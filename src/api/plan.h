#ifndef ALAE_API_PLAN_H_
#define ALAE_API_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "src/api/search.h"

namespace alae {
namespace api {

// A compiled query: the validated request plus every piece of query-side
// precomputation a backend derives from (query, scheme, threshold, opts)
// alone — never from the indexed text. This is the prepare/execute split
// of database engines: Aligner::Compile builds the plan once and
// Aligner::Search(plan, ...) executes it, against this aligner or any
// other aligner of the same backend (the sharded service compiles once per
// request and shares the plan across every shard's aligner).
//
// Contract:
//  - Immutable after Compile returns, and therefore safe to share between
//    concurrent Search calls without synchronisation.
//  - `request()` is the compiled request verbatim; `max_hits` is the one
//    field a plan does not bake into derived state (it is a stream cap
//    applied at execution time, not part of the compiled question).
//  - `fingerprint()` canonically serialises everything that determines
//    the full (uncapped) answer: backend name, scoring scheme, threshold,
//    the per-backend option blocks, alphabet kind and query symbols.
//    Equal requests always produce equal fingerprints; requests differing
//    in any of those fields never collide (the encoding is injective, not
//    a hash). Cache layers key on it (plus max_hits and their own epoch).
//
// Backends subclass this with their compiled artifacts (ALAE's q-gram
// index and filter bounds, BLAST's seeding word index, DP delta profiles);
// backends with nothing to precompute use the base class as-is.
class QueryPlan {
 public:
  QueryPlan(std::string_view backend, SearchRequest request)
      : backend_(backend),
        request_(std::move(request)),
        fingerprint_(Fingerprint(backend_, request_)) {}
  virtual ~QueryPlan() = default;

  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  // Name of the backend that compiled this plan; a plan only executes on
  // aligners whose name() matches.
  std::string_view backend() const { return backend_; }

  const SearchRequest& request() const { return request_; }

  // Canonical answer-determining bytes (see the class comment).
  const std::string& fingerprint() const { return fingerprint_; }

  // Wall time Compile spent building this plan.
  uint64_t compile_ns() const { return compile_ns_; }

  // The canonical serialisation fingerprint() is built from; exposed so
  // cache keys can be derived for a request without compiling it.
  static std::string Fingerprint(std::string_view backend,
                                 const SearchRequest& request);

 private:
  friend class Aligner;  // stamps compile_ns_

  std::string backend_;
  SearchRequest request_;
  std::string fingerprint_;
  uint64_t compile_ns_ = 0;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_PLAN_H_
