#ifndef ALAE_API_DRIVER_H_
#define ALAE_API_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/api/aligner.h"

namespace alae {
namespace api {

// Aggregate outcome of a multi-query run. Failed queries contribute to
// `failed_queries` only; hits and stats are merged over the successes.
struct MultiSearchStats {
  double wall_seconds = 0;
  uint64_t total_hits = 0;
  uint64_t failed_queries = 0;
  EngineStats stats;  // merged across successful queries
};

// Per-query outcome of RunEach: `response` is meaningful iff `status.ok()`.
// Unlike StatusOr this is default-constructible, so a parallel run can fill
// a preallocated slot per query without synchronising on construction.
struct QueryOutcome {
  Status status;
  SearchResponse response;
  bool ok() const { return status.ok(); }
};

// Backend-agnostic parallel multi-query driver: the generalisation of the
// old ALAE-only BatchRunner. The paper's workloads run 100 queries per text
// (§7) and queries against one shared immutable index are embarrassingly
// parallel, for every backend — Aligner::Search is const and thread-safe.
//
// Requests are validated (and the backend's shared state warmed via
// Prepare) before any worker starts, so a malformed request fails the whole
// batch fast with its index in the message. Responses come back in input
// order.
class MultiQueryDriver {
 public:
  explicit MultiQueryDriver(const Aligner& aligner) : aligner_(aligner) {}

  // Runs every request using `threads` workers (<= 0 picks hardware
  // concurrency, which is itself clamped to >= 1: hardware_concurrency()
  // may legitimately return 0). Any per-query failure fails the whole
  // batch with the *first* failing query's index in the message — the
  // successful responses are discarded. Callers that need partial results
  // (e.g. a serving front end where one bad query must not take down its
  // neighbours) use RunEach instead.
  StatusOr<std::vector<SearchResponse>> Run(
      const std::vector<SearchRequest>& requests, int threads = 0,
      MultiSearchStats* stats = nullptr) const;

  // Like Run, but every query reports its own Status: outcome[i] carries
  // either requests[i]'s response or the exact error that query hit, in
  // input order. Nothing is dropped and one failure never masks another
  // query's result. Validation failures are reported per query too (no
  // fail-fast), so a serving loop can map each outcome straight back to
  // its caller.
  std::vector<QueryOutcome> RunEach(const std::vector<SearchRequest>& requests,
                                    int threads = 0,
                                    MultiSearchStats* stats = nullptr) const;

  // Convenience: the common one-scheme many-queries shape. `base` supplies
  // everything but the query.
  StatusOr<std::vector<SearchResponse>> Run(
      const std::vector<Sequence>& queries, const SearchRequest& base,
      int threads = 0, MultiSearchStats* stats = nullptr) const;

  // Number of workers a run with this `threads` argument would use.
  static int ResolveThreads(int threads, size_t num_requests);

 private:
  const Aligner& aligner_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_DRIVER_H_
