#ifndef ALAE_API_DRIVER_H_
#define ALAE_API_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/api/aligner.h"

namespace alae {
namespace api {

// Aggregate outcome of a multi-query run.
struct MultiSearchStats {
  double wall_seconds = 0;
  uint64_t total_hits = 0;
  EngineStats stats;  // merged across queries
};

// Backend-agnostic parallel multi-query driver: the generalisation of the
// old ALAE-only BatchRunner. The paper's workloads run 100 queries per text
// (§7) and queries against one shared immutable index are embarrassingly
// parallel, for every backend — Aligner::Search is const and thread-safe.
//
// Requests are validated (and the backend's shared state warmed via
// Prepare) before any worker starts, so a malformed request fails the whole
// batch fast with its index in the message. Responses come back in input
// order.
class MultiQueryDriver {
 public:
  explicit MultiQueryDriver(const Aligner& aligner) : aligner_(aligner) {}

  // Runs every request using `threads` workers (<= 0 picks hardware
  // concurrency, which is itself clamped to >= 1: hardware_concurrency()
  // may legitimately return 0).
  StatusOr<std::vector<SearchResponse>> Run(
      const std::vector<SearchRequest>& requests, int threads = 0,
      MultiSearchStats* stats = nullptr) const;

  // Convenience: the common one-scheme many-queries shape. `base` supplies
  // everything but the query.
  StatusOr<std::vector<SearchResponse>> Run(
      const std::vector<Sequence>& queries, const SearchRequest& base,
      int threads = 0, MultiSearchStats* stats = nullptr) const;

  // Number of workers a run with this `threads` argument would use.
  static int ResolveThreads(int threads, size_t num_requests);

 private:
  const Aligner& aligner_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_DRIVER_H_
