#include "src/api/plan.h"

#include "src/util/serialize.h"

namespace alae {
namespace api {

std::string QueryPlan::Fingerprint(std::string_view backend,
                                   const SearchRequest& request) {
  // Injective by construction: fixed-width fields in a fixed order, the
  // one variable-length field (the backend name) delimited by '\0' (names
  // never contain it), and the query symbols last. max_hits is deliberately
  // absent — it caps the stream at execution time and changes nothing the
  // plan compiles; cache keys append it themselves.
  std::string key;
  key.reserve(64 + backend.size() + request.query.size());
  key.append(backend);
  key.push_back('\0');
  AppendRaw(&key, request.scheme.sa);
  AppendRaw(&key, request.scheme.sb);
  AppendRaw(&key, request.scheme.sg);
  AppendRaw(&key, request.scheme.ss);
  AppendRaw(&key, request.threshold);
  // Per-backend knobs: engines that ignore them still get distinct keys,
  // which only costs a rare duplicate cache entry, never a wrong answer.
  AppendRaw(&key,
            static_cast<uint8_t>((request.alae.length_filter << 0) |
                                 (request.alae.score_filter << 1) |
                                 (request.alae.prefix_filter << 2) |
                                 (request.alae.domination_filter << 3) |
                                 (request.alae.bitset_global_filter << 4) |
                                 (request.alae.reuse << 5)));
  AppendRaw(&key, request.blast.word_size);
  AppendRaw(&key, static_cast<uint8_t>(request.blast.two_hit));
  AppendRaw(&key, request.blast.x_drop_ungapped);
  AppendRaw(&key, request.blast.x_drop_gapped);
  AppendRaw(&key, request.blast.gap_trigger);
  AppendRaw(&key, static_cast<uint8_t>(request.query.alphabet().kind()));
  key.append(reinterpret_cast<const char*>(request.query.symbols().data()),
             request.query.size());
  return key;
}

}  // namespace api
}  // namespace alae
