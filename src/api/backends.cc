#include "src/api/backends.h"

#include <string>

#include "src/baseline/basic.h"
#include "src/baseline/blast/blast.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"

namespace alae {
namespace api {

// ---------------------------------------------------------------------------
// ALAE
// ---------------------------------------------------------------------------

Status AlaeBackend::Prepare(const SearchRequest& request) const {
  if (Status status = Validate(request); !status.ok()) return status;
  // Force the lazily-built domination index for this (scheme, threshold)
  // so concurrent Search calls only read shared state.
  if (request.alae.domination_filter) {
    index_->Domination(request.alae.prefix_filter
                           ? request.scheme.EffectiveQ(request.threshold)
                           : 1);
  }
  return Status::Ok();
}

Status AlaeBackend::SearchImpl(const SearchRequest& request,
                               const HitSink& sink, EngineStats* stats) const {
  Alae engine(*index_, request.alae);
  AlaeRunStats run;
  ResultCollector hits =
      engine.Run(request.query, request.scheme, request.threshold, &run);
  stats->counters = run.counters;
  stats->anchors_considered = run.anchors_considered;
  stats->grams_searched = run.grams_searched;
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BWT-SW
// ---------------------------------------------------------------------------

Status BwtSwBackend::SearchImpl(const SearchRequest& request,
                                const HitSink& sink,
                                EngineStats* stats) const {
  ResultCollector hits = engine_.Run(request.query, request.scheme,
                                     request.threshold, &stats->counters);
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BLAST
// ---------------------------------------------------------------------------

Status BlastBackend::SearchImpl(const SearchRequest& request,
                                const HitSink& sink,
                                EngineStats* stats) const {
  BlastRunStats run;
  ResultCollector hits = Blast::Run(index_->text(), request.query,
                                    request.scheme, request.threshold,
                                    request.blast, &run);
  stats->seeds = run.seeds;
  stats->ungapped_extensions = run.ungapped_extensions;
  stats->gapped_extensions = run.gapped_extensions;
  // BLAST's gapped DP computes M, Ga and Gb per cell, i.e. cost 3 in the
  // paper's Table 4 accounting.
  stats->counters.cells_cost3 = run.dp_cells;
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Smith-Waterman
// ---------------------------------------------------------------------------

Status SmithWatermanBackend::SearchImpl(const SearchRequest& request,
                                        const HitSink& sink,
                                        EngineStats* stats) const {
  // SW computes each (i, j) cell exactly once and row order matches the
  // sink's ordering contract, so this backend streams with no collector;
  // Stream returns the cells actually computed (less than n*m when the
  // sink cancelled early).
  stats->counters.cells_cost3 = SmithWaterman::Stream(
      index_->text(), request.query, request.scheme, request.threshold,
      [&](int64_t text_end, int64_t query_end, int32_t score) {
        return sink({text_end, query_end, score, -1});
      });
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BASIC
// ---------------------------------------------------------------------------

Status BasicBackend::Prepare(const SearchRequest& request) const {
  if (Status status = Validate(request); !status.ok()) return status;
  if (index_->text_size() > kMaxTextLen) {
    return Status::FailedPrecondition(
        "basic backend builds an O(n^2) suffix trie; text of " +
        std::to_string(index_->text_size()) + " chars exceeds the " +
        std::to_string(kMaxTextLen) + "-char cap");
  }
  return Status::Ok();
}

Status BasicBackend::SearchImpl(const SearchRequest& request,
                                const HitSink& sink, EngineStats*) const {
  if (Status status = Prepare(request); !status.ok()) return status;
  ResultCollector hits = BasicAligner::Run(index_->text(), request.query,
                                           request.scheme, request.threshold);
  Drain(hits, sink);
  return Status::Ok();
}

}  // namespace api
}  // namespace alae
