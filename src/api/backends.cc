#include "src/api/backends.h"

#include <string>
#include <utility>

#include "src/align/dp.h"
#include "src/baseline/basic.h"
#include "src/baseline/blast/blast.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"

namespace alae {
namespace api {

namespace {

// Plans cross aligner instances of one backend (the sharded service
// compiles on shard 0 and executes everywhere), so execution re-derives
// the typed plan by downcast. A base-class plan with the right backend
// name can only come from an externally registered aligner that shares a
// builtin's name; compiling locally keeps that configuration correct.
template <typename Plan>
const Plan* Typed(const QueryPlan& plan) {
  return dynamic_cast<const Plan*>(&plan);
}

}  // namespace

// ---------------------------------------------------------------------------
// ALAE
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<QueryPlan>> AlaeBackend::CompileImpl(
    SearchRequest request) const {
  auto plan = std::make_unique<AlaePlan>(name(), std::move(request));
  // Warm the lazily-built domination index for the plan's q — derived by
  // the same FilterContext the engine will use, so "warm shared state" and
  // "build a plan" can never disagree about which index a search needs.
  if (plan->request().alae.domination_filter) {
    index_->Domination(plan->core().filters().q());
  }
  return StatusOr<std::unique_ptr<QueryPlan>>(std::move(plan));
}

Status AlaeBackend::SearchImpl(const QueryPlan& plan, const HitSink& sink,
                               EngineStats* stats) const {
  const AlaePlan* compiled = Typed<AlaePlan>(plan);
  std::unique_ptr<AlaePlan> local;
  if (compiled == nullptr) {
    local = std::make_unique<AlaePlan>(name(), plan.request());
    compiled = local.get();
  }
  Alae engine(*index_, plan.request().alae);
  AlaeRunStats run;
  ResultCollector hits =
      engine.Run(compiled->core(), &run, plan.request().cancel);
  stats->counters = run.counters;
  stats->anchors_considered = run.anchors_considered;
  stats->grams_searched = run.grams_searched;
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BWT-SW
// ---------------------------------------------------------------------------

BwtSwPlan::BwtSwPlan(std::string_view backend, SearchRequest request)
    : QueryPlan(backend, std::move(request)),
      profile_(BuildDeltaProfile(this->request().scheme,
                                 this->request().query)) {}

StatusOr<std::unique_ptr<QueryPlan>> BwtSwBackend::CompileImpl(
    SearchRequest request) const {
  return StatusOr<std::unique_ptr<QueryPlan>>(
      std::make_unique<BwtSwPlan>(name(), std::move(request)));
}

Status BwtSwBackend::SearchImpl(const QueryPlan& plan, const HitSink& sink,
                                EngineStats* stats) const {
  const BwtSwPlan* compiled = Typed<BwtSwPlan>(plan);
  ResultCollector hits = engine_.Run(
      plan.request().query, plan.request().scheme, plan.request().threshold,
      &stats->counters, compiled != nullptr ? &compiled->profile() : nullptr,
      plan.request().cancel);
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BLAST
// ---------------------------------------------------------------------------

BlastPlan::BlastPlan(std::string_view backend, SearchRequest request)
    : QueryPlan(backend, std::move(request)) {
  const int word = Blast::ResolveWordSize(this->request().blast,
                                          this->request().query);
  if (word > 0) {
    // The seeder holds a reference to the query; this->request() owns it
    // for the plan's lifetime (plans are neither copied nor moved).
    seeder_ = std::make_unique<WordSeeder>(this->request().query, word,
                                           this->request().blast.two_hit);
  }
}

StatusOr<std::unique_ptr<QueryPlan>> BlastBackend::CompileImpl(
    SearchRequest request) const {
  return StatusOr<std::unique_ptr<QueryPlan>>(
      std::make_unique<BlastPlan>(name(), std::move(request)));
}

Status BlastBackend::SearchImpl(const QueryPlan& plan, const HitSink& sink,
                                EngineStats* stats) const {
  const BlastPlan* compiled = Typed<BlastPlan>(plan);
  BlastRunStats run;
  ResultCollector hits = Blast::Run(
      index_->text(), plan.request().query, plan.request().scheme,
      plan.request().threshold, plan.request().blast, &run,
      compiled != nullptr ? compiled->seeder() : nullptr);
  stats->seeds = run.seeds;
  stats->ungapped_extensions = run.ungapped_extensions;
  stats->gapped_extensions = run.gapped_extensions;
  // BLAST's gapped DP computes M, Ga and Gb per cell, i.e. cost 3 in the
  // paper's Table 4 accounting.
  stats->counters.cells_cost3 = run.dp_cells;
  Drain(hits, sink);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Smith-Waterman
// ---------------------------------------------------------------------------

SwPlan::SwPlan(std::string_view backend, SearchRequest request)
    : QueryPlan(backend, std::move(request)),
      profile_(BuildDeltaProfile(this->request().scheme,
                                 this->request().query)) {}

StatusOr<std::unique_ptr<QueryPlan>> SmithWatermanBackend::CompileImpl(
    SearchRequest request) const {
  return StatusOr<std::unique_ptr<QueryPlan>>(
      std::make_unique<SwPlan>(name(), std::move(request)));
}

Status SmithWatermanBackend::SearchImpl(const QueryPlan& plan,
                                        const HitSink& sink,
                                        EngineStats* stats) const {
  const SwPlan* compiled = Typed<SwPlan>(plan);
  // SW computes each (i, j) cell exactly once and row order matches the
  // sink's ordering contract, so this backend streams with no collector;
  // Stream returns the cells actually computed (less than n*m when the
  // sink cancelled early).
  stats->counters.cells_cost3 = SmithWaterman::Stream(
      index_->text(), plan.request().query, plan.request().scheme,
      plan.request().threshold,
      [&](int64_t text_end, int64_t query_end, int32_t score) {
        return sink({text_end, query_end, score, -1});
      },
      compiled != nullptr ? &compiled->profile() : nullptr,
      plan.request().cancel);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// BASIC
// ---------------------------------------------------------------------------

Status BasicBackend::CheckTextCap() const {
  if (index_->text_size() > kMaxTextLen) {
    return Status::FailedPrecondition(
        "basic backend builds an O(n^2) suffix trie; text of " +
        std::to_string(index_->text_size()) + " chars exceeds the " +
        std::to_string(kMaxTextLen) + "-char cap");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<QueryPlan>> BasicBackend::CompileImpl(
    SearchRequest request) const {
  if (Status status = CheckTextCap(); !status.ok()) return status;
  return StatusOr<std::unique_ptr<QueryPlan>>(
      std::make_unique<QueryPlan>(name(), std::move(request)));
}

Status BasicBackend::SearchImpl(const QueryPlan& plan, const HitSink& sink,
                                EngineStats*) const {
  if (Status status = CheckTextCap(); !status.ok()) return status;
  ResultCollector hits =
      BasicAligner::Run(index_->text(), plan.request().query,
                        plan.request().scheme, plan.request().threshold);
  Drain(hits, sink);
  return Status::Ok();
}

}  // namespace api
}  // namespace alae
