#include "src/api/status.h"

namespace alae {
namespace api {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace api
}  // namespace alae
