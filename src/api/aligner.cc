#include "src/api/aligner.h"

#include <string>

#include "src/util/timer.h"

namespace alae {
namespace api {

namespace {

std::string_view KindName(AlphabetKind kind) {
  return kind == AlphabetKind::kDna ? "DNA" : "protein";
}

}  // namespace

Status Aligner::Validate(const SearchRequest& request) const {
  if (request.query.empty()) {
    return Status::InvalidArgument("query is empty");
  }
  if (request.query.alphabet().kind() != text().alphabet().kind()) {
    return Status::InvalidArgument(
        std::string("alphabet mismatch: query is ") +
        std::string(KindName(request.query.alphabet().kind())) +
        " but the indexed text is " +
        std::string(KindName(text().alphabet().kind())));
  }
  if (request.threshold <= 0) {
    return Status::InvalidArgument(
        "threshold must be >= 1, got " + std::to_string(request.threshold));
  }
  if (!request.scheme.Valid()) {
    return Status::InvalidArgument(
        "scoring scheme " + request.scheme.ToString() +
        " is malformed (need sa > 0 and sb, sg, ss < 0)");
  }
  return Status::Ok();
}

Status Aligner::Search(const SearchRequest& request, const HitSink& sink,
                       EngineStats* stats) const {
  if (Status status = Validate(request); !status.ok()) return status;

  Timer timer;
  EngineStats local;
  bool stopped = false;
  HitSink wrapped = [&](const AlignmentHit& hit) {
    ++local.hits_emitted;
    bool more = sink(hit);
    if (request.max_hits > 0 && local.hits_emitted >= request.max_hits) {
      more = false;
    }
    if (!more) stopped = true;
    return more;
  };
  Status status = SearchImpl(request, wrapped, &local);
  local.truncated = stopped;
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return status;
}

StatusOr<SearchResponse> Aligner::Search(const SearchRequest& request) const {
  SearchResponse response;
  Status status = Search(
      request,
      [&](const AlignmentHit& hit) {
        response.hits.push_back(hit);
        return true;
      },
      &response.stats);
  if (!status.ok()) return status;
  return response;
}

void Aligner::Drain(const ResultCollector& collector, const HitSink& sink) {
  for (const AlignmentHit& hit : collector.Sorted()) {
    if (!sink(hit)) return;
  }
}

}  // namespace api
}  // namespace alae
