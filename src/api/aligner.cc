#include "src/api/aligner.h"

#include <memory>
#include <string>
#include <utility>

#include "src/util/timer.h"

namespace alae {
namespace api {

namespace {

std::string_view KindName(AlphabetKind kind) {
  return kind == AlphabetKind::kDna ? "DNA" : "protein";
}

}  // namespace

Status Aligner::Validate(const SearchRequest& request) const {
  if (request.query.empty()) {
    return Status::InvalidArgument("query is empty");
  }
  if (request.query.alphabet().kind() != text().alphabet().kind()) {
    return Status::InvalidArgument(
        std::string("alphabet mismatch: query is ") +
        std::string(KindName(request.query.alphabet().kind())) +
        " but the indexed text is " +
        std::string(KindName(text().alphabet().kind())));
  }
  if (request.threshold <= 0) {
    return Status::InvalidArgument(
        "threshold must be >= 1, got " + std::to_string(request.threshold));
  }
  if (!request.scheme.Valid()) {
    return Status::InvalidArgument(
        "scoring scheme " + request.scheme.ToString() +
        " is malformed (need sa > 0 and sb, sg, ss < 0)");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<QueryPlan>> Aligner::Compile(
    SearchRequest request) const {
  if (Status status = Validate(request); !status.ok()) return status;
  Timer timer;
  StatusOr<std::unique_ptr<QueryPlan>> plan = CompileImpl(std::move(request));
  if (!plan.ok()) return plan;
  (*plan)->compile_ns_ =
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  return plan;
}

StatusOr<std::unique_ptr<QueryPlan>> Aligner::CompileImpl(
    SearchRequest request) const {
  return std::make_unique<QueryPlan>(name(), std::move(request));
}

Status Aligner::SearchImpl(const SearchRequest&, const HitSink&,
                           EngineStats*) const {
  return Status::Internal(std::string(name()) +
                          " implements neither SearchImpl overload");
}

Status Aligner::Search(const QueryPlan& plan, const HitSink& sink,
                       EngineStats* stats) const {
  if (plan.backend() != name()) {
    return Status::InvalidArgument(
        "plan was compiled by backend '" + std::string(plan.backend()) +
        "' but is executing on '" + std::string(name()) + "'");
  }
  // A plan may have been compiled by a sibling aligner (another shard);
  // re-check the one per-text constraint compilation could not see.
  if (plan.request().query.alphabet().kind() != text().alphabet().kind()) {
    return Status::InvalidArgument(
        "plan's query alphabet does not match this aligner's text");
  }

  // Cancellation conversion happens here, once, for every backend: the
  // engines merely stop when the token fires; this layer turns "token
  // fired" into kCancelled / kDeadlineExceeded / a flagged partial.
  const CancelToken* cancel = plan.request().cancel;
  const bool allow_partial = plan.request().allow_partial;
  if (cancel != nullptr) {
    // Fast-fail: an already-expired request never touches the engine.
    switch (cancel->ExpiredWhy()) {
      case CancelToken::Why::kCancelled:
        return Status::Cancelled("request cancelled before execution");
      case CancelToken::Why::kDeadline:
        if (!allow_partial) {
          return Status::DeadlineExceeded("deadline expired before execution");
        }
        if (stats != nullptr) {
          *stats = EngineStats{};
          stats->plan_reuses = 1;
          stats->truncated = true;
          stats->truncated_by_deadline = true;
        }
        return Status::Ok();
      case CancelToken::Why::kNone:
        break;
    }
  }

  Timer timer;
  EngineStats local;
  local.plan_reuses = 1;
  const uint64_t max_hits = plan.request().max_hits;
  bool stopped = false;
  HitSink wrapped = [&](const AlignmentHit& hit) {
    ++local.hits_emitted;
    bool more = sink(hit);
    if (max_hits > 0 && local.hits_emitted >= max_hits) {
      more = false;
    }
    if (!more) stopped = true;
    return more;
  };
  Status status = SearchImpl(plan, wrapped, &local);
  local.truncated = stopped;
  if (status.ok() && cancel != nullptr) {
    // Post-check: the engine may have bailed mid-run with an Ok status
    // (cooperative abort looks like early completion from the inside).
    // Conservative by design — a run that finished just as the deadline
    // expired is still reported as truncated/expired.
    switch (cancel->ExpiredWhy()) {
      case CancelToken::Why::kCancelled:
        status = Status::Cancelled("request cancelled during execution");
        break;
      case CancelToken::Why::kDeadline:
        if (allow_partial) {
          local.truncated = true;
          local.truncated_by_deadline = true;
        } else {
          status = Status::DeadlineExceeded("deadline expired mid-search");
        }
        break;
      case CancelToken::Why::kNone:
        break;
    }
  }
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return status;
}

StatusOr<SearchResponse> Aligner::Search(const QueryPlan& plan) const {
  SearchResponse response;
  Status status = Search(
      plan,
      [&](const AlignmentHit& hit) {
        response.hits.push_back(hit);
        return true;
      },
      &response.stats);
  if (!status.ok()) return status;
  return response;
}

Status Aligner::Search(const SearchRequest& request, const HitSink& sink,
                       EngineStats* stats) const {
  StatusOr<std::unique_ptr<QueryPlan>> plan = Compile(request);
  if (!plan.ok()) return plan.status();
  Status status = Search(**plan, sink, stats);
  if (stats != nullptr) {
    stats->plan_compile_ns = (*plan)->compile_ns();
    stats->plan_reuses = 0;  // the plan lived for exactly this call
  }
  return status;
}

StatusOr<SearchResponse> Aligner::Search(const SearchRequest& request) const {
  SearchResponse response;
  Status status = Search(
      request,
      [&](const AlignmentHit& hit) {
        response.hits.push_back(hit);
        return true;
      },
      &response.stats);
  if (!status.ok()) return status;
  return response;
}

void Aligner::Drain(const ResultCollector& collector, const HitSink& sink) {
  for (const AlignmentHit& hit : collector.Sorted()) {
    if (!sink(hit)) return;
  }
}

}  // namespace api
}  // namespace alae
