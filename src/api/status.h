#ifndef ALAE_API_STATUS_H_
#define ALAE_API_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace alae {
namespace api {

// Error vocabulary of the public API. The facade never throws and never
// silently misbehaves on bad input: every entry point reports one of these.
//
// Retryability contract (what the service and wire layers rely on): only
// kResourceExhausted means "same request, try again shortly" — it reports
// transient load shedding, not a property of the request. kDeadlineExceeded
// and kCancelled may accompany *partial* results when the request opted in
// via allow_partial (the response is then kOk with a truncation flag
// instead). Everything else is deterministic for the same request against
// the same corpus epoch; retrying unchanged will fail identically.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // the request itself is malformed
  kNotFound,            // unknown backend name
  kFailedPrecondition,  // request is well-formed but this backend can't run it
  kInternal,            // engine invariant violated (a bug)
  kResourceExhausted,   // service overloaded: bounded queue is full, retry
  kDeadlineExceeded,    // the request's deadline expired before completion
  kCancelled,           // the caller (or a shutdown) cancelled the request
};

std::string_view StatusCodeName(StatusCode code);

// Value-type status: a code plus a human-readable message. Cheap to copy,
// cheap to test (`if (!status.ok())`), and composable with RETURN_IF_ERROR-
// style early returns.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: query is empty".
  std::string ToString() const;

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A Status or a value: the return type of fallible constructors such as
// AlignerRegistry::Create. Access to value() asserts ok() in debug builds.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from an OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(value()); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace api
}  // namespace alae

#endif  // ALAE_API_STATUS_H_
