#ifndef ALAE_API_API_H_
#define ALAE_API_API_H_

// Umbrella header for the public search facade:
//
//   AlignerRegistry registry(text);              // index once
//   auto aligner = registry.Create("alae");      // pick a backend by name
//   SearchRequest request;
//   request.query = query;
//   request.threshold = 20;
//   auto response = (*aligner)->Search(request); // or the HitSink overload
//
// See src/api/aligner.h for the interface contract and src/api/registry.h
// for the backend matrix.

#include "src/api/aligner.h"    // IWYU pragma: export
#include "src/api/backends.h"   // IWYU pragma: export
#include "src/api/driver.h"     // IWYU pragma: export
#include "src/api/plan.h"       // IWYU pragma: export
#include "src/api/registry.h"   // IWYU pragma: export
#include "src/api/search.h"     // IWYU pragma: export
#include "src/api/status.h"     // IWYU pragma: export

#endif  // ALAE_API_API_H_
