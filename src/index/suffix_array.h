#ifndef ALAE_INDEX_SUFFIX_ARRAY_H_
#define ALAE_INDEX_SUFFIX_ARRAY_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// Suffix-array construction.
//
// BuildSuffixArray appends an implicit sentinel smaller than every symbol:
// the returned array has size n+1 and sa[0] == n (the empty suffix /
// sentinel position), matching the paper's SA over T' = T$ (§2.3).
//
// The main implementation is SA-IS (Nong, Zhang, Chan 2009), linear time and
// memory-lean, which is what makes indexing multi-megabyte texts practical.
// BuildSuffixArrayNaive is an O(n^2 log n) comparison sort kept as a test
// oracle.
std::vector<int64_t> BuildSuffixArray(const std::vector<Symbol>& text, int sigma);
std::vector<int64_t> BuildSuffixArrayNaive(const std::vector<Symbol>& text);

}  // namespace alae

#endif  // ALAE_INDEX_SUFFIX_ARRAY_H_
