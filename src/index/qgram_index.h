#ifndef ALAE_INDEX_QGRAM_INDEX_H_
#define ALAE_INDEX_QGRAM_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// Inverted lists of the q-grams of a query P, built on the fly in O(m)
// (paper §3.1.3). A fork can only be anchored where the suffix-trie path's
// q-prefix exactly matches a q-gram of P, so these lists are the entry
// point of prefix filtering.
//
// Keys are the base-sigma value of the q-gram. For small sigma^q a flat
// table is used; otherwise a hash map.
class QGramIndex {
 public:
  QGramIndex() = default;
  QGramIndex(const Sequence& query, int q);

  int q() const { return q_; }
  size_t query_size() const { return m_; }

  // Base-sigma key of a q-gram (first symbol is the most significant digit).
  uint64_t KeyOf(const Symbol* gram) const;

  // Start positions (0-based) of the q-gram in P, ascending. Empty list if
  // the q-gram does not occur.
  const std::vector<int32_t>& Occurrences(uint64_t key) const;
  const std::vector<int32_t>& Occurrences(const Symbol* gram) const {
    return Occurrences(KeyOf(gram));
  }

  size_t SizeBytes() const;

 private:
  static constexpr uint64_t kFlatLimit = 1ULL << 22;

  int q_ = 0;
  size_t m_ = 0;
  int sigma_ = 4;
  uint64_t table_size_ = 0;  // sigma^q if flat, else 0
  std::vector<std::vector<int32_t>> flat_;
  std::unordered_map<uint64_t, std::vector<int32_t>> map_;
  std::vector<int32_t> empty_;
};

}  // namespace alae

#endif  // ALAE_INDEX_QGRAM_INDEX_H_
