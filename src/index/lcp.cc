#include "src/index/lcp.h"

#include <algorithm>

#include "src/index/suffix_array.h"

namespace alae {

LcpIndex::LcpIndex(const Sequence& seq) : n_(seq.size()) {
  const std::vector<Symbol>& s = seq.symbols();
  std::vector<int64_t> sa = BuildSuffixArray(s, seq.sigma());
  size_t rows = sa.size();  // n_ + 1 (includes sentinel suffix)
  rank_.assign(rows, 0);
  for (size_t r = 0; r < rows; ++r) {
    rank_[static_cast<size_t>(sa[r])] = static_cast<int64_t>(r);
  }
  // Kasai: lcp_[r] = LCP(suffix at row r, suffix at row r+1).
  lcp_.assign(rows, 0);
  size_t h = 0;
  for (size_t i = 0; i < rows; ++i) {
    size_t r = static_cast<size_t>(rank_[i]);
    if (r + 1 < rows) {
      size_t j = static_cast<size_t>(sa[r + 1]);
      while (i + h < n_ && j + h < n_ && s[i + h] == s[j + h]) ++h;
      lcp_[r] = static_cast<int32_t>(h);
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  // Sparse table for range-min over lcp_.
  log2_.assign(rows + 1, 0);
  for (size_t i = 2; i <= rows; ++i) log2_[i] = log2_[i / 2] + 1;
  int levels = log2_[rows] + 1;
  st_.assign(static_cast<size_t>(levels), {});
  st_[0] = lcp_;
  for (int k = 1; k < levels; ++k) {
    size_t span = 1ULL << k;
    if (rows + 1 < span) break;
    st_[static_cast<size_t>(k)].resize(rows - span + 1);
    for (size_t i = 0; i + span <= rows; ++i) {
      st_[static_cast<size_t>(k)][i] =
          std::min(st_[static_cast<size_t>(k - 1)][i],
                   st_[static_cast<size_t>(k - 1)][i + span / 2]);
    }
  }
}

int32_t LcpIndex::RangeMin(size_t lo, size_t hi) const {
  int k = log2_[hi - lo];
  return std::min(st_[static_cast<size_t>(k)][lo],
                  st_[static_cast<size_t>(k)][hi - (1ULL << k)]);
}

size_t LcpIndex::Lcp(size_t i, size_t j) const {
  if (i == j) return n_ - i;
  size_t ri = static_cast<size_t>(rank_[i]);
  size_t rj = static_cast<size_t>(rank_[j]);
  if (ri > rj) std::swap(ri, rj);
  return static_cast<size_t>(RangeMin(ri, rj));
}

}  // namespace alae
