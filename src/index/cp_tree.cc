#include "src/index/cp_tree.h"

#include <algorithm>

namespace alae {

CpTree::CpTree(const Sequence& query, std::vector<int64_t> columns)
    : query_(&query), columns_(std::move(columns)) {
  nodes_.push_back(Node{});  // root
  reuse_.resize(columns_.size());
  for (size_t w = 0; w < columns_.size(); ++w) Insert(w);
}

void CpTree::Insert(size_t w) {
  const Sequence& p = *query_;
  int64_t m = static_cast<int64_t>(p.size());
  int64_t pos = columns_[w];      // next character of the suffix to match
  int64_t shared = 0;             // length matched against earlier forks
  int32_t source = -1;
  int32_t node = 0;               // root
  while (pos < m) {
    // Find a child whose edge starts with p[pos].
    int32_t next = -1;
    for (int32_t c : nodes_[static_cast<size_t>(node)].children) {
      if (p[static_cast<size_t>(nodes_[static_cast<size_t>(c)].start)] ==
          p[static_cast<size_t>(pos)]) {
        next = c;
        break;
      }
    }
    if (next < 0) {
      // No shared continuation: add the whole remaining suffix as one edge.
      Node leaf;
      leaf.start = pos;
      leaf.len = m - pos;
      leaf.first_fork = static_cast<int32_t>(w);
      leaf.depth = nodes_[static_cast<size_t>(node)].depth + leaf.len;
      nodes_.push_back(leaf);
      nodes_[static_cast<size_t>(node)].children.push_back(
          static_cast<int32_t>(nodes_.size() - 1));
      break;
    }
    // Match along the edge.
    Node& child = nodes_[static_cast<size_t>(next)];
    int64_t matched = 0;
    while (matched < child.len && pos + matched < m &&
           p[static_cast<size_t>(child.start + matched)] ==
               p[static_cast<size_t>(pos + matched)]) {
      ++matched;
    }
    // Every existing edge was created by an earlier fork, and that fork's
    // suffix spells the whole root-to-edge path, so the deepest edge we
    // match against shares the entire walked prefix.
    if (matched > 0 && child.first_fork >= 0) source = child.first_fork;
    shared += matched;
    if (matched == child.len) {
      pos += matched;
      node = next;
      continue;
    }
    // Split the edge at `matched`.
    Node split;
    split.start = child.start;
    split.len = matched;
    split.first_fork = child.first_fork;
    split.depth = nodes_[static_cast<size_t>(node)].depth + matched;
    child.start += matched;
    child.len -= matched;
    int32_t split_idx = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(split);
    // Rewire: node -> split -> child, plus the new leaf for the remainder.
    auto& siblings = nodes_[static_cast<size_t>(node)].children;
    *std::find(siblings.begin(), siblings.end(), next) = split_idx;
    nodes_[static_cast<size_t>(split_idx)].children.push_back(next);
    Node leaf;
    leaf.start = pos + matched;
    leaf.len = m - (pos + matched);
    leaf.first_fork = static_cast<int32_t>(w);
    leaf.depth = nodes_[static_cast<size_t>(split_idx)].depth + leaf.len;
    if (leaf.len > 0) {
      nodes_.push_back(leaf);
      nodes_[static_cast<size_t>(split_idx)].children.push_back(
          static_cast<int32_t>(nodes_.size() - 1));
    }
    break;
  }
  reuse_[w].length = shared;
  reuse_[w].source = source;
  if (shared == 0) reuse_[w].source = -1;
}

}  // namespace alae
