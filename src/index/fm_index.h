#ifndef ALAE_INDEX_FM_INDEX_H_
#define ALAE_INDEX_FM_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/index/bitvector.h"
#include "src/index/wavelet_tree.h"
#include "src/io/sequence.h"

namespace alae {

// Half-open interval of suffix-array rows [lo, hi).
struct SaRange {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t Count() const { return hi - lo; }
  bool Empty() const { return hi <= lo; }
  bool operator==(const SaRange& o) const { return lo == o.lo && hi == o.hi; }
};

struct FmIndexOptions {
  // Occ structure: flat checkpointed table (fast, larger) or wavelet tree
  // (the compressed-suffix-array flavour; smaller, O(log sigma) rank).
  bool use_wavelet = false;
  // Sampled-SA density: one sample per `sa_sample_rate` text positions.
  int sa_sample_rate = 32;
};

// FM-index over text+sentinel supporting backward search and locate.
//
// The aligners build this over reverse(T): one backward-search step for
// c·X⁻¹ then emulates appending character c to the suffix-trie path X
// (paper §5), and the located reverse positions map back to T through
// `n - r - |X|`. The index itself is direction-agnostic.
class FmIndex {
 public:
  FmIndex() = default;
  FmIndex(const Sequence& text, FmIndexOptions options = {});

  size_t text_size() const { return n_; }
  int sigma() const { return sigma_; }

  // All n+1 suffix rows (including the sentinel-only suffix).
  SaRange FullRange() const { return {0, static_cast<int64_t>(n_) + 1}; }

  // Backward-search step: rows of c·S given the rows of S. Symbols are
  // alphabet codes in [0, sigma).
  SaRange Extend(const SaRange& range, Symbol c) const;

  // Backward search of an entire pattern (processed right to left, §2.3).
  SaRange Find(const std::vector<Symbol>& pattern) const;
  SaRange Find(const Symbol* pattern, size_t len) const;

  // Text position (start of suffix) for a single SA row.
  int64_t LocateRow(int64_t row) const;

  // Text positions for every row of `range`, unsorted.
  std::vector<int64_t> Locate(const SaRange& range) const;

  // Component sizes for the Fig 11 index-size study.
  struct Sizes {
    size_t bwt_bytes = 0;       // occ structure incl. raw BWT storage
    size_t sample_bytes = 0;    // sampled SA + marks
    size_t Total() const { return bwt_bytes + sample_bytes; }
  };
  Sizes SizeBytes() const;

  // Serialisation (flat-occ indexes only; wavelet mode returns false).
  // Saves the prebuilt structures so Load skips suffix-array construction.
  bool Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // Stored symbols are shifted by +1; 0 is the sentinel.
  int64_t Occ(Symbol shifted, int64_t row) const;
  Symbol AccessBwt(int64_t row) const;
  int64_t LfStep(int64_t row) const;

  static constexpr int64_t kBlock = 64;

  size_t n_ = 0;
  int sigma_ = 0;
  bool use_wavelet_ = false;
  int sample_rate_ = 32;
  std::vector<int64_t> c_;  // c_[s] = #symbols (shifted) < s in the BWT

  // Flat-occ representation.
  std::vector<Symbol> bwt_;
  std::vector<uint32_t> checkpoints_;  // (row/kBlock)*(sigma+1)+symbol

  // Wavelet representation.
  WaveletTree wavelet_;

  // Sampled SA: rows whose suffix position is a multiple of sample_rate_.
  RankBitVector sampled_rows_;
  std::vector<int64_t> samples_;
};

}  // namespace alae

#endif  // ALAE_INDEX_FM_INDEX_H_
