#ifndef ALAE_INDEX_FM_INDEX_H_
#define ALAE_INDEX_FM_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/index/bitvector.h"
#include "src/index/fm_rank.h"
#include "src/index/wavelet_tree.h"
#include "src/io/sequence.h"
#include "src/util/cancel.h"

namespace alae {

// Half-open interval of suffix-array rows [lo, hi).
struct SaRange {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t Count() const { return hi - lo; }
  bool Empty() const { return hi <= lo; }
  bool operator==(const SaRange& o) const { return lo == o.lo && hi == o.hi; }
};

struct FmIndexOptions {
  // Occ structure: packed checkpointed blocks (fast, popcount rank) or
  // wavelet tree (the compressed-suffix-array flavour; O(log sigma) rank).
  bool use_wavelet = false;
  // Flat mode, sigma > 4: two-level checkpoints (u8 per-block deltas
  // against sparse u32 absolute rows — see FmOccLayout in fm_rank.h). The
  // default; off rebuilds the PR 2 single-level u32-checkpoint layout,
  // kept for A/B benchmarking and because legacy files load into it.
  // Ignored for sigma <= 4 (the DNA block is already one cache line).
  bool two_level_occ = true;
  // Sampled-SA density: one sample per `sa_sample_rate` text positions.
  int sa_sample_rate = 32;
};

// FM-index over text+sentinel supporting backward search and locate.
//
// The aligners build this over reverse(T): one backward-search step for
// c·X⁻¹ then emulates appending character c to the suffix-trie path X
// (paper §5), and the located reverse positions map back to T through
// `n - r - |X|`. The index itself is direction-agnostic.
//
// Flat-occ representation ("packed occ blocks"): the BWT is bit-packed —
// 2 bits/symbol for sigma <= 4 (DNA; the sentinel row is stored out of
// band), 4 bits for sigma <= 15, one byte otherwise — and interleaved with
// per-symbol checkpoint counts in fixed-size blocks of uint64 words:
//
//   [ cp_words x u64 : checkpoint counts ][ data_words x u64 : packed BWT ]
//
// DNA blocks carry two u32 counts per checkpoint word and span exactly one
// 64-byte cache line. For sigma > 4 the default is the *two-level* scheme:
// the block header holds one u8 delta per code and the full-width counts
// live in a sparse out-of-band table of u32 absolute rows (one row per
// 2-4 blocks), which shrinks the protein block from 216 to 88 bytes and
// halves the in-block scan. The rank entry points themselves are compiled
// twice and dispatched by cpuid (portable SWAR vs native popcnt — see
// fm_rank.h). See docs/ARCHITECTURE.md "Index internals & performance".
class FmIndex {
 public:
  FmIndex() = default;
  FmIndex(const Sequence& text, FmIndexOptions options = {});

  size_t text_size() const { return n_; }
  int sigma() const { return sigma_; }

  // All n+1 suffix rows (including the sentinel-only suffix).
  SaRange FullRange() const { return {0, static_cast<int64_t>(n_) + 1}; }

  // Backward-search step: rows of c·S given the rows of S. Symbols are
  // alphabet codes in [0, sigma).
  SaRange Extend(const SaRange& range, Symbol c) const;

  // Batched backward-search step: fills out[c] = Extend(range, c) for every
  // symbol c in [0, sigma) in one pass over the two boundary blocks of
  // `range` (one all-symbol rank per boundary instead of two single-symbol
  // ranks per child). This is what the trie-descent loops use: a node with
  // several live children pays the block scan once, not sigma times.
  void ExtendAll(const SaRange& range, SaRange* out) const;

  // Singleton fast path of ExtendAll: a one-row range [row, row+1) has at
  // most one nonempty backward extension, by exactly the symbol BWT[row]
  // (any other symbol's occ counts are equal at both boundaries). Returns
  // false when the row carries the sentinel — the path reaches the text
  // edge and extends by nothing; otherwise sets *c to that symbol and
  // *child to its (again one-row) extension, for one occ access + one rank
  // instead of two all-symbol boundary ranks. Trie descents spend most of
  // their deep nodes on singleton chains, which this roughly halves.
  bool ExtendSingleton(int64_t row, Symbol* c, SaRange* child) const;

  // Batched independent extends: out[i] = Extend(in[i], cs[i]). A single
  // extend is latency-bound on its two boundary-block fetches; issuing all
  // the batch's block prefetches before any rank lets the misses overlap
  // instead of serialising, which is where the "batched single-extend"
  // bench series gets its headroom. Results are exactly the one-by-one
  // extends.
  void ExtendBatch(const SaRange* in, const Symbol* cs, SaRange* out,
                   int count) const;

  // Hints the cache that the occ block(s) covering `range`'s boundaries are
  // about to be ranked. No-op for the wavelet mode (no single block to
  // fetch). Used by the fused sharded walk to overlap the per-lane block
  // misses across independent index lanes.
  void PrefetchRange(const SaRange& range) const {
    PrefetchRow(range.lo);
    PrefetchRow(range.hi);
  }
  void PrefetchRow(int64_t row) const {
    if (occ_data_.empty()) return;  // wavelet mode
    // Per-layout constant divisors so the block math strength-reduces; a
    // runtime divide would eat a measurable slice of the latency this hides.
    const uint64_t* base = occ_data_.data();
    switch (layout_) {
      case FmOccLayout::k2Bit:
        __builtin_prefetch(base + row / 192 * block_words_);
        break;
      case FmOccLayout::k4Bit:
      case FmOccLayout::kByte:
        __builtin_prefetch(base + row / 128 * block_words_);
        break;
      case FmOccLayout::k4BitTwoLevel:
        __builtin_prefetch(base + row / 96 * block_words_);
        break;
      case FmOccLayout::kByteTwoLevel:
        __builtin_prefetch(base + row / 64 * block_words_);
        break;
    }
  }

  // Resolved rank cursor for call-dense walk loops: the flat view and the
  // dispatched rank-op choice are captured once instead of being rebuilt
  // per call, and every method is header-inline, so a walk issuing
  // millions of per-lane rank calls pays only the rank itself plus one
  // predictable branch. Results are identical to the FmIndex wrappers in
  // every mode. Borrows the index: valid only while the index outlives it
  // unmodified (walks construct cursors per run, never cache them).
  class RankCursor {
   public:
    explicit RankCursor(const FmIndex& index)
        : index_(&index),
          native_(index.use_wavelet_ ? nullptr : SelectedNativeRankOps()),
          flat_(!index.use_wavelet_) {
      if (flat_) view_ = index.View();
    }

    SaRange Extend(const SaRange& range, Symbol c) const {
      if (!flat_) return index_->Extend(range, c);
      if (range.Empty()) return {0, 0};
      if (native_ != nullptr) return native_->extend(view_, range, c);
      return fm_rank_portable::Extend(view_, range, c);
    }
    void ExtendAll(const SaRange& range, SaRange* out) const {
      if (!flat_ || range.Empty()) {
        index_->ExtendAll(range, out);
        return;
      }
      if (native_ != nullptr) {
        native_->extend_all(view_, range, out);
        return;
      }
      fm_rank_portable::ExtendAll(view_, range, out);
    }
    int64_t SampledPosition(int64_t row) const {
      return index_->SampledPosition(row);
    }
    bool ExtendSingleton(int64_t row, Symbol* c, SaRange* child) const {
      if (!flat_) return index_->ExtendSingleton(row, c, child);
      if (native_ != nullptr) {
        return native_->extend_singleton(view_, row, c, child);
      }
      return fm_rank_portable::ExtendSingleton(view_, row, c, child);
    }
    void ExtendBatch(const SaRange* in, const Symbol* cs, SaRange* out,
                     int count) const {
      if (!flat_) {
        index_->ExtendBatch(in, cs, out, count);
        return;
      }
      if (native_ != nullptr) {
        native_->extend_batch(view_, in, cs, out, count);
        return;
      }
      fm_rank_portable::ExtendBatch(view_, in, cs, out, count);
    }
    void PrefetchRange(const SaRange& range) const {
      index_->PrefetchRange(range);
    }
    void PrefetchRow(int64_t row) const { index_->PrefetchRow(row); }
    SaRange FullRange() const { return index_->FullRange(); }
    int sigma() const { return index_->sigma(); }

   private:
    const FmIndex* index_;
    const FmRankOps* native_;
    bool flat_;
    FmFlatView view_;
  };
  RankCursor Cursor() const { return RankCursor(*this); }

  // Backward search of an entire pattern (processed right to left, §2.3).
  SaRange Find(const std::vector<Symbol>& pattern) const;
  SaRange Find(const Symbol* pattern, size_t len) const;

  // Text position (start of suffix) for a single SA row.
  int64_t LocateRow(int64_t row) const;

  // Free position probe: the suffix position of `row` if that row happens
  // to carry an SA sample, else -1 — one bit test, no LF walk. Singleton
  // descent visits consecutive text positions, so a chain crosses a
  // sampled position within sample_rate steps; the engine uses this to
  // swap the remaining FM extends for direct text reads.
  int64_t SampledPosition(int64_t row) const {
    if (!sampled_rows_.Get(static_cast<size_t>(row))) return -1;
    return samples_[sampled_rows_.Rank1(static_cast<size_t>(row))];
  }

  // Text positions for every row of `range`, unsorted. When `lf_steps` is
  // non-null it is incremented by the number of LF walk steps taken. A
  // fired `cancel` token (polled every ~4k LF steps) aborts the batch and
  // returns an EMPTY vector — never a partially-filled one that could be
  // misread as real positions; callers observing the token discard the run.
  std::vector<int64_t> Locate(const SaRange& range,
                              uint64_t* lf_steps = nullptr,
                              const CancelToken* cancel = nullptr) const;

  // Component sizes for the Fig 11 index-size study.
  struct Sizes {
    size_t bwt_bytes = 0;       // occ structure incl. packed BWT storage
    size_t sample_bytes = 0;    // sampled SA + marks
    size_t Total() const { return bwt_bytes + sample_bytes; }
  };
  Sizes SizeBytes() const;

  // Serialisation (magic "ALAEF3M"; the pre-two-level "ALAEF2M" files
  // still load, bit-exact, into the single-level layout). Both occ modes
  // have an on-disk form: flat files carry the packed occ blocks (plus the
  // absolute-row table in two-level layouts), wavelet files carry the
  // wavelet tree's node records (an out-of-band `packing` marker
  // distinguishes the two). Load validates every derived size and
  // structural invariant (c table, occ blocks — checkpoints, deltas and
  // absolute rows against running counts — or wavelet topology, SA marks
  // and samples, per-symbol totals) before accepting the payload and
  // returns false — never a partially-initialised index — on any mismatch,
  // including files written by the retired byte-BWT "ALAEF1M" format.
  bool Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // Sets the block geometry fields from sigma_ and two_level_.
  void InitOccGeometry();
  void BuildFlatOcc(const std::vector<Symbol>& bwt);
  bool LoadImpl(std::istream& in);
  bool ValidateFlatOcc() const;
  bool LoadSamplesAndCrossCheck(std::istream& in);

  // Rank view over the flat representation (see fm_rank.h). Rebuilt per
  // call: pointer aliases into our vectors stay valid across moves only
  // because nothing caches them.
  FmFlatView View() const {
    FmFlatView v;
    v.occ = occ_data_.data();
    v.abs = occ_abs_.data();
    v.c = c_.data();
    v.sentinel_row = sentinel_row_;
    v.cp_count = cp_count_;
    v.cp_words = cp_words_;
    v.block_words = block_words_;
    v.sigma = sigma_;
    v.layout = layout_;
    return v;
  }

  // Stored symbols are shifted by +1; 0 is the sentinel.
  int64_t Occ(Symbol shifted, int64_t row) const;
  Symbol AccessBwt(int64_t row) const;
  int64_t LocateRowSteps(int64_t row, uint64_t* steps) const;

  size_t n_ = 0;
  int sigma_ = 0;
  bool use_wavelet_ = false;
  bool two_level_ = false;
  int sample_rate_ = 32;
  std::vector<int64_t> c_;  // c_[s] = #symbols (shifted) < s in the BWT

  // Flat-occ representation: interleaved checkpoint+data blocks, plus the
  // sparse absolute-row table in two-level layouts.
  FmOccLayout layout_ = FmOccLayout::k2Bit;
  int32_t syms_per_block_ = 0;
  int32_t data_words_ = 0;
  int32_t cp_count_ = 0;   // checkpointed codes per block
  int32_t cp_words_ = 0;   // u32 pairs (single-level) or packed u8 deltas
  int32_t block_words_ = 0;
  int32_t super_shift_ = 0;    // log2(blocks per absolute row)
  int64_t sentinel_row_ = -1;  // 2-bit mode: BWT row holding the sentinel
  std::vector<uint64_t> occ_data_;
  std::vector<uint32_t> occ_abs_;  // absolute rows, [super][code]

  // Wavelet representation.
  WaveletTree wavelet_;

  // Sampled SA: rows whose suffix position is a multiple of sample_rate_.
  RankBitVector sampled_rows_;
  std::vector<int64_t> samples_;
};

}  // namespace alae

#endif  // ALAE_INDEX_FM_INDEX_H_
