#ifndef ALAE_INDEX_FM_INDEX_H_
#define ALAE_INDEX_FM_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/index/bitvector.h"
#include "src/index/wavelet_tree.h"
#include "src/io/sequence.h"
#include "src/util/cancel.h"

namespace alae {

// Half-open interval of suffix-array rows [lo, hi).
struct SaRange {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t Count() const { return hi - lo; }
  bool Empty() const { return hi <= lo; }
  bool operator==(const SaRange& o) const { return lo == o.lo && hi == o.hi; }
};

struct FmIndexOptions {
  // Occ structure: packed checkpointed blocks (fast, popcount rank) or
  // wavelet tree (the compressed-suffix-array flavour; O(log sigma) rank).
  bool use_wavelet = false;
  // Sampled-SA density: one sample per `sa_sample_rate` text positions.
  int sa_sample_rate = 32;
};

// FM-index over text+sentinel supporting backward search and locate.
//
// The aligners build this over reverse(T): one backward-search step for
// c·X⁻¹ then emulates appending character c to the suffix-trie path X
// (paper §5), and the located reverse positions map back to T through
// `n - r - |X|`. The index itself is direction-agnostic.
//
// Flat-occ representation ("packed occ blocks"): the BWT is bit-packed —
// 2 bits/symbol for sigma <= 4 (DNA; the sentinel row is stored out of
// band), 4 bits for sigma <= 15, one byte otherwise — and interleaved with
// its per-symbol checkpoint counts in fixed-size blocks of uint64 words:
//
//   [ cp_words x u64 : two u32 checkpoints per word ][ data_words x u64 ]
//
// so a rank lands on one block (64 bytes for DNA: exactly a cache line)
// and counts symbols with mask+popcount over whole 64-bit words instead of
// a per-symbol scalar scan. See README "Index internals & performance".
class FmIndex {
 public:
  FmIndex() = default;
  FmIndex(const Sequence& text, FmIndexOptions options = {});

  size_t text_size() const { return n_; }
  int sigma() const { return sigma_; }

  // All n+1 suffix rows (including the sentinel-only suffix).
  SaRange FullRange() const { return {0, static_cast<int64_t>(n_) + 1}; }

  // Backward-search step: rows of c·S given the rows of S. Symbols are
  // alphabet codes in [0, sigma).
  SaRange Extend(const SaRange& range, Symbol c) const;

  // Batched backward-search step: fills out[c] = Extend(range, c) for every
  // symbol c in [0, sigma) in one pass over the two boundary blocks of
  // `range` (one all-symbol rank per boundary instead of two single-symbol
  // ranks per child). This is what the trie-descent loops use: a node with
  // several live children pays the block scan once, not sigma times.
  void ExtendAll(const SaRange& range, SaRange* out) const;

  // Singleton fast path of ExtendAll: a one-row range [row, row+1) has at
  // most one nonempty backward extension, by exactly the symbol BWT[row]
  // (any other symbol's occ counts are equal at both boundaries). Returns
  // false when the row carries the sentinel — the path reaches the text
  // edge and extends by nothing; otherwise sets *c to that symbol and
  // *child to its (again one-row) extension, for one occ access + one rank
  // instead of two all-symbol boundary ranks. Trie descents spend most of
  // their deep nodes on singleton chains, which this roughly halves.
  bool ExtendSingleton(int64_t row, Symbol* c, SaRange* child) const;

  // Backward search of an entire pattern (processed right to left, §2.3).
  SaRange Find(const std::vector<Symbol>& pattern) const;
  SaRange Find(const Symbol* pattern, size_t len) const;

  // Text position (start of suffix) for a single SA row.
  int64_t LocateRow(int64_t row) const;

  // Text positions for every row of `range`, unsorted. When `lf_steps` is
  // non-null it is incremented by the number of LF walk steps taken. A
  // fired `cancel` token (polled every ~4k LF steps) aborts the batch and
  // returns an EMPTY vector — never a partially-filled one that could be
  // misread as real positions; callers observing the token discard the run.
  std::vector<int64_t> Locate(const SaRange& range,
                              uint64_t* lf_steps = nullptr,
                              const CancelToken* cancel = nullptr) const;

  // Component sizes for the Fig 11 index-size study.
  struct Sizes {
    size_t bwt_bytes = 0;       // occ structure incl. packed BWT storage
    size_t sample_bytes = 0;    // sampled SA + marks
    size_t Total() const { return bwt_bytes + sample_bytes; }
  };
  Sizes SizeBytes() const;

  // Serialisation (magic "ALAEF2M"). Both occ modes have an on-disk form:
  // flat files carry the packed occ blocks, wavelet files carry the wavelet
  // tree's node records (an out-of-band `packing` marker distinguishes the
  // two, so flat files are byte-identical to the pre-wavelet format). Load
  // validates every derived size and structural invariant (c table, occ
  // blocks or wavelet topology, SA marks and samples, per-symbol totals)
  // before accepting the payload and returns false — never a
  // partially-initialised index — on any mismatch, including files written
  // by the retired byte-BWT "ALAEF1M" format.
  bool Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  // How the flat occ blocks pack BWT symbols (chosen from sigma).
  enum class OccPacking : uint8_t { kTwoBit = 0, kFourBit = 1, kByte = 2 };

  // Sets the block geometry fields from sigma_.
  void InitOccGeometry();
  void BuildFlatOcc(const std::vector<Symbol>& bwt);
  bool LoadImpl(std::istream& in);
  bool LoadSamplesAndCrossCheck(std::istream& in);

  // Stored symbols are shifted by +1; 0 is the sentinel.
  int64_t Occ(Symbol shifted, int64_t row) const;
  Symbol AccessBwt(int64_t row) const;
  int64_t LfStep(int64_t row) const;
  int64_t LocateRowSteps(int64_t row, uint64_t* steps) const;

  size_t n_ = 0;
  int sigma_ = 0;
  bool use_wavelet_ = false;
  int sample_rate_ = 32;
  std::vector<int64_t> c_;  // c_[s] = #symbols (shifted) < s in the BWT

  // Flat-occ representation: interleaved checkpoint+data blocks.
  OccPacking packing_ = OccPacking::kTwoBit;
  int32_t syms_per_block_ = 0;
  int32_t data_words_ = 0;
  int32_t cp_count_ = 0;   // checkpointed codes per block
  int32_t cp_words_ = 0;   // ceil(cp_count / 2)
  int32_t block_words_ = 0;
  int64_t sentinel_row_ = -1;  // 2-bit mode: BWT row holding the sentinel
  std::vector<uint64_t> occ_data_;

  // Wavelet representation.
  WaveletTree wavelet_;

  // Sampled SA: rows whose suffix position is a multiple of sample_rate_.
  RankBitVector sampled_rows_;
  std::vector<int64_t> samples_;
};

}  // namespace alae

#endif  // ALAE_INDEX_FM_INDEX_H_
