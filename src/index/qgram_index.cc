#include "src/index/qgram_index.h"

#include <cmath>

namespace alae {

QGramIndex::QGramIndex(const Sequence& query, int q)
    : q_(q), m_(query.size()), sigma_(query.sigma()) {
  // Decide representation.
  uint64_t size = 1;
  bool overflow = false;
  for (int i = 0; i < q_; ++i) {
    size *= static_cast<uint64_t>(sigma_);
    if (size > kFlatLimit) {
      overflow = true;
      break;
    }
  }
  table_size_ = overflow ? 0 : size;
  if (table_size_ > 0) flat_.resize(table_size_);

  if (m_ < static_cast<size_t>(q_)) return;
  // Rolling key over the query.
  uint64_t key = 0;
  uint64_t msd = 1;  // sigma^(q-1), weight of the outgoing symbol
  for (int i = 0; i < q_ - 1; ++i) msd *= static_cast<uint64_t>(sigma_);
  for (size_t i = 0; i < m_; ++i) {
    key = key * static_cast<uint64_t>(sigma_) + query[i];
    if (i + 1 >= static_cast<size_t>(q_)) {
      int32_t pos = static_cast<int32_t>(i + 1 - static_cast<size_t>(q_));
      if (table_size_ > 0) {
        flat_[key].push_back(pos);
      } else {
        map_[key].push_back(pos);
      }
      key -= static_cast<uint64_t>(query[static_cast<size_t>(pos)]) * msd;
    }
  }
}

uint64_t QGramIndex::KeyOf(const Symbol* gram) const {
  uint64_t key = 0;
  for (int i = 0; i < q_; ++i) {
    key = key * static_cast<uint64_t>(sigma_) + gram[i];
  }
  return key;
}

const std::vector<int32_t>& QGramIndex::Occurrences(uint64_t key) const {
  if (table_size_ > 0) {
    if (key < table_size_) return flat_[key];
    return empty_;
  }
  auto it = map_.find(key);
  return it == map_.end() ? empty_ : it->second;
}

size_t QGramIndex::SizeBytes() const {
  size_t total = sizeof(*this);
  for (const auto& v : flat_) total += sizeof(v) + v.size() * sizeof(int32_t);
  for (const auto& [k, v] : map_) {
    (void)k;
    total += sizeof(uint64_t) + sizeof(v) + v.size() * sizeof(int32_t);
  }
  return total;
}

}  // namespace alae
