#ifndef ALAE_INDEX_CP_TREE_H_
#define ALAE_INDEX_CP_TREE_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// Common-prefix tree over a set of query suffixes (paper §4.2, Algorithm 2,
// CONSTRUCTCPTREE).
//
// Given fork columns j_1 < j_2 < ... < j_k inside one matrix, the suffixes
// P[j_w, m) are inserted in column order with path compression (edges are
// (start, len) slices of P, so insertion allocates O(1) nodes per fork).
//
// The tree answers the reuse question of §4: for fork w, what is the longest
// prefix of P[j_w, m) that also prefixes an earlier fork's suffix, and which
// fork is it? Gap-region columns within that shared length can copy scores
// (Lemma 2 / Lemma 3).
class CpTree {
 public:
  struct ReuseInfo {
    int32_t source = -1;   // index (into the column vector) of the earlier
                           // fork sharing the longest prefix, or -1
    int64_t length = 0;    // length of the shared prefix
  };

  // `columns` must be strictly increasing positions in [0, query.size()).
  CpTree(const Sequence& query, std::vector<int64_t> columns);

  size_t num_forks() const { return columns_.size(); }

  // Reuse info for fork w (0-based index into `columns`). The first fork
  // never reuses.
  const ReuseInfo& Reuse(size_t w) const { return reuse_[w]; }

  // Internal structure inspection (tests): number of tree nodes.
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Edge label = query[start, start+len) leading into this node.
    int64_t start = 0;
    int64_t len = 0;
    std::vector<int32_t> children;
    int32_t first_fork = -1;  // earliest fork whose suffix passes here
    int64_t depth = 0;        // string depth at the bottom of this node
  };

  const Sequence* query_;
  std::vector<int64_t> columns_;
  std::vector<Node> nodes_;
  std::vector<ReuseInfo> reuse_;

  // Walks/extends the tree with the suffix starting at columns_[w],
  // recording the deepest point shared with earlier forks.
  void Insert(size_t w);
};

}  // namespace alae

#endif  // ALAE_INDEX_CP_TREE_H_
