#include "src/index/fm_index.h"

#include <istream>
#include <ostream>

#include "src/index/bwt.h"
#include "src/index/suffix_array.h"
#include "src/util/serialize.h"

namespace alae {

FmIndex::FmIndex(const Sequence& text, FmIndexOptions options)
    : n_(text.size()),
      sigma_(text.sigma()),
      use_wavelet_(options.use_wavelet),
      sample_rate_(options.sa_sample_rate) {
  std::vector<int64_t> sa = BuildSuffixArray(text.symbols(), sigma_);
  BwtResult bwt = BuildBwt(text.symbols(), sa);

  // Cumulative counts over shifted symbols (sentinel = 0).
  c_.assign(static_cast<size_t>(sigma_) + 2, 0);
  for (Symbol s : bwt.bwt) ++c_[static_cast<size_t>(s) + 1];
  for (size_t s = 1; s < c_.size(); ++s) c_[s] += c_[s - 1];

  int64_t rows = static_cast<int64_t>(bwt.bwt.size());
  if (use_wavelet_) {
    wavelet_ = WaveletTree(bwt.bwt, sigma_ + 1);
  } else {
    bwt_ = bwt.bwt;
    int64_t blocks = rows / kBlock + 1;
    checkpoints_.assign(static_cast<size_t>(blocks * (sigma_ + 1)), 0);
    std::vector<uint32_t> running(static_cast<size_t>(sigma_) + 1, 0);
    for (int64_t i = 0; i < rows; ++i) {
      if (i % kBlock == 0) {
        int64_t b = i / kBlock;
        for (int s = 0; s <= sigma_; ++s) {
          checkpoints_[static_cast<size_t>(b * (sigma_ + 1) + s)] =
              running[static_cast<size_t>(s)];
        }
      }
      ++running[bwt_[static_cast<size_t>(i)]];
    }
    // When rows is a multiple of the block size, the main loop never
    // reaches the final block boundary; fill it with the totals so
    // Occ(c, rows) can read it.
    if (rows % kBlock == 0) {
      int64_t b = rows / kBlock;
      for (int s = 0; s <= sigma_; ++s) {
        checkpoints_[static_cast<size_t>(b * (sigma_ + 1) + s)] =
            running[static_cast<size_t>(s)];
      }
    }
  }

  // Sampled SA: mark rows whose suffix start is a multiple of the rate
  // (plus the sentinel row so every LF walk terminates).
  BitVector marks(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t pos = sa[static_cast<size_t>(r)];
    if (pos % sample_rate_ == 0 || pos == static_cast<int64_t>(n_)) {
      marks.Set(static_cast<size_t>(r), true);
    }
  }
  sampled_rows_ = RankBitVector(marks);
  samples_.assign(sampled_rows_.ones(), 0);
  for (int64_t r = 0; r < rows; ++r) {
    if (marks.Get(static_cast<size_t>(r))) {
      samples_[sampled_rows_.Rank1(static_cast<size_t>(r))] =
          sa[static_cast<size_t>(r)];
    }
  }
}

Symbol FmIndex::AccessBwt(int64_t row) const {
  if (use_wavelet_) return wavelet_.Access(static_cast<size_t>(row));
  return bwt_[static_cast<size_t>(row)];
}

int64_t FmIndex::Occ(Symbol shifted, int64_t row) const {
  if (use_wavelet_) {
    return static_cast<int64_t>(wavelet_.Rank(shifted, static_cast<size_t>(row)));
  }
  int64_t block = row / kBlock;
  int64_t r = checkpoints_[static_cast<size_t>(block * (sigma_ + 1) + shifted)];
  for (int64_t i = block * kBlock; i < row; ++i) {
    if (bwt_[static_cast<size_t>(i)] == shifted) ++r;
  }
  return r;
}

SaRange FmIndex::Extend(const SaRange& range, Symbol c) const {
  if (range.Empty()) return {0, 0};
  Symbol shifted = static_cast<Symbol>(c + 1);
  int64_t base = c_[shifted];
  int64_t lo = base + Occ(shifted, range.lo);
  int64_t hi = base + Occ(shifted, range.hi);
  return {lo, hi};
}

SaRange FmIndex::Find(const Symbol* pattern, size_t len) const {
  SaRange range = FullRange();
  for (size_t k = len; k-- > 0;) {
    range = Extend(range, pattern[k]);
    if (range.Empty()) return {0, 0};
  }
  return range;
}

SaRange FmIndex::Find(const std::vector<Symbol>& pattern) const {
  return Find(pattern.data(), pattern.size());
}

int64_t FmIndex::LfStep(int64_t row) const {
  Symbol s = AccessBwt(row);
  return c_[s] + Occ(s, row);
}

int64_t FmIndex::LocateRow(int64_t row) const {
  int64_t steps = 0;
  while (!sampled_rows_.Get(static_cast<size_t>(row))) {
    row = LfStep(row);
    ++steps;
  }
  return samples_[sampled_rows_.Rank1(static_cast<size_t>(row))] + steps;
}

std::vector<int64_t> FmIndex::Locate(const SaRange& range) const {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(range.Count()));
  for (int64_t r = range.lo; r < range.hi; ++r) out.push_back(LocateRow(r));
  return out;
}

namespace {
constexpr uint64_t kFmMagic = 0x414C414546314D00ULL;  // "ALAEF1M\0"
}  // namespace

bool FmIndex::Save(std::ostream& out) const {
  if (use_wavelet_) return false;  // wavelet serialisation unsupported
  if (!PutU64(out, kFmMagic)) return false;
  if (!PutU64(out, n_)) return false;
  if (!PutU64(out, static_cast<uint64_t>(sigma_))) return false;
  if (!PutU64(out, static_cast<uint64_t>(sample_rate_))) return false;
  if (!PutVec(out, c_)) return false;
  if (!PutVec(out, bwt_)) return false;
  if (!PutVec(out, checkpoints_)) return false;
  // Sampled SA: raw mark words + sample values; rank structures rebuild.
  if (!PutU64(out, sampled_rows_.size())) return false;
  if (!PutVec(out, sampled_rows_.RawWords())) return false;
  if (!PutVec(out, samples_)) return false;
  return true;
}

bool FmIndex::Load(std::istream& in) {
  uint64_t magic = 0, n = 0, sigma = 0, rate = 0;
  if (!GetU64(in, &magic) || magic != kFmMagic) return false;
  if (!GetU64(in, &n) || !GetU64(in, &sigma) || !GetU64(in, &rate)) {
    return false;
  }
  n_ = n;
  sigma_ = static_cast<int>(sigma);
  sample_rate_ = static_cast<int>(rate);
  use_wavelet_ = false;
  if (!GetVec(in, &c_)) return false;
  if (!GetVec(in, &bwt_)) return false;
  if (!GetVec(in, &checkpoints_)) return false;
  uint64_t mark_bits = 0;
  std::vector<uint64_t> mark_words;
  if (!GetU64(in, &mark_bits)) return false;
  if (!GetVec(in, &mark_words)) return false;
  // Basic structural validation before trusting the payload.
  if (bwt_.size() != n_ + 1) return false;
  if (c_.size() != static_cast<size_t>(sigma_) + 2) return false;
  if (mark_bits != bwt_.size()) return false;
  sampled_rows_ =
      RankBitVector(BitVector(mark_bits, std::move(mark_words)));
  if (!GetVec(in, &samples_)) return false;
  if (samples_.size() != sampled_rows_.ones()) return false;
  return true;
}

FmIndex::Sizes FmIndex::SizeBytes() const {
  Sizes sz;
  if (use_wavelet_) {
    sz.bwt_bytes = wavelet_.SizeBytes();
  } else {
    sz.bwt_bytes =
        bwt_.size() * sizeof(Symbol) + checkpoints_.size() * sizeof(uint32_t);
  }
  sz.sample_bytes =
      sampled_rows_.SizeBytes() + samples_.size() * sizeof(int64_t);
  return sz;
}

}  // namespace alae
