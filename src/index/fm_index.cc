#include "src/index/fm_index.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <utility>

#include "src/index/bwt.h"
#include "src/index/suffix_array.h"
#include "src/util/serialize.h"

namespace alae {
namespace {

// ---------------------------------------------------------------------------
// Packed-word rank primitives. Each returns an indicator word with one bit
// set per slot of `w` equal to `code` (at bit kBits*i, except byte mode
// which flags bit 8i+7), so a prefix rank is a mask + popcount.
// ---------------------------------------------------------------------------

inline uint64_t Match2(uint64_t w, uint32_t code) {
  uint64_t x = w ^ (code * 0x5555555555555555ULL);
  return ~(x | (x >> 1)) & 0x5555555555555555ULL;
}

inline uint64_t Match4(uint64_t w, uint32_t code) {
  uint64_t x = w ^ (code * 0x1111111111111111ULL);
  x |= x >> 1;
  x |= x >> 2;
  return ~x & 0x1111111111111111ULL;
}

inline uint64_t Match8(uint64_t w, uint32_t code) {
  // Exact per-byte zero detection: (b & 0x7F) + 0x7F overflows into the high
  // bit iff the low bits are non-zero, so no cross-byte carries occur (the
  // classic haszero() macro is only exact in aggregate, not per byte).
  uint64_t x = w ^ (code * 0x0101010101010101ULL);
  uint64_t y = ((x & 0x7F7F7F7F7F7F7F7FULL) + 0x7F7F7F7F7F7F7F7FULL) | x;
  return ~(y | 0x7F7F7F7F7F7F7F7FULL);
}

template <int kBits>
inline uint64_t MatchMask(uint64_t w, uint32_t code) {
  if constexpr (kBits == 2) return Match2(w, code);
  if constexpr (kBits == 4) return Match4(w, code);
  if constexpr (kBits == 8) return Match8(w, code);
}

// All-ones over the first `k` slots (k <= 64/kBits).
template <int kBits>
inline uint64_t PrefixMask(int k) {
  return k >= 64 / kBits
             ? ~0ULL
             : (1ULL << (static_cast<unsigned>(kBits) * k)) - 1;
}

// Count of `code` among the first `k` slots of `w` (k <= 64/kBits).
template <int kBits>
inline int64_t CountSlots(uint64_t w, uint32_t code, int k) {
  return std::popcount(MatchMask<kBits>(w, code) & PrefixMask<kBits>(k));
}

// Count of `code` in slots [a, b) of a block's data words.
template <int kBits, int kSpw>
int64_t CountBlockRange(const uint64_t* data, uint32_t code, int a, int b) {
  if (a >= b) return 0;
  const int wa = a / kSpw;
  const int wb = (b - 1) / kSpw;  // last word holding a counted slot
  const int ra = a % kSpw;
  if (wa == wb) {
    uint64_t mask = PrefixMask<kBits>(b - wb * kSpw) & ~PrefixMask<kBits>(ra);
    return std::popcount(MatchMask<kBits>(data[wa], code) & mask);
  }
  int64_t r = std::popcount(MatchMask<kBits>(data[wa], code) &
                            ~PrefixMask<kBits>(ra));
  for (int w = wa + 1; w < wb; ++w) {
    r += std::popcount(MatchMask<kBits>(data[w], code));
  }
  r += CountSlots<kBits>(data[wb], code, b - wb * kSpw);
  return r;
}

// Per-code totals of the 2-bit slots [a, b) via the even/odd bit planes:
// slot == 3 has both bits set, 2 only the high bit, 1 only the low bit,
// and code 0 falls out as the remainder — three popcounts per word instead
// of four full match-mask chains.
inline void CountPlanes2(const uint64_t* data, int a, int b, int64_t* c1,
                         int64_t* c2, int64_t* c3) {
  constexpr int kSpw = 32;
  for (int w = a / kSpw; w * kSpw < b; ++w) {
    const int lo = a > w * kSpw ? a - w * kSpw : 0;
    const int hi = b - w * kSpw < kSpw ? b - w * kSpw : kSpw;
    const uint64_t valid =
        (PrefixMask<2>(hi) & ~PrefixMask<2>(lo)) & 0x5555555555555555ULL;
    const uint64_t even = data[w] & valid;
    const uint64_t odd = (data[w] >> 1) & valid;
    *c3 += std::popcount(even & odd);
    *c2 += std::popcount(odd & ~even);
    *c1 += std::popcount(even & ~odd);
  }
}

// Read-only view over the interleaved checkpoint+data blocks.
struct OccView {
  const uint64_t* data;
  int32_t cp_words;
  int32_t block_words;
  int64_t rows;

  uint32_t Checkpoint(int64_t block, uint32_t code) const {
    uint64_t word = data[block * block_words + (code >> 1)];
    return static_cast<uint32_t>(word >> ((code & 1U) * 32));
  }
  const uint64_t* BlockData(int64_t block) const {
    return data + block * block_words + cp_words;
  }
};

// Rank of `code` at `row`: checkpoint plus popcounts over the in-block
// prefix. One block — one cache line for DNA — per rank; counting backward
// from the next block's checkpoint would halve the expected scan but touch
// a second line, which measures slower at memory-bound sizes. kSpb/kSpw
// are compile-time so row/kSpb strength-reduces.
template <int kBits, int kSpw, int kSpb>
int64_t OccCount(const OccView& v, uint32_t code, int64_t row) {
  const int64_t block = row / kSpb;
  const int k = static_cast<int>(row - block * kSpb);
  const uint64_t* data = v.BlockData(block);
  if constexpr (kBits == 2) {
    // Branchless over all six words: the per-word mask zeroes slots >= k,
    // so the scan length never feeds a data-dependent branch and the six
    // match chains retire in parallel.
    const uint64_t pat = code * 0x5555555555555555ULL;
    int64_t r = v.Checkpoint(block, code);
    for (int w = 0; w < kSpb / kSpw; ++w) {
      const int rem = k - w * kSpw;
      const uint64_t mask =
          rem >= kSpw ? 0x5555555555555555ULL
          : rem <= 0  ? 0
                      : (1ULL << (2 * rem)) - 1;
      const uint64_t x = data[w] ^ pat;
      r += std::popcount(~(x | (x >> 1)) & 0x5555555555555555ULL & mask);
    }
    return r;
  }
  return v.Checkpoint(block, code) +
         CountBlockRange<kBits, kSpw>(data, code, 0, k);
}

// Ranks of every code at `row` in one pass: all checkpoints, then either
// per-code popcounts (2-bit: four masks per word) or a scalar histogram of
// the decoded prefix (4-bit/byte: sigma-independent).
template <int kBits, int kSpw, int kSpb>
void OccCountAll(const OccView& v, int32_t cp_count, int64_t row,
                 int64_t* counts) {
  const int64_t block = row / kSpb;
  const int k = static_cast<int>(row - block * kSpb);
  const uint64_t* data = v.BlockData(block);
  for (int32_t code = 0; code < cp_count; ++code) {
    counts[code] = v.Checkpoint(block, static_cast<uint32_t>(code));
  }
  if constexpr (kBits == 2) {
    int64_t c1 = 0, c2 = 0, c3 = 0;
    CountPlanes2(data, 0, k, &c1, &c2, &c3);
    counts[0] += k - c1 - c2 - c3;
    counts[1] += c1;
    counts[2] += c2;
    counts[3] += c3;
  } else {
    constexpr uint64_t kSlotMask = (1ULL << kBits) - 1;
    for (int i = 0; i < k; ++i) {
      ++counts[(data[i / kSpw] >> ((i % kSpw) * kBits)) & kSlotMask];
    }
  }
}

// Ranks of `code` at both boundaries of a range in one go. Deep trie nodes
// have narrow ranges whose boundaries share a block: the checkpoint load
// and the [0, lo) prefix scan are then paid once, and the hi rank is just
// the in-between delta (a single mask+popcount for singleton ranges).
template <int kBits, int kSpw, int kSpb>
inline std::pair<int64_t, int64_t> OccCountPair(const OccView& v,
                                                uint32_t code, int64_t lo,
                                                int64_t hi) {
  const int64_t block = lo / kSpb;
  const int64_t khi = hi - block * kSpb;
  if (khi <= kSpb) {  // hi in the same block (or exactly on its boundary)
    const int klo = static_cast<int>(lo - block * kSpb);
    int64_t c_lo = OccCount<kBits, kSpw, kSpb>(v, code, lo);
    int64_t c_hi = c_lo + CountBlockRange<kBits, kSpw>(
                              v.BlockData(block), code, klo,
                              static_cast<int>(khi));
    return {c_lo, c_hi};
  }
  return {OccCount<kBits, kSpw, kSpb>(v, code, lo),
          OccCount<kBits, kSpw, kSpb>(v, code, hi)};
}

// OccCountAll at both boundaries: when they share a block the hi counts are
// the lo counts plus a histogram of the in-between slots.
template <int kBits, int kSpw, int kSpb>
void OccCountAllPair(const OccView& v, int32_t cp_count, int64_t lo,
                     int64_t hi, int64_t* lo_counts, int64_t* hi_counts) {
  const int64_t block = lo / kSpb;
  const int64_t khi = hi - block * kSpb;
  OccCountAll<kBits, kSpw, kSpb>(v, cp_count, lo, lo_counts);
  if (khi > kSpb) {  // boundaries in different blocks
    OccCountAll<kBits, kSpw, kSpb>(v, cp_count, hi, hi_counts);
    return;
  }
  for (int32_t code = 0; code < cp_count; ++code) {
    hi_counts[code] = lo_counts[code];
  }
  const int klo = static_cast<int>(lo - block * kSpb);
  const uint64_t* data = v.BlockData(block);
  if constexpr (kBits == 2) {
    int64_t c1 = 0, c2 = 0, c3 = 0;
    CountPlanes2(data, klo, static_cast<int>(khi), &c1, &c2, &c3);
    hi_counts[0] += khi - klo - c1 - c2 - c3;
    hi_counts[1] += c1;
    hi_counts[2] += c2;
    hi_counts[3] += c3;
  } else {
    constexpr uint64_t kSlotMask = (1ULL << kBits) - 1;
    for (int i = klo; i < khi; ++i) {
      ++hi_counts[(data[i / kSpw] >> ((i % kSpw) * kBits)) & kSlotMask];
    }
  }
}

template <int kBits, int kSpw, int kSpb>
uint32_t OccExtract(const OccView& v, int64_t row) {
  const int64_t block = row / kSpb;
  const int k = static_cast<int>(row - block * kSpb);
  uint64_t word = v.BlockData(block)[k / kSpw];
  return static_cast<uint32_t>(word >> ((k % kSpw) * kBits)) &
         ((1U << kBits) - 1);
}

// OccExtract + OccCount of the extracted code in one block visit: the
// singleton-descent primitive (symbol at `row` and its rank there share
// the block base, checkpoint word and data words).
template <int kBits, int kSpw, int kSpb>
std::pair<uint32_t, int64_t> OccExtractCount(const OccView& v, int64_t row) {
  const int64_t block = row / kSpb;
  const int k = static_cast<int>(row - block * kSpb);
  const uint64_t* data = v.BlockData(block);
  const uint32_t code =
      static_cast<uint32_t>(data[k / kSpw] >> ((k % kSpw) * kBits)) &
      ((1U << kBits) - 1);
  if constexpr (kBits == 2) {
    const uint64_t pat = code * 0x5555555555555555ULL;
    int64_t r = v.Checkpoint(block, code);
    for (int w = 0; w < kSpb / kSpw; ++w) {
      const int rem = k - w * kSpw;
      const uint64_t mask =
          rem >= kSpw ? 0x5555555555555555ULL
          : rem <= 0  ? 0
                      : (1ULL << (2 * rem)) - 1;
      const uint64_t x = data[w] ^ pat;
      r += std::popcount(~(x | (x >> 1)) & 0x5555555555555555ULL & mask);
    }
    return {code, r};
  }
  return {code, v.Checkpoint(block, code) +
                    CountBlockRange<kBits, kSpw>(data, code, 0, k)};
}

constexpr uint64_t kFmMagicV2 = 0x414C414546324D00ULL;  // "ALAEF2M\0"

// Header `packing` value marking a wavelet-mode payload. Flat-mode files
// store their OccPacking (0/1/2) there, which is fully determined by sigma,
// so this out-of-band value is unambiguous.
constexpr uint64_t kWaveletModeMarker = 3;

}  // namespace

void FmIndex::InitOccGeometry() {
  if (sigma_ <= 4) {
    // 2-bit codes are shifted-1; the sentinel row is stored out of band and
    // its slot holds placeholder code 0. 2 cp words + 6 data words = one
    // 64-byte cache line covering 192 symbols.
    packing_ = OccPacking::kTwoBit;
    syms_per_block_ = 192;
    data_words_ = 6;
    cp_count_ = 4;
  } else if (sigma_ <= 15) {
    packing_ = OccPacking::kFourBit;
    syms_per_block_ = 128;
    data_words_ = 8;
    cp_count_ = sigma_ + 1;
  } else {
    packing_ = OccPacking::kByte;
    syms_per_block_ = 128;
    data_words_ = 16;
    cp_count_ = sigma_ + 1;
  }
  cp_words_ = (cp_count_ + 1) / 2;
  block_words_ = cp_words_ + data_words_;
}

void FmIndex::BuildFlatOcc(const std::vector<Symbol>& bwt) {
  InitOccGeometry();
  const int64_t rows = static_cast<int64_t>(bwt.size());
  const int64_t blocks = rows / syms_per_block_ + 1;
  occ_data_.assign(static_cast<size_t>(blocks * block_words_), 0);
  std::vector<uint32_t> running(static_cast<size_t>(cp_count_), 0);
  sentinel_row_ = -1;

  auto write_checkpoints = [&](int64_t block) {
    for (int32_t code = 0; code < cp_count_; ++code) {
      occ_data_[static_cast<size_t>(block * block_words_ + (code >> 1))] |=
          static_cast<uint64_t>(running[static_cast<size_t>(code)])
          << ((code & 1) * 32);
    }
  };

  const int bits = packing_ == OccPacking::kTwoBit   ? 2
                   : packing_ == OccPacking::kFourBit ? 4
                                                      : 8;
  const int spw = 64 / bits;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t block = i / syms_per_block_;
    const int64_t k = i - block * syms_per_block_;
    if (k == 0) write_checkpoints(block);
    uint32_t code;
    if (packing_ == OccPacking::kTwoBit && bwt[static_cast<size_t>(i)] == 0) {
      sentinel_row_ = i;
      code = 0;  // placeholder slot, counted like a real code-0 symbol so
                 // ranks can also run backward from the next checkpoint;
                 // readers subtract it with one sentinel_row_ compare
    } else {
      code = packing_ == OccPacking::kTwoBit
                 ? static_cast<uint32_t>(bwt[static_cast<size_t>(i)]) - 1
                 : bwt[static_cast<size_t>(i)];
    }
    ++running[code];
    occ_data_[static_cast<size_t>(block * block_words_ + cp_words_ +
                                  k / spw)] |=
        static_cast<uint64_t>(code) << ((k % spw) * bits);
  }
  // When rows is a multiple of the block size, the main loop never reaches
  // the final block boundary; fill it so Occ(c, rows) can read it.
  if (rows % syms_per_block_ == 0) write_checkpoints(rows / syms_per_block_);
}

FmIndex::FmIndex(const Sequence& text, FmIndexOptions options)
    : n_(text.size()),
      sigma_(text.sigma()),
      use_wavelet_(options.use_wavelet),
      sample_rate_(options.sa_sample_rate) {
  std::vector<int64_t> sa = BuildSuffixArray(text.symbols(), sigma_);
  BwtResult bwt = BuildBwt(text.symbols(), sa);

  // Cumulative counts over shifted symbols (sentinel = 0).
  c_.assign(static_cast<size_t>(sigma_) + 2, 0);
  for (Symbol s : bwt.bwt) ++c_[static_cast<size_t>(s) + 1];
  for (size_t s = 1; s < c_.size(); ++s) c_[s] += c_[s - 1];

  int64_t rows = static_cast<int64_t>(bwt.bwt.size());
  if (use_wavelet_) {
    wavelet_ = WaveletTree(bwt.bwt, sigma_ + 1);
  } else {
    BuildFlatOcc(bwt.bwt);
  }

  // Sampled SA: mark rows whose suffix start is a multiple of the rate
  // (plus the sentinel row so every LF walk terminates).
  BitVector marks(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t pos = sa[static_cast<size_t>(r)];
    if (pos % sample_rate_ == 0 || pos == static_cast<int64_t>(n_)) {
      marks.Set(static_cast<size_t>(r), true);
    }
  }
  sampled_rows_ = RankBitVector(marks);
  samples_.assign(sampled_rows_.ones(), 0);
  for (int64_t r = 0; r < rows; ++r) {
    if (marks.Get(static_cast<size_t>(r))) {
      samples_[sampled_rows_.Rank1(static_cast<size_t>(r))] =
          sa[static_cast<size_t>(r)];
    }
  }
}

Symbol FmIndex::AccessBwt(int64_t row) const {
  if (use_wavelet_) return wavelet_.Access(static_cast<size_t>(row));
  OccView view{occ_data_.data(), cp_words_, block_words_,
               static_cast<int64_t>(n_) + 1};
  switch (packing_) {
    case OccPacking::kTwoBit:
      if (row == sentinel_row_) return 0;
      return static_cast<Symbol>(OccExtract<2, 32, 192>(view, row) + 1);
    case OccPacking::kFourBit:
      return static_cast<Symbol>(OccExtract<4, 16, 128>(view, row));
    case OccPacking::kByte:
      return static_cast<Symbol>(OccExtract<8, 8, 128>(view, row));
  }
  return 0;
}

int64_t FmIndex::Occ(Symbol shifted, int64_t row) const {
  if (use_wavelet_) {
    return static_cast<int64_t>(
        wavelet_.Rank(shifted, static_cast<size_t>(row)));
  }
  OccView view{occ_data_.data(), cp_words_, block_words_,
               static_cast<int64_t>(n_) + 1};
  switch (packing_) {
    case OccPacking::kTwoBit: {
      if (shifted == 0) return sentinel_row_ < row ? 1 : 0;
      const uint32_t code = static_cast<uint32_t>(shifted) - 1;
      int64_t r = OccCount<2, 32, 192>(view, code, row);
      // Code-0 ranks include the sentinel's placeholder slot.
      if (code == 0 && sentinel_row_ < row) --r;
      return r;
    }
    case OccPacking::kFourBit:
      return OccCount<4, 16, 128>(view, shifted, row);
    case OccPacking::kByte:
      return OccCount<8, 8, 128>(view, shifted, row);
  }
  return 0;
}

SaRange FmIndex::Extend(const SaRange& range, Symbol c) const {
  if (range.Empty()) return {0, 0};
  const Symbol shifted = static_cast<Symbol>(c + 1);
  const int64_t base = c_[shifted];
  if (use_wavelet_) {
    return {base + Occ(shifted, range.lo), base + Occ(shifted, range.hi)};
  }
  OccView view{occ_data_.data(), cp_words_, block_words_,
               static_cast<int64_t>(n_) + 1};
  std::pair<int64_t, int64_t> occ{0, 0};
  switch (packing_) {
    case OccPacking::kTwoBit: {
      const uint32_t code = static_cast<uint32_t>(shifted) - 1;
      occ = OccCountPair<2, 32, 192>(view, code, range.lo, range.hi);
      if (code == 0) {  // code-0 ranks include the sentinel's placeholder
        occ.first -= sentinel_row_ < range.lo ? 1 : 0;
        occ.second -= sentinel_row_ < range.hi ? 1 : 0;
      }
      break;
    }
    case OccPacking::kFourBit:
      occ = OccCountPair<4, 16, 128>(view, shifted, range.lo, range.hi);
      break;
    case OccPacking::kByte:
      occ = OccCountPair<8, 8, 128>(view, shifted, range.lo, range.hi);
      break;
  }
  return {base + occ.first, base + occ.second};
}

void FmIndex::ExtendAll(const SaRange& range, SaRange* out) const {
  if (range.Empty()) {
    for (int c = 0; c < sigma_; ++c) out[c] = {0, 0};
    return;
  }
  if (use_wavelet_) {
    for (int c = 0; c < sigma_; ++c) {
      out[c] = Extend(range, static_cast<Symbol>(c));
    }
    return;
  }
  OccView view{occ_data_.data(), cp_words_, block_words_,
               static_cast<int64_t>(n_) + 1};
  switch (packing_) {
    case OccPacking::kTwoBit: {
      int64_t lo_counts[4];
      int64_t hi_counts[4];
      OccCountAllPair<2, 32, 192>(view, cp_count_, range.lo, range.hi,
                                  lo_counts, hi_counts);
      // Code-0 ranks include the sentinel's placeholder slot.
      lo_counts[0] -= sentinel_row_ < range.lo ? 1 : 0;
      hi_counts[0] -= sentinel_row_ < range.hi ? 1 : 0;
      for (int c = 0; c < sigma_; ++c) {
        int64_t base = c_[static_cast<size_t>(c) + 1];
        out[c] = {base + lo_counts[c], base + hi_counts[c]};
      }
      return;
    }
    case OccPacking::kFourBit: {
      int64_t lo_counts[16];
      int64_t hi_counts[16];
      OccCountAllPair<4, 16, 128>(view, cp_count_, range.lo, range.hi,
                                  lo_counts, hi_counts);
      for (int c = 0; c < sigma_; ++c) {
        int64_t base = c_[static_cast<size_t>(c) + 1];
        out[c] = {base + lo_counts[c + 1], base + hi_counts[c + 1]};
      }
      return;
    }
    case OccPacking::kByte: {
      int64_t lo_counts[256];
      int64_t hi_counts[256];
      OccCountAllPair<8, 8, 128>(view, cp_count_, range.lo, range.hi,
                                 lo_counts, hi_counts);
      for (int c = 0; c < sigma_; ++c) {
        int64_t base = c_[static_cast<size_t>(c) + 1];
        out[c] = {base + lo_counts[c + 1], base + hi_counts[c + 1]};
      }
      return;
    }
  }
}

SaRange FmIndex::Find(const Symbol* pattern, size_t len) const {
  SaRange range = FullRange();
  for (size_t k = len; k-- > 0;) {
    range = Extend(range, pattern[k]);
    if (range.Empty()) return {0, 0};
  }
  return range;
}

SaRange FmIndex::Find(const std::vector<Symbol>& pattern) const {
  return Find(pattern.data(), pattern.size());
}

int64_t FmIndex::LfStep(int64_t row) const {
  Symbol s = AccessBwt(row);
  return c_[s] + Occ(s, row);
}

bool FmIndex::ExtendSingleton(int64_t row, Symbol* c, SaRange* child) const {
  // Extend([row, row+1), BWT[row]-1): the lower boundary rank; the upper
  // is lower + 1 because BWT[row] is itself an occurrence of the symbol.
  // Flat modes fuse the symbol extraction with its rank (one block visit).
  if (!use_wavelet_) {
    OccView view{occ_data_.data(), cp_words_, block_words_,
                 static_cast<int64_t>(n_) + 1};
    switch (packing_) {
      case OccPacking::kTwoBit: {
        if (row == sentinel_row_) return false;
        auto [code, r] = OccExtractCount<2, 32, 192>(view, row);
        // Code-0 ranks include the sentinel's placeholder slot.
        if (code == 0 && sentinel_row_ < row) --r;
        const int64_t lf = c_[code + 1] + r;
        *c = static_cast<Symbol>(code);
        *child = {lf, lf + 1};
        return true;
      }
      case OccPacking::kFourBit: {
        auto [code, r] = OccExtractCount<4, 16, 128>(view, row);
        if (code == 0) return false;  // sentinel
        const int64_t lf = c_[code] + r;
        *c = static_cast<Symbol>(code - 1);
        *child = {lf, lf + 1};
        return true;
      }
      case OccPacking::kByte: {
        auto [code, r] = OccExtractCount<8, 8, 128>(view, row);
        if (code == 0) return false;  // sentinel
        const int64_t lf = c_[code] + r;
        *c = static_cast<Symbol>(code - 1);
        *child = {lf, lf + 1};
        return true;
      }
    }
  }
  const Symbol shifted = AccessBwt(row);
  if (shifted == 0) return false;  // sentinel: nothing precedes this suffix
  const int64_t lf = c_[shifted] + Occ(shifted, row);
  *c = static_cast<Symbol>(shifted - 1);
  *child = {lf, lf + 1};
  return true;
}

int64_t FmIndex::LocateRowSteps(int64_t row, uint64_t* steps) const {
  int64_t walked = 0;
  while (!sampled_rows_.Get(static_cast<size_t>(row))) {
    row = LfStep(row);
    // A valid walk visits distinct rows until it hits a mark, so it can
    // never exceed the row count; corrupted marks must not hang us.
    if (++walked > static_cast<int64_t>(n_) + 1) return 0;
  }
  if (steps != nullptr) *steps += static_cast<uint64_t>(walked);
  return samples_[sampled_rows_.Rank1(static_cast<size_t>(row))] + walked;
}

int64_t FmIndex::LocateRow(int64_t row) const {
  return LocateRowSteps(row, nullptr);
}

std::vector<int64_t> FmIndex::Locate(const SaRange& range,
                                     uint64_t* lf_steps,
                                     const CancelToken* cancel) const {
  if (range.Empty()) return {};
  CancelScan scan(cancel);
  std::vector<int64_t> out(static_cast<size_t>(range.Count()));
  if (use_wavelet_) {
    // Wavelet ranks bounce through log(sigma) small bitvectors; there is no
    // single block to prefetch, so the serial walk stays.
    for (int64_t r = range.lo; r < range.hi; ++r) {
      out[static_cast<size_t>(r - range.lo)] = LocateRowSteps(r, lf_steps);
      if (scan.Tick(sample_rate_)) return {};
    }
    return out;
  }

  // Flat mode: interleave up to four independent LF walks. Each step of a
  // walk is one dependent cache miss (the occ block of its current row), so
  // a hit-dense locate is latency-bound; issuing the next rows' block
  // prefetches before stepping lets the misses overlap instead of
  // serialising. Outputs land in their range slot, so the result is
  // identical to the row-by-row walk, as is the total step count.
  constexpr int kWays = 4;
  struct Walk {
    int64_t row;
    int64_t steps;
    size_t slot;
  };
  Walk walks[kWays];
  int active = 0;
  int64_t next_row = range.lo;
  uint64_t walked = 0;
  const int64_t step_cap = static_cast<int64_t>(n_) + 1;
  while (next_row < range.hi && active < kWays) {
    walks[active++] = {next_row, 0,
                       static_cast<size_t>(next_row - range.lo)};
    ++next_row;
  }
  while (active > 0) {
    if (scan.Tick(active)) return {};  // abort: no partial position list
    for (int i = 0; i < active; ++i) {
      __builtin_prefetch(occ_data_.data() +
                         walks[i].row / syms_per_block_ * block_words_);
    }
    for (int i = 0; i < active;) {
      Walk& w = walks[i];
      if (sampled_rows_.Get(static_cast<size_t>(w.row))) {
        out[w.slot] =
            samples_[sampled_rows_.Rank1(static_cast<size_t>(w.row))] +
            w.steps;
        walked += static_cast<uint64_t>(w.steps);
        if (next_row < range.hi) {  // refill the lane
          w = {next_row, 0, static_cast<size_t>(next_row - range.lo)};
          ++next_row;
        } else {
          w = walks[--active];
        }
        continue;  // the replacement walk gets processed this sweep
      }
      w.row = LfStep(w.row);
      // A valid walk visits distinct rows until it hits a mark; corrupted
      // marks must not hang us (mirrors LocateRowSteps).
      if (++w.steps > step_cap) {
        out[w.slot] = 0;
        if (next_row < range.hi) {
          w = {next_row, 0, static_cast<size_t>(next_row - range.lo)};
          ++next_row;
        } else {
          w = walks[--active];
        }
        continue;
      }
      ++i;
    }
  }
  if (lf_steps != nullptr) *lf_steps += walked;
  return out;
}

bool FmIndex::Save(std::ostream& out) const {
  if (!PutU64(out, kFmMagicV2)) return false;
  if (!PutU64(out, n_)) return false;
  if (!PutU64(out, static_cast<uint64_t>(sigma_))) return false;
  if (!PutU64(out, static_cast<uint64_t>(sample_rate_))) return false;
  if (!PutU64(out, use_wavelet_ ? kWaveletModeMarker
                                : static_cast<uint64_t>(packing_))) {
    return false;
  }
  if (!PutU64(out, static_cast<uint64_t>(sentinel_row_))) return false;
  if (!PutVec(out, c_)) return false;
  if (use_wavelet_) {
    if (!wavelet_.SaveTo(out)) return false;
  } else {
    if (!PutVec(out, occ_data_)) return false;
  }
  // Sampled SA: raw mark words + sample values; rank structures rebuild.
  if (!PutU64(out, sampled_rows_.size())) return false;
  if (!PutVec(out, sampled_rows_.RawWords())) return false;
  if (!PutVec(out, samples_)) return false;
  return true;
}

bool FmIndex::Load(std::istream& in) {
  // Stage into a fresh index so a rejected payload cannot leave *this
  // partially initialised.
  FmIndex staged;
  if (!staged.LoadImpl(in)) return false;
  *this = std::move(staged);
  return true;
}

bool FmIndex::LoadImpl(std::istream& in) {
  uint64_t magic = 0, n = 0, sigma = 0, rate = 0, packing = 0, sentinel = 0;
  if (!GetU64(in, &magic) || magic != kFmMagicV2) return false;
  if (!GetU64(in, &n) || !GetU64(in, &sigma) || !GetU64(in, &rate) ||
      !GetU64(in, &packing) || !GetU64(in, &sentinel)) {
    return false;
  }
  // Header sanity: the checkpoints are u32, so rows must fit in 32 bits.
  if (sigma < 1 || sigma > 254) return false;
  if (n > 0xFFFFFFFEULL) return false;
  if (rate < 1 || rate > (1ULL << 30)) return false;
  n_ = n;
  sigma_ = static_cast<int>(sigma);
  sample_rate_ = static_cast<int>(rate);
  use_wavelet_ = packing == kWaveletModeMarker;
  InitOccGeometry();
  const int64_t rows = static_cast<int64_t>(n_) + 1;
  // Flat payloads must store the packing sigma dictates; anything else
  // (except the wavelet marker) means corruption.
  if (!use_wavelet_ && packing != static_cast<uint64_t>(packing_)) {
    return false;
  }
  sentinel_row_ = static_cast<int64_t>(sentinel);
  if (!use_wavelet_ && packing_ == OccPacking::kTwoBit) {
    if (sentinel_row_ < 0 || sentinel_row_ >= rows) return false;
  } else if (sentinel_row_ != -1) {
    // Wavelet mode stores the sentinel in-band and never sets this.
    return false;
  }
  if (!GetVec(in, &c_)) return false;
  if (c_.size() != static_cast<size_t>(sigma_) + 2) return false;
  if (c_.front() != 0 || c_.back() != rows) return false;
  for (size_t s = 1; s < c_.size(); ++s) {
    if (c_[s] < c_[s - 1]) return false;
  }
  if (use_wavelet_) {
    // The wavelet loader re-derives the tree shape from (rows, sigma+1)
    // and rejects structural mismatches; the per-symbol total cross-check
    // against the C table below covers the bit contents.
    if (!wavelet_.LoadFrom(in, static_cast<size_t>(rows), sigma_ + 1)) {
      return false;
    }
    return LoadSamplesAndCrossCheck(in);
  }
  if (!GetVec(in, &occ_data_)) return false;
  const int64_t blocks = rows / syms_per_block_ + 1;
  if (occ_data_.size() != static_cast<size_t>(blocks * block_words_)) {
    return false;
  }
  // Walk every block: stored checkpoints must equal the running counts of
  // the packed data, and every populated slot must decode to a valid code
  // (an out-of-range code would index past c_ in LfStep). Without this, a
  // corrupted mid-file block passes Load and derails Extend/Locate later.
  {
    std::vector<int64_t> running(static_cast<size_t>(cp_count_), 0);
    for (int64_t b = 0; b < blocks; ++b) {
      for (int32_t code = 0; code < cp_count_; ++code) {
        uint64_t word =
            occ_data_[static_cast<size_t>(b * block_words_ + (code >> 1))];
        uint32_t stored = static_cast<uint32_t>(word >> ((code & 1) * 32));
        if (stored != static_cast<uint64_t>(
                          running[static_cast<size_t>(code)])) {
          return false;
        }
      }
      const int64_t start = b * syms_per_block_;
      const int lim = static_cast<int>(
          std::min<int64_t>(syms_per_block_, rows - start));
      if (lim <= 0) continue;
      const uint64_t* data =
          occ_data_.data() + b * block_words_ + cp_words_;
      if (packing_ == OccPacking::kTwoBit) {
        int64_t c1 = 0, c2 = 0, c3 = 0;
        CountPlanes2(data, 0, lim, &c1, &c2, &c3);
        const int64_t per_code[4] = {lim - c1 - c2 - c3, c1, c2, c3};
        for (int code = 0; code < 4; ++code) {
          // Code c encodes shifted symbol c+1, which must be <= sigma_.
          if (code >= sigma_ && per_code[code] != 0) return false;
          running[static_cast<size_t>(code)] += per_code[code];
        }
      } else {
        const int bits = packing_ == OccPacking::kFourBit ? 4 : 8;
        const int spw = 64 / bits;
        const uint64_t slot_mask = (1ULL << bits) - 1;
        for (int i = 0; i < lim; ++i) {
          uint32_t code = static_cast<uint32_t>(
              (data[i / spw] >> ((i % spw) * bits)) & slot_mask);
          if (code > static_cast<uint32_t>(sigma_)) return false;
          ++running[code];
        }
      }
    }
  }
  return LoadSamplesAndCrossCheck(in);
}

// Shared tail of both occ-mode load paths: the sampled SA and the final
// content cross-check.
bool FmIndex::LoadSamplesAndCrossCheck(std::istream& in) {
  const int64_t rows = static_cast<int64_t>(n_) + 1;
  uint64_t mark_bits = 0;
  std::vector<uint64_t> mark_words;
  if (!GetU64(in, &mark_bits)) return false;
  if (mark_bits != static_cast<uint64_t>(rows)) return false;
  if (!GetVec(in, &mark_words)) return false;
  if (mark_words.size() != (mark_bits + 63) / 64) return false;
  sampled_rows_ = RankBitVector(BitVector(mark_bits, std::move(mark_words)));
  // An unmarked row set would make every LF walk spin forever.
  if (sampled_rows_.ones() == 0) return false;
  if (!GetVec(in, &samples_)) return false;
  if (samples_.size() != sampled_rows_.ones()) return false;
  for (int64_t sample : samples_) {
    if (sample < 0 || sample > static_cast<int64_t>(n_)) return false;
  }
  // Cross-check: per-symbol occ totals must reproduce the C table (this
  // runs through whichever occ structure was just loaded).
  for (int s = 0; s <= sigma_; ++s) {
    if (Occ(static_cast<Symbol>(s), rows) !=
        c_[static_cast<size_t>(s) + 1] - c_[static_cast<size_t>(s)]) {
      return false;
    }
  }
  return true;
}

FmIndex::Sizes FmIndex::SizeBytes() const {
  Sizes sz;
  if (use_wavelet_) {
    sz.bwt_bytes = wavelet_.SizeBytes();
  } else {
    sz.bwt_bytes = occ_data_.size() * sizeof(uint64_t);
  }
  sz.sample_bytes =
      sampled_rows_.SizeBytes() + samples_.size() * sizeof(int64_t);
  return sz;
}

}  // namespace alae
