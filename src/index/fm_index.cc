#include "src/index/fm_index.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <utility>

#include "src/index/bwt.h"
#include "src/index/fm_rank.h"
#include "src/index/suffix_array.h"
#include "src/util/serialize.h"

// The rank primitives themselves (match masks, block scans, the per-layout
// OccCount* family) live in fm_rank_impl.inc and are compiled twice — the
// portable TU and the -mpopcnt clone — behind the coarse dispatch declared
// in fm_rank.h. This file owns construction, serialisation and the cold
// paths, and routes each hot entry point to the selected clone.

namespace alae {
namespace {

constexpr uint64_t kFmMagicV2 = 0x414C414546324D00ULL;  // "ALAEF2M\0"
constexpr uint64_t kFmMagicV3 = 0x414C414546334D00ULL;  // "ALAEF3M\0"

// Header `packing` value marking a wavelet-mode payload. Flat-mode files
// store 0/1/2 (2-bit/4-bit/byte) there, which is fully determined by
// sigma, so this out-of-band value is unambiguous. Two-levelness is a
// separate header word (v3 only), not a packing value: the packed-symbol
// width is still sigma's choice, only the checkpoint scheme changes.
constexpr uint64_t kWaveletModeMarker = 3;

constexpr uint64_t PackingForSigma(int sigma) {
  return sigma <= 4 ? 0 : sigma <= 15 ? 1 : 2;
}

// v3 layout-flags word: bit 0 = two-level checkpoints. All other bits must
// be zero (reserved; rejecting them keeps future format growth detectable
// rather than silently misread).
constexpr uint64_t kLayoutTwoLevel = 1;

inline SaRange FlatExtend(const FmFlatView& v, const SaRange& range,
                          Symbol c) {
  if (const FmRankOps* native = SelectedNativeRankOps()) {
    return native->extend(v, range, c);
  }
  return fm_rank_portable::Extend(v, range, c);
}

}  // namespace

void FmIndex::InitOccGeometry() {
  if (sigma_ <= 4) {
    // 2-bit codes are shifted-1; the sentinel row is stored out of band and
    // its slot holds placeholder code 0. 2 cp words + 6 data words = one
    // 64-byte cache line covering 192 symbols — already optimal, so the
    // two-level scheme never applies here.
    two_level_ = false;
    layout_ = FmOccLayout::k2Bit;
    cp_count_ = 4;
  } else if (sigma_ <= 15) {
    layout_ = two_level_ ? FmOccLayout::k4BitTwoLevel : FmOccLayout::k4Bit;
    cp_count_ = sigma_ + 1;
  } else {
    layout_ = two_level_ ? FmOccLayout::kByteTwoLevel : FmOccLayout::kByte;
    cp_count_ = sigma_ + 1;
  }
  const FmOccGeometry g = FmLayoutGeometry(layout_);
  syms_per_block_ = g.spb;
  data_words_ = g.data_words;
  super_shift_ = g.super_shift;
  cp_words_ = FmLayoutCpWords(layout_, cp_count_);
  block_words_ = cp_words_ + data_words_;
}

void FmIndex::BuildFlatOcc(const std::vector<Symbol>& bwt) {
  InitOccGeometry();
  const int64_t rows = static_cast<int64_t>(bwt.size());
  const int64_t blocks = rows / syms_per_block_ + 1;
  occ_data_.assign(static_cast<size_t>(blocks * block_words_), 0);
  occ_abs_.clear();
  if (two_level_) {
    const int64_t supers = ((blocks - 1) >> super_shift_) + 1;
    occ_abs_.assign(static_cast<size_t>(supers * cp_count_), 0);
  }
  std::vector<uint32_t> running(static_cast<size_t>(cp_count_), 0);
  std::vector<uint32_t> super_base(static_cast<size_t>(cp_count_), 0);
  sentinel_row_ = -1;

  auto write_checkpoints = [&](int64_t block) {
    if (two_level_) {
      // A block starting a superblock also snapshots the running counts
      // into its absolute row; every block then stores the u8 distance to
      // that row. The geometry bounds the distance at (2^shift - 1) * spb
      // <= 192 symbols, so the byte can never overflow.
      if ((block & ((int64_t{1} << super_shift_) - 1)) == 0) {
        const int64_t super = block >> super_shift_;
        for (int32_t code = 0; code < cp_count_; ++code) {
          occ_abs_[static_cast<size_t>(super * cp_count_ + code)] =
              running[static_cast<size_t>(code)];
          super_base[static_cast<size_t>(code)] =
              running[static_cast<size_t>(code)];
        }
      }
      for (int32_t code = 0; code < cp_count_; ++code) {
        const uint64_t delta = running[static_cast<size_t>(code)] -
                               super_base[static_cast<size_t>(code)];
        occ_data_[static_cast<size_t>(block * block_words_ + (code >> 3))] |=
            delta << ((code & 7) * 8);
      }
    } else {
      for (int32_t code = 0; code < cp_count_; ++code) {
        occ_data_[static_cast<size_t>(block * block_words_ + (code >> 1))] |=
            static_cast<uint64_t>(running[static_cast<size_t>(code)])
            << ((code & 1) * 32);
      }
    }
  };

  const FmOccGeometry g = FmLayoutGeometry(layout_);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t block = i / syms_per_block_;
    const int64_t k = i - block * syms_per_block_;
    if (k == 0) write_checkpoints(block);
    uint32_t code;
    if (layout_ == FmOccLayout::k2Bit && bwt[static_cast<size_t>(i)] == 0) {
      sentinel_row_ = i;
      code = 0;  // placeholder slot, counted like a real code-0 symbol so
                 // ranks can also run backward from the next checkpoint;
                 // readers subtract it with one sentinel_row_ compare
    } else {
      code = layout_ == FmOccLayout::k2Bit
                 ? static_cast<uint32_t>(bwt[static_cast<size_t>(i)]) - 1
                 : bwt[static_cast<size_t>(i)];
    }
    ++running[code];
    occ_data_[static_cast<size_t>(block * block_words_ + cp_words_ +
                                  k / g.spw)] |=
        static_cast<uint64_t>(code) << ((k % g.spw) * g.bits);
  }
  // When rows is a multiple of the block size, the main loop never reaches
  // the final block boundary; fill it so Occ(c, rows) can read it.
  if (rows % syms_per_block_ == 0) write_checkpoints(rows / syms_per_block_);
}

FmIndex::FmIndex(const Sequence& text, FmIndexOptions options)
    : n_(text.size()),
      sigma_(text.sigma()),
      use_wavelet_(options.use_wavelet),
      two_level_(options.two_level_occ),
      sample_rate_(options.sa_sample_rate) {
  std::vector<int64_t> sa = BuildSuffixArray(text.symbols(), sigma_);
  BwtResult bwt = BuildBwt(text.symbols(), sa);

  // Cumulative counts over shifted symbols (sentinel = 0).
  c_.assign(static_cast<size_t>(sigma_) + 2, 0);
  for (Symbol s : bwt.bwt) ++c_[static_cast<size_t>(s) + 1];
  for (size_t s = 1; s < c_.size(); ++s) c_[s] += c_[s - 1];

  int64_t rows = static_cast<int64_t>(bwt.bwt.size());
  if (use_wavelet_) {
    two_level_ = false;
    wavelet_ = WaveletTree(bwt.bwt, sigma_ + 1);
  } else {
    BuildFlatOcc(bwt.bwt);
  }

  // Sampled SA: mark rows whose suffix start is a multiple of the rate
  // (plus the sentinel row so every LF walk terminates).
  BitVector marks(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t pos = sa[static_cast<size_t>(r)];
    if (pos % sample_rate_ == 0 || pos == static_cast<int64_t>(n_)) {
      marks.Set(static_cast<size_t>(r), true);
    }
  }
  sampled_rows_ = RankBitVector(marks);
  samples_.assign(sampled_rows_.ones(), 0);
  for (int64_t r = 0; r < rows; ++r) {
    if (marks.Get(static_cast<size_t>(r))) {
      samples_[sampled_rows_.Rank1(static_cast<size_t>(r))] =
          sa[static_cast<size_t>(r)];
    }
  }
}

Symbol FmIndex::AccessBwt(int64_t row) const {
  if (use_wavelet_) return wavelet_.Access(static_cast<size_t>(row));
  const FmFlatView v = View();
  if (const FmRankOps* native = SelectedNativeRankOps()) {
    return native->access(v, row);
  }
  return fm_rank_portable::Access(v, row);
}

int64_t FmIndex::Occ(Symbol shifted, int64_t row) const {
  if (use_wavelet_) {
    return static_cast<int64_t>(
        wavelet_.Rank(shifted, static_cast<size_t>(row)));
  }
  const FmFlatView v = View();
  if (const FmRankOps* native = SelectedNativeRankOps()) {
    return native->occ(v, shifted, row);
  }
  return fm_rank_portable::OccRank(v, shifted, row);
}

SaRange FmIndex::Extend(const SaRange& range, Symbol c) const {
  if (range.Empty()) return {0, 0};
  if (use_wavelet_) {
    const Symbol shifted = static_cast<Symbol>(c + 1);
    const int64_t base = c_[shifted];
    return {base + Occ(shifted, range.lo), base + Occ(shifted, range.hi)};
  }
  return FlatExtend(View(), range, c);
}

void FmIndex::ExtendAll(const SaRange& range, SaRange* out) const {
  if (range.Empty()) {
    for (int c = 0; c < sigma_; ++c) out[c] = {0, 0};
    return;
  }
  if (use_wavelet_) {
    for (int c = 0; c < sigma_; ++c) {
      out[c] = Extend(range, static_cast<Symbol>(c));
    }
    return;
  }
  const FmFlatView v = View();
  if (const FmRankOps* native = SelectedNativeRankOps()) {
    native->extend_all(v, range, out);
    return;
  }
  fm_rank_portable::ExtendAll(v, range, out);
}

void FmIndex::ExtendBatch(const SaRange* in, const Symbol* cs, SaRange* out,
                          int count) const {
  if (use_wavelet_) {
    for (int i = 0; i < count; ++i) out[i] = Extend(in[i], cs[i]);
    return;
  }
  // One indirect call for the whole batch; the clone prefetches every
  // lane's boundary blocks before the first rank runs, then the per-item
  // extends are exactly the one-by-one results.
  const FmFlatView v = View();
  if (const FmRankOps* native = SelectedNativeRankOps()) {
    native->extend_batch(v, in, cs, out, count);
    return;
  }
  fm_rank_portable::ExtendBatch(v, in, cs, out, count);
}

SaRange FmIndex::Find(const Symbol* pattern, size_t len) const {
  SaRange range = FullRange();
  for (size_t k = len; k-- > 0;) {
    range = Extend(range, pattern[k]);
    if (range.Empty()) return {0, 0};
  }
  return range;
}

SaRange FmIndex::Find(const std::vector<Symbol>& pattern) const {
  return Find(pattern.data(), pattern.size());
}

bool FmIndex::ExtendSingleton(int64_t row, Symbol* c, SaRange* child) const {
  // Extend([row, row+1), BWT[row]-1): the lower boundary rank; the upper
  // is lower + 1 because BWT[row] is itself an occurrence of the symbol.
  // Flat modes fuse the symbol extraction with its rank (one block visit).
  if (!use_wavelet_) {
    const FmFlatView v = View();
    if (const FmRankOps* native = SelectedNativeRankOps()) {
      return native->extend_singleton(v, row, c, child);
    }
    return fm_rank_portable::ExtendSingleton(v, row, c, child);
  }
  const Symbol shifted = AccessBwt(row);
  if (shifted == 0) return false;  // sentinel: nothing precedes this suffix
  const int64_t lf = c_[shifted] + Occ(shifted, row);
  *c = static_cast<Symbol>(shifted - 1);
  *child = {lf, lf + 1};
  return true;
}

int64_t FmIndex::LocateRowSteps(int64_t row, uint64_t* steps) const {
  int64_t walked = 0;
  const FmFlatView v = View();
  const FmRankOps* native = use_wavelet_ ? nullptr : SelectedNativeRankOps();
  while (!sampled_rows_.Get(static_cast<size_t>(row))) {
    if (use_wavelet_) {
      const Symbol s = AccessBwt(row);
      row = c_[s] + Occ(s, row);
    } else {
      row = native ? native->lf_step(v, row) : fm_rank_portable::LfStep(v, row);
    }
    // A valid walk visits distinct rows until it hits a mark, so it can
    // never exceed the row count; corrupted marks must not hang us.
    if (++walked > static_cast<int64_t>(n_) + 1) return 0;
  }
  if (steps != nullptr) *steps += static_cast<uint64_t>(walked);
  return samples_[sampled_rows_.Rank1(static_cast<size_t>(row))] + walked;
}

int64_t FmIndex::LocateRow(int64_t row) const {
  return LocateRowSteps(row, nullptr);
}

std::vector<int64_t> FmIndex::Locate(const SaRange& range,
                                     uint64_t* lf_steps,
                                     const CancelToken* cancel) const {
  if (range.Empty()) return {};
  CancelScan scan(cancel);
  std::vector<int64_t> out(static_cast<size_t>(range.Count()));
  if (use_wavelet_) {
    // Wavelet ranks bounce through log(sigma) small bitvectors; there is no
    // single block to prefetch, so the serial walk stays.
    for (int64_t r = range.lo; r < range.hi; ++r) {
      out[static_cast<size_t>(r - range.lo)] = LocateRowSteps(r, lf_steps);
      if (scan.Tick(sample_rate_)) return {};
    }
    return out;
  }

  // Flat mode: interleave up to four independent LF walks. Each step of a
  // walk is one dependent cache miss (the occ block of its current row), so
  // a hit-dense locate is latency-bound; issuing the next rows' block
  // prefetches before stepping lets the misses overlap instead of
  // serialising. Outputs land in their range slot, so the result is
  // identical to the row-by-row walk, as is the total step count.
  const FmFlatView v = View();
  const FmRankOps* native = SelectedNativeRankOps();
  constexpr int kWays = 4;
  struct Walk {
    int64_t row;
    int64_t steps;
    size_t slot;
  };
  Walk walks[kWays];
  int active = 0;
  int64_t next_row = range.lo;
  uint64_t walked = 0;
  const int64_t step_cap = static_cast<int64_t>(n_) + 1;
  while (next_row < range.hi && active < kWays) {
    walks[active++] = {next_row, 0,
                       static_cast<size_t>(next_row - range.lo)};
    ++next_row;
  }
  while (active > 0) {
    if (scan.Tick(active)) return {};  // abort: no partial position list
    for (int i = 0; i < active; ++i) {
      PrefetchRow(walks[i].row);
    }
    for (int i = 0; i < active;) {
      Walk& w = walks[i];
      if (sampled_rows_.Get(static_cast<size_t>(w.row))) {
        out[w.slot] =
            samples_[sampled_rows_.Rank1(static_cast<size_t>(w.row))] +
            w.steps;
        walked += static_cast<uint64_t>(w.steps);
        if (next_row < range.hi) {  // refill the lane
          w = {next_row, 0, static_cast<size_t>(next_row - range.lo)};
          ++next_row;
        } else {
          w = walks[--active];
        }
        continue;  // the replacement walk gets processed this sweep
      }
      w.row = native ? native->lf_step(v, w.row)
                     : fm_rank_portable::LfStep(v, w.row);
      // A valid walk visits distinct rows until it hits a mark; corrupted
      // marks must not hang us (mirrors LocateRowSteps).
      if (++w.steps > step_cap) {
        out[w.slot] = 0;
        if (next_row < range.hi) {
          w = {next_row, 0, static_cast<size_t>(next_row - range.lo)};
          ++next_row;
        } else {
          w = walks[--active];
        }
        continue;
      }
      ++i;
    }
  }
  if (lf_steps != nullptr) *lf_steps += walked;
  return out;
}

bool FmIndex::Save(std::ostream& out) const {
  if (!PutU64(out, kFmMagicV3)) return false;
  if (!PutU64(out, n_)) return false;
  if (!PutU64(out, static_cast<uint64_t>(sigma_))) return false;
  if (!PutU64(out, static_cast<uint64_t>(sample_rate_))) return false;
  if (!PutU64(out, use_wavelet_ ? kWaveletModeMarker
                                : PackingForSigma(sigma_))) {
    return false;
  }
  if (!PutU64(out, static_cast<uint64_t>(sentinel_row_))) return false;
  if (!PutU64(out, two_level_ ? kLayoutTwoLevel : 0)) return false;
  if (!PutVec(out, c_)) return false;
  if (use_wavelet_) {
    if (!wavelet_.SaveTo(out)) return false;
  } else {
    if (!PutVec(out, occ_data_)) return false;
    if (two_level_ && !PutVec(out, occ_abs_)) return false;
  }
  // Sampled SA: raw mark words + sample values; rank structures rebuild.
  if (!PutU64(out, sampled_rows_.size())) return false;
  if (!PutVec(out, sampled_rows_.RawWords())) return false;
  if (!PutVec(out, samples_)) return false;
  return true;
}

bool FmIndex::Load(std::istream& in) {
  // Stage into a fresh index so a rejected payload cannot leave *this
  // partially initialised.
  FmIndex staged;
  if (!staged.LoadImpl(in)) return false;
  *this = std::move(staged);
  return true;
}

bool FmIndex::LoadImpl(std::istream& in) {
  uint64_t magic = 0, n = 0, sigma = 0, rate = 0, packing = 0, sentinel = 0;
  if (!GetU64(in, &magic)) return false;
  // v3 adds a layout-flags header word and (for two-level layouts) the
  // absolute-row table; v2 payloads are the single-level format and still
  // load bit-exact. Anything else — including the retired v1 — is rejected.
  if (magic != kFmMagicV2 && magic != kFmMagicV3) return false;
  if (!GetU64(in, &n) || !GetU64(in, &sigma) || !GetU64(in, &rate) ||
      !GetU64(in, &packing) || !GetU64(in, &sentinel)) {
    return false;
  }
  uint64_t layout_flags = 0;
  if (magic == kFmMagicV3 && !GetU64(in, &layout_flags)) return false;
  if ((layout_flags & ~kLayoutTwoLevel) != 0) return false;  // reserved bits
  // Header sanity: the checkpoints are u32, so rows must fit in 32 bits.
  if (sigma < 1 || sigma > 254) return false;
  if (n > 0xFFFFFFFEULL) return false;
  if (rate < 1 || rate > (1ULL << 30)) return false;
  n_ = n;
  sigma_ = static_cast<int>(sigma);
  sample_rate_ = static_cast<int>(rate);
  use_wavelet_ = packing == kWaveletModeMarker;
  two_level_ = (layout_flags & kLayoutTwoLevel) != 0;
  // The two-level flag only applies to flat sigma > 4 layouts.
  if (two_level_ && (use_wavelet_ || sigma_ <= 4)) return false;
  InitOccGeometry();
  const int64_t rows = static_cast<int64_t>(n_) + 1;
  // Flat payloads must store the packing sigma dictates; anything else
  // (except the wavelet marker) means corruption.
  if (!use_wavelet_ && packing != PackingForSigma(sigma_)) return false;
  sentinel_row_ = static_cast<int64_t>(sentinel);
  if (!use_wavelet_ && layout_ == FmOccLayout::k2Bit) {
    if (sentinel_row_ < 0 || sentinel_row_ >= rows) return false;
  } else if (sentinel_row_ != -1) {
    // Wavelet and sigma > 4 modes store the sentinel in-band, never here.
    return false;
  }
  if (!GetVec(in, &c_)) return false;
  if (c_.size() != static_cast<size_t>(sigma_) + 2) return false;
  if (c_.front() != 0 || c_.back() != rows) return false;
  for (size_t s = 1; s < c_.size(); ++s) {
    if (c_[s] < c_[s - 1]) return false;
  }
  if (use_wavelet_) {
    // The wavelet loader re-derives the tree shape from (rows, sigma+1)
    // and rejects structural mismatches; the per-symbol total cross-check
    // against the C table below covers the bit contents.
    if (!wavelet_.LoadFrom(in, static_cast<size_t>(rows), sigma_ + 1)) {
      return false;
    }
    return LoadSamplesAndCrossCheck(in);
  }
  if (!GetVec(in, &occ_data_)) return false;
  const int64_t blocks = rows / syms_per_block_ + 1;
  if (occ_data_.size() != static_cast<size_t>(blocks * block_words_)) {
    return false;
  }
  occ_abs_.clear();
  if (two_level_) {
    if (!GetVec(in, &occ_abs_)) return false;
    const int64_t supers = ((blocks - 1) >> super_shift_) + 1;
    if (occ_abs_.size() != static_cast<size_t>(supers * cp_count_)) {
      return false;
    }
  }
  if (!ValidateFlatOcc()) return false;
  return LoadSamplesAndCrossCheck(in);
}

// Walk every block: stored checkpoints (u32 counts, or u8 deltas plus the
// superblock absolute rows) must equal the running counts of the packed
// data, and every populated slot must decode to a valid code (an
// out-of-range code would index past c_ in an LF step). Without this, a
// corrupted mid-file block passes Load and derails Extend/Locate later.
bool FmIndex::ValidateFlatOcc() const {
  const int64_t rows = static_cast<int64_t>(n_) + 1;
  const int64_t blocks = rows / syms_per_block_ + 1;
  const FmOccGeometry g = FmLayoutGeometry(layout_);
  std::vector<int64_t> running(static_cast<size_t>(cp_count_), 0);
  std::vector<int64_t> super_base(static_cast<size_t>(cp_count_), 0);
  for (int64_t b = 0; b < blocks; ++b) {
    if (two_level_) {
      if ((b & ((int64_t{1} << super_shift_) - 1)) == 0) {
        const int64_t super = b >> super_shift_;
        for (int32_t code = 0; code < cp_count_; ++code) {
          const uint32_t abs_stored =
              occ_abs_[static_cast<size_t>(super * cp_count_ + code)];
          if (abs_stored !=
              static_cast<uint64_t>(running[static_cast<size_t>(code)])) {
            return false;
          }
          super_base[static_cast<size_t>(code)] =
              running[static_cast<size_t>(code)];
        }
      }
      for (int32_t code = 0; code < cp_count_; ++code) {
        const uint64_t word =
            occ_data_[static_cast<size_t>(b * block_words_ + (code >> 3))];
        const uint32_t delta =
            static_cast<uint32_t>(word >> ((code & 7) * 8)) & 0xFFU;
        if (delta != static_cast<uint64_t>(
                         running[static_cast<size_t>(code)] -
                         super_base[static_cast<size_t>(code)])) {
          return false;
        }
      }
    } else {
      for (int32_t code = 0; code < cp_count_; ++code) {
        const uint64_t word =
            occ_data_[static_cast<size_t>(b * block_words_ + (code >> 1))];
        const uint32_t stored =
            static_cast<uint32_t>(word >> ((code & 1) * 32));
        if (stored !=
            static_cast<uint64_t>(running[static_cast<size_t>(code)])) {
          return false;
        }
      }
    }
    const int64_t start = b * syms_per_block_;
    const int lim =
        static_cast<int>(std::min<int64_t>(syms_per_block_, rows - start));
    if (lim <= 0) continue;
    const uint64_t* data = occ_data_.data() + b * block_words_ + cp_words_;
    const uint64_t slot_mask = (1ULL << g.bits) - 1;
    for (int i = 0; i < lim; ++i) {
      const uint32_t code = static_cast<uint32_t>(
          (data[i / g.spw] >> ((i % g.spw) * g.bits)) & slot_mask);
      if (layout_ == FmOccLayout::k2Bit) {
        // Code c encodes shifted symbol c+1, which must be <= sigma_.
        if (code >= static_cast<uint32_t>(sigma_)) return false;
      } else {
        if (code > static_cast<uint32_t>(sigma_)) return false;
      }
      ++running[code];
    }
  }
  return true;
}

// Shared tail of both occ-mode load paths: the sampled SA and the final
// content cross-check.
bool FmIndex::LoadSamplesAndCrossCheck(std::istream& in) {
  const int64_t rows = static_cast<int64_t>(n_) + 1;
  uint64_t mark_bits = 0;
  std::vector<uint64_t> mark_words;
  if (!GetU64(in, &mark_bits)) return false;
  if (mark_bits != static_cast<uint64_t>(rows)) return false;
  if (!GetVec(in, &mark_words)) return false;
  if (mark_words.size() != (mark_bits + 63) / 64) return false;
  sampled_rows_ = RankBitVector(BitVector(mark_bits, std::move(mark_words)));
  // An unmarked row set would make every LF walk spin forever.
  if (sampled_rows_.ones() == 0) return false;
  if (!GetVec(in, &samples_)) return false;
  if (samples_.size() != sampled_rows_.ones()) return false;
  for (int64_t sample : samples_) {
    if (sample < 0 || sample > static_cast<int64_t>(n_)) return false;
  }
  // Cross-check: per-symbol occ totals must reproduce the C table (this
  // runs through whichever occ structure was just loaded).
  for (int s = 0; s <= sigma_; ++s) {
    if (Occ(static_cast<Symbol>(s), rows) !=
        c_[static_cast<size_t>(s) + 1] - c_[static_cast<size_t>(s)]) {
      return false;
    }
  }
  return true;
}

FmIndex::Sizes FmIndex::SizeBytes() const {
  Sizes sz;
  if (use_wavelet_) {
    sz.bwt_bytes = wavelet_.SizeBytes();
  } else {
    sz.bwt_bytes = occ_data_.size() * sizeof(uint64_t) +
                   occ_abs_.size() * sizeof(uint32_t);
  }
  sz.sample_bytes =
      sampled_rows_.SizeBytes() + samples_.size() * sizeof(int64_t);
  return sz;
}

}  // namespace alae
