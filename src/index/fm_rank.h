#ifndef ALAE_INDEX_FM_RANK_H_
#define ALAE_INDEX_FM_RANK_H_

#include <atomic>
#include <cstdint>

#include "src/io/sequence.h"

namespace alae {

struct SaRange;

// ---------------------------------------------------------------------------
// The flat-occ rank primitives live behind a coarse-grained CPU dispatch:
// every entry point below is compiled twice — once with the portable
// baseline flags (SWAR popcount under ALAE_PORTABLE_BINARY) and once in a
// translation unit built with -mpopcnt — and an atomic pointer selected by
// cpuid at startup routes whole Extend/ExtendAll/Locate-step operations to
// the native clone. Dispatching at this granularity (a full multi-word
// block rank per indirect call, not a per-popcount ifunc) is what makes the
// native path a win: per-entry `target_clones` on the rank internals was
// measured slower than the SWAR fallback because the call barrier cost more
// than the popcount saved.
// ---------------------------------------------------------------------------

// How the flat occ blocks lay out checkpoints and packed BWT symbols.
//
// Single-level layouts interleave full u32 checkpoint counts with the data
// words (two counts per u64). Two-level layouts store one u8 *delta* per
// code in the block header and push the full-width counts into a sparse
// out-of-band table of u32 absolute rows, one row per 2^super_shift blocks:
//
//   rank(code, row) = abs[(block >> shift) * cp_count + code]
//                   + u8_delta(block, code) + popcount(prefix of block)
//
// The u8 never overflows because a superblock spans at most 192 symbols of
// delta before the next absolute row resets it (see geometry table below).
// Shrinking the protein block header from 88 bytes of u32 counts to 24
// bytes of u8 deltas both halves the in-block scan (64-symbol blocks) and
// cuts the per-rank footprint; DNA keeps the single-level layout because
// its block is already exactly one cache line.
enum class FmOccLayout : uint8_t {
  k2Bit = 0,          // sigma <= 4: 2 cp words + 6 data words = 64 B
  k4Bit = 1,          // sigma <= 15: u32 checkpoints, 128 syms/block
  kByte = 2,          // sigma > 15: u32 checkpoints, 128 syms/block
  k4BitTwoLevel = 3,  // u8 deltas, 96 syms/block, absolutes every 2 blocks
  kByteTwoLevel = 4,  // u8 deltas, 64 syms/block, absolutes every 4 blocks
};

struct FmOccGeometry {
  int bits;         // packed bits per symbol
  int spw;          // symbols per data word (64 / bits)
  int spb;          // symbols per block
  int data_words;   // spb / spw
  int super_shift;  // log2(blocks per absolute row); 0 = single-level
  bool two_level;
};

constexpr FmOccGeometry FmLayoutGeometry(FmOccLayout layout) {
  switch (layout) {
    case FmOccLayout::k2Bit:
      return {2, 32, 192, 6, 0, false};
    case FmOccLayout::k4Bit:
      return {4, 16, 128, 8, 0, false};
    case FmOccLayout::kByte:
      return {8, 8, 128, 16, 0, false};
    case FmOccLayout::k4BitTwoLevel:
      return {4, 16, 96, 6, 1, true};  // max delta 1*96 = 96 < 256
    case FmOccLayout::kByteTwoLevel:
      return {8, 8, 64, 8, 2, true};  // max delta 3*64 = 192 < 256
  }
  return {0, 0, 0, 0, 0, false};
}

// Checkpoint words per block for a layout: u32 pairs single-level, packed
// u8 deltas two-level.
constexpr int FmLayoutCpWords(FmOccLayout layout, int cp_count) {
  return FmLayoutGeometry(layout).two_level ? (cp_count + 7) / 8
                                            : (cp_count + 1) / 2;
}

// Borrowed, trivially-copyable view of one flat index — everything a rank
// needs, so the clones can run without touching FmIndex internals. Pointers
// alias the owning FmIndex's vectors; the view is rebuilt per call (a
// handful of register moves) rather than cached, so moved-from indexes can
// never leave a stale one behind.
struct FmFlatView {
  const uint64_t* occ = nullptr;  // interleaved checkpoint+data blocks
  const uint32_t* abs = nullptr;  // two-level absolute rows (else null)
  const int64_t* c = nullptr;     // c[s] = #shifted symbols < s
  int64_t sentinel_row = -1;      // 2-bit mode: BWT row of the sentinel
  int32_t cp_count = 0;
  int32_t cp_words = 0;
  int32_t block_words = 0;
  int32_t sigma = 0;
  FmOccLayout layout = FmOccLayout::k2Bit;
};

// One full occ operation per indirect call. `shifted` symbols are alphabet
// codes + 1 (0 is the sentinel), matching the FmIndex internals.
struct FmRankOps {
  SaRange (*extend)(const FmFlatView&, const SaRange&, Symbol c);
  void (*extend_all)(const FmFlatView&, const SaRange&, SaRange* out);
  bool (*extend_singleton)(const FmFlatView&, int64_t row, Symbol* c,
                           SaRange* child);
  // Batched independent extends (out[i] = extend(in[i], cs[i]); empty
  // inputs yield {0,0}). One indirect call covers the whole batch: the
  // boundary-block prefetches are issued inside before any rank runs, and
  // the per-item extends stay template-inlined. `in` and `out` must not
  // overlap except element-wise (in == out is fine).
  void (*extend_batch)(const FmFlatView&, const SaRange* in,
                       const Symbol* cs, SaRange* out, int count);
  int64_t (*occ)(const FmFlatView&, Symbol shifted, int64_t row);
  Symbol (*access)(const FmFlatView&, int64_t row);
  int64_t (*lf_step)(const FmFlatView&, int64_t row);
};

// The portable instantiation, also callable directly (and LTO-inlinable)
// from fm_index.cc — the default path pays no indirection at all.
namespace fm_rank_portable {
SaRange Extend(const FmFlatView& v, const SaRange& range, Symbol c);
void ExtendAll(const FmFlatView& v, const SaRange& range, SaRange* out);
bool ExtendSingleton(const FmFlatView& v, int64_t row, Symbol* c,
                     SaRange* child);
void ExtendBatch(const FmFlatView& v, const SaRange* in, const Symbol* cs,
                 SaRange* out, int count);
int64_t OccRank(const FmFlatView& v, Symbol shifted, int64_t row);
Symbol Access(const FmFlatView& v, int64_t row);
int64_t LfStep(const FmFlatView& v, int64_t row);
const FmRankOps* Ops();
}  // namespace fm_rank_portable

// The -mpopcnt clone; Ops() returns nullptr when the toolchain could not
// build it (non-x86 targets), and callers fall back to the portable path.
namespace fm_rank_native {
const FmRankOps* Ops();
}  // namespace fm_rank_native

enum class FmRankTier : uint8_t { kPortable = 0, kNativePopcnt = 1 };

namespace internal {
// Non-null iff the native clone should be used instead of the direct
// portable call. Stays null when the whole binary is already built with
// -mpopcnt (ALAE_PORTABLE_BINARY=OFF): the portable path is then native
// *and* keeps cross-TU inlining, which beats any dispatch.
extern std::atomic<const FmRankOps*> g_fm_rank_native;
void InitFmRankDispatch();  // idempotent cpuid probe
}  // namespace internal

inline const FmRankOps* SelectedNativeRankOps() {
  return internal::g_fm_rank_native.load(std::memory_order_relaxed);
}

// The tier rank operations currently resolve to. Reports kNativePopcnt
// both when the native clone is selected and when the portable build is
// itself compiled with -mpopcnt.
FmRankTier ActiveFmRankTier();

// Whether hardware-popcount rank is reachable in this build+host, through
// either the clone or a native portable build.
bool NativeFmRankAvailable();

// Test/bench hook: force a tier. Returns false (and changes nothing) when
// the requested tier is not available. Forcing kPortable on a binary
// whose portable TU is already -mpopcnt is allowed but is a no-op in
// instruction terms.
bool SetFmRankTier(FmRankTier tier);

}  // namespace alae

#endif  // ALAE_INDEX_FM_RANK_H_
