#include "src/index/suffix_trie.h"

namespace alae {

SuffixTrie::SuffixTrie(const Sequence& text) : sigma_(text.sigma()) {
  Node root;
  root.children.assign(static_cast<size_t>(sigma_), -1);
  nodes_.push_back(std::move(root));
  int64_t n = static_cast<int64_t>(text.size());
  for (int64_t start = 0; start < n; ++start) {
    int32_t node = kRoot;
    nodes_[static_cast<size_t>(kRoot)].positions.push_back(
        static_cast<int32_t>(start));
    for (int64_t i = start; i < n; ++i) {
      Symbol c = text[static_cast<size_t>(i)];
      int32_t next = nodes_[static_cast<size_t>(node)].children[c];
      if (next < 0) {
        Node fresh;
        fresh.children.assign(static_cast<size_t>(sigma_), -1);
        fresh.depth = nodes_[static_cast<size_t>(node)].depth + 1;
        next = static_cast<int32_t>(nodes_.size());
        nodes_.push_back(std::move(fresh));
        nodes_[static_cast<size_t>(node)].children[c] = next;
      }
      nodes_[static_cast<size_t>(next)].positions.push_back(
          static_cast<int32_t>(start));
      node = next;
    }
  }
}

int32_t SuffixTrie::Child(int32_t node, Symbol c) const {
  return nodes_[static_cast<size_t>(node)].children[c];
}

}  // namespace alae
