#ifndef ALAE_INDEX_DOMINATION_INDEX_H_
#define ALAE_INDEX_DOMINATION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// q-prefix domination index over the text T (paper §3.2.2, Definition 1 /
// Lemma 1). Built offline in O(n).
//
// A distinct q-gram g of T is *dominated* when every occurrence of g at a
// text position t > 0 is preceded by the same character c (so the q-gram at
// t-1 is always c·g[0..q-2]), and g does not occur at position 0 (the paper
// forbids dominating the front-of-text gram, which has no predecessor).
//
// A fork anchored at query column j for trie paths starting with g can then
// be skipped whenever P[j-1] == c: the fork anchored one column earlier on
// the dominating gram covers every alignment the skipped fork would find,
// with scores higher by at least sa (Theorem 4 case 2).
class DominationIndex {
 public:
  DominationIndex() = default;
  DominationIndex(const Sequence& text, int q);

  int q() const { return q_; }
  size_t num_grams() const { return entries_.size(); }
  size_t num_dominated() const { return dominated_count_; }

  // If the q-gram is dominated, returns true and sets *predecessor to the
  // unique preceding character. `gram` must point at q symbols.
  bool IsDominated(const Symbol* gram, Symbol* predecessor) const;

  // Index footprint for the Fig 11 study.
  size_t SizeBytes() const;

 private:
  // Value: -1 not dominated; otherwise the unique predecessor symbol.
  // Keyed by the base-sigma value of the gram.
  int q_ = 0;
  int sigma_ = 4;
  std::unordered_map<uint64_t, int16_t> entries_;
  size_t dominated_count_ = 0;

  uint64_t KeyOf(const Symbol* gram) const;
};

}  // namespace alae

#endif  // ALAE_INDEX_DOMINATION_INDEX_H_
