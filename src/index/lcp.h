#ifndef ALAE_INDEX_LCP_H_
#define ALAE_INDEX_LCP_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// O(1) longest-common-prefix queries between arbitrary suffixes of one
// sequence: suffix array + Kasai LCP array + sparse-table RMQ.
//
// The reuse engine (paper §4) uses this to find, for two fork anchors
// j1 and j2 in the query P, how many gap-region columns have identical
// content and can therefore share scores (Lemma 2/Lemma 3).
class LcpIndex {
 public:
  LcpIndex() = default;
  explicit LcpIndex(const Sequence& seq);

  size_t size() const { return n_; }

  // Length of the longest common prefix of suffixes starting at i and j
  // (0-based). Lcp(i, i) is the full remaining length.
  size_t Lcp(size_t i, size_t j) const;

 private:
  size_t n_ = 0;
  std::vector<int64_t> rank_;             // suffix position -> SA row
  std::vector<int32_t> lcp_;              // Kasai LCP between adjacent rows
  std::vector<std::vector<int32_t>> st_;  // sparse table over lcp_
  std::vector<int32_t> log2_;

  int32_t RangeMin(size_t lo, size_t hi) const;  // min of lcp_[lo, hi)
};

}  // namespace alae

#endif  // ALAE_INDEX_LCP_H_
