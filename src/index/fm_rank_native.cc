// Native-popcnt clone of the flat-occ rank operations. CMake compiles this
// translation unit with -mpopcnt (and -fno-lto, matching the dispatched
// SIMD kernel TUs: it is only reachable through the FmRankOps pointer, and
// mixing per-TU ISA overrides into LTO partitions costs more than inlining
// would save). When the compiler cannot target popcnt at all the clone
// degenerates to a nullptr table and the dispatcher keeps the portable
// path.
#include <bit>
#include <cstdint>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "src/index/fm_index.h"
#include "src/index/fm_rank.h"

#if defined(__POPCNT__) || defined(ALAE_FM_RANK_FORCE_NATIVE)

#define ALAE_FM_RANK_NS fm_rank_native
#include "src/index/fm_rank_impl.inc"
#undef ALAE_FM_RANK_NS

#else  // toolchain without popcnt support: expose an empty clone

namespace alae {
namespace fm_rank_native {
const FmRankOps* Ops() { return nullptr; }
}  // namespace fm_rank_native
}  // namespace alae

#endif
