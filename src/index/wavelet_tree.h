#ifndef ALAE_INDEX_WAVELET_TREE_H_
#define ALAE_INDEX_WAVELET_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/index/bitvector.h"
#include "src/io/sequence.h"

namespace alae {

// Balanced wavelet tree over a small alphabet with O(log sigma) access and
// rank. This is the space-lean occ-structure option of the FM-index
// ("compressed suffix array" in the paper's terminology): n*ceil(log2 sigma)
// bits plus rank overhead, versus the flat checkpointed occ table that is
// faster but larger. Fig 11 sizes both.
class WaveletTree {
 public:
  WaveletTree() = default;
  // `data` holds symbols in [0, sigma). sigma >= 2.
  WaveletTree(const std::vector<Symbol>& data, int sigma);

  size_t size() const { return size_; }
  int sigma() const { return sigma_; }

  // Symbol at position i.
  Symbol Access(size_t i) const;

  // Number of occurrences of `c` in [0, i).
  size_t Rank(Symbol c, size_t i) const;

  size_t SizeBytes() const;

  // On-disk form: header (size, sigma, root, node count) followed by one
  // record per node (symbol range, child links, raw bit words). Rank
  // structures are rebuilt on load, so the payload stays at ~1 bit per
  // stored bit.
  bool SaveTo(std::ostream& out) const;

  // Loads and validates a tree saved by SaveTo. Beyond stream integrity the
  // loader re-derives the whole shape — node count, per-node symbol ranges,
  // child topology and every node's bit length (children must hold exactly
  // the parent's Rank0/Rank1 totals) — and rejects any mismatch, so a
  // corrupted payload cannot produce out-of-bounds Access/Rank walks later.
  // On failure *this is left empty, never partially initialised.
  bool LoadFrom(std::istream& in, size_t expected_size, int expected_sigma);

 private:
  struct Node {
    RankBitVector bits;
    int left = -1;   // child node index, or -1 for leaf
    int right = -1;
    Symbol lo = 0, hi = 0;  // symbol range [lo, hi] covered by this node
  };

  int Build(const std::vector<Symbol>& data, Symbol lo, Symbol hi);

  size_t size_ = 0;
  int sigma_ = 0;
  int root_ = -1;
  std::vector<Node> nodes_;
};

}  // namespace alae

#endif  // ALAE_INDEX_WAVELET_TREE_H_
