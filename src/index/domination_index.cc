#include "src/index/domination_index.h"

namespace alae {

DominationIndex::DominationIndex(const Sequence& text, int q)
    : q_(q), sigma_(text.sigma()) {
  int64_t n = static_cast<int64_t>(text.size());
  if (n < q_) return;
  // One left-to-right scan (O(n)): rolling key plus predecessor bookkeeping.
  uint64_t key = 0;
  uint64_t msd = 1;
  for (int i = 0; i < q_ - 1; ++i) msd *= static_cast<uint64_t>(sigma_);
  for (int64_t t = 0; t + q_ <= n; ++t) {
    if (t == 0) {
      for (int i = 0; i < q_; ++i) {
        key = key * static_cast<uint64_t>(sigma_) + text[static_cast<size_t>(i)];
      }
    } else {
      key = (key - static_cast<uint64_t>(text[static_cast<size_t>(t - 1)]) * msd) *
                static_cast<uint64_t>(sigma_) +
            text[static_cast<size_t>(t + q_ - 1)];
    }
    auto [it, inserted] = entries_.try_emplace(key, int16_t{-2});
    int16_t pred = (t == 0) ? int16_t{-1}
                            : static_cast<int16_t>(text[static_cast<size_t>(t - 1)]);
    if (t == 0) {
      it->second = -1;  // Gram at the front of the text is never dominated.
    } else if (inserted || it->second == -2) {
      it->second = pred;
    } else if (it->second != pred) {
      it->second = -1;
    }
  }
  for (const auto& [k, v] : entries_) {
    (void)k;
    if (v >= 0) ++dominated_count_;
  }
}

uint64_t DominationIndex::KeyOf(const Symbol* gram) const {
  uint64_t key = 0;
  for (int i = 0; i < q_; ++i) {
    key = key * static_cast<uint64_t>(sigma_) + gram[i];
  }
  return key;
}

bool DominationIndex::IsDominated(const Symbol* gram, Symbol* predecessor) const {
  auto it = entries_.find(KeyOf(gram));
  if (it == entries_.end() || it->second < 0) return false;
  *predecessor = static_cast<Symbol>(it->second);
  return true;
}

size_t DominationIndex::SizeBytes() const {
  // Hash-map node: key + value + bucket overhead (measured conservatively
  // as one pointer per node plus the bucket array).
  return entries_.size() * (sizeof(uint64_t) + sizeof(int16_t) + sizeof(void*)) +
         entries_.bucket_count() * sizeof(void*);
}

}  // namespace alae
