#ifndef ALAE_INDEX_BITVECTOR_H_
#define ALAE_INDEX_BITVECTOR_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace alae {

// Plain mutable bit array.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n) : size_(n), words_((n + 63) / 64, 0) {}
  // Reconstruction from serialized words (must hold ceil(n/64) entries).
  BitVector(size_t n, std::vector<uint64_t> words)
      : size_(n), words_(std::move(words)) {}

  size_t size() const { return size_; }

  void Set(size_t i, bool v) {
    uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  const std::vector<uint64_t>& words() const { return words_; }
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

// Immutable bitvector with O(1) rank support (one absolute 64-bit count per
// 512-bit superblock plus per-64-bit-word byte offsets). ~1.31 bits per bit.
// This is the building block of the wavelet tree (the "compressed suffix
// array" occ structure option, paper §2.3/§5).
class RankBitVector {
 public:
  RankBitVector() = default;
  explicit RankBitVector(const BitVector& bits);

  size_t size() const { return size_; }
  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  // Number of 1 bits in [0, i). i may equal size().
  size_t Rank1(size_t i) const;
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  size_t ones() const { return ones_; }
  size_t SizeBytes() const;

  // First ceil(size/64) raw words, without rank padding (serialisation).
  std::vector<uint64_t> RawWords() const {
    return std::vector<uint64_t>(
        words_.begin(),
        words_.begin() + static_cast<ptrdiff_t>((size_ + 63) / 64));
  }

 private:
  static constexpr size_t kWordsPerBlock = 8;  // 512-bit superblocks.

  size_t size_ = 0;
  size_t ones_ = 0;
  std::vector<uint64_t> words_;
  std::vector<uint64_t> block_rank_;   // rank before each superblock
  std::vector<uint16_t> word_offset_;  // rank within superblock before each word
};

}  // namespace alae

#endif  // ALAE_INDEX_BITVECTOR_H_
