#include "src/index/bwt.h"

namespace alae {

BwtResult BuildBwt(const std::vector<Symbol>& text,
                   const std::vector<int64_t>& sa) {
  BwtResult out;
  size_t n = text.size();
  out.bwt.resize(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    int64_t pos = sa[i];
    if (pos == 0) {
      out.bwt[i] = 0;  // Character before the first suffix is the sentinel.
      out.sentinel_pos = i;
    } else {
      out.bwt[i] = static_cast<Symbol>(text[static_cast<size_t>(pos - 1)] + 1);
    }
  }
  return out;
}

std::vector<Symbol> InvertBwt(const BwtResult& bwt, int sigma) {
  size_t n = bwt.bwt.size();
  // C[c] = number of symbols < c; occ via a counting pass.
  std::vector<size_t> count(static_cast<size_t>(sigma + 2), 0);
  for (Symbol c : bwt.bwt) ++count[static_cast<size_t>(c) + 1];
  for (size_t c = 1; c < count.size(); ++c) count[c] += count[c - 1];
  // LF mapping.
  std::vector<size_t> lf(n);
  std::vector<size_t> seen(static_cast<size_t>(sigma + 1), 0);
  for (size_t i = 0; i < n; ++i) {
    Symbol c = bwt.bwt[i];
    lf[i] = count[c] + seen[c];
    ++seen[c];
  }
  // Walk backwards from row 0 (the sentinel suffix "$", whose preceding
  // character is the last character of the text).
  std::vector<Symbol> text(n - 1);
  size_t row = 0;
  for (size_t k = n - 1; k-- > 0;) {
    // bwt[row] is the character preceding the current suffix.
    text[k] = static_cast<Symbol>(bwt.bwt[row] - 1);
    row = lf[row];
  }
  return text;
}

}  // namespace alae
