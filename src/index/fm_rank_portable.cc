// Portable instantiation of the flat-occ rank operations: compiled with the
// project-default flags, so under ALAE_PORTABLE_BINARY the popcounts lower
// to the SWAR fallback and the binary still runs on baseline x86-64 (and
// non-x86) hosts. This is also the direct, LTO-inlinable path the FmIndex
// entry points call when no native clone is selected.
#include <bit>
#include <cstdint>
#include <utility>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "src/index/fm_index.h"
#include "src/index/fm_rank.h"

#define ALAE_FM_RANK_NS fm_rank_portable
#include "src/index/fm_rank_impl.inc"
#undef ALAE_FM_RANK_NS
