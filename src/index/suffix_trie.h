#ifndef ALAE_INDEX_SUFFIX_TRIE_H_
#define ALAE_INDEX_SUFFIX_TRIE_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// Explicit (uncompressed) suffix trie of a text, O(n^2) nodes.
//
// This is the literal structure of the paper's §2.3 and the substrate of the
// BASIC algorithm (Algorithm 1). It is intentionally naive: it exists as a
// reference implementation to validate the FM-index suffix-trie emulation
// and as the engine of the tiny-input BASIC aligner used in tests. Do not
// use it for texts beyond a few thousand characters.
class SuffixTrie {
 public:
  static constexpr int32_t kRoot = 0;

  explicit SuffixTrie(const Sequence& text);

  // Child of `node` on symbol c, or -1.
  int32_t Child(int32_t node, Symbol c) const;

  // Start positions in the text of the substring spelled root->node.
  const std::vector<int32_t>& Positions(int32_t node) const {
    return nodes_[static_cast<size_t>(node)].positions;
  }

  int32_t Depth(int32_t node) const {
    return nodes_[static_cast<size_t>(node)].depth;
  }

  size_t num_nodes() const { return nodes_.size(); }
  int sigma() const { return sigma_; }

 private:
  struct Node {
    std::vector<int32_t> children;  // sigma entries, -1 if absent
    std::vector<int32_t> positions;
    int32_t depth = 0;
  };

  int sigma_;
  std::vector<Node> nodes_;
};

}  // namespace alae

#endif  // ALAE_INDEX_SUFFIX_TRIE_H_
