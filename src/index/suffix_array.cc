#include "src/index/suffix_array.h"

#include <algorithm>
#include <cstring>

namespace alae {
namespace {

// SA-IS over an integer string `s` of length n whose last character is a
// unique smallest sentinel (value 0). `sa` receives the suffix order.
// `k` is the alphabet size including the sentinel.
void SaIs(const int64_t* s, int64_t* sa, int64_t n, int64_t k) {
  if (n == 1) {
    sa[0] = 0;
    return;
  }
  std::vector<bool> is_s(static_cast<size_t>(n));
  is_s[static_cast<size_t>(n - 1)] = true;
  for (int64_t i = n - 2; i >= 0; --i) {
    is_s[static_cast<size_t>(i)] =
        s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[static_cast<size_t>(i + 1)]);
  }
  auto is_lms = [&](int64_t i) {
    return i > 0 && is_s[static_cast<size_t>(i)] && !is_s[static_cast<size_t>(i - 1)];
  };

  std::vector<int64_t> bucket(static_cast<size_t>(k), 0);
  for (int64_t i = 0; i < n; ++i) ++bucket[static_cast<size_t>(s[i])];
  std::vector<int64_t> bucket_start(static_cast<size_t>(k)),
      bucket_end(static_cast<size_t>(k));
  auto reset_buckets = [&]() {
    int64_t sum = 0;
    for (int64_t c = 0; c < k; ++c) {
      bucket_start[static_cast<size_t>(c)] = sum;
      sum += bucket[static_cast<size_t>(c)];
      bucket_end[static_cast<size_t>(c)] = sum;
    }
  };

  // Induced sort: given LMS positions (in `lms_order`), produce SA.
  auto induce = [&](const std::vector<int64_t>& lms_order) {
    std::fill(sa, sa + n, -1);
    reset_buckets();
    // Place LMS suffixes at the ends of their buckets, in reverse order.
    for (auto it = lms_order.rbegin(); it != lms_order.rend(); ++it) {
      int64_t i = *it;
      sa[--bucket_end[static_cast<size_t>(s[i])]] = i;
    }
    // Induce L-type from left to right.
    reset_buckets();
    for (int64_t p = 0; p < n; ++p) {
      int64_t j = sa[p] - 1;
      if (sa[p] > 0 && !is_s[static_cast<size_t>(j)]) {
        sa[bucket_start[static_cast<size_t>(s[j])]++] = j;
      }
    }
    // Induce S-type from right to left.
    reset_buckets();
    for (int64_t p = n - 1; p >= 0; --p) {
      int64_t j = sa[p] - 1;
      if (sa[p] > 0 && is_s[static_cast<size_t>(j)]) {
        sa[--bucket_end[static_cast<size_t>(s[j])]] = j;
      }
    }
  };

  // Step 1: rough induced sort from unsorted LMS positions.
  std::vector<int64_t> lms;
  for (int64_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms.push_back(i);
  }
  induce(lms);

  // Step 2: name LMS substrings using their order in `sa`.
  std::vector<int64_t> name(static_cast<size_t>(n), -1);
  int64_t names = 0;
  int64_t prev = -1;
  for (int64_t p = 0; p < n; ++p) {
    int64_t i = sa[p];
    if (!is_lms(i)) continue;
    if (prev >= 0) {
      // Compare LMS substrings at prev and i.
      bool same = true;
      for (int64_t d = 0;; ++d) {
        bool end_prev = d > 0 && is_lms(prev + d);
        bool end_cur = d > 0 && is_lms(i + d);
        if (s[prev + d] != s[i + d] ||
            is_s[static_cast<size_t>(prev + d)] != is_s[static_cast<size_t>(i + d)]) {
          same = false;
          break;
        }
        if (end_prev || end_cur) {
          same = end_prev && end_cur;
          break;
        }
      }
      if (!same) ++names;
    }
    name[static_cast<size_t>(i)] = names;
    prev = i;
  }

  // Step 3: recurse if names are not yet unique.
  std::vector<int64_t> reduced;
  reduced.reserve(lms.size());
  for (int64_t i : lms) reduced.push_back(name[static_cast<size_t>(i)]);
  std::vector<int64_t> lms_sorted(lms.size());
  if (names + 1 < static_cast<int64_t>(lms.size())) {
    std::vector<int64_t> sub_sa(reduced.size());
    SaIs(reduced.data(), sub_sa.data(), static_cast<int64_t>(reduced.size()),
         names + 1);
    for (size_t r = 0; r < sub_sa.size(); ++r) {
      lms_sorted[r] = lms[static_cast<size_t>(sub_sa[r])];
    }
  } else {
    // Names already unique: order LMS positions by name directly.
    for (size_t idx = 0; idx < lms.size(); ++idx) {
      lms_sorted[static_cast<size_t>(reduced[idx])] = lms[idx];
    }
  }

  // Step 4: final induced sort from sorted LMS suffixes.
  induce(lms_sorted);
}

}  // namespace

std::vector<int64_t> BuildSuffixArray(const std::vector<Symbol>& text, int sigma) {
  int64_t n = static_cast<int64_t>(text.size());
  // Shift symbols by +1 so the sentinel (0) is strictly smallest.
  std::vector<int64_t> s(static_cast<size_t>(n + 1));
  for (int64_t i = 0; i < n; ++i) {
    s[static_cast<size_t>(i)] = static_cast<int64_t>(text[static_cast<size_t>(i)]) + 1;
  }
  s[static_cast<size_t>(n)] = 0;
  std::vector<int64_t> sa(static_cast<size_t>(n + 1));
  SaIs(s.data(), sa.data(), n + 1, sigma + 1);
  return sa;
}

std::vector<int64_t> BuildSuffixArrayNaive(const std::vector<Symbol>& text) {
  int64_t n = static_cast<int64_t>(text.size());
  std::vector<int64_t> sa(static_cast<size_t>(n + 1));
  for (int64_t i = 0; i <= n; ++i) sa[static_cast<size_t>(i)] = i;
  std::sort(sa.begin(), sa.end(), [&](int64_t a, int64_t b) {
    // The sentinel (position n) is smaller than any suffix.
    while (a < n && b < n) {
      if (text[static_cast<size_t>(a)] != text[static_cast<size_t>(b)]) {
        return text[static_cast<size_t>(a)] < text[static_cast<size_t>(b)];
      }
      ++a;
      ++b;
    }
    return a > b;  // Shorter suffix (hits sentinel first) sorts first.
  });
  return sa;
}

}  // namespace alae
