#include "src/index/wavelet_tree.h"

namespace alae {

WaveletTree::WaveletTree(const std::vector<Symbol>& data, int sigma)
    : size_(data.size()), sigma_(sigma) {
  root_ = Build(data, 0, static_cast<Symbol>(sigma - 1));
}

int WaveletTree::Build(const std::vector<Symbol>& data, Symbol lo, Symbol hi) {
  if (lo == hi) return -1;  // Leaves carry no structure.
  Symbol mid = static_cast<Symbol>(lo + (hi - lo) / 2);
  BitVector bits(data.size());
  std::vector<Symbol> left_data, right_data;
  left_data.reserve(data.size());
  right_data.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    bool right = data[i] > mid;
    bits.Set(i, right);
    (right ? right_data : left_data).push_back(data[i]);
  }
  int idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(idx)].bits = RankBitVector(bits);
  nodes_[static_cast<size_t>(idx)].lo = lo;
  nodes_[static_cast<size_t>(idx)].hi = hi;
  int left = Build(left_data, lo, mid);
  int right = Build(right_data, static_cast<Symbol>(mid + 1), hi);
  nodes_[static_cast<size_t>(idx)].left = left;
  nodes_[static_cast<size_t>(idx)].right = right;
  return idx;
}

Symbol WaveletTree::Access(size_t i) const {
  int node = root_;
  Symbol lo = 0, hi = static_cast<Symbol>(sigma_ - 1);
  while (node >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    Symbol mid = static_cast<Symbol>(nd.lo + (nd.hi - nd.lo) / 2);
    if (nd.bits.Get(i)) {
      i = nd.bits.Rank1(i);
      lo = static_cast<Symbol>(mid + 1);
      hi = nd.hi;
      node = nd.right;
    } else {
      i = nd.bits.Rank0(i);
      lo = nd.lo;
      hi = mid;
      node = nd.left;
    }
    if (lo == hi) return lo;
  }
  return lo;
}

size_t WaveletTree::Rank(Symbol c, size_t i) const {
  int node = root_;
  if (node < 0) return (c == 0) ? i : 0;  // sigma == 1 degenerate case
  while (true) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    Symbol mid = static_cast<Symbol>(nd.lo + (nd.hi - nd.lo) / 2);
    if (c > mid) {
      i = nd.bits.Rank1(i);
      if (nd.right < 0) return i;
      node = nd.right;
    } else {
      i = nd.bits.Rank0(i);
      if (nd.left < 0) return i;
      node = nd.left;
    }
  }
}

size_t WaveletTree::SizeBytes() const {
  size_t total = sizeof(*this);
  for (const auto& nd : nodes_) total += nd.bits.SizeBytes() + sizeof(Node);
  return total;
}

}  // namespace alae
