#include "src/index/wavelet_tree.h"

#include <utility>

#include "src/util/serialize.h"

namespace alae {

WaveletTree::WaveletTree(const std::vector<Symbol>& data, int sigma)
    : size_(data.size()), sigma_(sigma) {
  root_ = Build(data, 0, static_cast<Symbol>(sigma - 1));
}

int WaveletTree::Build(const std::vector<Symbol>& data, Symbol lo, Symbol hi) {
  if (lo == hi) return -1;  // Leaves carry no structure.
  Symbol mid = static_cast<Symbol>(lo + (hi - lo) / 2);
  BitVector bits(data.size());
  std::vector<Symbol> left_data, right_data;
  left_data.reserve(data.size());
  right_data.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    bool right = data[i] > mid;
    bits.Set(i, right);
    (right ? right_data : left_data).push_back(data[i]);
  }
  int idx = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(idx)].bits = RankBitVector(bits);
  nodes_[static_cast<size_t>(idx)].lo = lo;
  nodes_[static_cast<size_t>(idx)].hi = hi;
  int left = Build(left_data, lo, mid);
  int right = Build(right_data, static_cast<Symbol>(mid + 1), hi);
  nodes_[static_cast<size_t>(idx)].left = left;
  nodes_[static_cast<size_t>(idx)].right = right;
  return idx;
}

Symbol WaveletTree::Access(size_t i) const {
  int node = root_;
  Symbol lo = 0, hi = static_cast<Symbol>(sigma_ - 1);
  while (node >= 0) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    Symbol mid = static_cast<Symbol>(nd.lo + (nd.hi - nd.lo) / 2);
    if (nd.bits.Get(i)) {
      i = nd.bits.Rank1(i);
      lo = static_cast<Symbol>(mid + 1);
      hi = nd.hi;
      node = nd.right;
    } else {
      i = nd.bits.Rank0(i);
      lo = nd.lo;
      hi = mid;
      node = nd.left;
    }
    if (lo == hi) return lo;
  }
  return lo;
}

size_t WaveletTree::Rank(Symbol c, size_t i) const {
  int node = root_;
  if (node < 0) return (c == 0) ? i : 0;  // sigma == 1 degenerate case
  while (true) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    Symbol mid = static_cast<Symbol>(nd.lo + (nd.hi - nd.lo) / 2);
    if (c > mid) {
      i = nd.bits.Rank1(i);
      if (nd.right < 0) return i;
      node = nd.right;
    } else {
      i = nd.bits.Rank0(i);
      if (nd.left < 0) return i;
      node = nd.left;
    }
  }
}

size_t WaveletTree::SizeBytes() const {
  size_t total = sizeof(*this);
  for (const auto& nd : nodes_) total += nd.bits.SizeBytes() + sizeof(Node);
  return total;
}

bool WaveletTree::SaveTo(std::ostream& out) const {
  if (!PutU64(out, size_)) return false;
  if (!PutU64(out, static_cast<uint64_t>(sigma_))) return false;
  if (!PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(root_)))) {
    return false;
  }
  if (!PutU64(out, nodes_.size())) return false;
  for (const Node& nd : nodes_) {
    if (!PutU64(out, nd.lo) || !PutU64(out, nd.hi)) return false;
    if (!PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(nd.left))) ||
        !PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(nd.right)))) {
      return false;
    }
    if (!PutU64(out, nd.bits.size())) return false;
    if (!PutVec(out, nd.bits.RawWords())) return false;
  }
  return true;
}

bool WaveletTree::LoadFrom(std::istream& in, size_t expected_size,
                           int expected_sigma) {
  *this = WaveletTree();
  uint64_t size = 0, sigma = 0, root = 0, count = 0;
  if (!GetU64(in, &size) || !GetU64(in, &sigma) || !GetU64(in, &root) ||
      !GetU64(in, &count)) {
    return false;
  }
  if (size != expected_size) return false;
  if (sigma != static_cast<uint64_t>(expected_sigma) || expected_sigma < 2) {
    return false;
  }
  // A balanced partition of [0, sigma-1] has exactly sigma-1 internal
  // nodes, and Build allocates the root first.
  if (count != sigma - 1 || root != 0) return false;

  struct Raw {
    uint64_t lo, hi;
    int64_t left, right;
    uint64_t bits;
    std::vector<uint64_t> words;
  };
  std::vector<Raw> raw(count);
  for (Raw& r : raw) {
    uint64_t left = 0, right = 0;
    if (!GetU64(in, &r.lo) || !GetU64(in, &r.hi) || !GetU64(in, &left) ||
        !GetU64(in, &right) || !GetU64(in, &r.bits)) {
      return false;
    }
    r.left = static_cast<int64_t>(left);
    r.right = static_cast<int64_t>(right);
    if (!GetVec(in, &r.words)) return false;
    // Bound bits before any word math: a node can never hold more bits
    // than the sequence is long, and an unchecked huge value would wrap
    // (bits + 63) / 64 around to 0 and then deref an empty words vector.
    if (r.bits > size) return false;
    if (r.words.size() != (r.bits + 63) / 64) return false;
    // Trailing bits beyond the declared length must be clear: the rebuilt
    // rank structure popcounts whole words, so set stragglers would skew
    // every rank.
    if ((r.bits & 63) != 0 &&
        (r.words.back() >> (r.bits & 63)) != 0) {
      return false;
    }
  }

  // Re-derive the shape from (sigma, size) alone and demand the payload
  // matches it exactly: stored symbol ranges, child links and bit counts
  // are all functions of the split recursion, so any disagreement means
  // corruption. The walk also guarantees the links form a tree (each node
  // visited once, children strictly after parents as Build emits them).
  std::vector<Node> nodes(count);
  std::vector<bool> seen(count, false);
  struct Want {
    size_t idx;
    uint64_t lo, hi, bits;
  };
  std::vector<Want> stack = {{0, 0, sigma - 1, size}};
  while (!stack.empty()) {
    Want w = stack.back();
    stack.pop_back();
    if (w.idx >= count || seen[w.idx]) return false;
    seen[w.idx] = true;
    const Raw& r = raw[w.idx];
    if (r.lo != w.lo || r.hi != w.hi || r.bits != w.bits) return false;
    Node& nd = nodes[w.idx];
    nd.lo = static_cast<Symbol>(r.lo);
    nd.hi = static_cast<Symbol>(r.hi);
    // Safe to move: the shape walk visits each node exactly once.
    nd.bits = RankBitVector(BitVector(r.bits, std::move(raw[w.idx].words)));
    const uint64_t mid = w.lo + (w.hi - w.lo) / 2;
    const uint64_t ones = nd.bits.ones();
    if (mid > w.lo) {  // left range is internal
      if (r.left <= static_cast<int64_t>(w.idx)) return false;
      nd.left = static_cast<int>(r.left);
      stack.push_back({static_cast<size_t>(r.left), w.lo, mid, w.bits - ones});
    } else if (r.left != -1) {
      return false;
    }
    if (w.hi > mid + 1) {  // right range is internal
      if (r.right <= static_cast<int64_t>(w.idx)) return false;
      nd.right = static_cast<int>(r.right);
      stack.push_back({static_cast<size_t>(r.right), mid + 1, w.hi, ones});
    } else if (r.right != -1) {
      return false;
    }
  }
  for (bool s : seen) {
    if (!s) return false;  // orphaned node record
  }

  size_ = size;
  sigma_ = expected_sigma;
  root_ = 0;
  nodes_ = std::move(nodes);
  return true;
}

}  // namespace alae
