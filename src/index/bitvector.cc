#include "src/index/bitvector.h"

#include <bit>

namespace alae {

RankBitVector::RankBitVector(const BitVector& bits)
    : size_(bits.size()), words_(bits.words()) {
  // Pad so rank lookups never index past the end.
  size_t n_words = words_.size();
  size_t n_blocks = n_words / kWordsPerBlock + 1;
  words_.resize(n_blocks * kWordsPerBlock, 0);
  block_rank_.assign(n_blocks + 1, 0);
  word_offset_.assign(words_.size(), 0);
  uint64_t total = 0;
  for (size_t b = 0; b < n_blocks; ++b) {
    block_rank_[b] = total;
    uint64_t in_block = 0;
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      size_t idx = b * kWordsPerBlock + w;
      word_offset_[idx] = static_cast<uint16_t>(in_block);
      in_block += static_cast<uint64_t>(std::popcount(words_[idx]));
    }
    total += in_block;
  }
  block_rank_[n_blocks] = total;
  ones_ = total;
}

size_t RankBitVector::Rank1(size_t i) const {
  size_t word = i >> 6;
  size_t block = word / kWordsPerBlock;
  uint64_t r = block_rank_[block] + word_offset_[word];
  uint64_t mask = (i & 63) ? ((1ULL << (i & 63)) - 1) : 0;
  r += static_cast<uint64_t>(std::popcount(words_[word] & mask));
  return r;
}

size_t RankBitVector::SizeBytes() const {
  return words_.size() * sizeof(uint64_t) +
         block_rank_.size() * sizeof(uint64_t) +
         word_offset_.size() * sizeof(uint16_t);
}

}  // namespace alae
