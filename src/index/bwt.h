#ifndef ALAE_INDEX_BWT_H_
#define ALAE_INDEX_BWT_H_

#include <cstdint>
#include <vector>

#include "src/io/sequence.h"

namespace alae {

// Burrows–Wheeler transform of text+sentinel.
//
// Symbols are stored shifted by +1 (sentinel = 0, residue c = c+1) so that
// the sentinel participates in rank queries like any other symbol. The
// result has length n+1.
struct BwtResult {
  std::vector<Symbol> bwt;      // shifted symbols, length n+1
  size_t sentinel_pos = 0;      // index of the sentinel within bwt
};

// Computes the BWT from a suffix array produced by BuildSuffixArray
// (sa[i] is the start of the i-th smallest suffix of text$).
BwtResult BuildBwt(const std::vector<Symbol>& text,
                   const std::vector<int64_t>& sa);

// Inverts a BWT back to the original text (sanity checking / tests).
std::vector<Symbol> InvertBwt(const BwtResult& bwt, int sigma);

}  // namespace alae

#endif  // ALAE_INDEX_BWT_H_
