// Startup cpuid resolution for the coarse-grained rank dispatch (see
// fm_rank.h). This TU is compiled with the project-default flags, so
// __POPCNT__ tells us whether the *portable* path is already native —
// in which case the clone is never selected and every call keeps the
// direct, cross-TU-inlined route.
#include "src/index/fm_rank.h"

#include <atomic>

namespace alae {
namespace internal {

std::atomic<const FmRankOps*> g_fm_rank_native{nullptr};

namespace {

#if defined(__POPCNT__)
constexpr bool kPortableIsNative = true;
#else
constexpr bool kPortableIsNative = false;
#endif

bool CpuHasPopcnt() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

// One-time probe, kicked off by a static initializer so steady-state calls
// pay only the relaxed load in SelectedNativeRankOps(). An FmIndex op that
// somehow runs before this initializer sees nullptr and takes the portable
// path — always safe, never wrong.
struct DispatchInit {
  DispatchInit() { InitFmRankDispatch(); }
} g_dispatch_init;

}  // namespace

void InitFmRankDispatch() {
  if (kPortableIsNative) return;  // direct path already runs popcnt
  if (!CpuHasPopcnt()) return;
  g_fm_rank_native.store(fm_rank_native::Ops(), std::memory_order_relaxed);
}

}  // namespace internal

FmRankTier ActiveFmRankTier() {
#if defined(__POPCNT__)
  return FmRankTier::kNativePopcnt;
#else
  return SelectedNativeRankOps() != nullptr ? FmRankTier::kNativePopcnt
                                            : FmRankTier::kPortable;
#endif
}

bool NativeFmRankAvailable() {
#if defined(__POPCNT__)
  return true;
#else
  return internal::CpuHasPopcnt() && fm_rank_native::Ops() != nullptr;
#endif
}

bool SetFmRankTier(FmRankTier tier) {
  if (tier == FmRankTier::kPortable) {
    internal::g_fm_rank_native.store(nullptr, std::memory_order_relaxed);
    return true;
  }
#if defined(__POPCNT__)
  return true;  // portable path is already native; nothing to switch
#else
  if (!NativeFmRankAvailable()) return false;
  internal::g_fm_rank_native.store(fm_rank_native::Ops(),
                                   std::memory_order_relaxed);
  return true;
#endif
}

}  // namespace alae
