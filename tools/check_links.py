#!/usr/bin/env python3
"""Checks that relative markdown links and file references resolve.

Scans the given markdown files for inline links `[text](target)` and
fails if a relative target (optionally with a #fragment) does not exist
on disk. External links (http/https/mailto) are ignored — CI must not
depend on the network. Fragments are validated against the target
document's headings (GitHub anchor rules: lowercase, punctuation
stripped, spaces to dashes).

    tools/check_links.py README.md docs/*.md

Exit codes: 0 ok, 1 broken link(s), 2 usage error.
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def anchors_of(path):
    """GitHub-style anchors for every heading in a markdown file."""
    anchors = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = HEADING.match(line)
            if not m:
                continue
            text = m.group(1).strip()
            # drop inline code/emphasis markers, then non-alnum except
            # spaces and dashes, then spaces -> dashes
            text = re.sub(r"[`*_]", "", text)
            anchor = re.sub(r"[^\w\- ]", "", text.lower())
            anchor = anchor.replace(" ", "-")
            anchors.add(anchor)
    return anchors


def check(paths):
    failures = []
    for path in paths:
        base = os.path.dirname(os.path.abspath(path))
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            ref, _, fragment = target.partition("#")
            if not ref:  # same-document fragment
                dest = os.path.abspath(path)
            else:
                dest = os.path.normpath(os.path.join(base, ref))
            if not os.path.exists(dest):
                failures.append("%s: broken link -> %s" % (path, target))
                continue
            if fragment and dest.endswith(".md"):
                if fragment not in anchors_of(dest):
                    failures.append(
                        "%s: missing anchor #%s in %s" % (path, fragment, ref))
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = check(argv[1:])
    for f in failures:
        print("FAIL: %s" % f)
    if failures:
        return 1
    print("ok: %d file(s), all links resolve" % (len(argv) - 1))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
