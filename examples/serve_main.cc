// Minimal serving driver for the live (mutable) query service.
//
// Loads (or builds and persists) a live corpus, then serves input read
// from a file or stdin from N client threads through the QueryScheduler,
// and prints a latency histogram with p50/p90/p99. Input lines are ASCII
// query sequences ('>' lines skipped so single-line-record FASTA works
// too), plus mutation commands:
//
//   #append ACGTACGT...   append a document (its id is printed)
//   #delete 7             tombstone document 7
//   #compact              fold deltas + tombstones into a fresh base
//   #stats                print corpus + cache counters
//
// When the input contains commands the script runs sequentially in order
// (mutations interleaved with queries, per-epoch stats printed as the
// corpus evolves); plain query-only input is served concurrently as
// before.
//
//   # build a random 2 Mb DNA corpus, save it, serve 200 sampled queries
//   serve_main --corpus=/tmp/corpus --random-text=2000000 \
//              --backend=alae --threads=4
//
//   # mutate while serving, then persist the mutated corpus
//   printf 'ACGT...\n#append ACGT...\nACGT...\n#compact\n' | \
//     serve_main --corpus=/tmp/corpus --queries=- --resave=1
//
// Exits non-zero on any setup failure; per-query failures are reported and
// counted but do not stop the run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/timer.h"

namespace {

using namespace alae;  // NOLINT: example brevity

struct Flags {
  std::string corpus;        // corpus directory (required)
  std::string queries;       // query file; "-" or empty = stdin or sampled
  std::string backend = "alae";
  int threads = 4;
  int32_t threshold = 20;
  int64_t random_text = 0;   // build a random corpus of this many chars
  int64_t shard_size = 1 << 20;
  int64_t overlap = 4096;
  int32_t sample_queries = 200;  // sampled queries when none are supplied
  int64_t query_len = 64;
  uint64_t seed = 42;
  int64_t compact_after = 8;   // background-compact after N delta shards
  int64_t shard_cache = 256;   // fragment-cache entries (0 = off)
  int32_t max_retries = 3;     // retries per query on overload (0 = none)
  bool resave = false;         // persist the corpus again on exit
  int32_t metrics_dump_sec = 0;  // dump the registry every N sec (0 = off)
  double trace_sample = 0.0;     // scheduler trace sampling rate
  int64_t slow_query_ms = 0;     // slow-query log threshold (0 = off)

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto take = [&](const char* name, std::string* out) {
        std::string prefix = std::string("--") + name + "=";
        if (arg.rfind(prefix, 0) == 0) {
          *out = arg.substr(prefix.size());
          return true;
        }
        return false;
      };
      std::string value;
      if (take("corpus", &f.corpus) || take("queries", &f.queries) ||
          take("backend", &f.backend)) {
        continue;
      } else if (take("threads", &value)) {
        f.threads = std::atoi(value.c_str());
      } else if (take("threshold", &value)) {
        f.threshold = std::atoi(value.c_str());
      } else if (take("random-text", &value)) {
        f.random_text = std::atoll(value.c_str());
      } else if (take("shard-size", &value)) {
        f.shard_size = std::atoll(value.c_str());
      } else if (take("overlap", &value)) {
        f.overlap = std::atoll(value.c_str());
      } else if (take("sample-queries", &value)) {
        f.sample_queries = std::atoi(value.c_str());
      } else if (take("query-len", &value)) {
        f.query_len = std::atoll(value.c_str());
      } else if (take("seed", &value)) {
        f.seed = std::strtoull(value.c_str(), nullptr, 10);
      } else if (take("compact-after", &value)) {
        f.compact_after = std::atoll(value.c_str());
      } else if (take("shard-cache", &value)) {
        f.shard_cache = std::atoll(value.c_str());
      } else if (take("max-retries", &value)) {
        f.max_retries = std::atoi(value.c_str());
      } else if (take("resave", &value)) {
        f.resave = std::atoi(value.c_str()) != 0;
      } else if (take("metrics-dump-sec", &value)) {
        f.metrics_dump_sec = std::atoi(value.c_str());
      } else if (take("trace-sample", &value)) {
        f.trace_sample = std::atof(value.c_str());
      } else if (take("slow-query-ms", &value)) {
        f.slow_query_ms = std::atoll(value.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (f.corpus.empty()) {
      std::fprintf(stderr,
                   "usage: serve_main --corpus=DIR [--random-text=N] "
                   "[--queries=FILE|-] [--backend=NAME] [--threads=N] "
                   "[--threshold=H] [--compact-after=N] [--shard-cache=N] "
                   "[--max-retries=N] [--resave=1] [--metrics-dump-sec=N] "
                   "[--trace-sample=R] [--slow-query-ms=N]\n");
      std::exit(2);
    }
    return f;
  }
};

// Log-ish latency histogram in microseconds, through the shared obs
// summary so the percentiles match every other reporter in the repo.
void PrintLatencies(obs::SampleSummary* summary) {
  if (summary->count() == 0) return;
  std::printf("\nlatency (us): p50 %.0f   p90 %.0f   p99 %.0f   max %.0f\n",
              summary->Percentile(0.50), summary->Percentile(0.90),
              summary->Percentile(0.99), summary->Percentile(1.0));
  const std::vector<double> bounds = {50,   100,   250,   500,   1000,  2500,
                                      5000, 10000, 25000, 50000, 100000};
  std::fputs(summary->RenderHistogram(bounds, "us").c_str(), stdout);
}

// One parsed input line of the (possibly mutating) serving script.
struct ScriptItem {
  enum Kind { kQuery, kAppend, kDelete, kCompact, kStats } kind = kQuery;
  std::string payload;  // residues for kQuery/kAppend
  uint64_t doc_id = 0;  // for kDelete
};

// Cache counters at an epoch boundary, for printing per-epoch deltas.
struct CacheSnap {
  uint64_t response_hits = 0, response_misses = 0;
  uint64_t fragment_hits = 0, fragment_misses = 0;

  static CacheSnap Of(const service::QueryScheduler& s) {
    return CacheSnap{s.cache().hits(), s.cache().misses(),
                     s.shard_cache().hits(), s.shard_cache().misses()};
  }
};

double Rate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                static_cast<double>(total);
}

void PrintEpochLine(const service::LiveCorpus& live,
                    const service::QueryScheduler& scheduler,
                    const CacheSnap& since, const char* why) {
  const CacheSnap now = CacheSnap::Of(scheduler);
  std::printf(
      "epoch %llu (%s): deltas=%zu tombstones=%zu compactions=%llu | "
      "since last epoch: response cache %llu/%llu (%.0f%%), fragment cache "
      "%llu/%llu (%.0f%%)\n",
      static_cast<unsigned long long>(live.epoch()), why, live.num_deltas(),
      live.num_tombstones(),
      static_cast<unsigned long long>(live.compactions()),
      static_cast<unsigned long long>(now.response_hits -
                                      since.response_hits),
      static_cast<unsigned long long>(now.response_misses -
                                      since.response_misses),
      Rate(now.response_hits - since.response_hits,
           now.response_misses - since.response_misses),
      static_cast<unsigned long long>(now.fragment_hits -
                                      since.fragment_hits),
      static_cast<unsigned long long>(now.fragment_misses -
                                      since.fragment_misses),
      Rate(now.fragment_hits - since.fragment_hits,
           now.fragment_misses - since.fragment_misses));
}

// Sequential script mode: execute queries and mutations in input order,
// printing a stats line at every epoch boundary (append/delete/compact)
// so cache hit-rate shifts across mutations and compactions are visible.
int RunScript(const std::vector<ScriptItem>& script, service::LiveCorpus& live,
              service::QueryScheduler& scheduler, const Flags& flags,
              const Alphabet& alphabet) {
  uint64_t failures = 0;
  uint64_t last_epoch = live.epoch();
  uint64_t last_compactions = live.compactions();
  CacheSnap epoch_snap = CacheSnap::Of(scheduler);
  obs::SampleSummary micros;
  for (const ScriptItem& item : script) {
    switch (item.kind) {
      case ScriptItem::kQuery: {
        api::SearchRequest request;
        request.query = Sequence::FromString(item.payload, alphabet);
        request.threshold = flags.threshold;
        Timer timer;
        api::StatusOr<api::SearchResponse> response =
            scheduler.Search(flags.backend, request);
        micros.Add(timer.ElapsedSeconds() * 1e6);
        if (!response.ok()) {
          ++failures;
          std::fprintf(stderr, "query: %s\n",
                       response.status().ToString().c_str());
          break;
        }
        std::printf("query m=%zu: %zu hits (tombstone-filtered %llu)\n",
                    request.query.size(), response->hits.size(),
                    static_cast<unsigned long long>(
                        response->stats.tombstone_filtered));
        break;
      }
      case ScriptItem::kAppend: {
        api::StatusOr<uint64_t> id =
            live.AppendDocument(Sequence::FromString(item.payload, alphabet));
        if (!id.ok()) {
          ++failures;
          std::fprintf(stderr, "#append: %s\n",
                       id.status().ToString().c_str());
          break;
        }
        std::printf("#append -> doc %llu (%zu chars)\n",
                    static_cast<unsigned long long>(*id),
                    item.payload.size());
        break;
      }
      case ScriptItem::kDelete: {
        api::Status status = live.DeleteDocument(item.doc_id);
        if (!status.ok()) {
          ++failures;
          std::fprintf(stderr, "#delete %llu: %s\n",
                       static_cast<unsigned long long>(item.doc_id),
                       status.ToString().c_str());
          break;
        }
        std::printf("#delete -> doc %llu tombstoned\n",
                    static_cast<unsigned long long>(item.doc_id));
        break;
      }
      case ScriptItem::kCompact: {
        Timer timer;
        api::Status status = live.Compact();
        if (!status.ok()) {
          ++failures;
          std::fprintf(stderr, "#compact: %s\n", status.ToString().c_str());
          break;
        }
        std::printf("#compact -> %.2fs, corpus now %lld chars\n",
                    timer.ElapsedSeconds(),
                    static_cast<long long>(live.text_size()));
        break;
      }
      case ScriptItem::kStats: {
        std::printf(
            "#stats: %lld chars, %zu docs, deltas=%zu tombstones=%zu "
            "compactions=%llu (background %llu), index %.1f MiB, response "
            "cache %llu/%llu, fragment cache %llu/%llu\n",
            static_cast<long long>(live.text_size()),
            live.Documents().size(), live.num_deltas(),
            live.num_tombstones(),
            static_cast<unsigned long long>(live.compactions()),
            static_cast<unsigned long long>(live.background_compactions()),
            static_cast<double>(live.IndexBytes()) / (1024.0 * 1024.0),
            static_cast<unsigned long long>(scheduler.cache().hits()),
            static_cast<unsigned long long>(scheduler.cache().misses()),
            static_cast<unsigned long long>(scheduler.shard_cache().hits()),
            static_cast<unsigned long long>(
                scheduler.shard_cache().misses()));
        break;
      }
    }
    const uint64_t epoch = live.epoch();
    if (epoch != last_epoch) {
      const uint64_t compactions = live.compactions();
      PrintEpochLine(live, scheduler, epoch_snap,
                     compactions != last_compactions ? "compaction"
                                                     : "mutation");
      last_epoch = epoch;
      last_compactions = compactions;
      epoch_snap = CacheSnap::Of(scheduler);
    }
  }
  PrintLatencies(&micros);
  return failures == 0 ? 0 : 1;
}

// Periodic registry dump (--metrics-dump-sec): a plain thread printing the
// text exposition to stderr until stopped.
class MetricsDumper {
 public:
  MetricsDumper(obs::MetricsRegistry* registry, int seconds) {
    if (seconds <= 0) return;
    thread_ = std::thread([this, registry, seconds] {
      while (!stop_.load()) {
        for (int i = 0; i < seconds * 10 && !stop_.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        if (stop_.load()) break;
        std::fprintf(stderr, "---- metrics ----\n%s",
                     registry->Expose().c_str());
      }
    });
  }
  ~MetricsDumper() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);

  service::LiveCorpusOptions live_options;
  live_options.base.shard_size = flags.shard_size;
  live_options.base.overlap = flags.overlap;
  live_options.compact_after_deltas =
      flags.compact_after < 0 ? 0 : static_cast<size_t>(flags.compact_after);

  // --- Corpus: load the directory if it holds a manifest, else build. ---
  std::unique_ptr<service::LiveCorpus> corpus;
  const bool have_manifest =
      std::filesystem::exists(flags.corpus + "/corpus.manifest");
  if (have_manifest) {
    auto loaded = service::LiveCorpus::Load(flags.corpus, live_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", flags.corpus.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).value();
    std::printf(
        "loaded corpus %s: %lld chars, %zu docs, %zu base shards, "
        "%zu deltas, %zu tombstones\n",
        flags.corpus.c_str(), static_cast<long long>(corpus->text_size()),
        corpus->Documents().size(), corpus->base()->num_shards(),
        corpus->num_deltas(), corpus->num_tombstones());
  } else {
    if (flags.random_text <= 0) {
      std::fprintf(stderr,
                   "%s has no corpus.manifest; pass --random-text=N to build "
                   "one\n",
                   flags.corpus.c_str());
      return 1;
    }
    SequenceGenerator gen(flags.seed);
    Sequence text = gen.Random(flags.random_text, Alphabet::Dna());
    Timer build_timer;
    auto built = service::LiveCorpus::Build(std::move(text), live_options);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(built).value();
    std::printf("built corpus: %lld chars, %zu base shards in %.2fs\n",
                static_cast<long long>(corpus->text_size()),
                corpus->base()->num_shards(), build_timer.ElapsedSeconds());
    if (api::Status saved = corpus->Save(flags.corpus); !saved.ok()) {
      std::fprintf(stderr, "save %s: %s\n", flags.corpus.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("saved to %s\n", flags.corpus.c_str());
  }

  // --- Input: a file, stdin, or sampled from the corpus. ---
  const Alphabet& alphabet = corpus->alphabet();
  std::vector<ScriptItem> script;
  bool has_commands = false;
  if (!flags.queries.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (flags.queries != "-") {
      file.open(flags.queries);
      if (!file.is_open()) {
        std::fprintf(stderr, "cannot read %s\n", flags.queries.c_str());
        return 1;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (line.empty() || line[0] == '>') continue;
      if (line[0] == '#') {
        has_commands = true;
        ScriptItem item;
        if (line.rfind("#append ", 0) == 0) {
          item.kind = ScriptItem::kAppend;
          item.payload = line.substr(8);
        } else if (line.rfind("#delete ", 0) == 0) {
          item.kind = ScriptItem::kDelete;
          item.doc_id = std::strtoull(line.c_str() + 8, nullptr, 10);
        } else if (line == "#compact") {
          item.kind = ScriptItem::kCompact;
        } else if (line == "#stats") {
          item.kind = ScriptItem::kStats;
        } else {
          std::fprintf(stderr, "unknown command: %s\n", line.c_str());
          return 2;
        }
        script.push_back(std::move(item));
        continue;
      }
      script.push_back(ScriptItem{ScriptItem::kQuery, line, 0});
    }
  } else {
    SequenceGenerator gen(flags.seed + 1);
    const Sequence& base_text = corpus->base()->text();
    for (int32_t i = 0; i < flags.sample_queries; ++i) {
      script.push_back(ScriptItem{
          ScriptItem::kQuery,
          gen.HomologousQuery(base_text, flags.query_len, 0.7, 0.15, 0.02)
              .ToString(),
          0});
    }
    std::printf("no --queries given; sampled %zu homologous queries (m=%lld)\n",
                script.size(), static_cast<long long>(flags.query_len));
  }
  if (script.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }

  service::QueryScheduler scheduler(
      *corpus,
      {.threads = flags.threads,
       .cache_capacity = 1024,
       .shard_cache_capacity =
           flags.shard_cache < 0 ? 0 : static_cast<size_t>(flags.shard_cache),
       .trace_sample_rate = flags.trace_sample,
       .slow_query_ms = flags.slow_query_ms,
       .slow_query_sink = [](const std::string& rendered) {
         std::fprintf(stderr, "slow query:\n%s", rendered.c_str());
       }});
  MetricsDumper dumper(&scheduler.registry(), flags.metrics_dump_sec);

  int exit_code = 0;
  if (has_commands) {
    // --- Sequential script mode: mutations interleaved with queries. ---
    exit_code = RunScript(script, *corpus, scheduler, flags, alphabet);
  } else {
    // --- Classic concurrent mode: query-only traffic. ---
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> plan_compile_ns{0};
    std::atomic<uint64_t> plan_reuses{0};
    std::vector<std::vector<double>> client_micros(
        static_cast<size_t>(std::max(1, flags.threads)));
    Timer wall;
    auto client = [&](size_t id) {
      // Per-client jitter source (splitmix64) so backed-off clients spread
      // out instead of re-colliding on the full queue in lockstep.
      uint64_t rng = (flags.seed + id + 1) * 0x9E3779B97F4A7C15ull;
      auto jitter = [&rng] {
        uint64_t z = (rng += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
      };
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= script.size()) break;
        api::SearchRequest request;
        request.query = Sequence::FromString(script[i].payload, alphabet);
        request.threshold = flags.threshold;
        Timer timer;
        api::StatusOr<api::SearchResponse> response =
            scheduler.Search(flags.backend, request);
        // kResourceExhausted is the scheduler's backpressure signal, not a
        // verdict on the query: retry it up to --max-retries times under
        // bounded exponential backoff (1, 2, 4, ... ms, capped at 64 ms),
        // each sleep jittered across [half, full] of its bound.
        for (int attempt = 0;
             !response.ok() &&
             response.status().code() == api::StatusCode::kResourceExhausted &&
             attempt < flags.max_retries;
             ++attempt) {
          const int64_t bound_us = int64_t{1000} << std::min(attempt, 6);
          const int64_t sleep_us =
              bound_us / 2 +
              static_cast<int64_t>(jitter() % static_cast<uint64_t>(
                                                  bound_us / 2 + 1));
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
          ++retries;
          response = scheduler.Search(flags.backend, request);
        }
        client_micros[id].push_back(timer.ElapsedSeconds() * 1e6);
        if (!response.ok()) {
          ++failures;
          std::fprintf(stderr, "query %zu: %s\n", i,
                       response.status().ToString().c_str());
          continue;
        }
        hits += response->hits.size();
        plan_compile_ns += response->stats.plan_compile_ns;
        plan_reuses += response->stats.plan_reuses;
      }
    };
    std::vector<std::thread> clients;
    for (size_t c = 0; c < client_micros.size(); ++c) {
      clients.emplace_back(client, c);
    }
    for (std::thread& t : clients) t.join();
    const double seconds = wall.ElapsedSeconds();

    obs::SampleSummary micros;
    for (std::vector<double>& m : client_micros) {
      for (double v : m) micros.Add(v);
    }
    std::printf(
        "served %zu queries on backend '%s' with %d threads in %.2fs "
        "(%.1f qps), %llu hits, %llu failures, %llu overload retries, "
        "response cache %llu/%llu, fragment cache %llu/%llu\n",
        script.size(), flags.backend.c_str(), flags.threads, seconds,
        static_cast<double>(script.size()) / seconds,
        static_cast<unsigned long long>(hits.load()),
        static_cast<unsigned long long>(failures.load()),
        static_cast<unsigned long long>(retries.load()),
        static_cast<unsigned long long>(scheduler.cache().hits()),
        static_cast<unsigned long long>(scheduler.cache().misses()),
        static_cast<unsigned long long>(scheduler.shard_cache().hits()),
        static_cast<unsigned long long>(scheduler.shard_cache().misses()));
    std::printf(
        "query compilation: %.2f ms total (once per computed request), "
        "%llu plan-reusing engine runs\n",
        static_cast<double>(plan_compile_ns.load()) / 1e6,
        static_cast<unsigned long long>(plan_reuses.load()));
    PrintLatencies(&micros);
    exit_code = failures.load() == 0 ? 0 : 1;
  }

  if (flags.metrics_dump_sec > 0) {
    // Final scrape so short runs see at least one exposition.
    std::fprintf(stderr, "---- metrics (final) ----\n%s",
                 scheduler.registry().Expose().c_str());
  }

  if (flags.resave) {
    if (api::Status saved = corpus->Save(flags.corpus); !saved.ok()) {
      std::fprintf(stderr, "resave %s: %s\n", flags.corpus.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("resaved mutated corpus to %s\n", flags.corpus.c_str());
  }
  return exit_code;
}
