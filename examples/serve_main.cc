// Minimal serving driver for the sharded query service.
//
// Loads (or builds and persists) a sharded corpus, then serves queries read
// from a file or stdin — one ASCII sequence per line, '>' lines skipped so
// single-line-record FASTA works too — from N client threads through the
// QueryScheduler, and prints a latency histogram with p50/p90/p99.
//
//   # build a random 2 Mb DNA corpus, save it, serve 200 sampled queries
//   serve_main --corpus=/tmp/corpus --random-text=2000000 \
//              --backend=alae --threads=4
//
//   # serve your own queries against a saved corpus
//   serve_main --corpus=/tmp/corpus --queries=queries.txt --backend=bwt-sw
//
// Exits non-zero on any setup failure; per-query failures are reported and
// counted but do not stop the run.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/timer.h"

namespace {

using namespace alae;  // NOLINT: example brevity

struct Flags {
  std::string corpus;        // corpus directory (required)
  std::string queries;       // query file; "-" or empty = stdin or sampled
  std::string backend = "alae";
  int threads = 4;
  int32_t threshold = 20;
  int64_t random_text = 0;   // build a random corpus of this many chars
  int64_t shard_size = 1 << 20;
  int64_t overlap = 4096;
  int32_t sample_queries = 200;  // sampled queries when none are supplied
  int64_t query_len = 64;
  uint64_t seed = 42;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto take = [&](const char* name, std::string* out) {
        std::string prefix = std::string("--") + name + "=";
        if (arg.rfind(prefix, 0) == 0) {
          *out = arg.substr(prefix.size());
          return true;
        }
        return false;
      };
      std::string value;
      if (take("corpus", &f.corpus) || take("queries", &f.queries) ||
          take("backend", &f.backend)) {
        continue;
      } else if (take("threads", &value)) {
        f.threads = std::atoi(value.c_str());
      } else if (take("threshold", &value)) {
        f.threshold = std::atoi(value.c_str());
      } else if (take("random-text", &value)) {
        f.random_text = std::atoll(value.c_str());
      } else if (take("shard-size", &value)) {
        f.shard_size = std::atoll(value.c_str());
      } else if (take("overlap", &value)) {
        f.overlap = std::atoll(value.c_str());
      } else if (take("sample-queries", &value)) {
        f.sample_queries = std::atoi(value.c_str());
      } else if (take("query-len", &value)) {
        f.query_len = std::atoll(value.c_str());
      } else if (take("seed", &value)) {
        f.seed = std::strtoull(value.c_str(), nullptr, 10);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    if (f.corpus.empty()) {
      std::fprintf(stderr,
                   "usage: serve_main --corpus=DIR [--random-text=N] "
                   "[--queries=FILE|-] [--backend=NAME] [--threads=N] "
                   "[--threshold=H]\n");
      std::exit(2);
    }
    return f;
  }
};

// Log-ish latency histogram in microseconds.
void PrintLatencies(std::vector<double>* micros) {
  if (micros->empty()) return;
  std::sort(micros->begin(), micros->end());
  auto pct = [&](double p) {
    size_t i = static_cast<size_t>(p * static_cast<double>(micros->size() - 1));
    return (*micros)[i];
  };
  std::printf("\nlatency (us): p50 %.0f   p90 %.0f   p99 %.0f   max %.0f\n",
              pct(0.50), pct(0.90), pct(0.99), micros->back());
  const double buckets[] = {50,    100,   250,    500,    1000,  2500,
                            5000,  10000, 25000,  50000,  100000};
  size_t from = 0;
  for (double edge : buckets) {
    size_t to = from;
    while (to < micros->size() && (*micros)[to] < edge) ++to;
    if (to > from) {
      std::printf("  <%7.0fus %6zu %s\n", edge, to - from,
                  std::string(std::min<size_t>(60, (to - from) * 60 /
                                                       micros->size() + 1),
                              '#')
                      .c_str());
    }
    from = to;
  }
  if (from < micros->size()) {
    std::printf("  >=100000us %5zu\n", micros->size() - from);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);

  // --- Corpus: load the directory if it holds a manifest, else build. ---
  std::unique_ptr<service::ShardedCorpus> corpus;
  const bool have_manifest =
      std::filesystem::exists(flags.corpus + "/corpus.manifest");
  if (have_manifest) {
    auto loaded = service::ShardedCorpus::Load(flags.corpus);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", flags.corpus.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).value();
    std::printf("loaded corpus %s: %lld chars, %zu shards\n",
                flags.corpus.c_str(),
                static_cast<long long>(corpus->text_size()),
                corpus->num_shards());
  } else {
    if (flags.random_text <= 0) {
      std::fprintf(stderr,
                   "%s has no corpus.manifest; pass --random-text=N to build "
                   "one\n",
                   flags.corpus.c_str());
      return 1;
    }
    SequenceGenerator gen(flags.seed);
    Sequence text = gen.Random(flags.random_text, Alphabet::Dna());
    service::ShardedCorpusOptions options;
    options.shard_size = flags.shard_size;
    options.overlap = flags.overlap;
    Timer build_timer;
    auto built = service::ShardedCorpus::Build(std::move(text), options);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(built).value();
    std::printf("built corpus: %lld chars, %zu shards in %.2fs\n",
                static_cast<long long>(corpus->text_size()),
                corpus->num_shards(), build_timer.ElapsedSeconds());
    if (api::Status saved = corpus->Save(flags.corpus); !saved.ok()) {
      std::fprintf(stderr, "save %s: %s\n", flags.corpus.c_str(),
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("saved to %s\n", flags.corpus.c_str());
  }

  // --- Queries: a file, stdin, or sampled from the corpus. ---
  std::vector<Sequence> queries;
  const Alphabet& alphabet = corpus->text().alphabet();
  if (!flags.queries.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (flags.queries != "-") {
      file.open(flags.queries);
      if (!file.is_open()) {
        std::fprintf(stderr, "cannot read %s\n", flags.queries.c_str());
        return 1;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (line.empty() || line[0] == '>') continue;
      queries.push_back(Sequence::FromString(line, alphabet));
    }
  } else {
    SequenceGenerator gen(flags.seed + 1);
    for (int32_t i = 0; i < flags.sample_queries; ++i) {
      queries.push_back(gen.HomologousQuery(corpus->text(), flags.query_len,
                                            0.7, 0.15, 0.02));
    }
    std::printf("no --queries given; sampled %zu homologous queries (m=%lld)\n",
                queries.size(), static_cast<long long>(flags.query_len));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries\n");
    return 1;
  }

  // --- Serve. ---
  service::QueryScheduler scheduler(
      *corpus, {.threads = flags.threads, .cache_capacity = 1024});
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> plan_compile_ns{0};
  std::atomic<uint64_t> plan_reuses{0};
  std::vector<std::vector<double>> client_micros(
      static_cast<size_t>(std::max(1, flags.threads)));
  Timer wall;
  auto client = [&](size_t id) {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= queries.size()) break;
      api::SearchRequest request;
      request.query = queries[i];
      request.threshold = flags.threshold;
      Timer timer;
      api::StatusOr<api::SearchResponse> response =
          scheduler.Search(flags.backend, request);
      client_micros[id].push_back(timer.ElapsedSeconds() * 1e6);
      if (!response.ok()) {
        ++failures;
        std::fprintf(stderr, "query %zu: %s\n", i,
                     response.status().ToString().c_str());
        continue;
      }
      hits += response->hits.size();
      plan_compile_ns += response->stats.plan_compile_ns;
      plan_reuses += response->stats.plan_reuses;
    }
  };
  std::vector<std::thread> clients;
  for (size_t c = 0; c < client_micros.size(); ++c) {
    clients.emplace_back(client, c);
  }
  for (std::thread& t : clients) t.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> micros;
  for (std::vector<double>& m : client_micros) {
    micros.insert(micros.end(), m.begin(), m.end());
  }
  std::printf(
      "served %zu queries on backend '%s' with %d threads in %.2fs "
      "(%.1f qps), %llu hits, %llu failures, cache %llu/%llu hit/miss\n",
      queries.size(), flags.backend.c_str(), flags.threads, seconds,
      static_cast<double>(queries.size()) / seconds,
      static_cast<unsigned long long>(hits.load()),
      static_cast<unsigned long long>(failures.load()),
      static_cast<unsigned long long>(scheduler.cache().hits()),
      static_cast<unsigned long long>(scheduler.cache().misses()));
  std::printf(
      "query compilation: %.2f ms total (once per computed request), "
      "%llu plan-reusing engine runs\n",
      static_cast<double>(plan_compile_ns.load()) / 1e6,
      static_cast<unsigned long long>(plan_reuses.load()));
  PrintLatencies(&micros);
  return failures.load() == 0 ? 0 : 1;
}
