// alae_search: command-line exact local-alignment search.
//
//   alae_search --text=ref.fa --query=queries.fa [options]
//
// Options:
//   --text=FILE        reference FASTA (records concatenated, §2.2)
//   --query=FILE       query FASTA (each record searched independently)
//   --protein          use the protein alphabet (default: DNA)
//   --scheme=a,b,g,s   scoring scheme, e.g. --scheme=1,-3,-5,-2 (default)
//   --evalue=E         threshold from the Karlin-Altschul conversion (§7)
//   --threshold=H      explicit score threshold (overrides --evalue)
//   --engine=alae|bwtsw|blast|sw   search engine (default alae)
//   --threads=N        parallel queries for the alae engine (default 1)
//   --max-hits=N       print at most N hits per query (default 25)
//   --traceback        also print CIGAR + identity per hit
//   --demo             run on a built-in synthetic workload (no files)
//
// Output: TSV with one row per hit:
//   query_id  text_end  query_end  score  e_value  [cigar  identity]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/align/traceback.h"
#include "src/baseline/blast/blast.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"
#include "src/core/batch.h"
#include "src/io/fasta.h"
#include "src/sim/generator.h"
#include "src/stats/karlin.h"
#include "src/util/timer.h"

using namespace alae;

namespace {

struct CliOptions {
  std::string text_path, query_path;
  bool protein = false;
  ScoringScheme scheme = ScoringScheme::Default();
  double evalue = 10.0;
  int32_t threshold = 0;  // 0 = derive from evalue
  std::string engine = "alae";
  int threads = 1;
  int max_hits = 25;
  bool traceback = false;
  bool demo = false;
};

bool ParseScheme(const char* spec, ScoringScheme* out) {
  int a, b, g, s;
  if (std::sscanf(spec, "%d,%d,%d,%d", &a, &b, &g, &s) != 4) return false;
  *out = ScoringScheme{a, b, g, s};
  return out->Valid();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --text=ref.fa --query=queries.fa "
               "[--protein] [--scheme=1,-3,-5,-2] [--evalue=10 | "
               "--threshold=H] [--engine=alae|bwtsw|blast|sw] [--threads=N] "
               "[--max-hits=N] [--traceback] | --demo\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--text=")) opt.text_path = v;
    else if (const char* v = value("--query=")) opt.query_path = v;
    else if (std::strcmp(arg, "--protein") == 0) opt.protein = true;
    else if (const char* v = value("--scheme=")) {
      if (!ParseScheme(v, &opt.scheme)) {
        std::fprintf(stderr, "bad --scheme (need sa,sb,sg,ss with sa>0, "
                             "sb/sg/ss<0)\n");
        return 2;
      }
    } else if (const char* v = value("--evalue=")) opt.evalue = std::atof(v);
    else if (const char* v = value("--threshold=")) opt.threshold = std::atoi(v);
    else if (const char* v = value("--engine=")) opt.engine = v;
    else if (const char* v = value("--threads=")) opt.threads = std::atoi(v);
    else if (const char* v = value("--max-hits=")) opt.max_hits = std::atoi(v);
    else if (std::strcmp(arg, "--traceback") == 0) opt.traceback = true;
    else if (std::strcmp(arg, "--demo") == 0) opt.demo = true;
    else return Usage(argv[0]);
  }

  const Alphabet& alphabet =
      opt.protein ? Alphabet::Protein() : Alphabet::Dna();

  // Load (or synthesise) the text and queries.
  Sequence text;
  std::vector<std::pair<std::string, Sequence>> queries;
  if (opt.demo) {
    SequenceGenerator gen(7);
    text = gen.Random(200'000, alphabet);
    for (int i = 0; i < 3; ++i) {
      queries.push_back({"demo_query_" + std::to_string(i),
                         gen.HomologousQuery(text, 2000, 0.6, 0.2, 0.02)});
    }
    std::fprintf(stderr, "demo mode: 200K synthetic text, 3x2K queries\n");
  } else {
    if (opt.text_path.empty() || opt.query_path.empty()) return Usage(argv[0]);
    std::vector<FastaRecord> text_records, query_records;
    std::string error;
    if (!FastaReader::ParseFile(opt.text_path, &text_records, &error)) {
      std::fprintf(stderr, "error reading %s: %s\n", opt.text_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (!FastaReader::ParseFile(opt.query_path, &query_records, &error)) {
      std::fprintf(stderr, "error reading %s: %s\n", opt.query_path.c_str(),
                   error.c_str());
      return 1;
    }
    text = FastaReader::ToText(text_records, alphabet);
    for (const FastaRecord& rec : query_records) {
      queries.push_back({rec.header, Sequence::FromString(rec.residues,
                                                          alphabet)});
    }
  }

  const int64_t n = static_cast<int64_t>(text.size());
  Timer timer;
  std::printf("#query\ttext_end\tquery_end\tscore\te_value%s\n",
              opt.traceback ? "\tcigar\tidentity" : "");

  // Index once for the index-based engines.
  std::unique_ptr<AlaeIndex> index;
  std::unique_ptr<FmIndex> rev;
  if (opt.engine == "alae") {
    index = std::make_unique<AlaeIndex>(text);
  } else if (opt.engine == "bwtsw") {
    rev = std::make_unique<FmIndex>(text.Reversed());
  }
  std::fprintf(stderr, "setup: %.2fs\n", timer.ElapsedSeconds());

  for (const auto& [id, query] : queries) {
    int64_t m = static_cast<int64_t>(query.size());
    int32_t h = opt.threshold > 0
                    ? opt.threshold
                    : KarlinStats::EValueToThreshold(opt.evalue, m, n,
                                                     opt.scheme,
                                                     alphabet.sigma());
    timer.Reset();
    ResultCollector hits;
    if (opt.engine == "alae") {
      if (opt.threads > 1) {
        BatchRunner runner(*index);
        hits = std::move(
            runner.Run({query}, opt.scheme, h, opt.threads)[0]);
      } else {
        Alae engine(*index);
        hits = engine.Run(query, opt.scheme, h);
      }
    } else if (opt.engine == "bwtsw") {
      BwtSw engine(*rev, n);
      hits = engine.Run(query, opt.scheme, h);
    } else if (opt.engine == "blast") {
      hits = Blast::Run(text, query, opt.scheme, h);
    } else if (opt.engine == "sw") {
      hits = SmithWaterman::Run(text, query, opt.scheme, h);
    } else {
      std::fprintf(stderr, "unknown engine %s\n", opt.engine.c_str());
      return 2;
    }
    std::fprintf(stderr, "%s: H=%d, %zu hits, %.3fs\n", id.c_str(), h,
                 hits.size(), timer.ElapsedSeconds());

    // Best-scoring hits first.
    std::vector<AlignmentHit> sorted = hits.Sorted();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const AlignmentHit& a, const AlignmentHit& b) {
                       return a.score > b.score;
                     });
    int printed = 0;
    for (const AlignmentHit& hit : sorted) {
      if (printed++ >= opt.max_hits) break;
      double e = KarlinStats::ScoreToEValue(hit.score, m, n, opt.scheme,
                                            alphabet.sigma());
      if (opt.traceback) {
        AlignmentPath path = TracebackAlignment(text, query, hit.text_end,
                                                hit.query_end, opt.scheme);
        std::printf("%s\t%lld\t%lld\t%d\t%.3g\t%s\t%.1f%%\n", id.c_str(),
                    static_cast<long long>(hit.text_end),
                    static_cast<long long>(hit.query_end), hit.score, e,
                    path.cigar.c_str(), 100.0 * path.Identity());
      } else {
        std::printf("%s\t%lld\t%lld\t%d\t%.3g\n", id.c_str(),
                    static_cast<long long>(hit.text_end),
                    static_cast<long long>(hit.query_end), hit.score, e);
      }
    }
  }
  return 0;
}
