// alae_search: command-line exact local-alignment search.
//
//   alae_search --text=ref.fa --query=queries.fa [options]
//
// Options:
//   --text=FILE        reference FASTA (records concatenated, §2.2)
//   --query=FILE       query FASTA (each record searched independently)
//   --protein          use the protein alphabet (default: DNA)
//   --scheme=a,b,g,s   scoring scheme, e.g. --scheme=1,-3,-5,-2 (default)
//   --evalue=E         threshold from the Karlin-Altschul conversion (§7)
//   --threshold=H      explicit score threshold (overrides --evalue)
//   --engine=NAME      any registered backend: alae (default), bwt-sw,
//                      blast, sw, basic
//   --threads=N        parallel queries (0 = hardware concurrency)
//   --max-hits=N       print at most N hits per query (default 25)
//   --traceback        also print CIGAR + identity per hit
//   --demo             run on a built-in synthetic workload (no files)
//
// Output: TSV with one row per hit:
//   query_id  text_end  query_end  score  e_value  [cigar  identity]
//
// Every engine rides the same AlignerRegistry/SearchRequest facade, so
// --engine switches backends without touching any other code path.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/align/traceback.h"
#include "src/api/api.h"
#include "src/io/fasta.h"
#include "src/sim/generator.h"
#include "src/stats/karlin.h"
#include "src/util/timer.h"

using namespace alae;

namespace {

struct CliOptions {
  std::string text_path, query_path;
  bool protein = false;
  ScoringScheme scheme = ScoringScheme::Default();
  double evalue = 10.0;
  int32_t threshold = 0;  // 0 = derive from evalue
  std::string engine = "alae";
  int threads = 1;
  int max_hits = 25;
  bool traceback = false;
  bool demo = false;
};

bool ParseScheme(const char* spec, ScoringScheme* out) {
  int a, b, g, s;
  if (std::sscanf(spec, "%d,%d,%d,%d", &a, &b, &g, &s) != 4) return false;
  *out = ScoringScheme{a, b, g, s};
  return out->Valid();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --text=ref.fa --query=queries.fa "
               "[--protein] [--scheme=1,-3,-5,-2] [--evalue=10 | "
               "--threshold=H] [--engine=alae|bwt-sw|blast|sw|basic] "
               "[--threads=N] [--max-hits=N] [--traceback] | --demo\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--text=")) opt.text_path = v;
    else if (const char* v = value("--query=")) opt.query_path = v;
    else if (std::strcmp(arg, "--protein") == 0) opt.protein = true;
    else if (const char* v = value("--scheme=")) {
      if (!ParseScheme(v, &opt.scheme)) {
        std::fprintf(stderr, "bad --scheme (need sa,sb,sg,ss with sa>0, "
                             "sb/sg/ss<0)\n");
        return 2;
      }
    } else if (const char* v = value("--evalue=")) opt.evalue = std::atof(v);
    else if (const char* v = value("--threshold=")) opt.threshold = std::atoi(v);
    else if (const char* v = value("--engine=")) opt.engine = v;
    else if (const char* v = value("--threads=")) opt.threads = std::atoi(v);
    else if (const char* v = value("--max-hits=")) opt.max_hits = std::atoi(v);
    else if (std::strcmp(arg, "--traceback") == 0) opt.traceback = true;
    else if (std::strcmp(arg, "--demo") == 0) opt.demo = true;
    else return Usage(argv[0]);
  }

  const Alphabet& alphabet =
      opt.protein ? Alphabet::Protein() : Alphabet::Dna();

  // Load (or synthesise) the text and queries.
  Sequence text;
  std::vector<std::pair<std::string, Sequence>> queries;
  if (opt.demo) {
    SequenceGenerator gen(7);
    text = gen.Random(200'000, alphabet);
    for (int i = 0; i < 3; ++i) {
      queries.push_back({"demo_query_" + std::to_string(i),
                         gen.HomologousQuery(text, 2000, 0.6, 0.2, 0.02)});
    }
    std::fprintf(stderr, "demo mode: 200K synthetic text, 3x2K queries\n");
  } else {
    if (opt.text_path.empty() || opt.query_path.empty()) return Usage(argv[0]);
    std::vector<FastaRecord> text_records, query_records;
    std::string error;
    if (!FastaReader::ParseFile(opt.text_path, &text_records, &error)) {
      std::fprintf(stderr, "error reading %s: %s\n", opt.text_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (!FastaReader::ParseFile(opt.query_path, &query_records, &error)) {
      std::fprintf(stderr, "error reading %s: %s\n", opt.query_path.c_str(),
                   error.c_str());
      return 1;
    }
    text = FastaReader::ToText(text_records, alphabet);
    for (const FastaRecord& rec : query_records) {
      queries.push_back({rec.header, Sequence::FromString(rec.residues,
                                                          alphabet)});
    }
  }

  const int64_t n = static_cast<int64_t>(text.size());
  Timer timer;

  // Index once; the registry hands any backend the shared index.
  api::AlignerRegistry registry(text);
  api::StatusOr<std::unique_ptr<api::Aligner>> aligner =
      registry.Create(opt.engine);
  if (!aligner.ok()) {
    std::fprintf(stderr, "%s\n", aligner.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr, "setup: %.2fs\n", timer.ElapsedSeconds());

  // One request per query; thresholds are per-query because the E-value
  // conversion depends on the query length.
  std::vector<api::SearchRequest> requests;
  requests.reserve(queries.size());
  for (const auto& [id, query] : queries) {
    (void)id;
    api::SearchRequest request;
    request.query = query;
    request.scheme = opt.scheme;
    // 0 means "derive from --evalue"; anything else (including a negative)
    // goes to the API, whose validation rejects non-positive thresholds.
    request.threshold =
        opt.threshold != 0
            ? opt.threshold
            : KarlinStats::EValueToThreshold(
                  opt.evalue, static_cast<int64_t>(query.size()), n,
                  opt.scheme, alphabet.sigma());
    requests.push_back(std::move(request));
  }

  // One bad record must not abort the rest: the driver is all-or-nothing,
  // so validate per query and batch only the valid ones.
  std::vector<api::SearchRequest> valid_requests;
  std::vector<size_t> origin;  // valid_requests[k] answers queries[origin[k]]
  for (size_t qi = 0; qi < requests.size(); ++qi) {
    api::Status status = (*aligner)->Validate(requests[qi]);
    if (status.ok()) {
      valid_requests.push_back(requests[qi]);
      origin.push_back(qi);
    } else {
      std::fprintf(stderr, "%s: skipped (%s)\n", queries[qi].first.c_str(),
                   status.ToString().c_str());
    }
  }

  if (valid_requests.empty() && !queries.empty()) {
    std::fprintf(stderr, "search failed: every query was rejected\n");
    return 1;
  }

  api::MultiQueryDriver driver(**aligner);
  api::StatusOr<std::vector<api::SearchResponse>> batch =
      driver.Run(valid_requests, opt.threads);
  if (!batch.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  std::vector<api::SearchResponse> responses(queries.size());
  for (size_t k = 0; k < batch->size(); ++k) {
    responses[origin[k]] = std::move((*batch)[k]);
  }

  std::printf("#query\ttext_end\tquery_end\tscore\te_value%s\n",
              opt.traceback ? "\tcigar\tidentity" : "");
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& [id, query] = queries[qi];
    const api::SearchResponse& response = responses[qi];
    int64_t m = static_cast<int64_t>(query.size());
    std::fprintf(stderr, "%s: H=%d, %zu hits, %.3fs\n", id.c_str(),
                 requests[qi].threshold, response.hits.size(),
                 response.stats.seconds);

    // Best-scoring hits first.
    std::vector<AlignmentHit> sorted = response.hits;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const AlignmentHit& a, const AlignmentHit& b) {
                       return a.score > b.score;
                     });
    int printed = 0;
    for (const AlignmentHit& hit : sorted) {
      if (printed++ >= opt.max_hits) break;
      double e = KarlinStats::ScoreToEValue(hit.score, m, n, opt.scheme,
                                            alphabet.sigma());
      if (opt.traceback) {
        AlignmentPath path = TracebackAlignment(text, query, hit.text_end,
                                                hit.query_end, opt.scheme);
        std::printf("%s\t%lld\t%lld\t%d\t%.3g\t%s\t%.1f%%\n", id.c_str(),
                    static_cast<long long>(hit.text_end),
                    static_cast<long long>(hit.query_end), hit.score, e,
                    path.cigar.c_str(), 100.0 * path.Identity());
      } else {
        std::printf("%s\t%lld\t%lld\t%d\t%.3g\n", id.c_str(),
                    static_cast<long long>(hit.text_end),
                    static_cast<long long>(hit.query_end), hit.score, e);
      }
    }
  }
  return 0;
}
