// Quickstart: index a text, run an exact local-alignment search with ALAE,
// and print the hits.
//
//   ./examples/quickstart
//
// Demonstrates the three-line happy path of the public API:
//   AlaeIndex index(text);   Alae alae(index);   alae.Run(query, ...)

#include <cstdio>

#include "src/core/alae.h"
#include "src/io/sequence.h"

using namespace alae;

int main() {
  // The text would normally come from FastaReader; a literal keeps the
  // example self-contained. GCTAGC... contains two copies of GCTA.
  Sequence text = Sequence::FromString(
      "TTGACGGCTAGCAAGTGCTAGGTTACCAGGCATTAAGGCTAACCGGTTAACCGG",
      Alphabet::Dna());
  Sequence query = Sequence::FromString("GCTAG", Alphabet::Dna());

  // Index once (FM-index over reverse(T) + lazily-built domination
  // indexes); run many queries against it.
  AlaeIndex index(text);
  Alae alae(index);

  // <1,-3,-5,-2> is the default scheme of BLAST and BWT-SW; H is the
  // minimum alignment score to report.
  ScoringScheme scheme = ScoringScheme::Default();
  int32_t threshold = 4;

  ResultCollector results = alae.Run(query, scheme, threshold);

  std::printf("query %s against %zu-char text, H=%d: %zu hits\n",
              query.ToString().c_str(), text.size(), threshold,
              results.size());
  for (const AlignmentHit& hit : results.Sorted()) {
    std::printf("  text[%lld..%lld] ~ query[..%lld]  score=%d\n",
                static_cast<long long>(hit.text_start),
                static_cast<long long>(hit.text_end),
                static_cast<long long>(hit.query_end), hit.score);
  }
  return 0;
}
