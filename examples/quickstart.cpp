// Quickstart: index a text, run an exact local-alignment search through the
// unified Aligner facade, and print the hits.
//
//   ./examples/quickstart
//
// Demonstrates the happy path of the public API:
//   AlignerRegistry registry(text);
//   auto aligner = registry.Create("alae");
//   auto response = (*aligner)->Search(request);
// Swap "alae" for "bwt-sw", "blast", "sw" or "basic" and nothing else
// changes — all five backends answer the same request.

#include <cstdio>

#include "src/api/api.h"
#include "src/io/sequence.h"

using namespace alae;

int main() {
  // The text would normally come from FastaReader; a literal keeps the
  // example self-contained. GCTAGC... contains two copies of GCTA.
  Sequence text = Sequence::FromString(
      "TTGACGGCTAGCAAGTGCTAGGTTACCAGGCATTAAGGCTAACCGGTTAACCGG",
      Alphabet::Dna());

  // Index once (FM-index over reverse(T) + lazily-built domination
  // indexes); every backend the registry creates shares it.
  api::AlignerRegistry registry(text);
  api::StatusOr<std::unique_ptr<api::Aligner>> aligner =
      registry.Create("alae");
  if (!aligner.ok()) {
    std::fprintf(stderr, "%s\n", aligner.status().ToString().c_str());
    return 1;
  }

  // <1,-3,-5,-2> is the default scheme of BLAST and BWT-SW; threshold is
  // the minimum alignment score to report.
  api::SearchRequest request;
  request.query = Sequence::FromString("GCTAG", Alphabet::Dna());
  request.threshold = 4;

  api::StatusOr<api::SearchResponse> response = (*aligner)->Search(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }

  std::printf("query %s against %zu-char text, H=%d: %zu hits (%s backend)\n",
              request.query.ToString().c_str(), text.size(), request.threshold,
              response->hits.size(),
              std::string((*aligner)->name()).c_str());
  for (const AlignmentHit& hit : response->hits) {
    std::printf("  text[%lld..%lld] ~ query[..%lld]  score=%d\n",
                static_cast<long long>(hit.text_start),
                static_cast<long long>(hit.text_end),
                static_cast<long long>(hit.query_end), hit.score);
  }
  return 0;
}
