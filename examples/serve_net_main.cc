// TCP serving driver: the socket front-end over a sharded corpus.
//
// Builds (or loads) a corpus, starts the NetServer, prints the bound
// address, and serves the framed wire protocol of docs/PROTOCOL.md until
// stdin reaches EOF or the process receives SIGINT/SIGTERM. Pair it with
// any client linking src/net/client.h — bench_net is the reference driver.
//
//   # serve a random 2 Mb DNA corpus on an ephemeral port
//   serve_net_main --random-text=2000000
//
//   # serve a previously saved corpus on a fixed port, poll() event loop
//   serve_net_main --corpus=/tmp/corpus --port=7411 --force-poll=1
//
// Exits non-zero on any setup failure.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <cerrno>
#include <unistd.h>

#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/service/service.h"
#include "src/sim/generator.h"

namespace {

using namespace alae;  // NOLINT: example brevity

struct Flags {
  std::string corpus;      // saved corpus directory (optional)
  std::string host = "127.0.0.1";
  int port = 0;            // 0 = ephemeral, printed after bind
  int64_t random_text = 0; // build a random corpus of this many chars
  int64_t shard_size = 1 << 20;
  int64_t overlap = 4096;
  int threads = 0;         // scheduler pool; 0 = hardware concurrency
  int workers = 2;         // net admission workers
  uint64_t seed = 42;
  bool force_poll = false;
  int metrics_dump_sec = 0;  // dump the registry every N sec (0 = off)
  double trace_sample = 0.0; // scheduler trace sampling rate
  int64_t slow_query_ms = 0; // slow-query log threshold (0 = off)

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* name, std::string* out) {
        const std::string prefix = std::string("--") + name + "=";
        if (arg.rfind(prefix, 0) != 0) return false;
        *out = arg.substr(prefix.size());
        return true;
      };
      std::string value;
      if (value_of("corpus", &f.corpus) || value_of("host", &f.host)) {
        continue;
      } else if (value_of("port", &value)) {
        f.port = std::atoi(value.c_str());
      } else if (value_of("random-text", &value)) {
        f.random_text = std::atoll(value.c_str());
      } else if (value_of("shard-size", &value)) {
        f.shard_size = std::atoll(value.c_str());
      } else if (value_of("overlap", &value)) {
        f.overlap = std::atoll(value.c_str());
      } else if (value_of("threads", &value)) {
        f.threads = std::atoi(value.c_str());
      } else if (value_of("workers", &value)) {
        f.workers = std::atoi(value.c_str());
      } else if (value_of("seed", &value)) {
        f.seed = std::strtoull(value.c_str(), nullptr, 10);
      } else if (value_of("force-poll", &value)) {
        f.force_poll = value != "0";
      } else if (value_of("metrics-dump-sec", &value)) {
        f.metrics_dump_sec = std::atoi(value.c_str());
      } else if (value_of("trace-sample", &value)) {
        f.trace_sample = std::atof(value.c_str());
      } else if (value_of("slow-query-ms", &value)) {
        f.slow_query_ms = std::atoll(value.c_str());
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return f;
  }
};

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);

  std::unique_ptr<service::ShardedCorpus> corpus;
  if (!flags.corpus.empty() && flags.random_text == 0) {
    auto loaded = service::ShardedCorpus::Load(flags.corpus);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", flags.corpus.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).value();
  } else {
    const int64_t n = flags.random_text > 0 ? flags.random_text : 1 << 20;
    std::fprintf(stderr, "building random %lld-char DNA corpus...\n",
                 static_cast<long long>(n));
    Sequence text =
        SequenceGenerator(flags.seed).Random(n, Alphabet::Dna());
    service::ShardedCorpusOptions options;
    options.shard_size = flags.shard_size;
    options.overlap = flags.overlap;
    auto built = service::ShardedCorpus::Build(std::move(text), options);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(built).value();
    if (!flags.corpus.empty()) {
      if (api::Status saved = corpus->Save(flags.corpus); !saved.ok()) {
        std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "saved corpus to %s\n", flags.corpus.c_str());
    }
  }

  service::SchedulerOptions sched_options;
  sched_options.threads = flags.threads;
  sched_options.trace_sample_rate = flags.trace_sample;
  sched_options.slow_query_ms = flags.slow_query_ms;
  sched_options.slow_query_sink = [](const std::string& rendered) {
    std::fprintf(stderr, "slow query:\n%s", rendered.c_str());
  };
  service::QueryScheduler scheduler(*corpus, sched_options);

  net::NetServerOptions net_options;
  net_options.host = flags.host;
  net_options.port = flags.port;
  net_options.workers = static_cast<size_t>(flags.workers);
  net_options.force_poll = flags.force_poll;
  net::NetServer server(&scheduler, net_options);
  if (api::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu shards (%lld chars) on %s:%d\n",
              corpus->num_shards(),
              static_cast<long long>(corpus->text_size()), flags.host.c_str(),
              server.port());
  std::fflush(stdout);

  // Periodic metrics dump (--metrics-dump-sec): the same registry a client
  // scrapes over the wire with a STATS_REQUEST frame.
  std::atomic<bool> dump_stop{false};
  std::thread dumper;
  if (flags.metrics_dump_sec > 0) {
    dumper = std::thread([&] {
      while (!dump_stop.load()) {
        for (int i = 0; i < flags.metrics_dump_sec * 10 && !dump_stop.load();
             ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        if (dump_stop.load()) break;
        std::fprintf(stderr, "---- metrics ----\n%s",
                     scheduler.registry().Expose().c_str());
      }
    });
  }

  // sigaction without SA_RESTART: the park below must be *interrupted* by
  // SIGINT/SIGTERM — std::signal's glibc semantics restart the blocking
  // read, which would leave the handler's g_stop unobserved forever.
  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // Park until stdin closes or a signal lands; the event loop and workers
  // do all the serving.
  char buf[256];
  while (!g_stop) {
    ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n == 0) break;                   // stdin EOF
    if (n < 0 && errno != EINTR) break;  // EINTR re-checks g_stop
  }

  dump_stop.store(true);
  if (dumper.joinable()) dumper.join();
  // Stop the server BEFORE reading the counters: the event loop and
  // workers are joined, so the summary is the final word rather than a
  // snapshot racing whatever those threads were still completing.
  server.Stop();
  std::fprintf(stderr,
               "shut down: %llu conns, %llu requests (%llu cancelled, "
               "%llu protocol errors)\n",
               static_cast<unsigned long long>(server.connections_accepted()),
               static_cast<unsigned long long>(server.requests_completed()),
               static_cast<unsigned long long>(server.requests_cancelled()),
               static_cast<unsigned long long>(server.protocol_errors()));
  if (flags.metrics_dump_sec > 0) {
    std::fprintf(stderr, "---- metrics (final) ----\n%s",
                 scheduler.registry().Expose().c_str());
  }
  scheduler.Shutdown();
  return 0;
}
