// Scoring-scheme explorer: how the scheme drives ALAE's filters and the §6
// complexity bound — the practical guidance behind Fig 9/10 ("which scheme
// should I use if I care about exact-search speed?").
//
//   ./examples/scoring_explorer [n] [m]
//
// For every BLAST web-form scheme this prints the q-prefix length, the
// FGOE threshold, the analytic bound exponent/coefficient, and a measured
// run on a small workload, all through the Aligner facade.

#include <cstdio>
#include <cstdlib>

#include "src/api/api.h"
#include "src/sim/workload.h"
#include "src/stats/entry_bound.h"
#include "src/stats/karlin.h"
#include "src/util/table_printer.h"

using namespace alae;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 200'000;
  int64_t m = argc > 2 ? std::atoll(argv[2]) : 2'000;

  WorkloadSpec spec;
  spec.text_length = n;
  spec.query_length = m;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);
  api::AlignerRegistry registry(w.text);
  std::unique_ptr<api::Aligner> aligner = *registry.Create("alae");

  std::printf("ALAE behaviour per scoring scheme (n=%lld, m=%lld, E=10)\n\n",
              static_cast<long long>(n), static_cast<long long>(m));
  TablePrinter table({"scheme", "q", "|sg+ss|", "bound", "H", "time (ms)",
                      "entries", "results"});
  for (int idx = 0; idx < 4; ++idx) {
    api::SearchRequest request;
    request.query = w.queries[0];
    request.scheme = ScoringScheme::Fig9(idx);
    request.threshold =
        KarlinStats::EValueToThreshold(10.0, m, n, request.scheme, 4);
    EntryBound bound = ComputeEntryBound(request.scheme, 4);
    api::StatusOr<api::SearchResponse> response = aligner->Search(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 1;
    }
    char bound_str[48];
    std::snprintf(bound_str, sizeof(bound_str), "%.2f*m*n^%.3f",
                  bound.coefficient, bound.exponent);
    table.AddRow({request.scheme.ToString(),
                  std::to_string(request.scheme.QPrefixLength()),
                  std::to_string(request.scheme.FgoeThreshold()), bound_str,
                  std::to_string(request.threshold),
                  TablePrinter::Fmt(response->stats.seconds * 1000.0, 1),
                  TablePrinter::Fmt(response->stats.counters.Accessed()),
                  TablePrinter::Fmt(
                      static_cast<uint64_t>(response->hits.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading the table: larger q and |sg+ss| (relative to sa) mean\n"
      "stronger prefix filtering and later gap regions — the fast schemes.\n"
      "<1,-1,-5,-2> is the §6 worst case (n^0.896): expect a large entry\n"
      "count. The measured 'entries' column should track the bound column's\n"
      "ordering.\n");
  return 0;
}
