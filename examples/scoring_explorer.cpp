// Scoring-scheme explorer: how the scheme drives ALAE's filters and the §6
// complexity bound — the practical guidance behind Fig 9/10 ("which scheme
// should I use if I care about exact-search speed?").
//
//   ./examples/scoring_explorer [n] [m]
//
// For every BLAST web-form scheme this prints the q-prefix length, the
// FGOE threshold, the analytic bound exponent/coefficient, and a measured
// run on a small workload.

#include <cstdio>
#include <cstdlib>

#include "src/core/alae.h"
#include "src/sim/workload.h"
#include "src/stats/entry_bound.h"
#include "src/stats/karlin.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace alae;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 200'000;
  int64_t m = argc > 2 ? std::atoll(argv[2]) : 2'000;

  WorkloadSpec spec;
  spec.text_length = n;
  spec.query_length = m;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);

  std::printf("ALAE behaviour per scoring scheme (n=%lld, m=%lld, E=10)\n\n",
              static_cast<long long>(n), static_cast<long long>(m));
  TablePrinter table({"scheme", "q", "|sg+ss|", "bound", "H", "time (ms)",
                      "entries", "results"});
  for (int idx = 0; idx < 4; ++idx) {
    ScoringScheme scheme = ScoringScheme::Fig9(idx);
    EntryBound bound = ComputeEntryBound(scheme, 4);
    int32_t h = KarlinStats::EValueToThreshold(10.0, m, n, scheme, 4);
    Alae alae(index);
    Timer timer;
    AlaeRunStats stats;
    ResultCollector hits = alae.Run(w.queries[0], scheme, h, &stats);
    char bound_str[48];
    std::snprintf(bound_str, sizeof(bound_str), "%.2f*m*n^%.3f",
                  bound.coefficient, bound.exponent);
    table.AddRow({scheme.ToString(), std::to_string(scheme.QPrefixLength()),
                  std::to_string(scheme.FgoeThreshold()), bound_str,
                  std::to_string(h), TablePrinter::Fmt(timer.ElapsedMillis(), 1),
                  TablePrinter::Fmt(stats.counters.Accessed()),
                  TablePrinter::Fmt(static_cast<uint64_t>(hits.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading the table: larger q and |sg+ss| (relative to sa) mean\n"
      "stronger prefix filtering and later gap regions — the fast schemes.\n"
      "<1,-1,-5,-2> is the §6 worst case (n^0.896): expect a large entry\n"
      "count. The measured 'entries' column should track the bound column's\n"
      "ordering.\n");
  return 0;
}
