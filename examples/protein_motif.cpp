// Protein motif search: short queries against a protein database (the
// "short reads / motifs" use case of §1), using the paper's protein scheme
// <1,-3,-11,-1> and the concatenated-records reduction of §2.2, driven
// through the unified Aligner facade.
//
//   ./examples/protein_motif
//
// Builds a synthetic UniParc-like database (Robinson-Robinson residue
// frequencies, DESIGN.md §4), plants a zinc-finger-like motif into several
// records with point mutations, and shows that ALAE recovers every planted
// copy exactly while a strict heuristic word search misses diverged ones.

#include <cstdio>
#include <set>
#include <string>

#include "src/api/api.h"
#include "src/io/fasta.h"
#include "src/sim/generator.h"

using namespace alae;

int main() {
  const Alphabet& aa = Alphabet::Protein();
  SequenceGenerator gen(77);

  // A C2H2 zinc-finger-like motif (23 residues).
  const std::string motif = "FQCRICMRNFSRSDHLTTHIRTH";

  // Database: 40 random protein records; plant the motif into 8 of them
  // with 0..3 substitutions.
  std::vector<FastaRecord> records;
  std::set<size_t> planted;
  for (int rec = 0; rec < 40; ++rec) {
    Sequence protein = gen.Random(400, aa, /*use_residue_frequencies=*/true);
    std::string residues = protein.ToString();
    if (rec % 5 == 0) {
      std::string copy = motif;
      int muts = rec / 10;  // 0..3 substitutions
      for (int k = 0; k < muts; ++k) {
        size_t at = gen.rng().Below(copy.size());
        copy[at] = aa.CharOf(static_cast<Symbol>(gen.rng().Below(20)));
      }
      residues.replace(100, copy.size(), copy);
      planted.insert(static_cast<size_t>(rec));
    }
    records.push_back({"protein_" + std::to_string(rec), residues});
  }

  // §2.2: concatenate the collection into one text; remember boundaries to
  // map hits back to records.
  std::vector<size_t> boundaries;
  Sequence database = FastaReader::ToText(records, aa, &boundaries);
  auto record_of = [&](int64_t text_pos) {
    size_t rec = 0;
    while (rec + 1 < boundaries.size() &&
           static_cast<int64_t>(boundaries[rec + 1]) <= text_pos) {
      ++rec;
    }
    return rec;
  };

  // One request, served by two backends below.
  api::SearchRequest request;
  request.query = Sequence::FromString(motif, aa);
  request.scheme = ScoringScheme{1, -3, -11, -1};  // the paper's protein
                                                   // scheme (§7.5)
  // A k-substitution copy of the 23-mer scores 23 - 4k; H = 15 accepts up
  // to two substitutions and correctly excludes the 3-substitution plants.
  request.threshold = 15;

  api::AlignerRegistry registry(database);
  api::StatusOr<api::SearchResponse> exact =
      (*registry.Create("alae"))->Search(request);
  if (!exact.ok()) {
    std::fprintf(stderr, "%s\n", exact.status().ToString().c_str());
    return 1;
  }

  std::set<size_t> found;
  for (const AlignmentHit& hit : exact->hits) {
    found.insert(record_of(hit.text_end));
  }
  std::printf("motif %s (H=%d, scheme %s)\n", motif.c_str(), request.threshold,
              request.scheme.ToString().c_str());
  std::printf("planted into %zu records; ALAE hit %zu records:\n",
              planted.size(), found.size());
  for (size_t rec : found) {
    std::printf("  %s%s\n", records[rec].header.c_str(),
                planted.count(rec) ? "" : "  (chance similarity)");
  }

  // Contrast with an exact-word heuristic (word size 6, no mismatches in
  // the seed): diverged copies whose every 6-mer is mutated are missed.
  // Same request, one extra option block — the facade keeps the comparison
  // honest.
  api::SearchRequest strict = request;
  strict.blast.word_size = 6;
  api::StatusOr<api::SearchResponse> heuristic =
      (*registry.Create("blast"))->Search(strict);
  if (!heuristic.ok()) {
    std::fprintf(stderr, "%s\n", heuristic.status().ToString().c_str());
    return 1;
  }
  std::set<size_t> blast_found;
  for (const AlignmentHit& hit : heuristic->hits) {
    blast_found.insert(record_of(hit.text_end));
  }
  std::printf("\nword-6 heuristic hit %zu records (exactness gap: %zu)\n",
              blast_found.size(), found.size() - blast_found.size());
  return 0;
}
