// Homology search: the paper's motivating workload (§1, §7) — align long
// queries sampled from a related genome against a reference, with the
// threshold derived from an E-value, and compare the exact answer (ALAE)
// with the heuristic one (BLAST) through the same Aligner facade.
//
//   ./examples/homology_search [n] [m]
//
// Mirrors aligning mouse chromosome fragments against a human reference:
// the synthetic "mouse" query carries ~70%-identity segments of the
// "human" text (see DESIGN.md §4 for why this preserves the behaviour).

#include <cstdio>
#include <cstdlib>

#include "src/api/api.h"
#include "src/sim/generator.h"
#include "src/stats/karlin.h"
#include "src/util/timer.h"

using namespace alae;

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 1'000'000;
  int64_t m = argc > 2 ? std::atoll(argv[2]) : 10'000;

  SequenceGenerator gen(2024);
  std::printf("building a %lld-char reference 'genome'...\n",
              static_cast<long long>(n));
  RepeatSpec line_like;
  line_like.unit_length = 400;
  line_like.copies = static_cast<int32_t>(n / 50'000 + 4);
  line_like.divergence = 0.10;
  Sequence reference = gen.TextWithRepeats(n, Alphabet::Dna(), {line_like});

  std::printf("sampling a %lld-char homologous query (70%% identity "
              "segments + indels)...\n",
              static_cast<long long>(m));

  api::SearchRequest request;
  request.query = gen.HomologousQuery(reference, m, /*homolog_fraction=*/0.6,
                                      /*divergence=*/0.30,
                                      /*indel_rate=*/0.01);
  double e_value = 10.0;
  request.threshold = KarlinStats::EValueToThreshold(e_value, m, n,
                                                     request.scheme, 4);
  std::printf("scheme %s, E=%g  =>  H=%d\n", request.scheme.ToString().c_str(),
              e_value, request.threshold);

  Timer timer;
  api::AlignerRegistry registry(reference);
  const AlaeIndex& index = registry.index();
  std::printf("index built in %.2fs (%s + %s samples)\n",
              timer.ElapsedSeconds(),
              std::to_string(index.SizeBytes().bwt_bytes / 1024 / 1024)
                  .append("MB occ")
                  .c_str(),
              std::to_string(index.SizeBytes().sample_bytes / 1024 / 1024)
                  .append("MB")
                  .c_str());

  // Same request, two backends: the facade is what makes this a one-line
  // swap instead of two call shapes.
  api::StatusOr<api::SearchResponse> exact =
      (*registry.Create("alae"))->Search(request);
  api::StatusOr<api::SearchResponse> heuristic =
      (*registry.Create("blast"))->Search(request);
  if (!exact.ok() || !heuristic.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 (!exact.ok() ? exact.status() : heuristic.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  std::printf("\nALAE  : %6.3fs  %8zu end pairs >= H (exact)\n",
              exact->stats.seconds, exact->hits.size());
  std::printf("BLAST : %6.3fs  %8zu end pairs >= H (heuristic)\n",
              heuristic->stats.seconds, heuristic->hits.size());
  if (!exact->hits.empty()) {
    std::printf("BLAST recall: %.1f%%  (the accuracy gap of §7.1)\n",
                100.0 * static_cast<double>(heuristic->hits.size()) /
                    static_cast<double>(exact->hits.size()));
  }
  const DpCounters& counters = exact->stats.counters;
  std::printf("ALAE pruning: %llu entries calculated, %llu reused, "
              "%llu forks (%llu skipped by domination)\n",
              static_cast<unsigned long long>(counters.Calculated()),
              static_cast<unsigned long long>(counters.reused),
              static_cast<unsigned long long>(counters.forks_opened),
              static_cast<unsigned long long>(
                  counters.forks_skipped_domination));

  // Show the strongest alignment.
  int32_t best = 0;
  AlignmentHit best_hit;
  for (const AlignmentHit& hit : exact->hits) {
    if (hit.score > best) {
      best = hit.score;
      best_hit = hit;
    }
  }
  if (best > 0) {
    std::printf("\nbest alignment: score %d ending at text %lld / query %lld "
                "(E = %.2e)\n",
                best, static_cast<long long>(best_hit.text_end),
                static_cast<long long>(best_hit.query_end),
                KarlinStats::ScoreToEValue(best, m, n, request.scheme, 4));
  }
  return 0;
}
