#include "src/baseline/smith_waterman.h"

#include <gtest/gtest.h>

#include "src/align/dp.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(SmithWaterman, FindsPlantedExactMatch) {
  SequenceGenerator gen(81);
  Sequence text = gen.Random(200, Alphabet::Dna());
  Sequence query = text.Substr(50, 30);
  ResultCollector rc =
      SmithWaterman::Run(text, query, ScoringScheme::Default(), 30);
  // The full 30-char match ends at text position 79, query position 29.
  bool found = false;
  for (const AlignmentHit& hit : rc.Sorted()) {
    if (hit.text_end == 79 && hit.query_end == 29 && hit.score == 30) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SmithWaterman, BestScoreMatchesBestLocalScore) {
  SequenceGenerator gen(82);
  for (int trial = 0; trial < 10; ++trial) {
    Sequence a = gen.Random(120, Alphabet::Dna());
    Sequence b = gen.HomologousQuery(a, 60, 0.6, 0.2, 0.05);
    ScoringScheme scheme = ScoringScheme::Fig9(trial % 4);
    int32_t best = BestLocalScore(a, b, scheme);
    ResultCollector rc = SmithWaterman::Run(a, b, scheme, 1);
    EXPECT_EQ(rc.BestScore(), best) << "trial " << trial;
  }
}

TEST(SmithWaterman, ThresholdFiltersMonotonically) {
  SequenceGenerator gen(83);
  Sequence text = gen.Random(300, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 80, 0.8, 0.1, 0.02);
  ScoringScheme scheme = ScoringScheme::Default();
  size_t prev = SmithWaterman::Run(text, query, scheme, 1).size();
  for (int32_t h = 2; h < 20; h += 3) {
    size_t cur = SmithWaterman::Run(text, query, scheme, h).size();
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(SmithWaterman, GapsAreAffine) {
  // Text AAAA CC AAAA vs query AAAAAAAA: one 2-gap (sg+2ss = -9) on 8
  // matches = -1 < threshold... use <1,-3,-2,-1>: 8 - 4 = 4.
  ScoringScheme scheme{1, -3, -2, -1};
  Sequence text = Sequence::FromString("AAAACCAAAA", Alphabet::Dna());
  Sequence query = Sequence::FromString("AAAAAAAA", Alphabet::Dna());
  ResultCollector rc = SmithWaterman::Run(text, query, scheme, 4);
  EXPECT_EQ(rc.BestScore(), 8 - 2 - 2 * 1);
}

TEST(SmithWaterman, EmptyAndDegenerateInputs) {
  ScoringScheme scheme = ScoringScheme::Default();
  Sequence empty;
  Sequence s = Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(SmithWaterman::Run(empty, s, scheme, 1).size(), 0u);
  EXPECT_EQ(SmithWaterman::Run(s, empty, scheme, 1).size(), 0u);
  // Single char match.
  Sequence a = Sequence::FromString("A", Alphabet::Dna());
  EXPECT_EQ(SmithWaterman::Run(a, a, scheme, 1).size(), 1u);
}

}  // namespace
}  // namespace alae
