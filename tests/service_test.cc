#include "src/service/service.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/generator.h"
#include "src/sim/workload.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

SearchRequest MakeRequest(const Sequence& query, int32_t threshold) {
  SearchRequest request;
  request.query = query;
  request.threshold = threshold;
  return request;
}

std::unique_ptr<ShardedCorpus> MustBuild(Sequence text,
                                         ShardedCorpusOptions options) {
  auto corpus = ShardedCorpus::Build(std::move(text), options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

// Unsharded reference answer through the plain facade.
std::vector<AlignmentHit> Unsharded(const api::AlignerRegistry& registry,
                                    const std::string& backend,
                                    const SearchRequest& request) {
  std::unique_ptr<api::Aligner> aligner = *registry.Create(backend);
  api::StatusOr<SearchResponse> response = aligner->Search(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response->hits;
}

// The headline differential: on randomized corpora, a sharded search must
// return exactly the unsharded hit set — same end pairs, same scores — for
// every registered backend (the heuristic BLAST included: it is compared
// against unsharded BLAST, exact engines against their own unsharded run).
TEST(ShardedCorpus, ShardedEqualsUnshardedAllBackends) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    WorkloadSpec spec;
    spec.text_length = 1'600;  // small enough that even BASIC runs unsharded
    spec.query_length = 48;
    spec.num_queries = 3;
    spec.divergence = 0.15;
    spec.seed = seed;
    Workload w = BuildWorkload(spec);

    ShardedCorpusOptions options;
    options.shard_size = 500;
    options.overlap = 190;  // > the BLAST window bound for m=48
    std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);
    ASSERT_GE(corpus->num_shards(), 3u) << "geometry degenerated";

    api::AlignerRegistry registry(w.text);
    QueryScheduler scheduler(*corpus, {.threads = 4});
    for (const std::string& backend : api::AlignerRegistry::BuiltinNames()) {
      for (const Sequence& query : w.queries) {
        SearchRequest request = MakeRequest(query, 18);
        api::StatusOr<SearchResponse> sharded =
            scheduler.Search(backend, request);
        ASSERT_TRUE(sharded.ok())
            << backend << " seed " << seed << ": "
            << sharded.status().ToString();
        EXPECT_EQ(sharded->hits, Unsharded(registry, backend, request))
            << backend << " seed " << seed;
      }
    }
  }
}

// Long-text variant: BASIC refuses unsharded texts > 2000 characters but
// runs happily when every shard is below the cap — sharding opens the
// workload. Exact backends are checked against unsharded Smith-Waterman.
TEST(ShardedCorpus, LongTextShardsOpenBasicAndStayExact) {
  WorkloadSpec spec;
  spec.text_length = 6'000;
  spec.query_length = 60;
  spec.num_queries = 2;
  spec.divergence = 0.20;
  spec.seed = 77;
  Workload w = BuildWorkload(spec);

  ShardedCorpusOptions options;
  options.shard_size = 1'200;
  options.overlap = 260;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(w.text, options);

  api::AlignerRegistry registry(w.text);
  QueryScheduler scheduler(*corpus, {.threads = 2});
  for (const Sequence& query : w.queries) {
    SearchRequest request = MakeRequest(query, 20);
    std::vector<AlignmentHit> expected =
        Unsharded(registry, "sw", request);
    for (const std::string& backend : {"alae", "bwt-sw", "sw", "basic"}) {
      api::StatusOr<SearchResponse> sharded =
          scheduler.Search(backend, request);
      ASSERT_TRUE(sharded.ok())
          << backend << ": " << sharded.status().ToString();
      EXPECT_EQ(sharded->hits, expected) << backend;
    }
  }
}

// A planted exact match straddling a shard boundary must come back exactly
// once with its full score, and no end pair may appear twice anywhere.
TEST(ShardedCorpus, BoundaryStraddlingHitEmittedOnce) {
  SequenceGenerator gen(404);
  Sequence text = gen.Random(1'200, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 120;
  // step = 160: shard 1 starts at 160, owns ends from 280. Plant a 60-char
  // query copy at [250, 310): it straddles the ownership boundary and lies
  // inside both shard 0 and shard 1's coverage.
  std::vector<Symbol> symbols = text.symbols();
  Sequence query = gen.Random(60, Alphabet::Dna());
  for (size_t i = 0; i < query.size(); ++i) symbols[250 + i] = query[i];
  text = Sequence(std::move(symbols), Alphabet::Dna());

  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {});
  const int32_t threshold = 40;
  api::StatusOr<SearchResponse> response =
      scheduler.Search("sw", MakeRequest(query, threshold));
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const int64_t full_end = 250 + 60 - 1;
  int found = 0;
  for (size_t i = 0; i < response->hits.size(); ++i) {
    const AlignmentHit& hit = response->hits[i];
    if (hit.text_end == full_end && hit.query_end == 59) {
      ++found;
      EXPECT_EQ(hit.score, 60);  // full-length exact match, sa = 1
    }
    if (i > 0) {
      const AlignmentHit& prev = response->hits[i - 1];
      EXPECT_FALSE(prev.text_end == hit.text_end &&
                   prev.query_end == hit.query_end)
          << "duplicate end pair in merged output";
    }
  }
  EXPECT_EQ(found, 1);
}

// Merger unit semantics: cross-shard duplicates collapse to the best score
// and raw slice-local hits outside the producing slice's owned region are
// dropped at merge time.
TEST(HitMergerTest, DeduplicatesAndFiltersOwnership) {
  SequenceGenerator gen(405);
  Sequence text = gen.Random(900, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  ASSERT_GE(corpus->num_shards(), 2u);

  const CorpusView view = corpus->Snapshot();
  HitMerger merger(view, /*tombstone_guard=*/0);
  // Shard 1 starts at 200 and owns [300, 500). A shard-local hit ending at
  // 50 (global 250) is in its coverage but NOT owned -> dropped; one at
  // 150 (global 350) is owned -> kept and remapped to global coordinates.
  api::EngineStats stats;
  stats.counters.cells_cost3 = 7;
  merger.MergeSlice(1,
                    {AlignmentHit{50, 3, 21, 40}, AlignmentHit{150, 4, 25, 140}},
                    stats);
  // Duplicates of the same global end pair (as an overlap-emitting
  // producer would generate) collapse to the best score.
  merger.MergeSlice(1, {AlignmentHit{150, 4, 11, -1}}, api::EngineStats{});
  merger.MergeSlice(1, {AlignmentHit{150, 4, 160, -1}}, api::EngineStats{});
  SearchResponse merged = merger.Take(0);
  ASSERT_EQ(merged.hits.size(), 1u);
  EXPECT_EQ(merged.hits[0].text_end, 350);
  EXPECT_EQ(merged.hits[0].score, 160);
  EXPECT_EQ(merged.stats.counters.cells_cost3, 7u);
  EXPECT_EQ(merged.stats.hits_emitted, 1u);
}

// Tombstone suppression at merge time: any hit whose guard window touches
// a dead span is withheld and counted; hits clear of it pass through.
TEST(HitMergerTest, SuppressesTombstonedWindows) {
  SequenceGenerator gen(407);
  Sequence text = gen.Random(900, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);

  CorpusView view = corpus->Snapshot();
  view.tombstones.push_back(TombstoneSpan{7, 320, 360});
  // Guard 20: windows [text_end-19, text_end]. Shard 1 (starts at 200)
  // owns [300, 500).
  HitMerger merger(view, /*tombstone_guard=*/20);
  merger.MergeSlice(1, {AlignmentHit{130, 2, 21, -1},   // global 330: window
                                                        // [311,330] hits span
                        AlignmentHit{179, 3, 22, -1},   // global 379: window
                                                        // [360,379] clear
                        AlignmentHit{175, 4, 23, -1}},  // global 375: window
                                                        // [356,375] hits span
                    api::EngineStats{});
  SearchResponse merged = merger.Take(0);
  ASSERT_EQ(merged.hits.size(), 1u);
  EXPECT_EQ(merged.hits[0].text_end, 379);
  EXPECT_EQ(merged.stats.tombstone_filtered, 2u);
}

// Admission is all-or-nothing against the bounded queue: a fan-out that
// cannot fit is rejected whole with kResourceExhausted.
TEST(QuerySchedulerTest, BackpressureRejectsWhenQueueFull) {
  SequenceGenerator gen(406);
  Sequence text = gen.Random(1'500, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 120;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  ASSERT_GE(corpus->num_shards(), 3u);

  // One worker, and a queue that cannot hold one request's full fan-out.
  QueryScheduler scheduler(*corpus, {.threads = 1, .queue_capacity = 1});
  Sequence query = gen.Random(30, Alphabet::Dna());
  api::StatusOr<SearchResponse> response =
      scheduler.Search("sw", MakeRequest(query, 25));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
}

// A batch whose full fan-out exceeds the queue bound must still be served
// on an idle pool: admission is chunked into queue-sized waves, not
// rejected outright (which no retry could ever fix).
TEST(QuerySchedulerTest, BatchLargerThanQueueIsServedInWaves) {
  SequenceGenerator gen(415);
  Sequence text = gen.Random(1'200, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 150;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  ASSERT_GE(corpus->num_shards(), 3u);
  // Queue holds exactly one query's fan-out; the batch needs several.
  QueryScheduler scheduler(*corpus,
                           {.threads = 2,
                            .queue_capacity = corpus->num_shards(),
                            .batch_size = 1});
  std::vector<SearchRequest> requests;
  for (int i = 0; i < 7; ++i) {
    requests.push_back(
        MakeRequest(gen.HomologousQuery(text, 36, 0.8, 0.1, 0.01), 16));
  }
  api::AlignerRegistry registry(text);
  std::vector<api::QueryOutcome> outcomes =
      scheduler.SearchBatch("sw", requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok())
        << i << ": " << outcomes[i].status.ToString();
    EXPECT_EQ(outcomes[i].response.hits,
              Unsharded(registry, "sw", requests[i]))
        << "query " << i;
  }
}

TEST(QuerySchedulerTest, CacheServesRepeatsAndKeysOnParams) {
  SequenceGenerator gen(407);
  Sequence text = gen.Random(1'000, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 120;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {.cache_capacity = 8});

  Sequence query = gen.HomologousQuery(text, 40, 0.8, 0.1, 0.01);
  SearchRequest request = MakeRequest(query, 18);
  api::StatusOr<SearchResponse> first = scheduler.Search("alae", request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->stats.cache_misses, 1u);
  EXPECT_EQ(first->stats.cache_hits, 0u);

  api::StatusOr<SearchResponse> second = scheduler.Search("alae", request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cache_hits, 1u);
  EXPECT_EQ(second->stats.cache_misses, 0u);
  EXPECT_EQ(second->hits, first->hits);
  EXPECT_EQ(scheduler.cache().hits(), 1u);

  // Any parameter change is a different key.
  SearchRequest other = request;
  other.threshold = 19;
  api::StatusOr<SearchResponse> third = scheduler.Search("alae", other);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stats.cache_misses, 1u);
  // Different backend, same request: also a different key.
  api::StatusOr<SearchResponse> fourth = scheduler.Search("sw", request);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->stats.cache_misses, 1u);
  EXPECT_EQ(fourth->hits, first->hits);  // both exact
}

TEST(QuerySchedulerTest, CacheCapacityZeroDisables) {
  SequenceGenerator gen(408);
  Sequence text = gen.Random(800, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {.cache_capacity = 0});
  SearchRequest request = MakeRequest(gen.Random(30, Alphabet::Dna()), 24);
  for (int i = 0; i < 2; ++i) {
    api::StatusOr<SearchResponse> response = scheduler.Search("sw", request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->stats.cache_hits, 0u);
    EXPECT_EQ(response->stats.cache_misses, 1u);
  }
  EXPECT_EQ(scheduler.cache().hits(), 0u);
}

TEST(QuerySchedulerTest, SearchBatchKeepsPerQueryStatuses) {
  SequenceGenerator gen(409);
  Sequence text = gen.Random(1'200, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 150;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {.threads = 2, .batch_size = 2});
  api::AlignerRegistry registry(text);

  std::vector<SearchRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(
        MakeRequest(gen.HomologousQuery(text, 36, 0.8, 0.1, 0.01), 16));
  }
  requests[2].threshold = -4;  // invalid, must not poison the batch
  std::vector<api::QueryOutcome> outcomes =
      scheduler.SearchBatch("bwt-sw", requests);
  ASSERT_EQ(outcomes.size(), requests.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].status.code(), StatusCode::kInvalidArgument);
      continue;
    }
    ASSERT_TRUE(outcomes[i].ok()) << i << ": "
                                  << outcomes[i].status.ToString();
    EXPECT_EQ(outcomes[i].response.hits,
              Unsharded(registry, "bwt-sw", requests[i]))
        << "query " << i;
  }
}

TEST(QuerySchedulerTest, MaxHitsTruncatesMergedAnswer) {
  SequenceGenerator gen(410);
  Sequence text = gen.Random(1'000, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 120;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {});
  // An exact substring copy guarantees a dense family of prefix end pairs
  // above a low threshold, so the cap is sure to fire. The capped sharded
  // answer must be the *same prefix* the unsharded capped run returns
  // (hits stream in (text_end, query_end) order), not just any subset —
  // per-shard caps must never starve owned hits out of the merge.
  SearchRequest request = MakeRequest(text.Substr(100, 24), 8);
  request.max_hits = 3;
  api::StatusOr<SearchResponse> response = scheduler.Search("sw", request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->hits.size(), 3u);
  EXPECT_TRUE(response->stats.truncated);
  api::AlignerRegistry registry(text);
  EXPECT_EQ(response->hits, Unsharded(registry, "sw", request));
}

TEST(QuerySchedulerTest, RejectsQueriesTooLongForOverlapAndUnknownBackend) {
  SequenceGenerator gen(411);
  Sequence text = gen.Random(2'000, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 60;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  QueryScheduler scheduler(*corpus, {});

  // m=200 needs far more than 60 characters of context.
  api::StatusOr<SearchResponse> too_long =
      scheduler.Search("sw", MakeRequest(gen.Random(200, Alphabet::Dna()), 30));
  ASSERT_FALSE(too_long.ok());
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_long.status().message().find("overlap"), std::string::npos);

  api::StatusOr<SearchResponse> unknown =
      scheduler.Search("nope", MakeRequest(gen.Random(20, Alphabet::Dna()), 10));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(ShardedCorpus, SaveLoadRoundTripsBothIndexModes) {
  SequenceGenerator gen(412);
  Sequence text = gen.Random(1'400, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 40, 0.8, 0.1, 0.01);
  for (bool wavelet : {false, true}) {
    ShardedCorpusOptions options;
    options.shard_size = 500;
    options.overlap = 150;
    options.index.use_wavelet = wavelet;
    std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);

    std::string dir = ::testing::TempDir() + "/alae_corpus_" +
                      (wavelet ? "wavelet" : "flat");
    std::filesystem::remove_all(dir);
    api::Status saved = corpus->Save(dir);
    ASSERT_TRUE(saved.ok()) << saved.ToString();

    auto loaded = ShardedCorpus::Load(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->num_shards(), corpus->num_shards());
    EXPECT_NE((*loaded)->epoch(), corpus->epoch())
        << "reloaded corpora must never share a cache epoch";

    QueryScheduler before(*corpus, {});
    QueryScheduler after(**loaded, {});
    SearchRequest request = MakeRequest(query, 18);
    api::StatusOr<SearchResponse> a = before.Search("alae", request);
    api::StatusOr<SearchResponse> b = after.Search("alae", request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->hits, b->hits) << (wavelet ? "wavelet" : "flat");
  }
}

TEST(ShardedCorpus, LoadRejectsTamperedShardFile) {
  SequenceGenerator gen(413);
  Sequence text = gen.Random(900, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  std::string dir = ::testing::TempDir() + "/alae_corpus_tamper";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(corpus->Save(dir).ok());

  // Flip one byte in the middle of a shard index payload.
  std::string shard_file = dir + "/shard-1.fm";
  std::ifstream in(shard_file, std::ios::binary);
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  payload[payload.size() / 2] ^= 0x40;
  std::ofstream out(shard_file, std::ios::binary | std::ios::trunc);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.close();

  auto loaded = ShardedCorpus::Load(dir);
  EXPECT_FALSE(loaded.ok());
}

// Interior shards share length and sigma, so only a full-content probe
// can tell swapped (or stale same-geometry) shard files from the right
// ones; Load must refuse rather than silently serve wrong hits.
TEST(ShardedCorpus, LoadRejectsSwappedShardFiles) {
  SequenceGenerator gen(417);
  Sequence text = gen.Random(1'500, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  ASSERT_GE(corpus->num_shards(), 3u);
  std::string dir = ::testing::TempDir() + "/alae_corpus_swap";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(corpus->Save(dir).ok());

  // Shards 1 and 2 have identical geometry; swap their index files.
  std::filesystem::rename(dir + "/shard-1.fm", dir + "/shard-tmp.fm");
  std::filesystem::rename(dir + "/shard-2.fm", dir + "/shard-1.fm");
  std::filesystem::rename(dir + "/shard-tmp.fm", dir + "/shard-2.fm");

  auto loaded = ShardedCorpus::Load(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// Corrupt manifest integers must reject cleanly — a huge num_shards must
// not trigger a giant allocation, a huge overlap no signed overflow.
TEST(ShardedCorpus, LoadRejectsCorruptManifestIntegers) {
  SequenceGenerator gen(416);
  Sequence text = gen.Random(900, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 400;
  options.overlap = 100;
  std::unique_ptr<ShardedCorpus> corpus = MustBuild(text, options);
  std::string dir = ::testing::TempDir() + "/alae_corpus_manifest";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(corpus->Save(dir).ok());

  std::string manifest_file = dir + "/corpus.manifest";
  std::ifstream in(manifest_file, std::ios::binary);
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  // Field layout: magic, shard_size, overlap, wavelet, rate, kind,
  // num_shards — each a little-endian u64.
  struct Corruption {
    size_t offset;
    uint64_t value;
  };
  const Corruption corruptions[] = {
      {8, 1ULL << 62},            // shard_size: overflow bait
      {16, (1ULL << 62) + 3},     // overlap: 2*overlap would wrap
      {48, 1ULL << 60},           // num_shards: allocation bomb bait
      {48, 0},                    // num_shards: zero
  };
  for (const Corruption& c : corruptions) {
    std::string bad = payload;
    std::memcpy(&bad[c.offset], &c.value, sizeof(c.value));
    std::ofstream out(manifest_file, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    auto loaded = ShardedCorpus::Load(dir);
    ASSERT_FALSE(loaded.ok()) << "offset " << c.offset;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardedCorpus, BuildRejectsDegenerateGeometry) {
  SequenceGenerator gen(414);
  Sequence text = gen.Random(500, Alphabet::Dna());
  ShardedCorpusOptions options;
  options.shard_size = 200;
  options.overlap = 100;  // shard_size must exceed 2*overlap
  auto corpus = ShardedCorpus::Build(text, options);
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument);

  auto empty = ShardedCorpus::Build(Sequence(), {});
  ASSERT_FALSE(empty.ok());
}

TEST(ThreadPoolTest, BoundedQueueAndBatchAdmission) {
  ThreadPool pool(1, 2);
  EXPECT_EQ(pool.threads(), 1);
  EXPECT_EQ(pool.queue_capacity(), 2u);

  // Block the single worker so submissions stay queued.
  std::mutex gate;
  gate.lock();
  ASSERT_TRUE(pool.TrySubmit([&gate] {
    gate.lock();
    gate.unlock();
  }));
  // Give the worker a moment to dequeue the blocker.
  while (pool.QueueDepth() > 0) {
  }
  ASSERT_TRUE(pool.TrySubmit([] {}));
  ASSERT_TRUE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {})) << "queue over capacity";

  // Batch admission is all-or-nothing: with zero slots left even a
  // one-task batch is rejected rather than partially admitted.
  std::vector<std::function<void()>> batch;
  batch.emplace_back([] {});
  EXPECT_FALSE(pool.TrySubmitBatch(std::move(batch)));
  gate.unlock();
}

}  // namespace
}  // namespace service
}  // namespace alae
