#include "src/index/suffix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/index/fm_index.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(SuffixTrie, PositionsOfSubstrings) {
  Sequence t = Sequence::FromString("GCTAGC", Alphabet::Dna());
  SuffixTrie trie(t);
  // "GC" occurs at 0 and 4.
  int32_t node = trie.Child(SuffixTrie::kRoot, 2);  // G
  ASSERT_GE(node, 0);
  node = trie.Child(node, 1);  // C
  ASSERT_GE(node, 0);
  std::vector<int32_t> pos = trie.Positions(node);
  std::sort(pos.begin(), pos.end());
  EXPECT_EQ(pos, (std::vector<int32_t>{0, 4}));
  EXPECT_EQ(trie.Depth(node), 2);
  // Absent substring.
  int32_t a = trie.Child(SuffixTrie::kRoot, 0);  // A
  ASSERT_GE(a, 0);
  EXPECT_EQ(trie.Child(a, 0), -1);  // "AA" does not occur
}

TEST(SuffixTrie, NodeCountForDistinctSubstrings) {
  // #nodes = #distinct substrings + 1 (root).
  Sequence t = Sequence::FromString("AAA", Alphabet::Dna());
  SuffixTrie trie(t);
  // Distinct substrings of AAA: A, AA, AAA.
  EXPECT_EQ(trie.num_nodes(), 4u);
}

// The FM-index suffix-trie emulation (paper §5) must enumerate exactly the
// distinct substrings the explicit trie contains, with the same occurrence
// sets. This validates the emulation the production engines rely on.
TEST(SuffixTrie, FmIndexEmulationAgrees) {
  SequenceGenerator gen(61);
  for (int trial = 0; trial < 8; ++trial) {
    const Alphabet& alphabet = trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    int64_t n = 10 + static_cast<int64_t>(gen.rng().Below(80));
    Sequence t = gen.Random(n, alphabet);
    SuffixTrie trie(t);
    FmIndex fm(t.Reversed());
    int64_t checked = 0;

    // DFS both structures in lockstep (cap depth to keep the test fast).
    std::function<void(int32_t, SaRange, int)> dfs = [&](int32_t node,
                                                         SaRange range,
                                                         int depth) {
      if (depth >= 6) return;
      for (int c = 0; c < alphabet.sigma(); ++c) {
        int32_t child = trie.Child(node, static_cast<Symbol>(c));
        SaRange ext = fm.Extend(range, static_cast<Symbol>(c));
        if (child < 0) {
          ASSERT_TRUE(ext.Empty()) << "depth " << depth << " char " << c;
          continue;
        }
        ASSERT_EQ(ext.Count(),
                  static_cast<int64_t>(trie.Positions(child).size()));
        // Occurrence positions agree: FM gives reverse-text starts p; the
        // substring starts in T at n - p - (depth + 1).
        std::vector<int64_t> fm_pos = fm.Locate(ext);
        for (int64_t& p : fm_pos) p = n - p - (depth + 1);
        std::sort(fm_pos.begin(), fm_pos.end());
        std::vector<int32_t> trie_pos = trie.Positions(child);
        std::sort(trie_pos.begin(), trie_pos.end());
        ASSERT_EQ(fm_pos.size(), trie_pos.size());
        for (size_t i = 0; i < fm_pos.size(); ++i) {
          ASSERT_EQ(fm_pos[i], trie_pos[i]);
        }
        ++checked;
        dfs(child, ext, depth + 1);
      }
    };
    dfs(SuffixTrie::kRoot, fm.FullRange(), 0);
    EXPECT_GT(checked, 0);
  }
}

}  // namespace
}  // namespace alae
