#include "src/index/bwt.h"

#include <gtest/gtest.h>

#include "src/index/suffix_array.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(Bwt, PaperExample) {
  // BWT of GCTAGC$ is CTGGA$C (paper §2.3).
  Sequence t = Sequence::FromString("GCTAGC", Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  BwtResult bwt = BuildBwt(t.symbols(), sa);
  std::string rendered;
  for (Symbol s : bwt.bwt) {
    rendered += (s == 0) ? '$' : Alphabet::Dna().CharOf(static_cast<Symbol>(s - 1));
  }
  EXPECT_EQ(rendered, "CTGGA$C");
  EXPECT_EQ(bwt.sentinel_pos, 5u);
}

TEST(Bwt, InvertRoundTripRandom) {
  SequenceGenerator gen(21);
  for (int trial = 0; trial < 15; ++trial) {
    const Alphabet& alphabet =
        trial % 2 ? Alphabet::Protein() : Alphabet::Dna();
    int64_t n = 1 + static_cast<int64_t>(gen.rng().Below(500));
    Sequence t = gen.Random(n, alphabet);
    std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), alphabet.sigma());
    BwtResult bwt = BuildBwt(t.symbols(), sa);
    EXPECT_EQ(InvertBwt(bwt, alphabet.sigma()), t.symbols()) << "trial "
                                                             << trial;
  }
}

TEST(Bwt, EmptyText) {
  std::vector<Symbol> empty;
  std::vector<int64_t> sa = BuildSuffixArray(empty, 4);
  BwtResult bwt = BuildBwt(empty, sa);
  ASSERT_EQ(bwt.bwt.size(), 1u);
  EXPECT_EQ(bwt.bwt[0], 0);  // just the sentinel
}

TEST(Bwt, RepetitiveTextCompressesRuns) {
  // The BWT of a highly repetitive text groups identical characters; check
  // the transform round-trips (the compression property itself is what the
  // Burrows-Wheeler construction is for, §2.3).
  Sequence t = Sequence::FromString(std::string(64, 'A') + std::string(64, 'C'),
                                    Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  BwtResult bwt = BuildBwt(t.symbols(), sa);
  EXPECT_EQ(InvertBwt(bwt, 4), t.symbols());
}

}  // namespace
}  // namespace alae
