// Deadline and cancellation semantics across the service stack.
//
// The differential at the heart of this file: a generous deadline must be
// invisible — bit-exact answers on every backend against the undeadlined
// run — while an already-expired deadline must fail fast (kDeadlineExceeded
// before the request ever touches the worker pool) and a tiny deadline
// against a many-shard corpus must return well before the undeadlined
// query would have finished. allow_partial flips the expiry outcome from
// an error into an Ok response flagged truncated_by_deadline whose hits
// are a subset of the full answer, and such partials must never be served
// back out of either cache tier.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "src/service/service.h"
#include "src/sim/workload.h"
#include "src/util/cancel.h"
#include "src/util/timer.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

const std::vector<std::string>& AllBackends() {
  static const std::vector<std::string> kBackends = {"alae", "basic", "blast",
                                                     "bwt-sw", "sw"};
  return kBackends;
}

TEST(CancelToken, ExplicitCancelWinsOverDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());
  EXPECT_EQ(token.ExpiredWhy(), CancelToken::Why::kNone);
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));  // already past
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.ExpiredWhy(), CancelToken::Why::kDeadline);
  token.Cancel();
  EXPECT_EQ(token.ExpiredWhy(), CancelToken::Why::kCancelled);
  token.Reset();
  EXPECT_FALSE(token.Expired());
}

TEST(CancelToken, ObservesParentChain) {
  CancelToken parent;
  CancelToken child(&parent);
  EXPECT_FALSE(child.Expired());
  parent.Cancel();
  EXPECT_TRUE(child.Expired());
  EXPECT_EQ(child.ExpiredWhy(), CancelToken::Why::kCancelled);
}

TEST(CancelScan, AmortisesAndLatches) {
  CancelToken token;
  CancelScan scan(&token, /*stride=*/8);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(scan.Tick());
  token.Cancel();
  // Fires within one stride of polls, then stays fired.
  bool fired = false;
  for (int i = 0; i < 16 && !fired; ++i) fired = scan.Tick();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(scan.fired());
  EXPECT_TRUE(scan.Tick());
}

class ServiceCancelTest : public ::testing::Test {
 protected:
  void Build(int64_t text_length, int64_t shard_size, int64_t overlap,
             size_t num_queries, int64_t query_length) {
    WorkloadSpec spec;
    spec.text_length = text_length;
    spec.query_length = query_length;
    spec.num_queries = static_cast<int>(num_queries);
    spec.divergence = 0.2;
    spec.seed = 7;
    workload_ = BuildWorkload(spec);
    ShardedCorpusOptions options;
    options.shard_size = shard_size;
    options.overlap = overlap;
    auto corpus = ShardedCorpus::Build(workload_.text, options);
    ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
    corpus_ = std::move(corpus).value();
  }

  SearchRequest Request(size_t q, int32_t threshold = 16) const {
    SearchRequest request;
    request.query = workload_.queries[q];
    request.threshold = threshold;
    return request;
  }

  Workload workload_;
  std::unique_ptr<ShardedCorpus> corpus_;
};

// A deadline far in the future must change nothing: every backend's hits
// are bit-identical to the undeadlined answer (the amortised cancellation
// polls are observation only).
TEST_F(ServiceCancelTest, GenerousDeadlineIsBitExactOnEveryBackend) {
  Build(3'000, 700, 170, 4, 40);
  QueryScheduler scheduler(*corpus_, {.threads = 2, .cache_capacity = 0});
  for (const std::string& backend : AllBackends()) {
    for (size_t q = 0; q < workload_.queries.size(); ++q) {
      api::StatusOr<SearchResponse> plain =
          scheduler.Search(backend, Request(q));
      ASSERT_TRUE(plain.ok())
          << backend << "/" << q << ": " << plain.status().ToString();

      CancelToken token;
      token.SetDeadlineAfter(std::chrono::hours(1));
      SearchRequest capped = Request(q);
      capped.cancel = &token;
      api::StatusOr<SearchResponse> deadlined =
          scheduler.Search(backend, capped);
      ASSERT_TRUE(deadlined.ok())
          << backend << "/" << q << ": " << deadlined.status().ToString();
      EXPECT_EQ(deadlined->hits, plain->hits) << backend << "/" << q;
      EXPECT_FALSE(deadlined->stats.truncated_by_deadline);
    }
  }
}

// An already-expired deadline fails before admission: even with the worker
// pool wedged completely (its one worker parked, its queue full), the
// outcome is kDeadlineExceeded — not the kResourceExhausted that any pool
// submission would produce — proving the request never touched the pool.
TEST_F(ServiceCancelTest, AlreadyExpiredFailsFastWithoutTouchingThePool) {
  Build(2'000, 600, 140, 2, 30);
  QueryScheduler scheduler(
      *corpus_, {.threads = 1, .queue_capacity = 1, .cache_capacity = 0});

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(scheduler.pool().TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  // Wedge the queue too: one more parked task fills capacity 1 (the first
  // is being held by the lone worker).
  while (!scheduler.pool().TrySubmit([] {})) {
  }

  CancelToken token;
  token.Cancel();
  SearchRequest cancelled = Request(0);
  cancelled.cancel = &token;
  api::StatusOr<SearchResponse> refused = scheduler.Search("sw", cancelled);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled)
      << refused.status().ToString();

  CancelToken expired;
  expired.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  SearchRequest late = Request(0);
  late.cancel = &expired;
  api::StatusOr<SearchResponse> timed_out = scheduler.Search("sw", late);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded)
      << timed_out.status().ToString();

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

// The acceptance scenario: a ~1 ms deadline against a corpus of >= 8
// shards returns promptly (kDeadlineExceeded, or a truncated partial when
// allowed) instead of running the full multi-shard query out.
TEST_F(ServiceCancelTest, TinyDeadlineOnManyShardCorpusReturnsEarly) {
  Build(60'000, 8'000, 500, 1, 120);
  ASSERT_GE(corpus_->num_shards(), 8u);
  QueryScheduler scheduler(*corpus_, {.threads = 2, .cache_capacity = 0});

  // Reference: how long the undeadlined query takes (exact backends only;
  // sw is the most work per shard and the steadiest clock here).
  Timer full_timer;
  api::StatusOr<SearchResponse> full = scheduler.Search("sw", Request(0, 1));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const double full_seconds = full_timer.ElapsedSeconds();

  CancelToken token;
  token.SetDeadlineAfter(std::chrono::milliseconds(1));
  SearchRequest capped = Request(0, 1);
  capped.cancel = &token;
  Timer capped_timer;
  api::StatusOr<SearchResponse> timed_out = scheduler.Search("sw", capped);
  const double capped_seconds = capped_timer.ElapsedSeconds();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded)
      << timed_out.status().ToString();
  // Timing bound, asserted only when the full run is slow enough for the
  // comparison to be meaningful on this machine/build (sanitizer builds
  // and loaded CI runners stretch both sides).
  if (full_seconds > 0.05) {
    EXPECT_LT(capped_seconds, full_seconds)
        << "deadlined query took as long as the full query";
  }

  // Same deadline, partial results allowed: Ok, flagged truncated, and
  // every returned hit is one the full answer contains.
  CancelToken token2;
  token2.SetDeadlineAfter(std::chrono::milliseconds(1));
  SearchRequest partial = Request(0, 1);
  partial.cancel = &token2;
  partial.allow_partial = true;
  api::StatusOr<SearchResponse> truncated = scheduler.Search("sw", partial);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_TRUE(truncated->stats.truncated_by_deadline);
  EXPECT_TRUE(truncated->stats.truncated);
  for (const AlignmentHit& hit : truncated->hits) {
    EXPECT_NE(std::find(full->hits.begin(), full->hits.end(), hit),
              full->hits.end())
        << "partial result contains a hit the full answer does not";
  }
}

// A deadline-truncated partial must never be served from the caches: the
// identical request issued afterwards without a deadline gets the full
// answer, not the cached stub.
TEST_F(ServiceCancelTest, PartialResponsesAreNotCached) {
  Build(3'000, 700, 170, 2, 40);
  QueryScheduler scheduler(*corpus_, {.threads = 2,
                                      .cache_capacity = 64,
                                      .shard_cache_capacity = 64});

  CancelToken expired;
  expired.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  SearchRequest partial = Request(0);
  partial.cancel = &expired;
  partial.allow_partial = true;
  api::StatusOr<SearchResponse> stub = scheduler.Search("alae", partial);
  ASSERT_TRUE(stub.ok()) << stub.status().ToString();
  EXPECT_TRUE(stub->stats.truncated_by_deadline);
  EXPECT_TRUE(stub->hits.empty());

  api::StatusOr<SearchResponse> fresh = scheduler.Search("alae", Request(0));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->stats.truncated_by_deadline);

  QueryScheduler no_cache(*corpus_, {.threads = 2, .cache_capacity = 0});
  api::StatusOr<SearchResponse> reference =
      no_cache.Search("alae", Request(0));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(fresh->hits, reference->hits)
      << "the cache served the deadline-truncated stub";
}

// The scheduler-wide default deadline applies when the request carries no
// token of its own, and a pre-cancelled per-request token still wins.
TEST_F(ServiceCancelTest, DefaultDeadlineAndPerRequestTokenCompose) {
  Build(2'000, 600, 140, 2, 30);
  QueryScheduler scheduler(*corpus_, {.threads = 2,
                                      .cache_capacity = 0,
                                      .default_deadline_ms = 60'000});
  // Generous default: normal answers.
  api::StatusOr<SearchResponse> ok = scheduler.Search("sw", Request(0));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  CancelToken token;
  token.Cancel();
  SearchRequest cancelled = Request(0);
  cancelled.cancel = &token;
  api::StatusOr<SearchResponse> refused = scheduler.Search("sw", cancelled);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace service
}  // namespace alae
