// The deterministic fault-injection sweep over the persistence stack.
//
// Protocol (see src/util/fault_injector.h): a recording pass runs one
// LiveCorpus::Save with a fresh injector installed and reads back every
// fault site the save crossed, with per-site crossing counts. The sweep
// then re-runs the save once per (site, nth-crossing) pair with exactly
// that crossing armed to fail, and asserts the failure is contained: the
// save reports an error, the previous manifest stays authoritative, and
// the directory reloads bit-exact — documents, tombstones, text and
// query answers all unchanged. The sweep is exhaustive by construction:
// a new write site added to the save path shows up in the recording and
// is swept automatically, so "every persistence write site" is a property
// the test derives rather than a list it hard-codes.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/fault_injector.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("alae_faultinject_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

LiveCorpusOptions SmallLiveOptions() {
  LiveCorpusOptions options;
  options.base.shard_size = 500;
  options.base.overlap = 190;
  options.compact_after_deltas = 0;
  options.background_compaction = false;
  return options;
}

// A live corpus exercising every save site: multiple base shards, two
// pending deltas, one tombstone.
std::unique_ptr<LiveCorpus> BuildFixture(SequenceGenerator& gen) {
  auto live =
      LiveCorpus::Build(gen.Random(1'200, Alphabet::Dna()), SmallLiveOptions());
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_TRUE((*live)->AppendDocument(gen.Random(150, Alphabet::Dna())).ok());
  EXPECT_TRUE((*live)->AppendDocument(gen.Random(120, Alphabet::Dna())).ok());
  EXPECT_TRUE((*live)->DeleteDocument(1).ok());
  return std::move(live).value();
}

// Everything the on-disk corpus must preserve across a failed save,
// summarised comparably.
struct CorpusFingerprint {
  int64_t text_size = 0;
  std::vector<LiveCorpus::DocumentInfo> docs;
  std::vector<TombstoneSpan> tombstones;
  size_t num_deltas = 0;
  std::vector<AlignmentHit> hits;

  static CorpusFingerprint Of(const LiveCorpus& live, const Sequence& query) {
    CorpusFingerprint fp;
    fp.text_size = live.text_size();
    fp.docs = live.Documents();
    fp.tombstones = live.Tombstones();
    fp.num_deltas = live.num_deltas();
    QueryScheduler scheduler(live, {.threads = 1, .cache_capacity = 0});
    SearchRequest request;
    request.query = query;
    request.threshold = 20;
    api::StatusOr<SearchResponse> response = scheduler.Search("alae", request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (response.ok()) fp.hits = response->hits;
    return fp;
  }

  void ExpectEquals(const CorpusFingerprint& o, const std::string& why) const {
    EXPECT_EQ(text_size, o.text_size) << why;
    ASSERT_EQ(docs.size(), o.docs.size()) << why;
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(docs[i].span.id, o.docs[i].span.id) << why;
      EXPECT_EQ(docs[i].span.begin, o.docs[i].span.begin) << why;
      EXPECT_EQ(docs[i].span.end, o.docs[i].span.end) << why;
      EXPECT_EQ(docs[i].alive, o.docs[i].alive) << why;
    }
    ASSERT_EQ(tombstones.size(), o.tombstones.size()) << why;
    for (size_t i = 0; i < tombstones.size(); ++i) {
      EXPECT_EQ(tombstones[i].doc_id, o.tombstones[i].doc_id) << why;
      EXPECT_EQ(tombstones[i].begin, o.tombstones[i].begin) << why;
      EXPECT_EQ(tombstones[i].end, o.tombstones[i].end) << why;
    }
    EXPECT_EQ(num_deltas, o.num_deltas) << why;
    EXPECT_EQ(hits, o.hits) << why;
  }
};

// The tentpole sweep: kill every write site of LiveCorpus::Save in turn;
// after each failure the directory must still load the last successful
// save, bit-exact.
TEST_F(FaultInjectionTest, SaveSweepLeavesPreviousManifestAuthoritative) {
  SequenceGenerator gen(17);
  std::unique_ptr<LiveCorpus> live = BuildFixture(gen);
  // Probe against the corpus text so the fingerprint has real hits.
  const Sequence query =
      gen.HomologousQuery(live->base()->text(), 36, 0.9, 0.08, 0.03);
  const CorpusFingerprint expected = CorpusFingerprint::Of(*live, query);

  // Baseline save: the state every failed re-save must preserve.
  ASSERT_TRUE(live->Save(dir()).ok());

  // Record: one full save under a fresh injector, no faults armed.
  ScopedFaultInjector injector;
  ASSERT_TRUE(live->Save(dir()).ok());
  const std::vector<std::string> sites = injector->SitesSeen();

  // The save path must cross every known persistence write site — if one
  // is missing the hooks (or this fixture) regressed.
  for (const char* required :
       {"sharded/save/shard", "live/save/delta", "live/save/journal",
        "live/save/manifest-write", "live/save/manifest-rename"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), required), sites.end())
        << "save never crossed " << required;
  }

  std::vector<std::pair<std::string, uint64_t>> sweep;
  for (const std::string& site : sites) {
    for (uint64_t nth = 1; nth <= injector->HitCount(site); ++nth) {
      sweep.emplace_back(site, nth);
    }
  }
  ASSERT_GE(sweep.size(), 5u);

  for (const auto& [site, nth] : sweep) {
    const std::string label = site + "#" + std::to_string(nth);
    injector->Reset();
    injector->FailAt(site, nth);
    api::Status failed = live->Save(dir());
    EXPECT_FALSE(failed.ok()) << label << " did not fail the save";
    EXPECT_EQ(injector->failures_injected(), 1u) << label;
    injector->Reset();  // disarm before the verification load

    api::StatusOr<std::unique_ptr<LiveCorpus>> reloaded =
        LiveCorpus::Load(dir(), SmallLiveOptions());
    ASSERT_TRUE(reloaded.ok())
        << label << " corrupted the directory: "
        << reloaded.status().ToString();
    CorpusFingerprint::Of(**reloaded, query).ExpectEquals(
        expected, "after failing " + label);
  }

  // And with the injector gone, the next save still succeeds and reloads.
  injector->Reset();
  ASSERT_TRUE(live->Save(dir()).ok());
  api::StatusOr<std::unique_ptr<LiveCorpus>> final_load =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_TRUE(final_load.ok()) << final_load.status().ToString();
  CorpusFingerprint::Of(**final_load, query).ExpectEquals(expected, "final");
}

// A fresh-directory ShardedCorpus::Save that fails at any site must not
// leave a loadable manifest naming missing or truncated shards.
TEST_F(FaultInjectionTest, ShardedSaveFailureNeverPublishesAManifest) {
  SequenceGenerator gen(18);
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 190;
  auto corpus = ShardedCorpus::Build(gen.Random(1'200, Alphabet::Dna()),
                                     options);
  ASSERT_TRUE(corpus.ok());

  ScopedFaultInjector injector;
  ASSERT_TRUE((*corpus)->Save(dir()).ok());
  std::filesystem::remove_all(dir());
  const std::vector<std::string> sites = injector->SitesSeen();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "sharded/save/manifest"),
            sites.end());

  std::vector<std::pair<std::string, uint64_t>> sweep;
  for (const std::string& site : sites) {
    for (uint64_t nth = 1; nth <= injector->HitCount(site); ++nth) {
      sweep.emplace_back(site, nth);
    }
  }
  for (const auto& [site, nth] : sweep) {
    const std::string label = site + "#" + std::to_string(nth);
    std::filesystem::remove_all(dir());
    injector->Reset();
    injector->FailAt(site, nth);
    EXPECT_FALSE((*corpus)->Save(dir()).ok()) << label;
    injector->Reset();
    // The manifest is written last and staged: a failed save of a fresh
    // directory must leave no manifest at all.
    EXPECT_FALSE(std::filesystem::exists(dir() + "/corpus.manifest"))
        << label << " published a manifest from a failed save";
    EXPECT_FALSE(ShardedCorpus::Load(dir()).ok()) << label;
  }
}

// The allocation-pressure hook in index build: an armed failure surfaces
// as kResourceExhausted from ShardedCorpus::Build instead of an abort.
TEST_F(FaultInjectionTest, BuildSiteFailsWithResourceExhausted) {
  SequenceGenerator gen(19);
  ScopedFaultInjector injector;
  injector->FailAt("sharded/build/shard-index", 2);
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 190;
  auto corpus = ShardedCorpus::Build(gen.Random(1'200, Alphabet::Dna()),
                                     options);
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kResourceExhausted)
      << corpus.status().ToString();
}

// The pool-admission hook: an armed failure is indistinguishable from a
// full queue, so the scheduler sheds the request with kResourceExhausted.
TEST_F(FaultInjectionTest, PoolAdmitSiteShedsWithResourceExhausted) {
  SequenceGenerator gen(20);
  ShardedCorpusOptions options;
  options.shard_size = 500;
  options.overlap = 190;
  auto corpus = ShardedCorpus::Build(gen.Random(1'200, Alphabet::Dna()),
                                     options);
  ASSERT_TRUE(corpus.ok());
  QueryScheduler scheduler(**corpus, {.threads = 1, .cache_capacity = 0});

  SearchRequest request;
  request.query = gen.HomologousQuery((*corpus)->text(), 36, 0.9, 0.08, 0.03);
  request.threshold = 20;

  ScopedFaultInjector injector;
  injector->FailAt("pool/admit", 1);
  api::StatusOr<SearchResponse> shed = scheduler.Search("alae", request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted)
      << shed.status().ToString();

  // Disarmed, the identical request goes through.
  injector->Reset();
  api::StatusOr<SearchResponse> served = scheduler.Search("alae", request);
  EXPECT_TRUE(served.ok()) << served.status().ToString();
}

// Seeded random mode is reproducible: the same seed over the same
// crossing sequence makes identical decisions.
TEST_F(FaultInjectionTest, RandomModeIsDeterministicForAFixedSeed) {
  std::vector<bool> first, second;
  {
    ScopedFaultInjector injector;
    injector->FailRandomly(0.3, 12345);
    for (int i = 0; i < 200; ++i) first.push_back(FaultInjector::Hit("site"));
  }
  {
    ScopedFaultInjector injector;
    injector->FailRandomly(0.3, 12345);
    for (int i = 0; i < 200; ++i) second.push_back(FaultInjector::Hit("site"));
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

}  // namespace
}  // namespace service
}  // namespace alae
