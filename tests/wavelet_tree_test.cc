#include "src/index/wavelet_tree.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace alae {
namespace {

class WaveletTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(WaveletTreeTest, AccessAndRankMatchNaive) {
  int sigma = GetParam();
  Rng rng(17);
  for (size_t n : {1ul, 5ul, 64ul, 257ul, 2000ul}) {
    std::vector<Symbol> data(n);
    for (auto& c : data) {
      c = static_cast<Symbol>(rng.Below(static_cast<uint64_t>(sigma)));
    }
    WaveletTree wt(data, sigma);
    ASSERT_EQ(wt.size(), n);
    // Access.
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(wt.Access(i), data[i]);
    // Rank for every symbol at sampled prefixes.
    for (int c = 0; c < sigma; ++c) {
      size_t count = 0;
      for (size_t i = 0; i <= n; ++i) {
        if (i % 37 == 0 || i == n) {
          ASSERT_EQ(wt.Rank(static_cast<Symbol>(c), i), count)
              << "sigma=" << sigma << " n=" << n << " c=" << c << " i=" << i;
        }
        if (i < n && data[i] == c) ++count;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, WaveletTreeTest,
                         ::testing::Values(2, 3, 5, 21, 26));

TEST(WaveletTree, SingleSymbolAlphabetDegenerate) {
  std::vector<Symbol> data(10, 0);
  WaveletTree wt(data, 2);
  EXPECT_EQ(wt.Rank(0, 10), 10u);
  EXPECT_EQ(wt.Rank(1, 10), 0u);
}

TEST(WaveletTree, SizeScalesWithLogSigma) {
  Rng rng(18);
  std::vector<Symbol> small(100000), large(100000);
  for (auto& c : small) c = static_cast<Symbol>(rng.Below(4));
  for (auto& c : large) c = static_cast<Symbol>(rng.Below(20));
  WaveletTree wt4(small, 4);
  WaveletTree wt20(large, 20);
  // log2(20)/log2(4) ~ 2.2; allow slack for rank overhead.
  EXPECT_GT(wt20.SizeBytes(), wt4.SizeBytes());
  EXPECT_LT(wt20.SizeBytes(), wt4.SizeBytes() * 4);
}

}  // namespace
}  // namespace alae
