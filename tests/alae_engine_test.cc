// Behavioural tests of the ALAE engine beyond raw exactness: counter
// semantics, the effect of each filter on work done, reuse accounting, and
// index plumbing.

#include "src/core/alae.h"

#include <gtest/gtest.h>

#include "src/baseline/bwt_sw.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

struct Inputs {
  Sequence text;
  Sequence query;
};

Inputs MakeSetup(uint64_t seed, int64_t n = 4000, int64_t m = 300) {
  SequenceGenerator gen(seed);
  Inputs s;
  RepeatSpec family;
  family.unit_length = 150;
  family.copies = 8;
  family.divergence = 0.08;
  s.text = gen.TextWithRepeats(n, Alphabet::Dna(), {family});
  s.query = gen.HomologousQuery(s.text, m, 0.6, 0.25, 0.02);
  return s;
}

TEST(AlaeEngine, CalculatesFarFewerEntriesThanBwtSw) {
  Inputs s = MakeSetup(201);
  AlaeIndex index(s.text);
  Alae alae(index);
  AlaeRunStats alae_stats;
  alae.Run(s.query, ScoringScheme::Default(), 25, &alae_stats);

  FmIndex rev(s.text.Reversed());
  BwtSw bwtsw(rev, static_cast<int64_t>(s.text.size()));
  DpCounters bw_counters;
  bwtsw.Run(s.query, ScoringScheme::Default(), 25, &bw_counters);

  EXPECT_LT(alae_stats.counters.Calculated(), bw_counters.Calculated() / 2)
      << "ALAE should prune most of BWT-SW's work";
  EXPECT_LT(alae_stats.counters.ComputationCost(),
            bw_counters.ComputationCost() / 2);
}

TEST(AlaeEngine, CostBucketsArePopulated) {
  Inputs s = MakeSetup(202);
  AlaeIndex index(s.text);
  Alae alae(index);
  AlaeRunStats stats;
  alae.Run(s.query, ScoringScheme::Default(), 20, &stats);
  // NGR cells (cost 1) dominate; boundary and interior gap cells exist.
  EXPECT_GT(stats.counters.cells_cost1, 0u);
  EXPECT_GT(stats.counters.cells_cost2, 0u);
  EXPECT_GT(stats.counters.assigned, 0u);
  EXPECT_GT(stats.counters.forks_opened, 0u);
  EXPECT_GT(stats.grams_searched, 0u);
}

TEST(AlaeEngine, ReuseCopiesCellsOnRepetitiveQueries) {
  // A query with heavy internal repetition makes forks share FGOE rows and
  // query suffixes.
  SequenceGenerator gen(203);
  Sequence unit = gen.Random(40, Alphabet::Dna());
  Sequence text = gen.Random(3000, Alphabet::Dna());
  std::vector<Symbol> q;
  for (int rep = 0; rep < 6; ++rep) {
    for (size_t i = 0; i < unit.size(); ++i) q.push_back(unit[i]);
  }
  Sequence query(std::move(q), Alphabet::Dna());

  AlaeIndex index(text);
  Alae alae(index);
  AlaeRunStats stats;
  alae.Run(query, ScoringScheme::Fig9(2), 8, &stats);  // mild sb opens gaps
  EXPECT_GT(stats.counters.reused, 0u)
      << "repetitive query should trigger reuse";
  EXPECT_EQ(stats.counters.Accessed(),
            stats.counters.Calculated() + stats.counters.reused +
                stats.counters.assigned);
}

TEST(AlaeEngine, ReuseOffMeansNoReusedCells) {
  Inputs s = MakeSetup(204);
  AlaeIndex index(s.text);
  AlaeConfig config;
  config.reuse = false;
  Alae alae(index, config);
  AlaeRunStats stats;
  alae.Run(s.query, ScoringScheme::Default(), 20, &stats);
  EXPECT_EQ(stats.counters.reused, 0u);
}

TEST(AlaeEngine, DominationSkipsForks) {
  // Domination fires when q-grams of the text are rare enough to have a
  // unique predecessor — a protein-alphabet property (sigma^q >> n), which
  // is also why Fig 11 shows a visible dominate index only for proteins.
  SequenceGenerator gen(205);
  Inputs s;
  s.text = gen.Random(8000, Alphabet::Protein());
  s.query = gen.HomologousQuery(s.text, 400, 0.8, 0.05, 0.01);
  AlaeIndex index(s.text);
  AlaeConfig with_dom;
  AlaeConfig without_dom;
  without_dom.domination_filter = false;
  AlaeRunStats dom_stats, plain_stats;
  Alae(index, with_dom).Run(s.query, ScoringScheme::Default(), 25, &dom_stats);
  Alae(index, without_dom)
      .Run(s.query, ScoringScheme::Default(), 25, &plain_stats);
  EXPECT_GT(dom_stats.counters.forks_skipped_domination, 0u);
  EXPECT_LT(dom_stats.counters.forks_opened, plain_stats.counters.forks_opened);
  EXPECT_EQ(plain_stats.counters.forks_skipped_domination, 0u);
}

TEST(AlaeEngine, ScoreFilterReducesWork) {
  Inputs s = MakeSetup(206);
  AlaeIndex index(s.text);
  AlaeConfig off;
  off.score_filter = false;
  AlaeRunStats on_stats, off_stats;
  Alae(index).Run(s.query, ScoringScheme::Default(), 30, &on_stats);
  Alae(index, off).Run(s.query, ScoringScheme::Default(), 30, &off_stats);
  EXPECT_LE(on_stats.counters.Calculated(), off_stats.counters.Calculated());
}

TEST(AlaeEngine, PrefixFilterReducesForks) {
  Inputs s = MakeSetup(207);
  AlaeIndex index(s.text);
  AlaeConfig q1;
  q1.prefix_filter = false;  // q = 1: anchor at every matching character
  AlaeRunStats full_stats, q1_stats;
  Alae(index).Run(s.query, ScoringScheme::Default(), 25, &full_stats);
  Alae(index, q1).Run(s.query, ScoringScheme::Default(), 25, &q1_stats);
  EXPECT_LT(full_stats.counters.forks_opened, q1_stats.counters.forks_opened);
  EXPECT_LT(full_stats.counters.Calculated(), q1_stats.counters.Calculated());
}

TEST(AlaeIndex, DominationIndexIsCachedPerQ) {
  SequenceGenerator gen(208);
  Sequence text = gen.Random(1000, Alphabet::Dna());
  AlaeIndex index(text);
  const DominationIndex& a = index.Domination(4);
  const DominationIndex& b = index.Domination(4);
  EXPECT_EQ(&a, &b);
  const DominationIndex& c = index.Domination(5);
  EXPECT_NE(&a, &c);
  AlaeIndex::Sizes sizes = index.SizeBytes();
  EXPECT_GT(sizes.bwt_bytes, 0u);
  EXPECT_GT(sizes.domination_bytes, 0u);
}

TEST(AlaeEngine, EmptyAndShortQueries) {
  SequenceGenerator gen(209);
  Sequence text = gen.Random(500, Alphabet::Dna());
  AlaeIndex index(text);
  Alae alae(index);
  Sequence empty;
  EXPECT_EQ(alae.Run(empty, ScoringScheme::Default(), 5).size(), 0u);
  Sequence tiny = Sequence::FromString("AC", Alphabet::Dna());
  // m < q: no q-gram anchors, and indeed no result can reach H=5.
  EXPECT_EQ(alae.Run(tiny, ScoringScheme::Default(), 5).size(), 0u);
}

}  // namespace
}  // namespace alae
