#include "src/service/live_corpus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/util/serialize.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

SearchRequest MakeRequest(const Sequence& query, int32_t threshold) {
  SearchRequest request;
  request.query = query;
  request.threshold = threshold;
  return request;
}

// Geometry small enough that every slice (base shards and delta slices
// alike) stays under the BASIC backend's text cap, with an overlap that
// admits the BLAST window for ~36-char queries.
LiveCorpusOptions SmallLiveOptions() {
  LiveCorpusOptions options;
  options.base.shard_size = 500;
  options.base.overlap = 190;
  options.compact_after_deltas = 0;  // tests drive compaction explicitly
  options.background_compaction = false;
  return options;
}

std::unique_ptr<LiveCorpus> MustBuildLive(Sequence text,
                                          std::vector<DocumentSpan> docs,
                                          LiveCorpusOptions options) {
  auto live = LiveCorpus::Build(std::move(text), std::move(docs), options);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
  return std::move(live).value();
}

// The test's own model of a live corpus: the document bodies in append
// order, dead ones included (they stay in the physical text until
// compaction). Everything the differential needs is derived from this —
// independently of the code under test.
struct ModelDoc {
  uint64_t id = 0;
  Sequence body;
  bool alive = true;
};

Sequence ModelText(const std::vector<ModelDoc>& model,
                   std::vector<TombstoneSpan>* tombstones) {
  Sequence text({}, Alphabet::Dna());
  if (tombstones) tombstones->clear();
  for (const ModelDoc& d : model) {
    const int64_t begin = static_cast<int64_t>(text.size());
    text.Append(d.body);
    if (!d.alive && tombstones) {
      tombstones->push_back(
          TombstoneSpan{d.id, begin, static_cast<int64_t>(text.size())});
    }
  }
  return text;
}

// The differential core: the live corpus must answer every backend
// bit-exactly like a monolithic ShardedCorpus rebuilt from the same
// physical text, with the reference put through the same conservative
// tombstone filter the live path applies at merge time.
void ExpectLiveMatchesRebuilt(const LiveCorpus& live,
                              const std::vector<ModelDoc>& model,
                              const LiveCorpusOptions& options,
                              SequenceGenerator& gen, int queries_per_backend) {
  std::vector<TombstoneSpan> tombstones;
  Sequence text = ModelText(model, &tombstones);
  ASSERT_EQ(live.text_size(), static_cast<int64_t>(text.size()));

  auto reference = ShardedCorpus::Build(text, options.base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  QueryScheduler live_scheduler(live, {.threads = 2});
  QueryScheduler ref_scheduler(**reference, {.threads = 2});

  std::vector<Sequence> queries;
  for (int q = 0; q < queries_per_backend; ++q) {
    queries.push_back(gen.HomologousQuery(text, 36, 0.9, 0.08, 0.03));
  }
  for (const std::string& backend : api::AlignerRegistry::BuiltinNames()) {
    for (const Sequence& query : queries) {
      SearchRequest request = MakeRequest(query, 20);
      api::StatusOr<SearchResponse> live_response =
          live_scheduler.Search(backend, request);
      ASSERT_TRUE(live_response.ok())
          << backend << ": " << live_response.status().ToString();
      api::StatusOr<SearchResponse> ref_response =
          ref_scheduler.Search(backend, request);
      ASSERT_TRUE(ref_response.ok())
          << backend << ": " << ref_response.status().ToString();

      const int64_t guard = RequiredSpan(backend, request);
      std::vector<AlignmentHit> expected;
      for (const AlignmentHit& hit : ref_response->hits) {
        if (!TombstoneSuppressed(tombstones, hit.text_end, guard)) {
          expected.push_back(hit);
        }
      }
      ASSERT_EQ(live_response->hits.size(), expected.size())
          << backend << " with " << live.num_deltas() << " deltas and "
          << live.num_tombstones() << " tombstones";
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(live_response->hits[i], expected[i])
            << backend << " hit " << i;
      }
      EXPECT_EQ(live_response->stats.delta_shards,
                static_cast<uint64_t>(live.num_deltas()));
    }
  }
}

// Randomized mutation differential: interleave appends, deletes, queries
// and compactions, and after every round require bit-exact agreement with
// a from-scratch rebuild for all five backends.
TEST(LiveCorpusDifferential, RandomMutationsMatchRebuiltAllBackends) {
  for (uint64_t seed : {21u, 22u}) {
    SequenceGenerator gen(seed);
    LiveCorpusOptions options = SmallLiveOptions();

    std::vector<ModelDoc> model;
    Sequence initial({}, Alphabet::Dna());
    std::vector<DocumentSpan> spans;
    for (uint64_t d = 0; d < 6; ++d) {
      Sequence body = gen.TextWithRepeats(250, Alphabet::Dna(), {{60, 3, 0.1}});
      const int64_t begin = static_cast<int64_t>(initial.size());
      initial.Append(body);
      spans.push_back(
          DocumentSpan{d, begin, static_cast<int64_t>(initial.size())});
      model.push_back(ModelDoc{d, std::move(body), true});
    }
    std::unique_ptr<LiveCorpus> live =
        MustBuildLive(initial, spans, options);

    ExpectLiveMatchesRebuilt(*live, model, options, gen, 2);
    for (int round = 0; round < 6; ++round) {
      const uint64_t op = gen.rng().Below(10);
      if (op < 5) {  // append
        Sequence doc = gen.TextWithRepeats(
            gen.rng().Range(80, 220), Alphabet::Dna(), {{40, 2, 0.1}});
        api::StatusOr<uint64_t> id = live->AppendDocument(doc);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        model.push_back(ModelDoc{*id, std::move(doc), true});
      } else if (op < 8) {  // delete a random alive doc (keep one alive)
        std::vector<size_t> alive;
        for (size_t i = 0; i < model.size(); ++i) {
          if (model[i].alive) alive.push_back(i);
        }
        if (alive.size() > 1) {
          const size_t victim = alive[gen.rng().Below(alive.size())];
          ASSERT_TRUE(live->DeleteDocument(model[victim].id).ok());
          model[victim].alive = false;
        }
      } else {  // compact: dead bodies leave the model's physical text
        ASSERT_TRUE(live->Compact().ok());
        std::vector<ModelDoc> survivors;
        for (ModelDoc& d : model) {
          if (d.alive) survivors.push_back(std::move(d));
        }
        model = std::move(survivors);
      }

      // Document table must mirror the model exactly.
      std::vector<LiveCorpus::DocumentInfo> docs = live->Documents();
      ASSERT_EQ(docs.size(), model.size());
      for (size_t i = 0; i < model.size(); ++i) {
        EXPECT_EQ(docs[i].span.id, model[i].id);
        EXPECT_EQ(docs[i].alive, model[i].alive);
        EXPECT_EQ(docs[i].span.length(),
                  static_cast<int64_t>(model[i].body.size()));
      }
      ExpectLiveMatchesRebuilt(*live, model, options, gen, 2);
    }
  }
}

TEST(LiveCorpus, MutationStatusSemantics) {
  SequenceGenerator gen(31);
  LiveCorpusOptions options = SmallLiveOptions();
  Sequence text = gen.Random(600, Alphabet::Dna());
  std::vector<DocumentSpan> spans = {DocumentSpan{0, 0, 300},
                                     DocumentSpan{1, 300, 600}};
  std::unique_ptr<LiveCorpus> live = MustBuildLive(text, spans, options);

  EXPECT_EQ(live->DeleteDocument(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(live->DeleteDocument(0).ok());
  EXPECT_EQ(live->DeleteDocument(0).code(), StatusCode::kFailedPrecondition);

  // Appending an empty or mismatched-alphabet document is refused.
  EXPECT_EQ(live->AppendDocument(Sequence({}, Alphabet::Dna())).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(live->AppendDocument(gen.Random(50, Alphabet::Protein()))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Deleting everything then compacting is refused: an empty corpus
  // cannot be indexed.
  ASSERT_TRUE(live->DeleteDocument(1).ok());
  EXPECT_EQ(live->Compact().code(), StatusCode::kFailedPrecondition);
  // An append revives the corpus and compaction then reclaims both dead
  // spans.
  api::StatusOr<uint64_t> id = live->AppendDocument(gen.Random(120, Alphabet::Dna()));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
  ASSERT_TRUE(live->Compact().ok());
  EXPECT_EQ(live->text_size(), 120);
  EXPECT_EQ(live->num_deltas(), 0u);
  EXPECT_EQ(live->num_tombstones(), 0u);
  EXPECT_EQ(live->compactions(), 1u);
}

// Synchronous trigger mode: with background_compaction=false the
// compact_after_deltas threshold folds deltas inside the appending call.
TEST(LiveCorpus, SynchronousCompactionTrigger) {
  SequenceGenerator gen(32);
  LiveCorpusOptions options = SmallLiveOptions();
  options.compact_after_deltas = 2;
  std::unique_ptr<LiveCorpus> live = MustBuildLive(
      gen.Random(600, Alphabet::Dna()), {DocumentSpan{0, 0, 600}}, options);

  ASSERT_TRUE(live->AppendDocument(gen.Random(100, Alphabet::Dna())).ok());
  EXPECT_EQ(live->num_deltas(), 1u);
  EXPECT_EQ(live->compactions(), 0u);
  ASSERT_TRUE(live->AppendDocument(gen.Random(100, Alphabet::Dna())).ok());
  EXPECT_EQ(live->num_deltas(), 0u);
  EXPECT_EQ(live->compactions(), 1u);
  EXPECT_EQ(live->text_size(), 800);
}

// Background trigger mode: the same threshold, compacted by the worker
// thread; Drain-free check via polling the published counters.
TEST(LiveCorpus, BackgroundCompactionTrigger) {
  SequenceGenerator gen(33);
  LiveCorpusOptions options = SmallLiveOptions();
  options.compact_after_deltas = 3;
  options.background_compaction = true;
  std::unique_ptr<LiveCorpus> live = MustBuildLive(
      gen.Random(600, Alphabet::Dna()), {DocumentSpan{0, 0, 600}}, options);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(live->AppendDocument(gen.Random(90, Alphabet::Dna())).ok());
  }
  // The trigger is asynchronous; wait for the fold to land.
  for (int spins = 0; live->compactions() == 0 && spins < 10'000; ++spins) {
    std::this_thread::yield();
  }
  EXPECT_GE(live->compactions(), 1u);
  EXPECT_GE(live->background_compactions(), 1u);
  EXPECT_EQ(live->num_deltas(), 0u);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

class LiveCorpusPersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("alae_live_corpus_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

// Answers for every backend over one scheduler-served corpus source.
std::vector<std::vector<AlignmentHit>> AllBackendAnswers(
    const CorpusSource& source, const std::vector<Sequence>& queries) {
  QueryScheduler scheduler(source, {.threads = 2});
  std::vector<std::vector<AlignmentHit>> all;
  for (const std::string& backend : api::AlignerRegistry::BuiltinNames()) {
    for (const Sequence& query : queries) {
      api::StatusOr<SearchResponse> response =
          scheduler.Search(backend, MakeRequest(query, 20));
      EXPECT_TRUE(response.ok())
          << backend << ": " << response.status().ToString();
      all.push_back(response.ok() ? response->hits
                                  : std::vector<AlignmentHit>{});
    }
  }
  return all;
}

// Crash recovery: a live corpus saved with pending deltas and tombstones —
// plus the litter of an interrupted compaction and manifest write — must
// reload and resume identical answers.
TEST_F(LiveCorpusPersistTest, ReloadWithPendingMutationsResumesAnswers) {
  SequenceGenerator gen(41);
  LiveCorpusOptions options = SmallLiveOptions();
  Sequence text = gen.TextWithRepeats(900, Alphabet::Dna(), {{70, 4, 0.1}});
  std::vector<DocumentSpan> spans = {DocumentSpan{0, 0, 300},
                                     DocumentSpan{1, 300, 600},
                                     DocumentSpan{2, 600, 900}};
  std::unique_ptr<LiveCorpus> live = MustBuildLive(text, spans, options);
  ASSERT_TRUE(live->AppendDocument(gen.Random(150, Alphabet::Dna())).ok());
  ASSERT_TRUE(live->AppendDocument(gen.Random(200, Alphabet::Dna())).ok());
  ASSERT_TRUE(live->DeleteDocument(1).ok());

  std::vector<Sequence> queries;
  for (int q = 0; q < 2; ++q) {
    queries.push_back(gen.HomologousQuery(live->base()->text(), 36, 0.9,
                                          0.08, 0.03));
  }
  std::vector<std::vector<AlignmentHit>> before =
      AllBackendAnswers(*live, queries);

  ASSERT_TRUE(live->Save(dir()).ok());
  // Simulate a crash mid-compaction and mid-save: stray staging litter.
  std::filesystem::create_directories(dir() + "/compact.tmp");
  std::ofstream(dir() + "/compact.tmp/shard-0.fm") << "partial";
  std::ofstream(dir() + "/corpus.manifest.tmp") << "torn manifest write";

  api::StatusOr<std::unique_ptr<LiveCorpus>> reloaded =
      LiveCorpus::Load(dir(), options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->num_deltas(), 2u);
  EXPECT_EQ((*reloaded)->num_tombstones(), 1u);
  EXPECT_EQ((*reloaded)->text_size(), live->text_size());
  EXPECT_NE((*reloaded)->epoch(), live->epoch());
  EXPECT_FALSE(std::filesystem::exists(dir() + "/compact.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir() + "/corpus.manifest.tmp"));
  EXPECT_EQ(AllBackendAnswers(**reloaded, queries), before);

  // The reloaded corpus stays fully mutable: compact, re-save into the
  // same directory, reload again — still the tombstone-filtered answers,
  // now served physically reclaimed.
  ASSERT_TRUE((*reloaded)->Compact().ok());
  EXPECT_EQ((*reloaded)->num_tombstones(), 0u);
  std::vector<std::vector<AlignmentHit>> compacted =
      AllBackendAnswers(**reloaded, queries);
  ASSERT_TRUE((*reloaded)->Save(dir()).ok());
  api::StatusOr<std::unique_ptr<LiveCorpus>> again =
      LiveCorpus::Load(dir(), options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->compactions(), 1u);
  EXPECT_EQ(AllBackendAnswers(**again, queries), compacted);
  // No stale delta files survive the post-compaction save (any
  // generation's: the save sweeps every delta file it does not name).
  for (const auto& entry : std::filesystem::directory_iterator(dir())) {
    EXPECT_NE(entry.path().filename().string().rfind("delta-", 0), 0u)
        << "stale " << entry.path();
  }
}

// A v1 directory (plain ShardedCorpus::Save) loads as a single-document
// live corpus and accepts mutations from there.
TEST_F(LiveCorpusPersistTest, LoadsV1ManifestAsSingleDocument) {
  SequenceGenerator gen(42);
  ShardedCorpusOptions base;
  base.shard_size = 500;
  base.overlap = 190;
  auto corpus = ShardedCorpus::Build(gen.Random(800, Alphabet::Dna()), base);
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->Save(dir()).ok());

  LiveCorpusOptions options = SmallLiveOptions();
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ((*live)->text_size(), 800);
  std::vector<LiveCorpus::DocumentInfo> docs = (*live)->Documents();
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].span.id, 0u);
  api::StatusOr<uint64_t> id =
      (*live)->AppendDocument(gen.Random(100, Alphabet::Dna()));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  EXPECT_EQ((*live)->num_deltas(), 1u);
}

// ---------------------------------------------------------------------------
// Manifest v2 load hardening
// ---------------------------------------------------------------------------

class LiveManifestHardeningTest : public LiveCorpusPersistTest {
 protected:
  // A saved directory with two pending deltas and one tombstone.
  void SaveFixture() {
    SequenceGenerator gen(43);
    Sequence text = gen.Random(900, Alphabet::Dna());
    std::vector<DocumentSpan> spans = {DocumentSpan{0, 0, 450},
                                       DocumentSpan{1, 450, 900}};
    live_ = MustBuildLive(text, spans, SmallLiveOptions());
    ASSERT_TRUE(live_->AppendDocument(gen.Random(150, Alphabet::Dna())).ok());
    ASSERT_TRUE(live_->AppendDocument(gen.Random(120, Alphabet::Dna())).ok());
    ASSERT_TRUE(live_->DeleteDocument(1).ok());
    ASSERT_TRUE(live_->Save(dir()).ok());
    text_size_ = static_cast<size_t>(live_->text_size());
  }

  // Resolves the (generation-stamped) data file whose name starts with
  // `prefix` and ends with `ext` — after a successful save exactly the
  // current generation's files remain, so the match is unique.
  std::string DataFile(const std::string& prefix, const std::string& ext) {
    for (const auto& entry : std::filesystem::directory_iterator(dir())) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0 && name.size() >= ext.size() &&
          name.compare(name.size() - ext.size(), ext.size(), ext) == 0) {
        return entry.path().string();
      }
    }
    return dir() + "/" + prefix + ext;
  }

  std::unique_ptr<LiveCorpus> live_;
  size_t text_size_ = 0;
};

TEST_F(LiveManifestHardeningTest, RejectsTruncatedTombstoneJournal) {
  SaveFixture();
  const std::string journal = DataFile("tombstones", ".journal");
  const auto full = std::filesystem::file_size(journal);
  std::filesystem::resize_file(journal, full - 4);  // torn final entry
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_FALSE(live.ok());
  EXPECT_EQ(live.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(live.status().message().find("truncated tombstone journal"),
            std::string::npos)
      << live.status().ToString();
}

TEST_F(LiveManifestHardeningTest, RejectsOverlappingTombstoneSpans) {
  SaveFixture();
  // Two dead documents, so the journal legitimately holds two entries —
  // then tamper the second entry's begin to reach into the first span.
  // Doc 0 spans [0, 450), doc 1 [450, 900).
  ASSERT_TRUE(live_->DeleteDocument(0).ok());
  ASSERT_TRUE(live_->Save(dir()).ok());
  std::ofstream journal(DataFile("tombstones", ".journal"),
                        std::ios::binary | std::ios::trunc);
  PutU64(journal, 0x414C4145544F4D42ULL);  // "ALAETOMB"
  PutU64(journal, 0);
  PutU64(journal, 0);
  PutU64(journal, 450);
  PutU64(journal, 1);
  PutU64(journal, 449);  // overlaps doc 0's span
  PutU64(journal, 900);
  journal.close();
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_FALSE(live.ok());
  EXPECT_EQ(live.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(live.status().message().find("overlapping tombstone spans"),
            std::string::npos)
      << live.status().ToString();
}

TEST_F(LiveManifestHardeningTest, RejectsJournalManifestCountMismatch) {
  SaveFixture();
  // Append one extra (well-formed, doc-0) entry: count no longer matches
  // the manifest.
  std::ofstream journal(DataFile("tombstones", ".journal"),
                        std::ios::binary | std::ios::app);
  PutU64(journal, 0);
  PutU64(journal, 0);
  PutU64(journal, 450);
  journal.close();
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_FALSE(live.ok());
  EXPECT_EQ(live.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(live.status().message().find("manifest says"), std::string::npos)
      << live.status().ToString();
}

TEST_F(LiveManifestHardeningTest, RejectsDeltaReferencingUnknownDocument) {
  SaveFixture();
  // Corrupt the first delta entry's doc_id in place. Manifest layout up to
  // the delta table: magic + generation + 7 u64 fields, the text vector
  // (u64 length + one byte per symbol), 2 bookkeeping u64s, the doc table
  // (num_docs u64 + 4 u64s per doc), then num_deltas, then the first
  // delta's doc_id.
  const std::string manifest = dir() + "/corpus.manifest";
  std::fstream file(manifest,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  const size_t num_docs = 4;
  const size_t offset = 9 * 8 + (8 + text_size_) + 2 * 8 +
                        (8 + num_docs * 4 * 8) + 8;
  file.seekp(static_cast<std::streamoff>(offset));
  const uint64_t bogus = 0xDEADBEEFULL;
  file.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  file.close();
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_FALSE(live.ok());
  EXPECT_EQ(live.status().code(), StatusCode::kInvalidArgument);
  const bool delta_error =
      live.status().message().find("unknown or mismatched document") !=
          std::string::npos ||
      live.status().message().find("corrupt corpus manifest") !=
          std::string::npos;
  EXPECT_TRUE(delta_error) << live.status().ToString();
}

TEST_F(LiveManifestHardeningTest, RejectsSwappedDeltaIndexFile) {
  SaveFixture();
  // Swapping the two delta index files must trip the content probe even
  // though both are valid FM-index payloads.
  const std::string a = DataFile("delta-0.", ".fm");
  const std::string b = DataFile("delta-1.", ".fm");
  std::filesystem::rename(a, a + ".swap");
  std::filesystem::rename(b, a);
  std::filesystem::rename(a + ".swap", b);
  api::StatusOr<std::unique_ptr<LiveCorpus>> live =
      LiveCorpus::Load(dir(), SmallLiveOptions());
  ASSERT_FALSE(live.ok());
  EXPECT_EQ(live.status().code(), StatusCode::kInvalidArgument)
      << live.status().ToString();
}

}  // namespace
}  // namespace service
}  // namespace alae
