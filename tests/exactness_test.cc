// The central correctness property of the reproduction: ALAE (under every
// filter configuration), BWT-SW and BASIC all report exactly the same set
// of end pairs with exactly the same scores as Smith-Waterman, for random
// texts, queries, scoring schemes and thresholds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/baseline/basic.h"
#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"
#include "src/core/alae.h"
#include "src/sim/generator.h"
#include "src/util/rng.h"

namespace alae {
namespace {

std::string Describe(const std::vector<AlignmentHit>& hits, size_t limit = 8) {
  std::string out;
  for (size_t i = 0; i < hits.size() && i < limit; ++i) {
    out += "(" + std::to_string(hits[i].text_end) + "," +
           std::to_string(hits[i].query_end) + ")=" +
           std::to_string(hits[i].score) + " ";
  }
  if (hits.size() > limit) out += "...";
  return out;
}

void ExpectSameResults(const ResultCollector& expected,
                       const ResultCollector& actual, const std::string& tag) {
  std::vector<AlignmentHit> e = expected.Sorted();
  std::vector<AlignmentHit> a = actual.Sorted();
  ASSERT_EQ(e.size(), a.size()) << tag << "\nexpected: " << Describe(e)
                                << "\nactual:   " << Describe(a);
  for (size_t i = 0; i < e.size(); ++i) {
    ASSERT_EQ(e[i].text_end, a[i].text_end) << tag << " hit " << i;
    ASSERT_EQ(e[i].query_end, a[i].query_end) << tag << " hit " << i;
    ASSERT_EQ(e[i].score, a[i].score) << tag << " hit " << i;
  }
}

struct TrialSpec {
  int sigma_kind;  // 0 = DNA, 1 = protein
  int64_t text_len;
  int64_t query_len;
  ScoringScheme scheme;
  int32_t threshold;
  double homology;  // fraction of query copied (mutated) from text
  uint64_t seed;
};

// Builds a (text, query) pair with enough planted similarity to produce
// hits at the given threshold.
void BuildPair(const TrialSpec& spec, Sequence* text, Sequence* query) {
  const Alphabet& alphabet =
      spec.sigma_kind == 0 ? Alphabet::Dna() : Alphabet::Protein();
  SequenceGenerator gen(spec.seed);
  *text = gen.Random(spec.text_len, alphabet);
  *query = gen.HomologousQuery(*text, spec.query_len, spec.homology,
                               /*divergence=*/0.15, /*indel_rate=*/0.05);
}

void RunTrial(const TrialSpec& spec, const AlaeConfig& config,
              const std::string& tag) {
  Sequence text, query;
  BuildPair(spec, &text, &query);
  ResultCollector truth =
      SmithWaterman::Run(text, query, spec.scheme, spec.threshold);

  AlaeIndex index(text);
  Alae alae(index, config);
  ResultCollector got = alae.Run(query, spec.scheme, spec.threshold);
  ExpectSameResults(truth, got, tag + " [ALAE vs SW]");
}

AlaeConfig AllOn() {
  AlaeConfig c;
  return c;
}

TEST(Exactness, BwtSwMatchesSmithWaterman) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    TrialSpec spec;
    spec.sigma_kind = trial % 2;
    spec.text_len = 60 + static_cast<int64_t>(rng.Below(200));
    spec.query_len = 20 + static_cast<int64_t>(rng.Below(60));
    spec.scheme = ScoringScheme::Fig9(trial % 4);
    spec.threshold = 4 + static_cast<int32_t>(rng.Below(12));
    spec.homology = 0.7;
    spec.seed = 1000 + static_cast<uint64_t>(trial);
    Sequence text, query;
    BuildPair(spec, &text, &query);
    ResultCollector truth =
        SmithWaterman::Run(text, query, spec.scheme, spec.threshold);
    FmIndex rev(text.Reversed());
    BwtSw bwtsw(rev, static_cast<int64_t>(text.size()));
    ResultCollector got = bwtsw.Run(query, spec.scheme, spec.threshold);
    ExpectSameResults(truth, got,
                      "trial " + std::to_string(trial) + " scheme " +
                          spec.scheme.ToString() + " H=" +
                          std::to_string(spec.threshold) + " [BWT-SW vs SW]");
  }
}

TEST(Exactness, BasicMatchesSmithWaterman) {
  Rng rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    TrialSpec spec;
    spec.sigma_kind = trial % 2;
    spec.text_len = 30 + static_cast<int64_t>(rng.Below(60));
    spec.query_len = 15 + static_cast<int64_t>(rng.Below(30));
    spec.scheme = ScoringScheme::Fig9(trial % 4);
    spec.threshold = 3 + static_cast<int32_t>(rng.Below(8));
    spec.homology = 0.7;
    spec.seed = 2000 + static_cast<uint64_t>(trial);
    Sequence text, query;
    BuildPair(spec, &text, &query);
    ResultCollector truth =
        SmithWaterman::Run(text, query, spec.scheme, spec.threshold);
    ResultCollector got =
        BasicAligner::Run(text, query, spec.scheme, spec.threshold);
    ExpectSameResults(truth, got,
                      "trial " + std::to_string(trial) + " [BASIC vs SW]");
  }
}

TEST(Exactness, AlaeDefaultConfigMatchesSmithWaterman) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    TrialSpec spec;
    spec.sigma_kind = trial % 2;
    spec.text_len = 60 + static_cast<int64_t>(rng.Below(240));
    spec.query_len = 20 + static_cast<int64_t>(rng.Below(80));
    spec.scheme = ScoringScheme::Fig9(trial % 4);
    spec.threshold = 4 + static_cast<int32_t>(rng.Below(14));
    spec.homology = 0.7;
    spec.seed = 3000 + static_cast<uint64_t>(trial);
    RunTrial(spec, AllOn(),
             "trial " + std::to_string(trial) + " scheme " +
                 spec.scheme.ToString() + " H=" + std::to_string(spec.threshold));
  }
}

// Every combination of filter toggles must stay exact: filters only remove
// provably meaningless work.
TEST(Exactness, AlaeAllFilterCombinations) {
  for (int mask = 0; mask < 32; ++mask) {
    AlaeConfig config;
    config.length_filter = mask & 1;
    config.score_filter = mask & 2;
    config.prefix_filter = mask & 4;
    config.domination_filter = mask & 8;
    config.reuse = mask & 16;
    for (int trial = 0; trial < 3; ++trial) {
      TrialSpec spec;
      spec.sigma_kind = trial % 2;
      spec.text_len = 80 + 40 * trial;
      spec.query_len = 30 + 10 * trial;
      spec.scheme = ScoringScheme::Fig9((mask + trial) % 4);
      spec.threshold = 5 + trial * 3;
      spec.homology = 0.7;
      spec.seed = 4000 + static_cast<uint64_t>(mask * 10 + trial);
      RunTrial(spec, config,
               "mask " + std::to_string(mask) + " trial " +
                   std::to_string(trial));
    }
  }
}

TEST(Exactness, AlaeBitsetGlobalFilter) {
  for (int trial = 0; trial < 8; ++trial) {
    AlaeConfig config;
    config.bitset_global_filter = true;
    config.domination_filter = trial % 2;
    TrialSpec spec;
    spec.sigma_kind = trial % 2;
    spec.text_len = 100 + 20 * trial;
    spec.query_len = 40;
    spec.scheme = ScoringScheme::Default();
    spec.threshold = 6 + trial;
    spec.homology = 0.7;
    spec.seed = 5000 + static_cast<uint64_t>(trial);
    RunTrial(spec, config, "bitset trial " + std::to_string(trial));
  }
}

// Low thresholds exercise the effective-q cap (H < q*sa): exactness must
// hold even when results are single-character matches.
TEST(Exactness, AlaeTinyThresholds) {
  for (int32_t threshold = 1; threshold <= 6; ++threshold) {
    TrialSpec spec;
    spec.sigma_kind = 1;  // protein keeps result sets small
    spec.text_len = 60;
    spec.query_len = 25;
    spec.scheme = ScoringScheme::Default();
    spec.threshold = threshold;
    spec.homology = 0.5;
    spec.seed = 6000 + static_cast<uint64_t>(threshold);
    RunTrial(spec, AllOn(), "tiny threshold " + std::to_string(threshold));
  }
}

// Repetitive texts and queries stress the reuse machinery and domination.
TEST(Exactness, AlaeRepetitiveInputs) {
  for (int trial = 0; trial < 10; ++trial) {
    const Alphabet& alphabet = Alphabet::Dna();
    SequenceGenerator gen(7000 + static_cast<uint64_t>(trial));
    RepeatSpec family;
    family.unit_length = 20;
    family.copies = 10;
    family.divergence = 0.05;
    Sequence text = gen.TextWithRepeats(200, alphabet, {family});
    Sequence query = gen.HomologousQuery(text, 60, 0.8, 0.1, 0.05);
    ScoringScheme scheme = ScoringScheme::Fig9(trial % 4);
    int32_t threshold = 6 + trial;
    ResultCollector truth = SmithWaterman::Run(text, query, scheme, threshold);
    AlaeIndex index(text);
    Alae alae(index, AllOn());
    ResultCollector got = alae.Run(query, scheme, threshold);
    ExpectSameResults(truth, got, "repetitive trial " + std::to_string(trial));
  }
}

TEST(Exactness, EdgeCases) {
  const Alphabet& dna = Alphabet::Dna();
  ScoringScheme scheme = ScoringScheme::Default();
  // Query longer than text.
  {
    SequenceGenerator gen(1);
    Sequence text = gen.Random(20, dna);
    Sequence query = gen.Random(50, dna);
    ResultCollector truth = SmithWaterman::Run(text, query, scheme, 4);
    AlaeIndex index(text);
    Alae alae(index);
    ExpectSameResults(truth, alae.Run(query, scheme, 4), "long query");
  }
  // All-identical text (maximum repetition).
  {
    Sequence text = Sequence::FromString(std::string(40, 'A'), dna);
    Sequence query = Sequence::FromString("AAAATTTTAAAA", dna);
    ResultCollector truth = SmithWaterman::Run(text, query, scheme, 4);
    AlaeIndex index(text);
    Alae alae(index);
    ExpectSameResults(truth, alae.Run(query, scheme, 4), "identical text");
  }
  // Exact containment (perfect long match).
  {
    SequenceGenerator gen(2);
    Sequence text = gen.Random(100, dna);
    Sequence query = text.Substr(30, 40);
    ResultCollector truth = SmithWaterman::Run(text, query, scheme, 20);
    AlaeIndex index(text);
    Alae alae(index);
    ExpectSameResults(truth, alae.Run(query, scheme, 20), "containment");
  }
  // One-character query.
  {
    SequenceGenerator gen(3);
    Sequence text = gen.Random(30, dna);
    Sequence query = Sequence::FromString("A", dna);
    ResultCollector truth = SmithWaterman::Run(text, query, scheme, 1);
    AlaeIndex index(text);
    Alae alae(index);
    ExpectSameResults(truth, alae.Run(query, scheme, 1), "single char");
  }
}

}  // namespace
}  // namespace alae
