// Differential tests of the shared affine-gap row kernel: every vector
// implementation must agree bit-for-bit with the scalar oracle on the full
// output arrays and on the returned chain state, over ragged row lengths,
// degenerate inputs, and scores near the sentinel/saturation edges. Plus
// dispatch plumbing and an engine-level exactness re-run per tier.

#include "src/align/simd_dp.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/baseline/bwt_sw.h"
#include "src/baseline/smith_waterman.h"
#include "src/core/alae.h"
#include "src/sim/generator.h"
#include "src/util/rng.h"

namespace alae {
namespace simd {
namespace {

// Restores the dispatched tier on scope exit so tests cannot leak a forced
// tier into each other.
class TierGuard {
 public:
  TierGuard() : saved_(ActiveDpTier()) {}
  ~TierGuard() { SetDpTier(saved_); }

 private:
  DpTier saved_;
};

std::vector<DpTier> SupportedVectorTiers() {
  std::vector<DpTier> tiers;
  if (DpTierSupported(DpTier::kSse2)) tiers.push_back(DpTier::kSse2);
  if (DpTierSupported(DpTier::kAvx2)) tiers.push_back(DpTier::kAvx2);
  if (DpTierSupported(DpTier::kAvx2i16)) tiers.push_back(DpTier::kAvx2i16);
  return tiers;
}

struct RowCase {
  std::vector<int32_t> prev_m, prev_ga, diag_m, delta;
  RowSpec spec;  // pointers filled by Bind()

  void Bind(std::vector<int32_t>* out_m, std::vector<int32_t>* out_ga,
            std::vector<int32_t>* out_gb) {
    int64_t len = spec.len;
    out_m->assign(static_cast<size_t>(len), 12345);
    out_ga->assign(static_cast<size_t>(len), 12345);
    spec.prev_m = prev_m.data();
    spec.prev_ga = prev_ga.data();
    spec.prev_diag_m = diag_m.data();
    spec.delta = delta.data();
    spec.out_m = out_m->data();
    spec.out_ga = out_ga->data();
    if (out_gb != nullptr) {
      out_gb->assign(static_cast<size_t>(len), 12345);
      spec.out_gb = out_gb->data();
    } else {
      spec.out_gb = nullptr;
    }
  }
};

// A live score drawn from one of three regimes: small engine-like values,
// large values near the kernel's documented saturation ceiling, and values
// hovering just above the squash threshold.
int32_t RandomScore(Rng& rng) {
  switch (rng.Below(4)) {
    case 0:
      return static_cast<int32_t>(rng.Range(-200, 200));
    case 1:
      return static_cast<int32_t>(
          rng.Range(INT32_MAX / 8, INT32_MAX / 4 - 1000));
    case 2:
      return static_cast<int32_t>(rng.Range(kNegInf / 2 - 500, kNegInf / 2 + 500));
    default:
      return static_cast<int32_t>(rng.Range(0, 60));
  }
}

RowCase RandomCase(Rng& rng, int64_t len) {
  RowCase c;
  c.spec.len = len;
  int32_t ss = static_cast<int32_t>(rng.Range(-30, -1));
  int32_t sg = static_cast<int32_t>(rng.Range(-40, 0));
  c.spec.gap_extend = ss;
  c.spec.gap_open_extend = sg + ss;
  c.spec.gb_init = rng.Bernoulli(0.5)
                       ? kNegInf
                       : static_cast<int32_t>(rng.Range(-100, 5000));
  c.spec.bound_base = rng.Bernoulli(0.5)
                          ? 0
                          : static_cast<int32_t>(rng.Range(0, 100));
  if (rng.Bernoulli(0.5)) {
    c.spec.bound0 = kNegInf;
    c.spec.bound_step = 0;
  } else {
    c.spec.bound0 = static_cast<int32_t>(rng.Range(-5000, 50));
    c.spec.bound_step = static_cast<int32_t>(rng.Range(0, 20));
  }
  double dead_p = rng.NextDouble();  // whole spectrum: dense rows to husks
  auto lane = [&](std::vector<int32_t>* v) {
    v->resize(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      (*v)[static_cast<size_t>(i)] =
          rng.Bernoulli(dead_p) ? kNegInf : RandomScore(rng);
    }
  };
  lane(&c.prev_m);
  lane(&c.prev_ga);
  lane(&c.diag_m);
  c.delta.resize(static_cast<size_t>(len));
  int32_t sa = static_cast<int32_t>(rng.Range(1, 20));
  int32_t sb = static_cast<int32_t>(rng.Range(-30, -1));
  for (int64_t i = 0; i < len; ++i) {
    c.delta[static_cast<size_t>(i)] = rng.Bernoulli(0.3) ? sa : sb;
  }
  return c;
}

void ExpectSameRow(RowCase& c, DpTier tier, uint64_t tag) {
  std::vector<int32_t> sm, sga, sgb, vm, vga, vgb;
  RowStats sstats, vstats;
  bool with_gb = (tag % 3) != 0;  // exercise the nullable Gb output too
  c.Bind(&sm, &sga, with_gb ? &sgb : nullptr);
  ComputeRowScalar(c.spec, &sstats);
  c.Bind(&vm, &vga, with_gb ? &vgb : nullptr);
  TierGuard guard;
  ASSERT_TRUE(SetDpTier(tier));
  ComputeRow(c.spec, &vstats);
  ASSERT_EQ(sm, vm) << "M lane, tier " << DpTierName(tier) << " case " << tag;
  ASSERT_EQ(sga, vga) << "Ga lane, tier " << DpTierName(tier) << " case "
                      << tag;
  if (with_gb) {
    ASSERT_EQ(sgb, vgb) << "Gb lane, tier " << DpTierName(tier) << " case "
                        << tag;
  }
  EXPECT_EQ(sstats.first_alive, vstats.first_alive) << "case " << tag;
  EXPECT_EQ(sstats.last_alive, vstats.last_alive) << "case " << tag;
  EXPECT_EQ(sstats.gb_last, vstats.gb_last) << "case " << tag;
  EXPECT_EQ(sstats.mu_last, vstats.mu_last) << "case " << tag;
}

TEST(SimdDp, VectorTiersMatchScalarOracle) {
  std::vector<DpTier> tiers = SupportedVectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  Rng rng(1234);
  uint64_t tag = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Ragged lengths hammer the remainder path: everything from 1 to a few
    // hundred, dwelling around the 4/8-lane block boundaries.
    int64_t len;
    switch (rng.Below(4)) {
      case 0:
        len = rng.Range(1, 9);
        break;
      case 1:
        len = rng.Range(1, 33);
        break;
      case 2:
        len = rng.Range(1, 300);
        break;
      default:
        len = 8 * rng.Range(1, 16);  // exact AVX2 blocks, no remainder
        break;
    }
    RowCase c = RandomCase(rng, len);
    for (DpTier tier : tiers) ExpectSameRow(c, tier, ++tag);
  }
}

TEST(SimdDp, AllDeadAndAllLiveRows) {
  std::vector<DpTier> tiers = SupportedVectorTiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this host";
  for (int64_t len : {1, 7, 8, 9, 64, 257}) {
    RowCase dead;
    dead.spec.len = len;
    dead.prev_m.assign(static_cast<size_t>(len), kNegInf);
    dead.prev_ga.assign(static_cast<size_t>(len), kNegInf);
    dead.diag_m.assign(static_cast<size_t>(len), kNegInf);
    dead.delta.assign(static_cast<size_t>(len), -3);
    uint64_t tag = 1000 + static_cast<uint64_t>(len);
    for (DpTier tier : tiers) ExpectSameRow(dead, tier, tag);

    RowCase live;
    live.spec.len = len;
    live.spec.gap_extend = -2;
    live.spec.gap_open_extend = -7;
    live.prev_m.assign(static_cast<size_t>(len), 40);
    live.prev_ga.assign(static_cast<size_t>(len), 20);
    live.diag_m.assign(static_cast<size_t>(len), 41);
    live.delta.assign(static_cast<size_t>(len), 1);
    for (DpTier tier : tiers) ExpectSameRow(live, tier, tag + 5000);
  }
}

TEST(SimdDp, ScalarOracleHandValues) {
  // Tiny hand-checked row: prev M = [10, -inf], prev Ga dead, ss=-2, sg=-5.
  // Cell 0: Ga = 10-7 = 3, diag dead, Gb = gb_init = -inf => M~ = 3.
  // Cell 1: Ga dead, diag = 10+1 = 11, Gb = max(-inf, 3-7) = -4 => M~ = 11.
  std::vector<int32_t> prev_m = {10, kNegInf};
  std::vector<int32_t> prev_ga = {kNegInf, kNegInf};
  std::vector<int32_t> diag_m = {kNegInf, 10};
  std::vector<int32_t> delta = {1, 1};
  std::vector<int32_t> out_m(2), out_ga(2), out_gb(2);
  RowSpec spec;
  spec.prev_m = prev_m.data();
  spec.prev_ga = prev_ga.data();
  spec.prev_diag_m = diag_m.data();
  spec.delta = delta.data();
  spec.out_m = out_m.data();
  spec.out_ga = out_ga.data();
  spec.out_gb = out_gb.data();
  spec.len = 2;
  spec.gap_extend = -2;
  spec.gap_open_extend = -7;
  RowStats stats;
  ComputeRowScalar(spec, &stats);
  EXPECT_EQ(out_m[0], 3);
  EXPECT_EQ(out_m[1], 11);
  EXPECT_EQ(out_ga[0], 3);
  EXPECT_EQ(out_ga[1], kNegInf);
  EXPECT_EQ(out_gb[1], -4);
  EXPECT_EQ(stats.first_alive, 0);
  EXPECT_EQ(stats.last_alive, 1);
  EXPECT_EQ(stats.mu_last, 11);
  EXPECT_EQ(stats.gb_last, -4);
}

TEST(SimdDp, DispatchForceAndRestore) {
  TierGuard guard;
  ASSERT_TRUE(DpTierSupported(DpTier::kScalar));
  EXPECT_TRUE(SetDpTier(DpTier::kScalar));
  EXPECT_EQ(ActiveDpTier(), DpTier::kScalar);
  for (DpTier tier : SupportedVectorTiers()) {
    EXPECT_TRUE(SetDpTier(tier));
    EXPECT_EQ(ActiveDpTier(), tier);
  }
  // Unsupported tiers are refused without changing the dispatch.
  if (!DpTierSupported(DpTier::kAvx2)) {
    DpTier before = ActiveDpTier();
    EXPECT_FALSE(SetDpTier(DpTier::kAvx2));
    EXPECT_EQ(ActiveDpTier(), before);
  }
  EXPECT_STREQ(DpTierName(DpTier::kScalar), "scalar");
  EXPECT_STREQ(DpTierName(DpTier::kSse2), "sse2");
  EXPECT_STREQ(DpTierName(DpTier::kAvx2), "avx2");
  EXPECT_STREQ(DpTierName(DpTier::kAvx2i16), "avx2_i16");
}

// int16-tier boundary cases: real scores straddling the int16
// representable range force the load/compute clip detectors, while scores
// just inside it must flow through the narrow path — both must match the
// scalar oracle exactly. (The generic sweep above covers the far regimes;
// this one dwells on the +-32767 rails where the sentinel encoding and
// saturating arithmetic meet.)
TEST(SimdDp, Int16TierSaturationRails) {
  if (!DpTierSupported(DpTier::kAvx2i16)) {
    GTEST_SKIP() << "no avx2 on this host";
  }
  Rng rng(777);
  uint64_t tag = 90000;
  for (int trial = 0; trial < 200; ++trial) {
    int64_t len = rng.Range(16, 80);
    RowCase c = RandomCase(rng, len);
    auto rail = [&](int32_t v) {
      switch (rng.Below(6)) {
        case 0:
          return static_cast<int32_t>(rng.Range(32700, 33000));
        case 1:
          return static_cast<int32_t>(rng.Range(-33000, -32700));
        case 2:
          return 32767;
        case 3:
          return -32768;
        case 4:
          return -32767;
        default:
          return v;  // keep the generic draw
      }
    };
    for (auto* lane : {&c.prev_m, &c.prev_ga, &c.diag_m}) {
      for (auto& v : *lane) {
        if (v != kNegInf && rng.Bernoulli(0.4)) v = rail(v);
      }
    }
    ExpectSameRow(c, DpTier::kAvx2i16, ++tag);
  }
}

// ComputeRowPair must be bit-exact against two sequential scalar rows for
// every tier — under the int16 tier that exercises the 16-lane paired
// kernel (both rows 1..8 cells), everywhere else the sequential fallback.
TEST(SimdDp, PairedRowsMatchSequentialScalar) {
  std::vector<DpTier> tiers = {DpTier::kScalar};
  for (DpTier t : SupportedVectorTiers()) tiers.push_back(t);
  Rng rng(555);
  TierGuard guard;
  uint64_t tag = 0;
  for (int trial = 0; trial < 300; ++trial) {
    int64_t len_a = rng.Range(1, 9);
    int64_t len_b = rng.Range(1, 9);
    RowCase ca = RandomCase(rng, len_a);
    RowCase cb = RandomCase(rng, len_b);
    std::vector<int32_t> sm_a, sga_a, sgb_a, sm_b, sga_b, sgb_b;
    std::vector<int32_t> vm_a, vga_a, vgb_a, vm_b, vga_b, vgb_b;
    bool gb_a = (trial % 3) != 0;
    bool gb_b = (trial % 5) != 0;
    RowStats ssa, ssb;
    ca.Bind(&sm_a, &sga_a, gb_a ? &sgb_a : nullptr);
    cb.Bind(&sm_b, &sga_b, gb_b ? &sgb_b : nullptr);
    ComputeRowScalar(ca.spec, &ssa);
    ComputeRowScalar(cb.spec, &ssb);
    for (DpTier tier : tiers) {
      ASSERT_TRUE(SetDpTier(tier));
      RowStats vsa, vsb;
      ca.Bind(&vm_a, &vga_a, gb_a ? &vgb_a : nullptr);
      cb.Bind(&vm_b, &vga_b, gb_b ? &vgb_b : nullptr);
      ComputeRowPair(ca.spec, cb.spec, &vsa, &vsb);
      ++tag;
      ASSERT_EQ(sm_a, vm_a) << "pair row a M, tier " << DpTierName(tier)
                            << " case " << tag;
      ASSERT_EQ(sga_a, vga_a) << "pair row a Ga, case " << tag;
      if (gb_a) ASSERT_EQ(sgb_a, vgb_a) << "pair row a Gb, case " << tag;
      ASSERT_EQ(sm_b, vm_b) << "pair row b M, tier " << DpTierName(tier)
                            << " case " << tag;
      ASSERT_EQ(sga_b, vga_b) << "pair row b Ga, case " << tag;
      if (gb_b) ASSERT_EQ(sgb_b, vgb_b) << "pair row b Gb, case " << tag;
      EXPECT_EQ(ssa.first_alive, vsa.first_alive) << "case " << tag;
      EXPECT_EQ(ssa.last_alive, vsa.last_alive) << "case " << tag;
      EXPECT_EQ(ssa.gb_last, vsa.gb_last) << "case " << tag;
      EXPECT_EQ(ssa.mu_last, vsa.mu_last) << "case " << tag;
      EXPECT_EQ(ssb.first_alive, vsb.first_alive) << "case " << tag;
      EXPECT_EQ(ssb.last_alive, vsb.last_alive) << "case " << tag;
      EXPECT_EQ(ssb.gb_last, vsb.gb_last) << "case " << tag;
      EXPECT_EQ(ssb.mu_last, vsb.mu_last) << "case " << tag;
    }
  }
}

// The exactness re-run: the engines that now route their inner rows through
// the dispatched kernel must report identical hit sets under every tier,
// and identical to the Smith-Waterman truth.
TEST(SimdDp, EnginesExactUnderEveryTier) {
  SequenceGenerator gen(4242);
  Sequence text = gen.Random(600, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 80, 0.7, 0.2, 0.05);
  ScoringScheme scheme = ScoringScheme::Default();
  const int32_t threshold = 12;
  ResultCollector truth = SmithWaterman::Run(text, query, scheme, threshold);

  std::vector<DpTier> tiers = {DpTier::kScalar};
  for (DpTier t : SupportedVectorTiers()) tiers.push_back(t);
  TierGuard guard;
  for (DpTier tier : tiers) {
    ASSERT_TRUE(SetDpTier(tier));
    AlaeIndex index(text);
    Alae alae(index);
    EXPECT_EQ(truth.Sorted(), alae.Run(query, scheme, threshold).Sorted())
        << "ALAE under " << DpTierName(tier);
    FmIndex rev(text.Reversed());
    BwtSw bwtsw(rev, static_cast<int64_t>(text.size()));
    EXPECT_EQ(truth.Sorted(), bwtsw.Run(query, scheme, threshold).Sorted())
        << "BWT-SW under " << DpTierName(tier);
  }
}

}  // namespace
}  // namespace simd
}  // namespace alae
