// Differential tests for the coarse-grained rank dispatch (fm_rank.h): the
// portable SWAR tier and the native-popcnt clone are the same code compiled
// twice, so every entry point must agree bit-for-bit on every layout. The
// native tier is exercised only where the host supports it — CI's portable
// build on a popcnt-capable runner takes the real dispatch path; the
// ALAE_PORTABLE_BINARY=OFF job compiles the portable tier natively and the
// switch degenerates to a no-op (ActiveFmRankTier stays kNativePopcnt).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/index/fm_index.h"
#include "src/index/fm_rank.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

// Restores the startup-selected tier no matter how the test exits; the
// dispatch pointer is process-global state shared with every other test in
// this binary.
struct TierGuard {
  TierGuard() : saved(ActiveFmRankTier()) {}
  ~TierGuard() { SetFmRankTier(saved); }
  FmRankTier saved;
};

TEST(FmRankDispatch, ReportsACoherentTier) {
  TierGuard guard;
  ASSERT_TRUE(SetFmRankTier(FmRankTier::kPortable));
  if (!NativeFmRankAvailable()) {
    EXPECT_EQ(ActiveFmRankTier(), FmRankTier::kPortable);
    EXPECT_FALSE(SetFmRankTier(FmRankTier::kNativePopcnt));
    return;
  }
  ASSERT_TRUE(SetFmRankTier(FmRankTier::kNativePopcnt));
  EXPECT_EQ(ActiveFmRankTier(), FmRankTier::kNativePopcnt);
}

TEST(FmRankDispatch, TiersAgreeOnEveryEntryPointAndLayout) {
  if (!NativeFmRankAvailable()) {
    GTEST_SKIP() << "host has no popcnt (or the clone TU was not built)";
  }
  TierGuard guard;
  SequenceGenerator gen(7100);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    for (bool two_level : {true, false}) {
      FmIndexOptions options;
      options.two_level_occ = two_level;
      Sequence text = gen.Random(2000, *alphabet);
      FmIndex fm(text, options);
      const int sigma = text.sigma();
      const int64_t rows = fm.FullRange().hi;

      // Random ranges plus real backward-search descents (which reach the
      // singleton fast path), evaluated under both tiers.
      std::vector<SaRange> ranges = {fm.FullRange(), {0, 0}, {0, 1}};
      for (int trial = 0; trial < 200; ++trial) {
        int64_t lo = static_cast<int64_t>(
            gen.rng().Below(static_cast<uint64_t>(rows)));
        int64_t hi = lo + static_cast<int64_t>(gen.rng().Below(
                              static_cast<uint64_t>(rows - lo) + 1));
        ranges.push_back({lo, hi});
      }
      SaRange walk = fm.FullRange();
      while (!walk.Empty()) {
        ranges.push_back(walk);
        walk = fm.Extend(walk, static_cast<Symbol>(gen.rng().Below(
                                   static_cast<uint64_t>(sigma))));
      }

      std::vector<SaRange> all_a(static_cast<size_t>(sigma));
      std::vector<SaRange> all_b(static_cast<size_t>(sigma));
      for (const SaRange& r : ranges) {
        ASSERT_TRUE(SetFmRankTier(FmRankTier::kPortable));
        SaRange ext_a = fm.Extend(r, 0);
        fm.ExtendAll(r, all_a.data());
        std::vector<int64_t> loc_a = fm.Locate(r);
        Symbol c_a = 0;
        SaRange child_a;
        bool single_a =
            !r.Empty() && fm.ExtendSingleton(r.lo, &c_a, &child_a);

        ASSERT_TRUE(SetFmRankTier(FmRankTier::kNativePopcnt));
        SaRange ext_b = fm.Extend(r, 0);
        fm.ExtendAll(r, all_b.data());
        std::vector<int64_t> loc_b = fm.Locate(r);
        Symbol c_b = 0;
        SaRange child_b;
        bool single_b =
            !r.Empty() && fm.ExtendSingleton(r.lo, &c_b, &child_b);

        ASSERT_EQ(ext_a, ext_b) << "sigma=" << sigma
                                << " two_level=" << two_level;
        ASSERT_EQ(all_a, all_b);
        ASSERT_EQ(loc_a, loc_b);
        ASSERT_EQ(single_a, single_b);
        if (single_a) {
          ASSERT_EQ(c_a, c_b);
          ASSERT_EQ(child_a, child_b);
        }
      }
    }
  }
}

TEST(FmRankDispatch, ExtendBatchMatchesOneByOneExtends) {
  SequenceGenerator gen(7200);
  for (const Alphabet* alphabet : {&Alphabet::Dna(), &Alphabet::Protein()}) {
    Sequence text = gen.Random(1500, *alphabet);
    FmIndex fm(text);
    const int sigma = text.sigma();
    const int64_t rows = fm.FullRange().hi;
    constexpr int kBatch = 13;
    std::vector<SaRange> in(kBatch);
    std::vector<Symbol> cs(kBatch);
    std::vector<SaRange> out(kBatch);
    for (int trial = 0; trial < 100; ++trial) {
      for (int i = 0; i < kBatch; ++i) {
        int64_t lo = static_cast<int64_t>(
            gen.rng().Below(static_cast<uint64_t>(rows)));
        int64_t hi = lo + static_cast<int64_t>(gen.rng().Below(
                              static_cast<uint64_t>(rows - lo) + 1));
        in[static_cast<size_t>(i)] = {lo, hi};
        cs[static_cast<size_t>(i)] = static_cast<Symbol>(
            gen.rng().Below(static_cast<uint64_t>(sigma)));
      }
      fm.ExtendBatch(in.data(), cs.data(), out.data(), kBatch);
      for (int i = 0; i < kBatch; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)],
                  fm.Extend(in[static_cast<size_t>(i)],
                            cs[static_cast<size_t>(i)]))
            << "sigma=" << sigma << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace alae
