#include "src/sim/generator.h"

#include <gtest/gtest.h>

#include "src/align/dp.h"

namespace alae {
namespace {

TEST(Generator, DeterministicForSeed) {
  SequenceGenerator a(5), b(5), c(6);
  Sequence sa = a.Random(100, Alphabet::Dna());
  Sequence sb = b.Random(100, Alphabet::Dna());
  Sequence sc = c.Random(100, Alphabet::Dna());
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa.ToString(), sc.ToString());
}

TEST(Generator, UniformDnaIsRoughlyBalanced) {
  SequenceGenerator gen(6);
  Sequence s = gen.Random(40000, Alphabet::Dna());
  int64_t counts[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < s.size(); ++i) ++counts[s[i]];
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(static_cast<double>(counts[c]) / 40000.0, 0.25, 0.02);
  }
}

TEST(Generator, RobinsonFrequenciesSkewProtein) {
  SequenceGenerator gen(7);
  Sequence s = gen.Random(100000, Alphabet::Protein(), true);
  int64_t counts[20] = {0};
  for (size_t i = 0; i < s.size(); ++i) ++counts[s[i]];
  // Leucine ('L', code 10) is the most common residue (~9%), tryptophan
  // ('W', code 17) the rarest (~1.3%).
  int l = Alphabet::Protein().CodeOf('L');
  int w = Alphabet::Protein().CodeOf('W');
  EXPECT_GT(counts[l], counts[w] * 4);
}

TEST(Generator, TextWithRepeatsContainsNearCopies) {
  SequenceGenerator gen(8);
  RepeatSpec family;
  family.unit_length = 100;
  family.copies = 5;
  family.divergence = 0.0;
  Sequence text = gen.TextWithRepeats(5000, Alphabet::Dna(), {family});
  // Exact copies mean some 100-char substring occurs multiple times; find
  // a high local alignment between disjoint halves as evidence.
  Sequence left = text.Substr(0, 2500);
  Sequence right = text.Substr(2500, 2500);
  // With 5 copies in 5000 chars, at least two land in different halves
  // with high probability; score ~100 >> random (~20).
  EXPECT_GT(BestLocalScore(left, right, ScoringScheme::Default()), 50);
}

TEST(Generator, HomologousQueryHasPlantedSimilarity) {
  SequenceGenerator gen(9);
  Sequence text = gen.Random(3000, Alphabet::Dna());
  Sequence hom = gen.HomologousQuery(text, 200, 0.9, 0.05, 0.01);
  Sequence rnd = gen.Random(200, Alphabet::Dna());
  int32_t hom_score = BestLocalScore(text, hom, ScoringScheme::Default());
  int32_t rnd_score = BestLocalScore(text, rnd, ScoringScheme::Default());
  EXPECT_GT(hom_score, rnd_score * 2);
}

TEST(Generator, HighDivergenceKeepsScoresBounded) {
  // At 30% divergence the expected per-char score under <1,-3,-5,-2> is
  // negative, so local scores stay far below the segment length — this is
  // the property that keeps exact engines' bands narrow (DESIGN.md §4).
  SequenceGenerator gen(10);
  Sequence text = gen.Random(3000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 300, 1.0, 0.30, 0.01);
  int32_t score = BestLocalScore(text, query, ScoringScheme::Default());
  EXPECT_LT(score, 100);
  EXPECT_GT(score, 5);  // but still clearly above pure noise
}

TEST(Generator, QueryLengthIsExact) {
  SequenceGenerator gen(11);
  Sequence text = gen.Random(1000, Alphabet::Dna());
  for (int64_t len : {1, 50, 999, 2000}) {
    EXPECT_EQ(gen.HomologousQuery(text, len, 0.5, 0.2, 0.05).size(),
              static_cast<size_t>(len));
  }
}

}  // namespace
}  // namespace alae
