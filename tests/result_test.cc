#include "src/align/result.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(ResultCollector, KeepsMaximumScorePerEndPair) {
  ResultCollector rc;
  rc.Add(10, 5, 7, 3);
  rc.Add(10, 5, 9, 2);   // better score replaces
  rc.Add(10, 5, 4, 8);   // worse score ignored
  std::vector<AlignmentHit> hits = rc.Sorted();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].score, 9);
  EXPECT_EQ(hits[0].text_start, 2);
  EXPECT_EQ(rc.BestScore(), 9);
}

TEST(ResultCollector, DistinctEndPairsAreSeparate) {
  ResultCollector rc;
  rc.Add(10, 5, 7);
  rc.Add(10, 6, 7);
  rc.Add(11, 5, 7);
  EXPECT_EQ(rc.size(), 3u);
}

TEST(ResultCollector, SortedIsDeterministic) {
  ResultCollector rc;
  rc.Add(20, 1, 5);
  rc.Add(10, 9, 5);
  rc.Add(10, 2, 5);
  std::vector<AlignmentHit> hits = rc.Sorted();
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].text_end, 10);
  EXPECT_EQ(hits[0].query_end, 2);
  EXPECT_EQ(hits[1].text_end, 10);
  EXPECT_EQ(hits[1].query_end, 9);
  EXPECT_EQ(hits[2].text_end, 20);
}

TEST(ResultCollector, ClearResets) {
  ResultCollector rc;
  rc.Add(1, 1, 10);
  rc.Clear();
  EXPECT_EQ(rc.size(), 0u);
  EXPECT_EQ(rc.BestScore(), 0);
}

TEST(ResultCollector, LargeCoordinatesDoNotCollide) {
  ResultCollector rc;
  // Pairs engineered to collide under weak key mixing.
  rc.Add(1, 0, 5);
  rc.Add(0, 1, 6);
  rc.Add((1LL << 31), 7, 8);
  rc.Add(7, (1LL << 31) - 1, 9);
  EXPECT_EQ(rc.size(), 4u);
}

}  // namespace
}  // namespace alae
