#include "src/sim/workload.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(Workload, BuildsRequestedShape) {
  WorkloadSpec spec;
  spec.text_length = 5000;
  spec.query_length = 120;
  spec.num_queries = 3;
  Workload w = BuildWorkload(spec);
  EXPECT_EQ(w.text.size(), 5000u);
  ASSERT_EQ(w.queries.size(), 3u);
  for (const Sequence& q : w.queries) EXPECT_EQ(q.size(), 120u);
}

TEST(Workload, DeterministicAcrossBuilds) {
  WorkloadSpec spec;
  spec.text_length = 2000;
  spec.query_length = 80;
  spec.num_queries = 2;
  Workload a = BuildWorkload(spec);
  Workload b = BuildWorkload(spec);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.queries[0], b.queries[0]);
  EXPECT_EQ(a.queries[1], b.queries[1]);
}

TEST(Workload, SeedChangesContent) {
  WorkloadSpec spec;
  spec.text_length = 2000;
  WorkloadSpec spec2 = spec;
  spec2.seed = 43;
  EXPECT_NE(BuildWorkload(spec).text.ToString(),
            BuildWorkload(spec2).text.ToString());
}

TEST(Workload, ProteinAlphabetRespected) {
  WorkloadSpec spec;
  spec.alphabet = AlphabetKind::kProtein;
  spec.text_length = 1000;
  spec.query_length = 50;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);
  EXPECT_EQ(w.text.alphabet().kind(), AlphabetKind::kProtein);
  EXPECT_EQ(w.queries[0].alphabet().kind(), AlphabetKind::kProtein);
}

}  // namespace
}  // namespace alae
