#include "src/core/batch.h"

#include <gtest/gtest.h>

#include "src/baseline/smith_waterman.h"
#include "src/sim/workload.h"

namespace alae {
namespace {

TEST(BatchRunner, ParallelEqualsSequential) {
  WorkloadSpec spec;
  spec.text_length = 20'000;
  spec.query_length = 300;
  spec.num_queries = 12;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  ScoringScheme scheme = ScoringScheme::Default();
  std::vector<ResultCollector> seq = runner.Run(w.queries, scheme, 20, 1);
  std::vector<ResultCollector> par = runner.Run(w.queries, scheme, 20, 8);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].Sorted(), par[i].Sorted()) << "query " << i;
  }
}

TEST(BatchRunner, MatchesSmithWatermanPerQuery) {
  WorkloadSpec spec;
  spec.text_length = 5'000;
  spec.query_length = 150;
  spec.num_queries = 6;
  spec.divergence = 0.15;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  ScoringScheme scheme = ScoringScheme::Default();
  std::vector<ResultCollector> got = runner.Run(w.queries, scheme, 18, 4);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    EXPECT_EQ(SmithWaterman::Run(w.text, w.queries[i], scheme, 18).Sorted(),
              got[i].Sorted())
        << "query " << i;
  }
}

TEST(BatchRunner, StatsAggregateAcrossQueries) {
  WorkloadSpec spec;
  spec.text_length = 10'000;
  spec.query_length = 200;
  spec.num_queries = 4;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  BatchStats stats;
  std::vector<ResultCollector> results =
      runner.Run(w.queries, ScoringScheme::Default(), 20, 2, &stats);
  uint64_t expected_hits = 0;
  for (const ResultCollector& rc : results) expected_hits += rc.size();
  EXPECT_EQ(stats.total_hits, expected_hits);
  EXPECT_GT(stats.counters.Calculated(), 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(BatchRunner, HandlesEmptyQueryList) {
  WorkloadSpec spec;
  spec.text_length = 1'000;
  spec.num_queries = 1;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  std::vector<Sequence> none;
  EXPECT_TRUE(runner.Run(none, ScoringScheme::Default(), 10, 4).empty());
}

// One invalid query (here: empty) must not poison the batch: the valid
// queries still get their full answers and the invalid one reports no hits.
TEST(BatchRunner, InvalidQueryDoesNotAbortTheBatch) {
  WorkloadSpec spec;
  spec.text_length = 5'000;
  spec.query_length = 150;
  spec.num_queries = 3;
  spec.divergence = 0.15;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  ScoringScheme scheme = ScoringScheme::Default();

  std::vector<Sequence> queries = w.queries;
  queries.insert(queries.begin() + 1, Sequence());  // empty query
  std::vector<ResultCollector> got = runner.Run(queries, scheme, 18, 2);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[1].size(), 0u);
  EXPECT_EQ(SmithWaterman::Run(w.text, w.queries[0], scheme, 18).Sorted(),
            got[0].Sorted());
  EXPECT_EQ(SmithWaterman::Run(w.text, w.queries[1], scheme, 18).Sorted(),
            got[2].Sorted());
  EXPECT_EQ(SmithWaterman::Run(w.text, w.queries[2], scheme, 18).Sorted(),
            got[3].Sorted());
}

TEST(BatchRunner, ZeroThreadsUsesHardwareConcurrency) {
  WorkloadSpec spec;
  spec.text_length = 5'000;
  spec.query_length = 100;
  spec.num_queries = 3;
  Workload w = BuildWorkload(spec);
  AlaeIndex index(w.text);
  BatchRunner runner(index);
  std::vector<ResultCollector> results =
      runner.Run(w.queries, ScoringScheme::Default(), 15, 0);
  EXPECT_EQ(results.size(), 3u);
}

}  // namespace
}  // namespace alae
