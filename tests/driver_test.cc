#include "src/api/driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/api/api.h"
#include "src/sim/workload.h"

namespace alae {
namespace api {
namespace {

// Small enough that even the O(n^2)-trie "basic" backend runs it.
Workload SmallWorkload(int32_t num_queries) {
  WorkloadSpec spec;
  spec.text_length = 800;
  spec.query_length = 80;
  spec.num_queries = num_queries;
  spec.divergence = 0.15;
  return BuildWorkload(spec);
}

SearchRequest BaseRequest(int32_t threshold) {
  SearchRequest base;
  base.threshold = threshold;
  return base;
}

// The driver must work over ANY backend, and parallel runs must equal
// sequential runs per query.
TEST(MultiQueryDriver, ParallelEqualsSequentialAcrossBackends) {
  Workload w = SmallWorkload(6);
  AlignerRegistry registry(w.text);
  for (const std::string& name : AlignerRegistry::BuiltinNames()) {
    std::unique_ptr<Aligner> aligner = *registry.Create(name);
    MultiQueryDriver driver(*aligner);
    StatusOr<std::vector<SearchResponse>> seq =
        driver.Run(w.queries, BaseRequest(18), /*threads=*/1);
    StatusOr<std::vector<SearchResponse>> par =
        driver.Run(w.queries, BaseRequest(18), /*threads=*/8);
    ASSERT_TRUE(seq.ok()) << name << ": " << seq.status().ToString();
    ASSERT_TRUE(par.ok()) << name << ": " << par.status().ToString();
    ASSERT_EQ(seq->size(), par->size()) << name;
    for (size_t i = 0; i < seq->size(); ++i) {
      EXPECT_EQ((*seq)[i].hits, (*par)[i].hits) << name << " query " << i;
    }
  }
}

TEST(MultiQueryDriver, ExactBackendsAgreeThroughTheDriver) {
  Workload w = SmallWorkload(4);
  AlignerRegistry registry(w.text);
  std::vector<std::vector<AlignmentHit>> reference;
  for (const std::string& name : AlignerRegistry::BuiltinNames()) {
    std::unique_ptr<Aligner> aligner = *registry.Create(name);
    if (!aligner->exact()) continue;
    MultiQueryDriver driver(*aligner);
    StatusOr<std::vector<SearchResponse>> got =
        driver.Run(w.queries, BaseRequest(20), /*threads=*/4);
    ASSERT_TRUE(got.ok()) << name << ": " << got.status().ToString();
    if (reference.empty()) {
      for (const SearchResponse& r : *got) reference.push_back(r.hits);
      continue;
    }
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].hits, reference[i]) << name << " query " << i;
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(MultiQueryDriver, StatsAggregateAcrossQueries) {
  Workload w = SmallWorkload(4);
  AlignerRegistry registry(w.text);
  std::unique_ptr<Aligner> alae = *registry.Create("alae");
  MultiQueryDriver driver(*alae);
  MultiSearchStats stats;
  StatusOr<std::vector<SearchResponse>> got =
      driver.Run(w.queries, BaseRequest(20), /*threads=*/2, &stats);
  ASSERT_TRUE(got.ok());
  uint64_t expected_hits = 0;
  uint64_t expected_cells = 0;
  for (const SearchResponse& r : *got) {
    expected_hits += r.hits.size();
    expected_cells += r.stats.counters.Calculated();
  }
  EXPECT_EQ(stats.total_hits, expected_hits);
  EXPECT_EQ(stats.stats.counters.Calculated(), expected_cells);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(MultiQueryDriver, InvalidRequestFailsFastWithIndex) {
  Workload w = SmallWorkload(3);
  AlignerRegistry registry(w.text);
  std::unique_ptr<Aligner> alae = *registry.Create("alae");
  MultiQueryDriver driver(*alae);

  std::vector<SearchRequest> requests;
  for (const Sequence& q : w.queries) {
    SearchRequest r = BaseRequest(15);
    r.query = q;
    requests.push_back(std::move(r));
  }
  requests[1].threshold = -1;
  StatusOr<std::vector<SearchResponse>> got = driver.Run(requests);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("request 1"), std::string::npos)
      << got.status().ToString();
}

TEST(MultiQueryDriver, EmptyBatch) {
  Workload w = SmallWorkload(1);
  AlignerRegistry registry(w.text);
  std::unique_ptr<Aligner> sw = *registry.Create("sw");
  MultiQueryDriver driver(*sw);
  StatusOr<std::vector<SearchResponse>> got =
      driver.Run(std::vector<SearchRequest>{}, /*threads=*/4);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

// A backend whose Search fails for one marked query length but passes
// validation: simulates a mid-run engine failure, the case the driver must
// report per query instead of collapsing (or worse, silently dropping).
class FlakyAligner : public Aligner {
 public:
  FlakyAligner(std::shared_ptr<const AlaeIndex> index, size_t poison_len)
      : index_(std::move(index)), poison_len_(poison_len) {}

  std::string_view name() const override { return "flaky"; }
  bool exact() const override { return false; }
  const Sequence& text() const override { return index_->text(); }

 protected:
  Status SearchImpl(const SearchRequest& request, const HitSink& sink,
                    EngineStats* stats) const override {
    (void)stats;
    if (request.query.size() == poison_len_) {
      return Status::Internal("engine blew up on the poisoned query");
    }
    sink(AlignmentHit{0, 0, request.threshold, -1});
    return Status::Ok();
  }

 private:
  std::shared_ptr<const AlaeIndex> index_;
  size_t poison_len_;
};

// Regression: a query that fails *during* the run (after validation) must
// surface through RunEach as that query's own Status, with every other
// query's response intact — never dropped, never masking its neighbours.
TEST(MultiQueryDriver, RunEachPropagatesPerQueryEngineFailures) {
  Workload w = SmallWorkload(1);
  AlignerRegistry registry(w.text);
  constexpr size_t kPoisonLen = 33;
  registry.Register("flaky", [](std::shared_ptr<const AlaeIndex> index) {
    return std::unique_ptr<Aligner>(
        new FlakyAligner(std::move(index), kPoisonLen));
  });
  std::unique_ptr<Aligner> flaky = *registry.Create("flaky");
  MultiQueryDriver driver(*flaky);

  std::vector<SearchRequest> requests(5, BaseRequest(10));
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].query = w.queries[0].Substr(0, i == 2 ? kPoisonLen : 20);
  }

  for (int threads : {1, 4}) {
    MultiSearchStats stats;
    std::vector<QueryOutcome> outcomes =
        driver.RunEach(requests, threads, &stats);
    ASSERT_EQ(outcomes.size(), requests.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (i == 2) {
        EXPECT_FALSE(outcomes[i].ok());
        EXPECT_EQ(outcomes[i].status.code(), StatusCode::kInternal);
      } else {
        ASSERT_TRUE(outcomes[i].ok()) << "query " << i;
        EXPECT_EQ(outcomes[i].response.hits.size(), 1u) << "query " << i;
      }
    }
    EXPECT_EQ(stats.failed_queries, 1u);
    EXPECT_EQ(stats.total_hits, 4u);

    // The all-or-nothing Run form reports the failing query's index.
    StatusOr<std::vector<SearchResponse>> got = driver.Run(requests, threads);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInternal);
    EXPECT_NE(got.status().message().find("request 2"), std::string::npos)
        << got.status().ToString();
  }
}

// Validation failures are per-query in RunEach too: the invalid query gets
// its own kInvalidArgument while its neighbours still run and answer.
TEST(MultiQueryDriver, RunEachReportsValidationPerQuery) {
  Workload w = SmallWorkload(3);
  AlignerRegistry registry(w.text);
  std::unique_ptr<Aligner> sw = *registry.Create("sw");
  MultiQueryDriver driver(*sw);
  std::vector<SearchRequest> requests;
  for (const Sequence& q : w.queries) {
    SearchRequest r = BaseRequest(15);
    r.query = q;
    requests.push_back(std::move(r));
  }
  requests[1].threshold = -1;
  std::vector<QueryOutcome> outcomes = driver.RunEach(requests);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(outcomes[2].ok());
}

// The hardware-concurrency guard: threads <= 0 resolves to >= 1 workers
// even where std::thread::hardware_concurrency() returns 0.
TEST(MultiQueryDriver, ResolveThreadsNeverZero) {
  EXPECT_GE(MultiQueryDriver::ResolveThreads(0, 100), 1);
  EXPECT_GE(MultiQueryDriver::ResolveThreads(-3, 100), 1);
  EXPECT_EQ(MultiQueryDriver::ResolveThreads(8, 2), 2);
  EXPECT_EQ(MultiQueryDriver::ResolveThreads(4, 100), 4);
  // Even an empty batch resolves to one worker rather than zero.
  EXPECT_EQ(MultiQueryDriver::ResolveThreads(0, 0), 1);
}

}  // namespace
}  // namespace api
}  // namespace alae
