#include "src/baseline/blast/blast.h"

#include <gtest/gtest.h>

#include "src/baseline/blast/extend.h"
#include "src/baseline/blast/seed.h"
#include "src/baseline/smith_waterman.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(WordSeeder, FindsAllWordHits) {
  Sequence text = Sequence::FromString("ACGTACGTAA", Alphabet::Dna());
  Sequence query = Sequence::FromString("TACG", Alphabet::Dna());
  WordSeeder seeder(query, 4);
  std::vector<SeedHit> hits = seeder.Scan(text);
  // "TACG" occurs in text at position 3 only; the query word at 0.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].text_pos, 3);
  EXPECT_EQ(hits[0].query_pos, 0);
}

TEST(WordSeeder, TwoHitModeRequiresPairedHitsOnDiagonal) {
  SequenceGenerator gen(105);
  Sequence text = gen.Random(500, Alphabet::Dna());
  Sequence query = text.Substr(100, 60);  // long exact region
  WordSeeder one_hit(query, 8, false);
  WordSeeder two_hit(query, 8, true);
  size_t ones = one_hit.Scan(text).size();
  size_t twos = two_hit.Scan(text).size();
  EXPECT_GT(ones, 0u);
  EXPECT_LT(twos, ones);  // two-hit culls
  EXPECT_GT(twos, 0u);    // but the long match still seeds
}

TEST(UngappedExtend, ExtendsAcrossTheFullExactMatch) {
  SequenceGenerator gen(106);
  Sequence text = gen.Random(300, Alphabet::Dna());
  Sequence query = text.Substr(120, 40);
  SeedHit seed{140, 20};  // word hit inside the copied region
  UngappedSegment seg = UngappedExtend(text, query, seed, 8,
                                       ScoringScheme::Default(), 16);
  EXPECT_EQ(seg.score, 40);
  EXPECT_EQ(seg.text_begin, 120);
  EXPECT_EQ(seg.text_end, 160);
  EXPECT_EQ(seg.query_begin, 0);
  EXPECT_EQ(seg.query_end, 40);
}

TEST(GappedExtend, RecoversAlignmentAcrossAnIndel) {
  // Query = text segment with a 2-char deletion in the middle.
  SequenceGenerator gen(107);
  Sequence text = gen.Random(400, Alphabet::Dna());
  std::vector<Symbol> q;
  for (int64_t i = 100; i < 130; ++i) q.push_back(text[static_cast<size_t>(i)]);
  for (int64_t i = 132; i < 162; ++i) q.push_back(text[static_cast<size_t>(i)]);
  Sequence query(std::move(q), Alphabet::Dna());
  ResultCollector rc;
  int32_t best = GappedExtend(text, query, 110, 10, ScoringScheme::Default(),
                              30, 20, &rc);
  // 60 matches minus one gap of 2: 60 + (-5 - 4) = 51.
  EXPECT_EQ(best, 51);
  EXPECT_GT(rc.size(), 0u);
}

TEST(Blast, FindsStrongPlantedAlignment) {
  SequenceGenerator gen(108);
  Sequence text = gen.Random(5000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 300, 0.8, 0.05, 0.01);
  int32_t h = 30;
  ResultCollector exact = SmithWaterman::Run(text, query,
                                             ScoringScheme::Default(), h);
  BlastRunStats stats;
  ResultCollector blast = Blast::Run(text, query, ScoringScheme::Default(), h,
                                     {}, &stats);
  ASSERT_GT(exact.size(), 0u);
  EXPECT_GT(blast.size(), 0u);
  EXPECT_GT(stats.seeds, 0u);
  EXPECT_GT(stats.gapped_extensions, 0u);
}

// The defining property of the heuristic: it is a subset of the exact
// results, never a superset, and scores never exceed the true A(i,j).
TEST(Blast, IsSoundButIncomplete) {
  SequenceGenerator gen(109);
  for (int trial = 0; trial < 6; ++trial) {
    Sequence text = gen.Random(2000, Alphabet::Dna());
    Sequence query = gen.HomologousQuery(text, 150, 0.6, 0.2, 0.03);
    int32_t h = 18;
    ResultCollector exact =
        SmithWaterman::Run(text, query, ScoringScheme::Default(), h);
    BlastOptions options;
    options.word_size = 9;
    ResultCollector blast =
        Blast::Run(text, query, ScoringScheme::Default(), h, options);
    // Index exact hits for lookup.
    std::map<std::pair<int64_t, int64_t>, int32_t> truth;
    for (const AlignmentHit& hit : exact.Sorted()) {
      truth[{hit.text_end, hit.query_end}] = hit.score;
    }
    for (const AlignmentHit& hit : blast.Sorted()) {
      auto it = truth.find({hit.text_end, hit.query_end});
      ASSERT_NE(it, truth.end())
          << "BLAST reported a non-result (" << hit.text_end << ","
          << hit.query_end << ")";
      EXPECT_LE(hit.score, it->second);
    }
    EXPECT_LE(blast.size(), exact.size());
  }
}

TEST(Blast, WordSizeDefaultsByAlphabet) {
  SequenceGenerator gen(110);
  Sequence prot_text = gen.Random(2000, Alphabet::Protein());
  Sequence prot_query = gen.HomologousQuery(prot_text, 100, 0.8, 0.1, 0.01);
  // Protein default word=3 seeds fine on a 100-char homolog.
  BlastRunStats stats;
  Blast::Run(prot_text, prot_query, ScoringScheme::Default(), 15, {}, &stats);
  EXPECT_GT(stats.seeds, 0u);
}

TEST(Blast, QueryShorterThanWordStillSafe) {
  Sequence text = Sequence::FromString("ACGTACGTACGT", Alphabet::Dna());
  Sequence query = Sequence::FromString("ACG", Alphabet::Dna());
  // word_size falls back to |query|.
  ResultCollector rc = Blast::Run(text, query, ScoringScheme::Default(), 3);
  EXPECT_GT(rc.size(), 0u);
}

}  // namespace
}  // namespace alae
