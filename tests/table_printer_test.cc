#include "src/util/table_printer.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinter, PadsMissingAndDropsExtraCells) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x"});            // missing cell rendered empty
  t.AddRow({"y", "z", "w"});  // extra cell dropped
  std::string out = t.ToString();
  EXPECT_NE(out.find("| x |   |"), std::string::npos);
  EXPECT_NE(out.find("| y | z |"), std::string::npos);
  EXPECT_EQ(out.find("w"), std::string::npos);
}

TEST(TablePrinter, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<uint64_t>(12345)), "12345");
  EXPECT_EQ(TablePrinter::Fmt(0.5, 0), "0");  // rounds to even/near
}

}  // namespace
}  // namespace alae
