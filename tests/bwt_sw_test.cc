#include "src/baseline/bwt_sw.h"

#include <gtest/gtest.h>

#include "src/baseline/smith_waterman.h"
#include "src/sim/generator.h"

namespace alae {
namespace {

TEST(BwtSw, CountsEveryCellAtCostThree) {
  SequenceGenerator gen(95);
  Sequence text = gen.Random(300, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 60, 0.7, 0.15, 0.05);
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  DpCounters counters;
  engine.Run(query, ScoringScheme::Default(), 12, &counters);
  EXPECT_GT(counters.cells_cost3, 0u);
  EXPECT_EQ(counters.cells_cost1, 0u);
  EXPECT_EQ(counters.cells_cost2, 0u);
  EXPECT_EQ(counters.reused, 0u);
  EXPECT_EQ(counters.ComputationCost(), 3 * counters.cells_cost3);
  EXPECT_GT(counters.trie_nodes_visited, 0u);
}

TEST(BwtSw, CalculatesFarFewerCellsThanSmithWaterman) {
  SequenceGenerator gen(96);
  Sequence text = gen.Random(5000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 200, 0.5, 0.3, 0.02);
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  DpCounters counters;
  engine.Run(query, ScoringScheme::Default(), 25, &counters);
  // The suffix-trie pruning is the whole point: orders of magnitude below
  // the n*m full matrix.
  EXPECT_LT(counters.cells_cost3, SmithWaterman::CellCount(text, query) / 10);
}

TEST(BwtSw, ThresholdDoesNotChangeCellCount) {
  // BWT-SW prunes on positivity only; H filters reporting, not work
  // (ALAE's score filter is the improvement, §7.3).
  SequenceGenerator gen(97);
  Sequence text = gen.Random(2000, Alphabet::Dna());
  Sequence query = gen.HomologousQuery(text, 100, 0.6, 0.25, 0.02);
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  DpCounters low, high;
  engine.Run(query, ScoringScheme::Default(), 10, &low);
  engine.Run(query, ScoringScheme::Default(), 40, &high);
  EXPECT_EQ(low.cells_cost3, high.cells_cost3);
}

TEST(BwtSw, HandlesQueryWithNoHits) {
  Sequence text = Sequence::FromString(std::string(100, 'A'), Alphabet::Dna());
  Sequence query = Sequence::FromString("CGCGCGCG", Alphabet::Dna());
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  EXPECT_EQ(engine.Run(query, ScoringScheme::Default(), 4).size(), 0u);
}

TEST(BwtSw, EmptyQuery) {
  Sequence text = Sequence::FromString("ACGT", Alphabet::Dna());
  Sequence query;
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  EXPECT_EQ(engine.Run(query, ScoringScheme::Default(), 1).size(), 0u);
}

TEST(BwtSw, MultipleSchemesAgreeWithSmithWaterman) {
  SequenceGenerator gen(98);
  Sequence text = gen.Random(400, Alphabet::Protein());
  Sequence query = gen.HomologousQuery(text, 60, 0.7, 0.15, 0.03);
  FmIndex rev(text.Reversed());
  BwtSw engine(rev, static_cast<int64_t>(text.size()));
  for (int idx = 0; idx < 4; ++idx) {
    ScoringScheme scheme = ScoringScheme::Fig9(idx);
    EXPECT_EQ(SmithWaterman::Run(text, query, scheme, 10).Sorted(),
              engine.Run(query, scheme, 10).Sorted())
        << scheme.ToString();
  }
}

}  // namespace
}  // namespace alae
