#include "src/index/bitvector.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace alae {
namespace {

TEST(BitVector, SetGet) {
  BitVector bits(130);
  bits.Set(0, true);
  bits.Set(63, true);
  bits.Set(64, true);
  bits.Set(129, true);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(129));
  bits.Set(64, false);
  EXPECT_FALSE(bits.Get(64));
}

TEST(RankBitVector, RankMatchesNaiveOnRandom) {
  Rng rng(3);
  for (size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 511ul, 512ul, 513ul, 10000ul}) {
    BitVector bits(n);
    std::vector<int> naive(n + 1, 0);
    for (size_t i = 0; i < n; ++i) {
      bool v = rng.Bernoulli(0.3);
      bits.Set(i, v);
      naive[i + 1] = naive[i] + (v ? 1 : 0);
    }
    RankBitVector rank(bits);
    ASSERT_EQ(rank.size(), n);
    for (size_t i = 0; i <= n; ++i) {
      ASSERT_EQ(rank.Rank1(i), static_cast<size_t>(naive[i])) << "n=" << n
                                                              << " i=" << i;
      ASSERT_EQ(rank.Rank0(i), i - static_cast<size_t>(naive[i]));
    }
    EXPECT_EQ(rank.ones(), static_cast<size_t>(naive[n]));
  }
}

TEST(RankBitVector, GetPreservesBits) {
  Rng rng(4);
  BitVector bits(1000);
  std::vector<bool> truth(1000);
  for (size_t i = 0; i < 1000; ++i) {
    truth[i] = rng.Bernoulli(0.5);
    bits.Set(i, truth[i]);
  }
  RankBitVector rank(bits);
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(rank.Get(i), truth[i]);
}

TEST(RankBitVector, DenseAndSparseExtremes) {
  for (double p : {0.0, 1.0}) {
    BitVector bits(700);
    for (size_t i = 0; i < 700; ++i) bits.Set(i, p > 0.5);
    RankBitVector rank(bits);
    EXPECT_EQ(rank.Rank1(700), p > 0.5 ? 700u : 0u);
    EXPECT_EQ(rank.Rank1(350), p > 0.5 ? 350u : 0u);
  }
}

TEST(RankBitVector, SizeBytesAccounted) {
  BitVector bits(100000);
  RankBitVector rank(bits);
  // ~1.3 bits/bit: raw words plus rank samples.
  EXPECT_GT(rank.SizeBytes(), 100000u / 8);
  EXPECT_LT(rank.SizeBytes(), 100000u / 4);
}

}  // namespace
}  // namespace alae
