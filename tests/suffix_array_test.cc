#include "src/index/suffix_array.h"

#include <gtest/gtest.h>

#include "src/io/sequence.h"
#include "src/sim/generator.h"
#include "src/util/rng.h"

namespace alae {
namespace {

TEST(SuffixArray, PaperExample) {
  // SA of GCTAGC$ is {7,4,6,2,5,1,3} in the paper's 1-based numbering
  // (§2.3); 0-based that is {6,3,5,1,4,0,2}.
  Sequence t = Sequence::FromString("GCTAGC", Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  std::vector<int64_t> expected = {6, 3, 5, 1, 4, 0, 2};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, EmptyText) {
  std::vector<Symbol> empty;
  std::vector<int64_t> sa = BuildSuffixArray(empty, 4);
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0);
}

TEST(SuffixArray, SingleCharacter) {
  Sequence t = Sequence::FromString("A", Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  std::vector<int64_t> expected = {1, 0};
  EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, AllIdenticalCharacters) {
  Sequence t = Sequence::FromString(std::string(50, 'C'), Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  // Suffixes sort by decreasing start (shorter = smaller).
  ASSERT_EQ(sa.size(), 51u);
  for (int64_t i = 0; i <= 50; ++i) EXPECT_EQ(sa[static_cast<size_t>(i)], 50 - i);
}

TEST(SuffixArray, MatchesNaiveOnRandomDna) {
  SequenceGenerator gen(99);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t len = 1 + static_cast<int64_t>(gen.rng().Below(300));
    Sequence t = gen.Random(len, Alphabet::Dna());
    EXPECT_EQ(BuildSuffixArray(t.symbols(), 4),
              BuildSuffixArrayNaive(t.symbols()))
        << "trial " << trial << " len " << len;
  }
}

TEST(SuffixArray, MatchesNaiveOnRandomProtein) {
  SequenceGenerator gen(100);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t len = 1 + static_cast<int64_t>(gen.rng().Below(200));
    Sequence t = gen.Random(len, Alphabet::Protein());
    EXPECT_EQ(BuildSuffixArray(t.symbols(), 20),
              BuildSuffixArrayNaive(t.symbols()))
        << "trial " << trial;
  }
}

TEST(SuffixArray, MatchesNaiveOnRepetitiveText) {
  SequenceGenerator gen(101);
  for (int trial = 0; trial < 10; ++trial) {
    RepeatSpec family;
    family.unit_length = 7;
    family.copies = 12;
    family.divergence = 0.0;
    Sequence t = gen.TextWithRepeats(150, Alphabet::Dna(), {family});
    EXPECT_EQ(BuildSuffixArray(t.symbols(), 4),
              BuildSuffixArrayNaive(t.symbols()))
        << "trial " << trial;
  }
}

TEST(SuffixArray, IsPermutation) {
  SequenceGenerator gen(102);
  Sequence t = gen.Random(5000, Alphabet::Dna());
  std::vector<int64_t> sa = BuildSuffixArray(t.symbols(), 4);
  std::vector<bool> seen(sa.size(), false);
  for (int64_t v : sa) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, static_cast<int64_t>(sa.size()));
    ASSERT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

}  // namespace
}  // namespace alae
