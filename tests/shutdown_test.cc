// Graceful-shutdown hammer for the query service. Run under
// ThreadSanitizer in CI (the `tsan` job): destroying a QueryScheduler
// while clients are mid-Search used to be documented UB; now the
// destructor runs Shutdown(), which cancels every in-flight query, waits
// the batches out, and drains the pool — so these tests race destruction
// against live traffic and assert every client sees a clean outcome
// (its answer, or kCancelled) rather than a crash, hang or torn read.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.h"
#include "src/sim/generator.h"
#include "src/sim/workload.h"

namespace alae {
namespace service {
namespace {

using api::SearchRequest;
using api::SearchResponse;
using api::StatusCode;

Workload SmallWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.text_length = 3'000;
  spec.query_length = 40;
  spec.num_queries = 4;
  spec.divergence = 0.2;
  spec.seed = seed;
  return BuildWorkload(spec);
}

std::unique_ptr<ShardedCorpus> SmallCorpus(const Workload& w) {
  ShardedCorpusOptions options;
  options.shard_size = 700;
  options.overlap = 170;
  auto corpus = ShardedCorpus::Build(w.text, options);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).value();
}

// Explicit Shutdown while clients keep issuing queries: before it, calls
// succeed; during it, in-flight calls finish or come back kCancelled;
// after it, every call is refused with kCancelled. No other code ever
// appears and nothing deadlocks.
TEST(ServiceShutdown, ShutdownHammerLeavesOnlyOkOrCancelled) {
  Workload w = SmallWorkload(11);
  auto corpus = SmallCorpus(w);
  QueryScheduler scheduler(*corpus, {.threads = 2, .cache_capacity = 16});

  std::atomic<int> ok{0};
  std::atomic<int> cancelled{0};
  std::atomic<int> unexpected{0};
  constexpr int kClients = 6;
  constexpr int kItersPerClient = 40;
  auto client = [&](int id) {
    for (int it = 0; it < kItersPerClient; ++it) {
      SearchRequest request;
      request.query = w.queries[static_cast<size_t>(id + it) %
                                w.queries.size()];
      request.threshold = 16;
      api::StatusOr<SearchResponse> response =
          scheduler.Search(it % 2 == 0 ? "alae" : "sw", request);
      if (response.ok()) {
        ++ok;
      } else if (response.status().code() == StatusCode::kCancelled ||
                 response.status().code() == StatusCode::kDeadlineExceeded ||
                 response.status().code() == StatusCode::kResourceExhausted) {
        // kCancelled once shutdown begins; the other two are legal
        // transient outcomes under load and never indicate a torn state.
        ++cancelled;
      } else {
        ++unexpected;
      }
    }
  };
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  // Let some traffic through, then pull the plug under the clients.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scheduler.Shutdown();
  scheduler.Shutdown();  // idempotent
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  SearchRequest request;
  request.query = w.queries[0];
  request.threshold = 16;
  api::StatusOr<SearchResponse> refused = scheduler.Search("alae", request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled)
      << refused.status().ToString();
}

// The destructor race the class doc promises is safe: clients start one
// Search each, the scheduler is destroyed while they are in flight, and
// each call returns its answer or kCancelled — never UB. Each client
// makes exactly one call that begins before destruction starts, so no
// call ever targets a freed scheduler.
TEST(ServiceShutdown, DestructionWithInflightClientsIsClean) {
  Workload w = SmallWorkload(12);
  auto corpus = SmallCorpus(w);
  for (int round = 0; round < 8; ++round) {
    auto scheduler = std::make_unique<QueryScheduler>(
        *corpus, SchedulerOptions{.threads = 2, .cache_capacity = 0});
    std::atomic<int> started{0};
    std::atomic<int> unexpected{0};
    constexpr int kClients = 4;
    auto client = [&](int id) {
      SearchRequest request;
      request.query = w.queries[static_cast<size_t>(id) % w.queries.size()];
      request.threshold = 16;
      ++started;
      api::StatusOr<SearchResponse> response =
          scheduler->Search("alae", request);
      if (!response.ok() &&
          response.status().code() != StatusCode::kCancelled &&
          response.status().code() != StatusCode::kResourceExhausted) {
        ++unexpected;
      }
    };
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) clients.emplace_back(client, c);
    while (started.load() < kClients) std::this_thread::yield();
    // Destruction now races the in-flight Search calls; ~QueryScheduler
    // must cancel and wait them out before freeing anything they touch.
    scheduler.reset();
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(unexpected.load(), 0) << "round " << round;
  }
}

// Tearing down a LiveCorpus with a background compaction in flight must
// neither hang (waiting out a full rebuild) nor crash (ripping state out
// from under it): the destructor fires the compaction cancel token, the
// rebuild aborts at its next shard boundary, and the worker joins.
TEST(ServiceShutdown, LiveCorpusTeardownAbortsBackgroundCompaction) {
  SequenceGenerator gen(21);
  for (int round = 0; round < 4; ++round) {
    LiveCorpusOptions options;
    options.base.shard_size = 2'000;
    options.base.overlap = 300;
    options.compact_after_deltas = 2;
    options.background_compaction = true;
    auto live = LiveCorpus::Build(gen.Random(20'000, Alphabet::Dna()),
                                  options);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    // Trip the compaction trigger, then destroy while it (likely) runs.
    for (int a = 0; a < 3; ++a) {
      ASSERT_TRUE(
          (*live)->AppendDocument(gen.Random(500, Alphabet::Dna())).ok());
    }
    live->reset();  // must return promptly
  }
}

// ThreadPool::Shutdown still runs already-queued tasks (dropping them
// would strand the scheduler's completion latches) and closes admission.
TEST(ServiceShutdown, PoolShutdownRunsQueuedTasksAndClosesAdmission) {
  ThreadPool pool(1, 8);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&] { ++ran; }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_TRUE(pool.IsShutdown());
  EXPECT_FALSE(pool.TrySubmit([&] { ++ran; }));
  pool.Shutdown();  // idempotent
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace service
}  // namespace alae
