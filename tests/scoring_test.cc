#include "src/align/scoring.h"

#include <gtest/gtest.h>

namespace alae {
namespace {

TEST(ScoringScheme, DefaultIsPaperDefault) {
  ScoringScheme s = ScoringScheme::Default();
  EXPECT_EQ(s.sa, 1);
  EXPECT_EQ(s.sb, -3);
  EXPECT_EQ(s.sg, -5);
  EXPECT_EQ(s.ss, -2);
  EXPECT_TRUE(s.Valid());
}

TEST(ScoringScheme, DeltaAndGapCost) {
  ScoringScheme s = ScoringScheme::Default();
  EXPECT_EQ(s.Delta(1, 1), 1);
  EXPECT_EQ(s.Delta(1, 2), -3);
  // Affine gap: sg + r*ss (paper §2.1).
  EXPECT_EQ(s.GapCost(1), -7);
  EXPECT_EQ(s.GapCost(3), -11);
}

TEST(ScoringScheme, QPrefixLengthMatchesPaperExamples) {
  // q = floor(min(|sb|, |sg+ss|)/sa) + 1 (Eq. 2). For <1,-3,-5,-2>:
  // min(3, 7) = 3, q = 4 — the paper's running example.
  EXPECT_EQ(ScoringScheme::Default().QPrefixLength(), 4);
  // <1,-1,-5,-2>: min(1,7)=1 -> q=2.
  EXPECT_EQ(ScoringScheme::Fig9(2).QPrefixLength(), 2);
  // <1,-4,-5,-2>: min(4,7)=4 -> q=5.
  EXPECT_EQ(ScoringScheme::Fig9(1).QPrefixLength(), 5);
  // <1,-3,-2,-2>: min(3,4)=3 -> q=4.
  EXPECT_EQ(ScoringScheme::Fig9(3).QPrefixLength(), 4);
  // <2,-3,...>: floor(3/2)+1 = 2.
  ScoringScheme s{2, -3, -5, -2};
  EXPECT_EQ(s.QPrefixLength(), 2);
}

TEST(ScoringScheme, EffectiveQCapsAtThresholdOverSa) {
  ScoringScheme s = ScoringScheme::Default();
  EXPECT_EQ(s.EffectiveQ(100), 4);  // full q
  EXPECT_EQ(s.EffectiveQ(4), 4);
  EXPECT_EQ(s.EffectiveQ(3), 3);    // capped: H < q*sa
  EXPECT_EQ(s.EffectiveQ(1), 1);
  ScoringScheme s2{2, -3, -5, -2};
  EXPECT_EQ(s2.EffectiveQ(3), 2);   // ceil(3/2) = 2 = q
  EXPECT_EQ(s2.EffectiveQ(2), 1);   // ceil(2/2) = 1
}

TEST(ScoringScheme, FgoeThreshold) {
  EXPECT_EQ(ScoringScheme::Default().FgoeThreshold(), 7);
  EXPECT_EQ(ScoringScheme::Fig9(3).FgoeThreshold(), 4);
}

TEST(LengthBounds, PaperExampleLowerBound) {
  // T=CTAGCTAG, P=GCTAC, H=3 under the default scheme (§3.1.1): the row
  // lower bound is ceil(H/sa) = 3. (The prose also claims an upper bound
  // of 4, but Theorem 1's formula takes max with m = 5; the max is
  // required for exactness — a full-length perfect match of P scores
  // 5 >= H and must not be filtered.)
  ScoringScheme s = ScoringScheme::Default();
  EXPECT_EQ(LengthLowerBound(s, 3), 3);
  EXPECT_EQ(LengthUpperBound(s, 5, 3), 5);
}

TEST(LengthBounds, UpperBoundNeverBelowQueryLength) {
  ScoringScheme s = ScoringScheme::Default();
  // With a high threshold the correction term goes negative; Lmax = m.
  EXPECT_EQ(LengthUpperBound(s, 100, 100), 100);
}

TEST(LengthBounds, GapAllowanceExtendsPastQueryLength) {
  ScoringScheme s = ScoringScheme::Default();
  // H=1, m=10: floor((1 - (10-5)) / -2) = 2 extra gapped rows -> 12.
  EXPECT_EQ(LengthUpperBound(s, 10, 1), 12);
  // H=1, m=9: floor((1 - 4) / -2) = floor(1.5) = 1 -> 10.
  EXPECT_EQ(LengthUpperBound(s, 9, 1), 10);
}

TEST(ScoringScheme, ToStringFormat) {
  EXPECT_EQ(ScoringScheme::Default().ToString(), "<1,-3,-5,-2>");
}

TEST(ScoringScheme, ValidRejectsBadSchemes) {
  EXPECT_FALSE((ScoringScheme{0, -3, -5, -2}).Valid());
  EXPECT_FALSE((ScoringScheme{1, 3, -5, -2}).Valid());
  EXPECT_FALSE((ScoringScheme{1, -3, 5, -2}).Valid());
  EXPECT_FALSE((ScoringScheme{1, -3, -5, 2}).Valid());
}

}  // namespace
}  // namespace alae
